#!/usr/bin/env python3
"""Graph analytics on far memory — the paper's motivating datacenter
scenario (GraphX on Spark, Section VI-B).

Runs the four GraphX kernels with a third of their footprint local
(the paper gives them 11 GB of 33 GB) and shows where HoPP's win comes
from: PID+VPN-tagged hot pages let the trainer follow each RDD
partition's stream even though the JVM scatters them, while Fastswap
can only cluster on swap-slot adjacency.

    python examples/graph_analytics.py
"""

import repro

KERNELS = ["graphx-pr", "graphx-cc", "graphx-bfs", "graphx-lp"]
LOCAL_FRACTION = 1 / 3


def main() -> None:
    print(
        f"GraphX suite, local memory = {LOCAL_FRACTION:.0%} of footprint "
        "(paper: 11 GB of 33 GB)\n"
    )
    header = (
        f"{'kernel':11s} {'fastswap':>9s} {'hopp':>7s} {'win':>7s} "
        f"{'hopp-acc':>8s} {'hopp-cov':>8s} {'dram-hits':>9s}"
    )
    print(header)
    print("-" * len(header))
    wins = []
    for name in KERNELS:
        workload = repro.workloads.build(name, seed=7)
        ct_local = repro.local_completion_time(workload)
        fast = repro.run(workload, "fastswap", LOCAL_FRACTION)
        hopp = repro.run(workload, "hopp", LOCAL_FRACTION)
        np_fast = fast.normalized_performance(ct_local)
        np_hopp = hopp.normalized_performance(ct_local)
        win = np_hopp / np_fast - 1
        wins.append(win)
        print(
            f"{name:11s} {np_fast:9.3f} {np_hopp:7.3f} {win:6.1%} "
            f"{hopp.accuracy:8.3f} {hopp.coverage:8.3f} "
            f"{hopp.prefetch_hit_dram:9d}"
        )
    print(f"\naverage HoPP improvement over Fastswap: {sum(wins)/len(wins):.1%}")
    print(
        "(paper reports +34.7% on average for the Spark suite; the JVM's\n"
        " segmented allocation keeps streams short, so the win is smaller\n"
        " than on the C/OMP applications)"
    )


if __name__ == "__main__":
    main()
