#!/usr/bin/env python3
"""HPC kernels on far memory: where the three prefetch tiers earn their
keep (Section VI-D's deep dive).

HPL's blocked LU update walks a *ladder*: a tread of touches across
column blocks at non-uniform offsets, then a stable rise.  NPB-MG's
V-cycles mix strided sweeps with ladder stencils and ripples.  SSP
cannot see either shape — this example shows the coverage each tier
adds and what that does to completion time.

    python examples/hpc_workload.py
"""

import repro

APPS = ["hpl", "npb-mg", "npb-lu"]
TIER_VARIANTS = [("SSP only", "hopp-ssp"), ("SSP+LSP", "hopp-ssp-lsp"),
                 ("SSP+LSP+RSP", "hopp")]


def main() -> None:
    for name in APPS:
        workload = repro.workloads.build(name, seed=7)
        ct_local = repro.local_completion_time(workload)
        fastswap = repro.run(workload, "fastswap", 0.5)
        print(f"\n{name} (50% local memory; fastswap norm-perf "
              f"{fastswap.normalized_performance(ct_local):.3f})")
        header = (
            f"  {'tiers':12s} {'norm-perf':>9s} {'coverage':>8s} "
            f"{'speedup':>8s}  per-tier hits"
        )
        print(header)
        print("  " + "-" * (len(header) - 2))
        for label, system in TIER_VARIANTS:
            result = repro.run(workload, system, 0.5)
            tier_hits = ", ".join(
                f"{tier}={result.hits_by_tier.get(tier, 0)}"
                for tier in ("ssp", "lsp", "rsp")
            )
            print(
                f"  {label:12s} {result.normalized_performance(ct_local):9.3f} "
                f"{result.coverage:8.3f} {result.speedup_vs(fastswap):8.3f}  "
                f"{tier_hits}"
            )

    # Offline pattern study (the Section II-B evidence for the tiers).
    print("\nstream-pattern mix of each footprint (offline classifier):")
    from repro.analysis import analyze_trace, page_sequence

    for name in APPS:
        workload = repro.workloads.build(name, seed=7)
        breakdown = analyze_trace(page_sequence(workload.trace()))
        mix = "  ".join(
            f"{label}={breakdown.fraction(label):.0%}"
            for label in ("simple", "ladder", "ripple", "irregular")
        )
        print(f"  {name:8s} {mix}")


if __name__ == "__main__":
    main()
