#!/usr/bin/env python3
"""A memcached-style key-value cache on far memory — the paper's other
intro-motivating workload class ("in-memory applications such as big
data analytics and caching").

KV GET traffic is Zipf-random: there are no page streams, so this is
the honest *negative* case for prefetching.  What the example shows:

* read-ahead actively hurts (accuracy ~0.4, thousands of wasted pages
  polluting local memory — worse than plain demand paging);
* HoPP's own data plane mostly *abstains* (the stream-gated trainer
  has almost nothing to train on); the few requests it does issue
  target the short intra-object page runs of multi-page values;
* the performance story on such traffic is the hot working set
  (index + popular objects) staying local, not prefetching.

    python examples/kv_cache.py
"""

import repro
from repro.sim import runner


def main() -> None:
    workload = repro.workloads.build("kv-cache", seed=7)
    ct_local = repro.local_completion_time(workload)
    print(
        f"kv-cache: {workload.footprint_pages} pages "
        f"(Zipf GETs over {workload.objects} objects), local = 40%\n"
    )
    header = (
        f"{'system':11s} {'norm-perf':>9s} {'accuracy':>8s} "
        f"{'wasted':>7s} {'own-plane issued':>16s}"
    )
    print(header)
    print("-" * len(header))
    for system in ("noprefetch", "fastswap", "hopp"):
        machine = runner.make_machine(workload, system, 0.4)
        machine.run(workload.trace())
        result = runner.collect(machine, system, workload.name)
        own = sum(
            count for tier, count in result.issued_by_tier.items()
            if tier not in ("fastswap", "leap", "vma-readahead")
        )
        print(
            f"{system:11s} {result.normalized_performance(ct_local):9.3f} "
            f"{result.accuracy:8.3f} {result.prefetch_wasted:7d} {own:16d}"
        )
    print(
        "\ntakeaway: on streamless traffic, read-ahead *loses* to demand\n"
        "paging (pollution); HoPP's trainer mostly abstains, so its own\n"
        "plane adds little waste — the accuracy discipline that makes\n"
        "early PTE injection safe elsewhere."
    )


if __name__ == "__main__":
    main()
