#!/usr/bin/env python3
"""Tuning the prefetch policy engine for a volatile fabric.

The policy engine (Section III-E) has two knobs: *intensity* (pages per
hot page) and *offset* (how far ahead), with the offset adapted from
measured timeliness T so prefetched pages arrive neither late (T <
T_min) nor absurdly early (T > T_max).  This example builds custom HoPP
configurations — the same extension point a downstream user would use —
and compares them on a jittery, spike-prone network.

    python examples/policy_tuning.py
"""

import repro
from repro.baselines.fastswap import FastswapPrefetcher
from repro.hopp.policy import PolicyConfig
from repro.hopp.system import HoppConfig, HoppDataPlane
from repro.net.rdma import FabricConfig
from repro.sim.machine import Machine
from repro.sim.systems import SystemSpec

#: A fabric having a bad day: heavy jitter, frequent 8x latency spikes.
VOLATILE_FABRIC = FabricConfig(
    jitter_us=2.0, spike_probability=0.05, spike_factor=8.0, seed=7
)


def hopp_variant(name: str, policy: PolicyConfig) -> SystemSpec:
    """A HoPP system with a custom policy — the public extension hook."""

    def builder(machine_config):
        machine = Machine(machine_config, fault_prefetcher=FastswapPrefetcher())
        plane = HoppDataPlane(machine, HoppConfig(policy=policy))
        machine.hopp = plane
        machine.controller.add_tap(plane.on_mc_access)
        return machine

    return SystemSpec(name=name, builder=builder)


VARIANTS = [
    ("fixed offset=1", PolicyConfig(adaptive=False, initial_offset=1.0)),
    ("fixed offset=64", PolicyConfig(adaptive=False, initial_offset=64.0)),
    ("adaptive a=0.2", PolicyConfig(alpha=0.2)),
    ("adaptive, intensity=2", PolicyConfig(alpha=0.2, intensity=2)),
]


def main() -> None:
    workload = repro.workloads.build("adder", seed=7)
    ct_local = repro.local_completion_time(workload, VOLATILE_FABRIC)
    print(
        "2-thread streaming benchmark, 25% local memory, volatile fabric\n"
        f"(jitter {VOLATILE_FABRIC.jitter_us} us, "
        f"{VOLATILE_FABRIC.spike_probability:.0%} chance of "
        f"{VOLATILE_FABRIC.spike_factor:.0f}x spikes)\n"
    )
    header = (
        f"{'policy':22s} {'norm-perf':>9s} {'coverage':>8s} "
        f"{'late hits':>9s} {'wasted':>7s}"
    )
    print(header)
    print("-" * len(header))
    for label, policy in VARIANTS:
        spec = hopp_variant(label, policy)
        result = repro.run(workload, spec, 0.25, VOLATILE_FABRIC)
        print(
            f"{label:22s} {result.normalized_performance(ct_local):9.3f} "
            f"{result.coverage:8.3f} {result.prefetch_hit_inflight:9d} "
            f"{result.prefetch_wasted:7d}"
        )
    print(
        "\n'late hits' are faults on pages whose prefetch was still in "
        "flight —\nthe offset controller's job is to drive them to zero "
        "without prefetching\nso far ahead that pages are evicted before use "
        "('wasted')."
    )


if __name__ == "__main__":
    main()
