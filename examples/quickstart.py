#!/usr/bin/env python3
"""Quickstart: run one workload on disaggregated memory, with and
without HoPP, and print the paper's metrics.

    python examples/quickstart.py
"""

import repro


def main() -> None:
    # An OMP-K-means-like application: two threads streaming a large
    # sample array with a hot centroid region (Table IV).
    workload = repro.workloads.build("omp-kmeans", seed=7)
    print(f"workload: {workload.name}, footprint {workload.footprint_pages} pages")

    # CT_local: everything fits in local memory (the baseline of VI-A).
    ct_local = repro.local_completion_time(workload)
    print(f"local completion time: {ct_local / 1e3:.1f} ms\n")

    # Give the app only half its footprint locally; the rest lives on
    # the remote memory node behind an RDMA fabric.
    header = f"{'system':12s} {'norm-perf':>9s} {'accuracy':>8s} {'coverage':>8s} {'faults':>8s}"
    print(header)
    print("-" * len(header))
    for system in ("noprefetch", "fastswap", "leap", "hopp"):
        result = repro.run(workload, system, local_memory_fraction=0.5)
        print(
            f"{system:12s} {result.normalized_performance(ct_local):9.3f} "
            f"{result.accuracy:8.3f} {result.coverage:8.3f} "
            f"{result.page_faults:8d}"
        )

    hopp = repro.run(workload, "hopp", local_memory_fraction=0.5)
    print(
        f"\nHoPP hit breakdown: {hopp.prefetch_hit_dram} DRAM hits "
        f"(injected PTEs, 0.1 us each), {hopp.prefetch_hit_swapcache} "
        f"swapcache hits (2.3 us faults), {hopp.remote_demand_reads} "
        f"demand remote reads (~8 us faults)"
    )
    if hopp.timeliness is not None and hopp.timeliness.stat.count:
        print(
            f"prefetch timeliness: mean {hopp.timeliness.stat.mean:.1f} us, "
            f"p90 ~{hopp.timeliness.quantile(0.9):.0f} us "
            f"(policy target window: 40 us .. 5 ms)"
        )


if __name__ == "__main__":
    main()
