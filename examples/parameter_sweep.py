#!/usr/bin/env python3
"""Research-style parameter sweep using the sweep harness.

Sweeps local-memory pressure (the paper's 50%/25% axis, extended) for
three systems on two workloads and prints the normalized-performance
series — the data behind a Figure-9-style plot.

    python examples/parameter_sweep.py
"""

from repro.analysis import render_table
from repro.analysis.sweeps import sweep


def main() -> None:
    result = sweep(
        workloads=["omp-kmeans", "npb-cg"],
        systems=["fastswap", "depth-32", "hopp"],
        fractions=[0.125, 0.25, 0.5, 0.75],
        seed=7,
        workload_kwargs={
            "omp-kmeans": dict(data_pages=1200, iterations=2),
            "npb-cg": dict(main_pages=1200, iterations=2),
        },
    )

    print(render_table(
        ["workload", "system", "fraction", "norm-perf", "accuracy", "coverage"],
        result.to_rows(["normalized_performance", "accuracy", "coverage"]),
        title="local-memory pressure sweep",
    ))

    print("\nnormalized-performance series (x = local fraction):")
    for workload in ("omp-kmeans", "npb-cg"):
        print(f"  {workload}:")
        filtered = [p for p in result.points if p.workload == workload]
        for system in ("fastswap", "depth-32", "hopp"):
            values = [
                (p.fraction, result.metric(p, "normalized_performance"))
                for p in filtered if p.system == system
            ]
            series = "  ".join(f"{frac:.3f}->{value:.3f}" for frac, value in sorted(values))
            print(f"    {system:9s} {series}")
    print(
        "\nfastswap degrades steadily as memory shrinks (every fault pays\n"
        "the 2.3 us prefetch-hit toll at best); hopp holds near-local until\n"
        "extreme pressure, where prefetched pages start evicting each other\n"
        "— the same cliff the Depth-N systems hit earlier on irregular apps."
    )


if __name__ == "__main__":
    main()
