#!/usr/bin/env python3
"""Recreate the paper's motivating stream figures (1, 2, 3) and show
what each prefetcher can and cannot see.

* Figure 1: two interleaved streams confuse Leap's fault-history
  majority vote; HoPP's Stream Training Table separates them by
  address-space clustering.
* Figure 2: a ladder stream — SSP finds no dominant stride, LSP finds
  the repeating stride pattern and its period.
* Figure 3: a ripple stream — strides look noisy, but the cumulative
  stride keeps returning to ~0, which RSP counts.

    python examples/pattern_study.py
"""

from repro.analysis import classify_window
from repro.baselines.leap import LeapPrefetcher
from repro.common.types import StreamObservation
from repro.hopp import lsp, rsp, ssp
from repro.hopp.stt import StreamTrainingTable


def make_observation(vpns, pid=1, stream_id=0):
    """Wrap a raw VPN history as the STT would hand it to the tiers."""
    strides = [b - a for a, b in zip(vpns, vpns[1:])]
    return StreamObservation(
        pid=pid,
        vpn=vpns[-1],
        stride=strides[-1],
        vpn_history=tuple(vpns),
        stride_history=tuple(strides),
        stream_id=stream_id,
    )


def figure1_interleaved_streams() -> None:
    print("=== Figure 1: interleaved streams ===")
    stream_a = [100 + 2 * i for i in range(8)]   # stride 2
    stream_b = [5000 + i for i in range(8)]      # stride 1
    interleaved = [vpn for pair in zip(stream_a, stream_b) for vpn in pair]
    print(f"fault order: {interleaved}")

    leap = LeapPrefetcher(window=8)

    class _Stub:  # Leap only reads the history it builds itself
        pass

    for vpn in interleaved:
        leap.on_fault(1, vpn, 0, 0.0, _Stub())
    print(f"Leap majority stride over the global history: "
          f"{leap.detect_stride()}  (0 = no stable stride found)")

    stt = StreamTrainingTable(history_len=8)
    streams = set()
    for vpn in interleaved:
        stt.feed(1, vpn)
    for entry in stt.streams():
        streams.add((entry.vpns[0], entry.vpns[-1] - entry.vpns[0]))
    print(f"HoPP STT separated {len(stt.streams())} streams "
          f"(pages clustering, Delta=64): {sorted(streams)}\n")


def figure2_ladder() -> None:
    print("=== Figure 2: ladder stream ===")
    vpns = []
    for j in range(3):
        for offset in (0, 9, 22, 43):
            vpns.append(1000 + offset + 2 * j)
    history = vpns[:11]
    print(f"VPN history (a1..a11): {history}")
    obs = make_observation(history)
    print(f"SSP decision: {ssp.train(obs)}  (no dominant stride)")
    decision = lsp.train(obs)
    print(
        f"LSP decision: stride_target={decision.fixed_delta}, "
        f"pattern_stride={decision.per_offset_stride} "
        f"-> prefetch VPN {decision.target_vpn(1)} at offset 1"
    )
    print(f"actual next ladder access: {vpns[11]} "
          f"(LSP offset-0 prediction: {decision.target_vpn(0)})\n")


def figure3_ripple() -> None:
    print("=== Figure 3: ripple stream ===")
    vpns = [100, 101, 102, 115, 103, 104, 105, 118, 106, 107,
            108, 109, 121, 110, 111, 112]
    print(f"VPN history with out-of-stream hops: {vpns}")
    obs = make_observation(vpns)
    print(f"SSP decision: {ssp.train(obs)}")
    decision = rsp.train(obs)
    print(f"RSP decision: stride_target=1 -> prefetch VPN "
          f"{decision.target_vpn(1)} at offset 1")
    print(f"window classification: {classify_window(vpns)}\n")


if __name__ == "__main__":
    figure1_interleaved_streams()
    figure2_ladder()
    figure3_ripple()
