#!/usr/bin/env python3
"""Multi-tenant compute node: several applications co-run, each
cgroup-limited to half its footprint (the Figure 15 scenario).

The interesting mechanism: the hot-page trace carries the PID, so
HoPP's trainer aggregates each application's pages separately and the
streams never alias — unlike Leap's global fault history, which mixes
tenants and collapses.

    python examples/multi_tenant.py
"""

import repro

PAIRS = [
    ("omp-kmeans", "quicksort"),
    ("npb-cg", "npb-mg"),
    ("omp-kmeans", "npb-is"),
]


def main() -> None:
    print("co-running pairs, each app limited to 50% of its footprint\n")
    header = (
        f"{'pair':22s} {'system':9s} {'completion(ms)':>14s} "
        f"{'accuracy':>8s} {'coverage':>8s} {'faults':>7s}"
    )
    print(header)
    print("-" * len(header))
    for pair in PAIRS:
        workloads = [
            repro.workloads.build(name, seed=7 + i) for i, name in enumerate(pair)
        ]
        results = {}
        for system in ("fastswap", "leap", "hopp"):
            result = repro.run_corun(workloads, system, local_memory_fraction=0.5)
            results[system] = result
            print(
                f"{'+'.join(pair):22s} {system:9s} "
                f"{result.completion_time_us / 1e3:14.1f} "
                f"{result.accuracy:8.3f} {result.coverage:8.3f} "
                f"{result.page_faults:7d}"
            )
        speedup = results["hopp"].speedup_vs(results["fastswap"])
        print(f"{'':22s} -> HoPP speedup over Fastswap: {speedup:.1%}\n")


if __name__ == "__main__":
    main()
