#!/usr/bin/env python3
"""Capture → persist → analyze: the offline-trace workflow the paper's
own methodology used (HMTT traces studied offline drove the discovery
of ladder and ripple streams, Section II-B).

1. attach an HMTT tracer to the simulated memory controller;
2. run a workload and persist the captured trace (8-byte records:
   seq / timestamp / R-W / physical address);
3. reload the file and classify its stream patterns offline.

    python examples/trace_capture.py
"""

import tempfile
from pathlib import Path

from repro.analysis import analyze_trace
from repro.net.rdma import FabricConfig
from repro.sim import runner
from repro.trace import HmttTracer, load_trace, write_trace
from repro.workloads import build


def main() -> None:
    workload = build("hpl", seed=7)
    machine = runner.make_machine(workload, "noprefetch", 4.0, FabricConfig(seed=7))
    tracer = HmttTracer(reads_only=True)  # the HPD only consumes READs
    tracer.attach(machine.controller)

    print(f"running {workload.name} and capturing its MC trace...")
    machine.run(workload.trace())
    records = tracer.ring.drain()
    print(f"captured {len(records)} READ records "
          f"({tracer.ring.dropped} dropped by the ring)")

    path = Path(tempfile.gettempdir()) / "hopp-hpl.hmtt"
    written = write_trace(path, records)
    size_kb = path.stat().st_size / 1024
    print(f"persisted {written} records to {path} ({size_kb:.0f} KiB, "
          f"8 bytes/record)\n")

    print("offline stream-pattern study (the Section II-B method):")
    loaded = load_trace(path)
    ppns = [record.ppn for record in loaded]
    # Collapse cacheline records to page visits.
    visits = [p for i, p in enumerate(ppns) if i == 0 or p != ppns[i - 1]]
    breakdown = analyze_trace(visits)
    for label in ("simple", "ladder", "ripple", "irregular"):
        bar = "#" * int(breakdown.fraction(label) * 40)
        print(f"  {label:9s} {breakdown.fraction(label):6.1%}  {bar}")
    print(
        "\nthe ladder share is what SSP alone cannot prefetch — the "
        "evidence\nthat led to LSP (Algorithm 1) in the paper."
    )


if __name__ == "__main__":
    main()
