"""Depth-N prefetching with early PTE injection (Awad et al., ICS '16).

On every major fault at VPN v, fetch v+1 .. v+N and *inject their PTEs*
on arrival.  Because injected pages never fault, Depth-N gets no feedback
— it cannot tell hits from waste, so N stays fixed (Section II-C's
"limited prefetching flexibility"), it loses the very fault history that
would let it adapt, and its wrong guesses sit at the MRU end of the LRU
list where they are hard to evict.  Figure 16/17 show the consequence:
the most remote accesses of all four systems and losses to Fastswap on
irregular applications.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.baselines.base import FaultTimePrefetcher


class DepthNPrefetcher(FaultTimePrefetcher):
    inject_pte = True

    def __init__(self, depth: int = 32) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.depth = depth
        self.name = f"depth-{depth}"

    def on_fault(self, pid, vpn, slot, now_us, machine) -> List[Tuple[int, int]]:
        return [(pid, vpn + k) for k in range(1, self.depth + 1)]

    # No feedback hooks on purpose: injected pages never fault, and the
    # algorithm has no other address source (Section II-C).
