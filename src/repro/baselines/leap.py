"""Leap's majority-based prefetcher (Maruf & Chowdhury, ATC '20).

Leap records the last W faulting page addresses in a global access
history and, on each fault, looks for a *majority stride* among the
strides of that window; if one exists it prefetches along it, otherwise
it falls back to a small fixed read-ahead around the fault.

The history is global — Leap cannot attribute faults to streams — so
with concurrent streams (Figure 1, and the two-thread microbenchmark of
Section VI-E) the strides of interleaved streams alias and the majority
vote either fails or elects a wrong stride.  That is the limitation
HoPP's full trace + pages clustering removes.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Deque, List, Tuple

from repro.baselines.base import FaultTimePrefetcher


class LeapPrefetcher(FaultTimePrefetcher):
    name = "leap"
    inject_pte = False

    def __init__(
        self,
        window: int = 8,
        max_prefetch: int = 8,
        fallback_prefetch: int = 1,
        eager_eviction: bool = True,
    ) -> None:
        if window < 2:
            raise ValueError("window must be >= 2")
        self.window = window
        self.max_prefetch = max_prefetch
        self.fallback_prefetch = fallback_prefetch
        self._history: Deque[Tuple[int, int]] = deque(maxlen=window)
        self.majority_found = 0
        self.fallbacks = 0
        #: Adaptive prefetch depth, grown on hits like Leap's controller.
        self._depth = max_prefetch // 2 or 1
        self._recent_hits = 0
        self._recent_waste = 0
        #: Leap's eager cache eviction: once the *next* prefetched page
        #: is hit, the previous one has served its purpose and is
        #: demoted to the cold end of the LRU for quick reclaim.
        self.eager_eviction = eager_eviction
        self._last_hit = None
        self.eager_demotions = 0

    def detect_stride(self) -> int:
        """Majority stride over the fault-history window, or 0.

        Strides are computed between consecutive faults *regardless of
        PID or stream* — faithfully reproducing the aliasing problem.
        """
        if len(self._history) < self.window:
            return 0
        strides = []
        entries = list(self._history)
        for (prev_pid, prev_vpn), (pid, vpn) in zip(entries, entries[1:]):
            if prev_pid == pid:
                strides.append(vpn - prev_vpn)
        if not strides:
            return 0
        stride, count = Counter(strides).most_common(1)[0]
        if stride != 0 and count > len(entries) // 2:
            return stride
        return 0

    def on_fault(self, pid, vpn, slot, now_us, machine) -> List[Tuple[int, int]]:
        self._history.append((pid, vpn))
        self._adapt()
        stride = self.detect_stride()
        if stride:
            self.majority_found += 1
            return [
                (pid, vpn + k * stride)
                for k in range(1, self._depth + 1)
                if vpn + k * stride >= 0
            ]
        # No trend: Leap falls back to a tiny fixed read-ahead.
        self.fallbacks += 1
        return [
            (pid, vpn + k)
            for k in range(1, self.fallback_prefetch + 1)
        ]

    def _adapt(self) -> None:
        total = self._recent_hits + self._recent_waste
        if total < self._depth:
            return
        if self._recent_waste > self._recent_hits:
            self._depth = max(1, self._depth // 2)
        else:
            self._depth = min(self.max_prefetch, self._depth * 2)
        self._recent_hits = 0
        self._recent_waste = 0

    def on_prefetch_hit(self, pid: int, vpn: int, now_us: float, machine=None) -> None:
        self._recent_hits += 1
        if self.eager_eviction and machine is not None:
            if self._last_hit is not None:
                if machine.demote_page(*self._last_hit):
                    self.eager_demotions += 1
            self._last_hit = (pid, vpn)

    def on_prefetch_wasted(self, pid: int, vpn: int) -> None:
        self._recent_waste += 1
