"""Fastswap's read-ahead prefetcher (Amaro et al., EuroSys '20).

Fastswap keeps Linux's swap read-ahead: on a major fault it reads the
pages whose *swap offsets* neighbor the faulting page's slot.  Swap slots
are assigned in reclaim order, so this clusters pages that were evicted
together — only an approximation of pages that will be *used* together,
which is why its accuracy trails both VMA read-ahead and HoPP
(Section VI-E: "Fastswap prefetches adjacent pages based on swap
offset").

The window adapts like Linux's swap_vma_readahead heuristic: it doubles
after productive batches and halves after wasted ones, bounded by
[1, max_window] (page-cluster default 3 -> 8 pages).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.baselines.base import FaultTimePrefetcher


class FastswapPrefetcher(FaultTimePrefetcher):
    name = "fastswap"
    inject_pte = False

    def __init__(self, max_window: int = 8, initial_window: int = 8) -> None:
        if not 1 <= initial_window <= max_window:
            raise ValueError("need 1 <= initial_window <= max_window")
        self.max_window = max_window
        self.window = initial_window
        #: Hits/waste observed since the last window adjustment.
        self._recent_hits = 0
        self._recent_waste = 0
        self.batches = 0

    def on_fault(self, pid, vpn, slot, now_us, machine) -> List[Tuple[int, int]]:
        self._adapt()
        if slot < 0:
            # First-touch fault: nothing adjacent in swap space yet.
            return []
        self.batches += 1
        half = self.window // 2
        return machine.swap_space.neighbors(
            slot, before=half, after=self.window - half
        )

    def _adapt(self) -> None:
        if self._recent_hits + self._recent_waste < self.window:
            return
        if self._recent_waste > self._recent_hits:
            self.window = max(1, self.window // 2)
        elif self._recent_hits > 0:
            self.window = min(self.max_window, self.window * 2)
        self._recent_hits = 0
        self._recent_waste = 0

    def on_prefetch_hit(self, pid: int, vpn: int, now_us: float, machine=None) -> None:
        self._recent_hits += 1

    def on_prefetch_wasted(self, pid: int, vpn: int) -> None:
        self._recent_waste += 1
