"""VMA-based read-ahead (the Linux 5.4 swap_vma_readahead baseline of
Section VI-E).

Prefetches pages *adjacent in the virtual address space* around the
fault, clipped to the faulting page's VMA.  The VMA acts as a coarse
pages-clustering: it beats Fastswap's swap-offset read-ahead (~3.6% in
the paper's microbenchmark) because virtual adjacency predicts reuse
better than eviction adjacency, but it still only fires on faults and
still pays the prefetch-hit cost.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.baselines.base import FaultTimePrefetcher


class VmaReadaheadPrefetcher(FaultTimePrefetcher):
    name = "vma-readahead"
    inject_pte = False

    def __init__(self, window: int = 8) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window

    def on_fault(self, pid, vpn, slot, now_us, machine) -> List[Tuple[int, int]]:
        region = machine.vmas.find(pid, vpn)
        # Forward-biased window around the fault, like swap_vma_readahead.
        back = self.window // 4
        fwd = self.window - back
        lo = vpn - back
        hi = vpn + fwd
        if region is not None:
            lo = max(lo, region.start_vpn)
            hi = min(hi, region.end_vpn - 1)
        return [
            (pid, candidate)
            for candidate in range(lo, hi + 1)
            if candidate != vpn and candidate >= 0
        ]
