"""Kernel-based baseline prefetchers the paper compares against."""

from repro.baselines.base import FaultTimePrefetcher, NoPrefetch
from repro.baselines.depthn import DepthNPrefetcher
from repro.baselines.fastswap import FastswapPrefetcher
from repro.baselines.leap import LeapPrefetcher
from repro.baselines.vma_readahead import VmaReadaheadPrefetcher

__all__ = [
    "FaultTimePrefetcher",
    "NoPrefetch",
    "DepthNPrefetcher",
    "FastswapPrefetcher",
    "LeapPrefetcher",
    "VmaReadaheadPrefetcher",
]
