"""Fault-time prefetcher interface shared by the kernel-based baselines.

Unlike HoPP's asynchronous data plane, every baseline prefetcher runs
*inside the page-fault handler*: it only learns from faulting addresses
and can only act when a fault occurs — the semantic gap Section II-B is
about.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.machine import Machine


class FaultTimePrefetcher(abc.ABC):
    """Called from the fault path with the faulting page's identity.

    ``inject_pte`` selects the destination of prefetched pages: False
    lands them in the swapcache (Fastswap, Leap, VMA read-ahead — a later
    access still faults, 2.3 us); True injects the PTE on arrival
    (Depth-N).
    """

    name: str = "base"
    inject_pte: bool = False

    @abc.abstractmethod
    def on_fault(
        self,
        pid: int,
        vpn: int,
        slot: int,
        now_us: float,
        machine: "Machine",
    ) -> List[Tuple[int, int]]:
        """Return the (pid, vpn) pages to prefetch alongside this fault.

        ``slot`` is the faulting page's swap slot (-1 when it was never
        swapped), which is all Fastswap's read-ahead can cluster on.
        """

    def on_prefetch_hit(
        self, pid: int, vpn: int, now_us: float, machine=None
    ) -> None:
        """Feedback: a page this prefetcher brought in was hit in the
        swapcache.  Baselines that adapt their window use this;
        ``machine`` (when provided) allows page-placement hints such as
        Leap's eager cache eviction."""

    def on_prefetch_wasted(self, pid: int, vpn: int) -> None:
        """Feedback: a prefetched page was reclaimed without being hit."""


class NoPrefetch(FaultTimePrefetcher):
    """Demand paging only — the 'Fastswap without prefetching' baseline
    that normalizes Figure 17's remote-access counts."""

    name = "noprefetch"

    def on_fault(self, pid, vpn, slot, now_us, machine):
        return []
