"""Corruption detect→repair→poison control and the patrol scrubber.

:class:`IntegrityController` is the one place corruption outcomes are
decided and counted, shared by the three verify points (demand fetch,
migration read, patrol scrub):

* **detected** — a copy failed checksum verification;
* **repaired** — a clean replica served the page (demand failover) or
  was copied over the bad one (scrub/migration), paid for as a modeled
  READ + WRITE on the live links;
* **poisoned** — no clean copy exists: the slot is marked poisoned on
  the cluster (CXL poison semantics — the data exists but is known-bad),
  demand reads of it zero-fill, promotion to the pool tier is barred,
  and a pool-resident poisoned page is force-demoted;
* **unresolved** — a repair transfer timed out while a clean copy still
  exists somewhere; the corruption stays latent for a later pass.

Ledger arithmetic is closed — every detection ends in exactly one
outcome::

    corruption_detected == corruption_repaired + corruption_unresolved
                           + poisoned_copies

which the cross-layer sanitizer asserts after every sweep.

:class:`PatrolScrubber` walks the slot directory at a configured rate
(``ScrubConfig.rate_pages_per_s``), paying a modeled READ per audited
copy on UP nodes, so latent media errors are found *before* demand
traffic trips over them.  It rides :class:`~repro.cluster.repair.
RepairEngine`'s rate limiter: repair tasks always win the slot, scrub
runs in the idle gaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.integrity.checksum import PageCorruptError, SlotChecksums  # noqa: F401
from repro.net.faults import TransferTimeout
from repro.telemetry.events import (
    EV_CORRUPT_REPAIR,
    EV_CORRUPTION,
    EV_POISON,
    EV_SCRUB,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.cluster.cluster import RemoteMemoryCluster
    from repro.kernel.swap import SwapSpace


@dataclass(frozen=True)
class ScrubConfig:
    """Patrol-scrubber shaping.

    ``rate_pages_per_s``  audited copies per simulated second; the
                          pump spaces audit reads ``1e6 / rate`` us
                          apart.  Higher rates shrink detection latency
                          and cost proportional READ bandwidth — the
                          trade-off ``bench_scrub_tradeoff.py`` sweeps.
    """

    rate_pages_per_s: float = 5000.0

    def __post_init__(self) -> None:
        if self.rate_pages_per_s <= 0:
            raise ValueError(
                f"rate_pages_per_s must be > 0, got {self.rate_pages_per_s}"
            )


class IntegrityController:
    """Decides and counts every corruption outcome for one machine."""

    def __init__(self, cluster: "RemoteMemoryCluster", swap_space: "SwapSpace") -> None:
        self.cluster = cluster
        self.swap_space = swap_space
        #: Migration engine (for poison force-demotes); None when
        #: tiering is off.  Wired by the machine.
        self.memtier = None
        #: Telemetry event bus; None keeps every path probe-free.
        self.bus = None
        # Counters surfaced into RunResult.integrity.
        self.corruption_detected = 0
        self.corruption_repaired = 0
        self.corruption_unresolved = 0
        #: Corrupt copies condemned by poisoning events (the per-copy
        #: side of ``pages_poisoned``, which counts slots).
        self.poisoned_copies = 0
        self.pages_poisoned = 0
        #: Demand reads of poisoned slots resolved by zero-fill.
        self.poisoned_reads = 0
        #: Pool promotions refused because the slot is poisoned.
        self.promotions_barred = 0
        self.scrub_reads = 0
        #: Stored corruptions the patrol scrubber caught (before demand).
        self.scrub_detected = 0
        #: Modeled transfers spent rewriting bad copies from clean ones.
        self.repair_reads = 0
        self.repair_writes = 0
        # Detection latency (latent media errors only: detect - strike).
        self._latency_sum_us = 0.0
        self._latency_max_us = 0.0
        self._latency_count = 0

    # -- ledger arithmetic --------------------------------------------------------------

    @property
    def balanced(self) -> bool:
        """Every detection ended in exactly one outcome (the sanitizer
        asserts this after each sweep)."""
        return self.corruption_detected == (
            self.corruption_repaired
            + self.corruption_unresolved
            + self.poisoned_copies
        )

    def note_detected(
        self,
        now_us: float,
        slot: int,
        node_id: int,
        since: Optional[float] = None,
        source: str = "demand",
    ) -> None:
        """One corrupt copy found (checksum mismatch on a verify read)."""
        self.corruption_detected += 1
        if since is not None:
            latency = max(now_us - since, 0.0)
            self._latency_sum_us += latency
            self._latency_max_us = max(self._latency_max_us, latency)
            self._latency_count += 1
        if self.bus is not None:
            self.bus.emit(
                EV_CORRUPTION, now_us, slot=slot, node=node_id, source=source
            )

    def note_repaired(
        self, count: int, now_us: float, slot: int, node_id: int
    ) -> None:
        """``count`` detected copies resolved from a clean source."""
        self.corruption_repaired += count
        if self.bus is not None:
            self.bus.emit(
                EV_CORRUPT_REPAIR, now_us, slot=slot, node=node_id, n=count
            )

    def note_unresolved(self, count: int) -> None:
        """``count`` detections left latent (retry budget or repair
        transfer exhausted while a clean copy may still exist)."""
        self.corruption_unresolved += count

    def poison(self, slot: int, now_us: float, condemned: int) -> None:
        """No clean copy of ``slot`` exists: mark it poisoned (the CXL
        poison bit — data present, known-bad), condemning ``condemned``
        detected copies.  A pool-resident poisoned page is force-demoted
        out of the pool tier."""
        self.cluster.mark_poisoned(slot)
        self.pages_poisoned += 1
        self.poisoned_copies += condemned
        if self.bus is not None:
            self.bus.emit(EV_POISON, now_us, slot=slot, n=condemned)
        if self.memtier is not None:
            self.memtier.note_poisoned(slot)

    # -- the stored-corruption repair path ----------------------------------------------

    def resolve_stored_corruption(
        self, slot: int, bad_node_id: int, now_us: float
    ) -> str:
        """A stored copy of ``slot`` on ``bad_node_id`` failed its
        checksum (already counted detected): rewrite it from a clean
        live replica, or poison the slot when none exists.  Returns
        ``"repaired"``, ``"poisoned"``, or ``"unresolved"``."""
        cluster = self.cluster
        health = cluster.health
        clean_id = None
        corrupt_others = []
        for node_id in cluster.holders_of(slot):
            if node_id == bad_node_id:
                continue
            if health is not None and not health.is_readable(node_id):
                continue
            node = cluster.nodes[node_id]
            if not node.remote.holds(slot):
                continue
            if node.remote.checksums.is_clean(slot, now_us):
                clean_id = node_id
                break
            corrupt_others.append(node_id)
        if clean_id is None:
            # Every examined live copy is corrupt too — those ledger
            # verdicts are detections in their own right.
            for other in corrupt_others:
                node = cluster.nodes[other]
                self.note_detected(
                    now_us, slot, other,
                    since=node.remote.checksums.corrupt_since(slot),
                    source="resolve",
                )
            self.poison(slot, now_us, condemned=1 + len(corrupt_others))
            return "poisoned"
        page = self.swap_space.page_at(slot)
        if page is None:
            # The slot was freed under us; nothing left to repair.
            self.note_unresolved(1)
            return "unresolved"
        pid, vpn = page
        source = cluster.nodes[clean_id]
        bad = cluster.nodes[bad_node_id]
        try:
            read_done = source.fabric.read_page(now_us)
            source.remote.read(slot, now_us=now_us)
            self.repair_reads += 1
            bad.fabric.write_page(read_done)
            # The rewrite restores the checksum via the node's own
            # write path (and re-draws its corruption coins — a repair
            # write can itself land bad, to be caught next pass).
            bad.remote.write(slot, pid, vpn, now_us=read_done)
            self.repair_writes += 1
        except TransferTimeout:
            self.note_unresolved(1)
            return "unresolved"
        self.note_repaired(1, now_us, slot, bad_node_id)
        return "repaired"

    # -- export -------------------------------------------------------------------------

    def injected_totals(self) -> dict:
        """Injector-side corruption counts summed over the cluster."""
        bit_flips = 0
        media_errors = 0
        for node in self.cluster.nodes:
            if node.injector is not None:
                bit_flips += node.injector.bit_flips_injected
                media_errors += node.injector.media_errors_injected
        return {
            "bit_flips_injected": bit_flips,
            "media_errors_injected": media_errors,
        }

    def section(self) -> dict:
        """The ``RunResult.integrity`` section (always every key, so
        the round trip is trivial and dashboards see stable shapes)."""
        count = self._latency_count
        out = {
            "corruption_detected": self.corruption_detected,
            "corruption_repaired": self.corruption_repaired,
            "corruption_unresolved": self.corruption_unresolved,
            "poisoned_copies": self.poisoned_copies,
            "pages_poisoned": self.pages_poisoned,
            "poisoned_reads": self.poisoned_reads,
            "promotions_barred": self.promotions_barred,
            "scrub_reads": self.scrub_reads,
            "scrub_detected": self.scrub_detected,
            "repair_reads": self.repair_reads,
            "repair_writes": self.repair_writes,
            "detect_latency_us": {
                "count": count,
                "mean": self._latency_sum_us / count if count else 0.0,
                "max": self._latency_max_us,
            },
        }
        out.update(self.injected_totals())
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"IntegrityController(detected={self.corruption_detected}, "
            f"repaired={self.corruption_repaired}, "
            f"poisoned={self.pages_poisoned})"
        )


class PatrolScrubber:
    """Background checksum audit over the slot directory.

    One ``step`` verifies one stored copy: a modeled READ on the
    holder's link plus a ledger check.  The walk is a deterministic
    round-robin cursor over the sorted (slot, holder) pairs, skipping
    lost/poisoned slots and unreadable nodes, so scrub order is a pure
    function of directory state."""

    def __init__(
        self,
        cluster: "RemoteMemoryCluster",
        controller: IntegrityController,
        config: ScrubConfig,
    ) -> None:
        self.cluster = cluster
        self.controller = controller
        self.config = config
        self.interval_us = 1_000_000.0 / config.rate_pages_per_s
        self._next_scrub_us = 0.0
        self._cursor = 0

    def due(self, now_us: float) -> bool:
        return now_us >= self._next_scrub_us

    def step(self, now_us: float) -> None:
        """Audit the next stored copy, if any copy is auditable."""
        self._next_scrub_us = now_us + self.interval_us
        cluster = self.cluster
        pairs = []
        for slot in sorted(cluster.slots_in_directory()):
            if cluster.is_lost(slot) or cluster.is_poisoned(slot):
                continue
            for node_id in cluster.holders_of(slot):
                pairs.append((slot, node_id))
        if not pairs:
            return
        health = cluster.health
        total = len(pairs)
        for probe in range(total):
            index = (self._cursor + probe) % total
            slot, node_id = pairs[index]
            if health is not None and not health.is_readable(node_id):
                continue
            node = cluster.nodes[node_id]
            if not node.remote.holds(slot):
                continue
            self._cursor = index + 1
            self._verify(slot, node, now_us)
            return
        self._cursor = 0

    def _verify(self, slot, node, now_us: float) -> None:
        """Pay the audit READ, then check wire and stored integrity."""
        controller = self.controller
        try:
            node.fabric.read_page(now_us)
            node.remote.read(slot, now_us=now_us)
        except TransferTimeout:
            return  # hostile window; the patrol just moves on
        controller.scrub_reads += 1
        if controller.bus is not None:
            controller.bus.emit(EV_SCRUB, now_us, slot=slot, node=node.node_id)
        injector = node.injector
        wire_flip = injector is not None and injector.corrupt_read(now_us)
        checksums = node.remote.checksums
        if not checksums.is_clean(slot, now_us):
            controller.scrub_detected += 1
            controller.note_detected(
                now_us, slot, node.node_id,
                since=checksums.corrupt_since(slot), source="scrub",
            )
            controller.resolve_stored_corruption(slot, node.node_id, now_us)
        elif wire_flip:
            # Transient flip on the audit payload: the stored copy is
            # fine, a (free, metadata-level) re-check clears it.
            controller.note_detected(now_us, slot, node.node_id, source="scrub")
            controller.note_repaired(1, now_us, slot, node.node_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PatrolScrubber(rate={self.config.rate_pages_per_s}/s, "
            f"cursor={self._cursor})"
        )
