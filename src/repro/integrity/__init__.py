"""End-to-end data integrity: silent-corruption detection and repair.

The chaos framework models *loud* failures (drops, flaps, crashes);
this package models the *silent* ones — bit flips on RDMA payloads and
latent media errors in the pooled tier — and the machinery that keeps
them from reaching the application:

* :class:`SlotChecksums` — per-slot content-generation checksum ledger
  on every remote node (:mod:`repro.integrity.checksum`);
* :class:`IntegrityController` — the shared detect→repair→poison
  decision point and its counters (:mod:`repro.integrity.scrub`);
* :class:`PatrolScrubber` — background checksum audits riding the
  repair engine's rate limiter;
* :class:`PageCorruptError` — the typed all-copies-corrupt outcome,
  resolved by CXL-style poisoning plus zero-fill.
"""

from repro.integrity.checksum import PageCorruptError, SlotChecksums
from repro.integrity.scrub import (
    IntegrityController,
    PatrolScrubber,
    ScrubConfig,
)

__all__ = [
    "IntegrityController",
    "PageCorruptError",
    "PatrolScrubber",
    "ScrubConfig",
    "SlotChecksums",
]
