"""Per-slot content-generation checksums.

A real disaggregated-memory node would store a checksum next to every
page and verify it on READ; the simulator never materializes page
*contents*, so the ledger tracks the only thing that matters — whether
the stored copy still matches what was written.  A copy goes bad in
exactly two ways (:mod:`repro.net.faults`):

* a ``bit_flip_write`` coin landed at write time (bad immediately);
* a ``media_error_rate`` coin scheduled a latent strike — the copy is
  clean until its deterministic strike time, then silently rots.  The
  window between strike and the next demand read is what the patrol
  scrubber (:mod:`repro.integrity.scrub`) exists to shrink.

Wire flips on READ payloads (``bit_flip_read``) are transient and never
touch the ledger: the stored copy is fine and a re-read comes back
clean.

The ledger is pure bookkeeping — no RNG of its own, no new counters on
any pinned snapshot — so keeping it on every node unconditionally
leaves corruption-free runs byte-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.net.faults import FaultInjector


class PageCorruptError(RuntimeError):
    """Every copy of a page failed checksum verification.

    The CXL-style analogue of :class:`~repro.cluster.cluster.PageLostError`:
    the data still *exists* but is known-bad, so ``Machine`` resolves the
    fault by poisoning the slot and mapping a zero-filled frame, counted
    separately from loss (``poisoned_reads``, not ``pages_zero_filled``
    alone)."""

    def __init__(
        self, pid: int, vpn: int, slot: int, waited_us: float = 0.0
    ) -> None:
        super().__init__(
            f"page (pid={pid}, vpn={vpn}) corrupt: slot {slot} has no "
            f"clean replica"
        )
        self.pid = pid
        self.vpn = vpn
        self.slot = slot
        #: Latency already paid by the faulting access while it tried
        #: (and failed) to find a clean copy.
        self.waited_us = waited_us


class SlotChecksums:
    """Stored-copy integrity ledger for one :class:`RemoteMemoryNode`.

    Tracks only the *deviant* slots (corrupt now, or scheduled to rot);
    everything else is clean by construction, so the common case costs
    two dict misses per verify."""

    def __init__(self, injector: Optional["FaultInjector"] = None) -> None:
        self.injector = injector
        #: slot -> time the stored copy went bad (write time for write
        #: flips, strike time for media errors) — detection-latency input.
        self._bad: Dict[int, float] = {}
        #: slot -> pending latent strike time (clean until then).
        self._strike_us: Dict[int, float] = {}

    def record_write(
        self, slot: int, now_us: Optional[float], write_index: int
    ) -> None:
        """A fresh copy landed at ``slot``: previous state is gone, and
        the injector's coins decide whether this one is (or will go)
        bad.  ``write_index`` is the node's monotone write counter, so
        the media-strike draw is a pure function of (seed, slot, write)."""
        t = now_us if now_us is not None else 0.0
        self._bad.pop(slot, None)
        self._strike_us.pop(slot, None)
        injector = self.injector
        if injector is None:
            return
        if injector.corrupt_write(t):
            self._bad[slot] = t
            return
        strike = injector.media_strike_us(slot, write_index, t)
        if strike is not None:
            self._strike_us[slot] = strike

    def is_clean(self, slot: int, now_us: float) -> bool:
        """Does the stored copy still match its checksum at ``now_us``?
        Latches any due media strike into the corrupt set first."""
        strike = self._strike_us.get(slot)
        if strike is not None and now_us >= strike:
            del self._strike_us[slot]
            self._bad[slot] = strike
        return slot not in self._bad

    def corrupt_since(self, slot: int) -> Optional[float]:
        """When the stored copy went bad (None if it is clean)."""
        return self._bad.get(slot)

    def drop(self, slot: int) -> None:
        """The copy left the store (release / migrate-out)."""
        self._bad.pop(slot, None)
        self._strike_us.pop(slot, None)

    def clear(self) -> None:
        """The node crashed: every stored copy (and its rot schedule)
        died with it."""
        self._bad.clear()
        self._strike_us.clear()

    def tracked_slots(self) -> Tuple[int, ...]:
        """Every slot with deviant ledger state — the sanitizer checks
        these never outlive their stored copy."""
        return tuple(set(self._bad) | set(self._strike_us))
