"""Analytical hardware cost model — Section VI-F substitute for CACTI.

The paper verifies feasibility with Verilog + CACTI 3.0 at a 22 nm node
and reports, for the HPD table, an area of 0.000252 mm^2 and 0.0959 mW of
static power, and for the 64 KB RPT cache 0.0673 mm^2 and 21.4 mW.  CACTI
is not available offline, so this module reproduces those estimates with
a first-order SRAM model: area and leakage scale linearly with bit count,
with a fixed per-structure overhead for decoders/comparators.  The
constants are calibrated so the paper's two reported design points are
matched exactly; other geometries (used by the ablation benches) then
interpolate on the same line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.constants import (
    HPD_SETS,
    HPD_WAYS,
    RPT_CACHE_KB,
    RPT_ENTRY_BYTES,
)

#: HPD entry width in bits (Figure 5): PPN tag (~36 b for a 48-bit
#: physical space), 6-bit access counter, send bit, LRU state (~4 b).
HPD_ENTRY_BITS = 36 + 6 + 1 + 4

#: RPT cache line width: 64-bit entry (Figure 6) + PPN tag + valid/dirty.
RPT_LINE_BITS = 64 + 36 + 2


@dataclass(frozen=True)
class SramEstimate:
    bits: int
    area_mm2: float
    static_power_mw: float


class SramModel:
    """Linear bit-count model calibrated on the paper's CACTI points."""

    def __init__(self) -> None:
        hpd_bits = HPD_SETS * HPD_WAYS * HPD_ENTRY_BITS
        rpt_lines = (RPT_CACHE_KB * 1024) // RPT_ENTRY_BYTES
        rpt_bits = rpt_lines * RPT_LINE_BITS
        # Solve area = a * bits + b through the two published points.
        self._area_slope = (0.0673 - 0.000252) / (rpt_bits - hpd_bits)
        self._area_intercept = 0.000252 - self._area_slope * hpd_bits
        self._power_slope = (21.4 - 0.0959) / (rpt_bits - hpd_bits)
        self._power_intercept = 0.0959 - self._power_slope * hpd_bits

    def estimate(self, bits: int) -> SramEstimate:
        if bits < 0:
            raise ValueError("bits must be non-negative")
        return SramEstimate(
            bits=bits,
            area_mm2=self._area_slope * bits + self._area_intercept,
            static_power_mw=self._power_slope * bits + self._power_intercept,
        )

    # -- the two structures the paper sizes ------------------------------------------

    def hpd_table(self, nsets: int = HPD_SETS, nways: int = HPD_WAYS) -> SramEstimate:
        return self.estimate(nsets * nways * HPD_ENTRY_BITS)

    def rpt_cache(self, size_kb: int = RPT_CACHE_KB) -> SramEstimate:
        lines = (size_kb * 1024) // RPT_ENTRY_BYTES
        return self.estimate(lines * RPT_LINE_BITS)
