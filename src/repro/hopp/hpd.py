"""Hot Page Detection (HPD) — Section III-B.

A small table in the memory controller that converts cacheline-granular
LLC READ misses into a stream of hot physical pages.  Organized as a
16-way, 4-set associative cache with LRU replacement (M = 64 tracked
pages); the lowest 2 bits of the PPN pick the set.  Each entry records
the PPN, the READ-access count, and a *send bit* marking that the page
was already extracted (further accesses are dropped until eviction).

WRITEs are ignored (Section III-B): a write miss first appears as a READ,
and RDMA-fetched pages arrive via DMA writes that would pollute the trace.
"""

from __future__ import annotations

from typing import Optional

from repro.common.assoc import SetAssociativeTable
from repro.common.compat import slotted_dataclass
from repro.common.constants import (
    BLOCK_SIZE,
    BLOCKS_PER_PAGE,
    HOT_PAGE_RECORD_BYTES,
    HPD_SETS,
    HPD_THRESHOLD,
    HPD_WAYS,
    PAGE_SHIFT,
)


@slotted_dataclass()
class HpdEntry:
    """One HPD table row (Figure 5; the LRU bit lives in the table)."""

    count: int = 0
    sent: bool = False


class HotPageDetector:
    """Feed MC READ misses in; hot PPNs come out.

    ``process`` takes a physical byte address and returns the PPN if this
    access crossed the hot threshold, else None.
    """

    def __init__(
        self,
        threshold: int = HPD_THRESHOLD,
        nsets: int = HPD_SETS,
        nways: int = HPD_WAYS,
    ) -> None:
        if not 1 <= threshold <= BLOCKS_PER_PAGE:
            raise ValueError(
                f"threshold must be in [1, {BLOCKS_PER_PAGE}] (cachelines/page)"
            )
        self.threshold = threshold
        self._table: SetAssociativeTable[HpdEntry] = SetAssociativeTable(nsets, nways)
        self.accesses = 0
        self.writes_ignored = 0
        self.dropped_after_send = 0
        self.hot_pages = 0
        self.repeated_detections = 0
        self._ever_sent: set = set()

    def process(self, paddr: int, is_write: bool = False) -> Optional[int]:
        """One MC access.  Returns the hot PPN when extraction fires.

        This runs once per MC READ — the hottest call in a HoPP run — so
        the table probe is inlined against the set dict (HPD owns its
        table and uses the default ``ppn % nsets`` mapping); the stat
        and LRU updates repeat ``SetAssociativeTable.lookup``/``insert``
        exactly.
        """
        if is_write:
            self.writes_ignored += 1
            return None
        self.accesses += 1
        ppn = paddr >> PAGE_SHIFT
        table = self._table
        target = table._sets[ppn % table.nsets]
        entry = target.get(ppn)
        if entry is None:
            table.misses += 1
            entry = HpdEntry(count=1, sent=False)
            if len(target) >= table.nways:
                target.popitem(last=False)
                table.evictions += 1
            target[ppn] = entry
            if self.threshold == 1:
                return self._extract(ppn, entry)
            return None
        table.hits += 1
        target.move_to_end(ppn)
        if entry.sent:
            self.dropped_after_send += 1
            return None
        entry.count += 1
        if entry.count >= self.threshold:
            return self._extract(ppn, entry)
        return None

    def process_run(self, ppn: int, reads: int) -> tuple:
        """Collapse ``reads`` consecutive READ accesses to one page into
        O(1) counter math.  Returns ``(reads_consumed, fired)``.

        The batch kernel segments the trace into same-page runs; within a
        run every access probes the same set and entry, so the per-access
        ``process`` bookkeeping telescopes: one probe, one ``move_to_end``,
        and integer bumps sized by the run.  When the hot threshold is
        crossed mid-run the method consumes only the reads up to and
        including the firing one (``fired`` True) — the caller re-enters
        with the remainder after the extraction pipeline has run, exactly
        as the per-access loop would have.
        """
        if reads <= 0:
            return 0, False
        table = self._table
        target = table._sets[ppn % table.nsets]
        entry = target.get(ppn)
        used = 0
        if entry is None:
            table.misses += 1
            entry = HpdEntry(count=1, sent=False)
            if len(target) >= table.nways:
                target.popitem(last=False)
                table.evictions += 1
            target[ppn] = entry
            self.accesses += 1
            used = 1
            if self.threshold == 1:
                self._extract(ppn, entry)
                return 1, True
            if used == reads:
                return 1, False
        rest = reads - used
        target.move_to_end(ppn)
        if entry.sent:
            table.hits += rest
            self.accesses += rest
            self.dropped_after_send += rest
            return reads, False
        need = self.threshold - entry.count
        if rest < need:
            table.hits += rest
            self.accesses += rest
            entry.count += rest
            return reads, False
        table.hits += need
        self.accesses += need
        entry.count += need
        self._extract(ppn, entry)
        return used + need, True

    def process_batch(self, paddrs, writes=None) -> tuple:
        """Feed a batch of MC accesses; stop at the first extraction.

        ``writes`` is a parallel is-write sequence (None means all
        reads).  Returns ``(consumed, hot_ppn)`` where ``consumed``
        counts the accesses processed — all of them when no page went
        hot (``hot_ppn`` None), else up to and including the firing
        access.  Equivalent to calling :meth:`process` per access and
        stopping at the first non-None result.
        """
        process = self.process
        if writes is None:
            for idx, paddr in enumerate(paddrs):
                hot = process(paddr, False)
                if hot is not None:
                    return idx + 1, hot
        else:
            for idx, paddr in enumerate(paddrs):
                hot = process(paddr, writes[idx])
                if hot is not None:
                    return idx + 1, hot
        return len(paddrs), None

    def _extract(self, ppn: int, entry: Optional[HpdEntry]) -> int:
        if entry is not None:
            entry.sent = True
        self.hot_pages += 1
        if ppn in self._ever_sent:
            # The page was extracted, evicted from the table, and became
            # hot again — the "repeated detection" of Figure 5.
            self.repeated_detections += 1
        else:
            self._ever_sent.add(ppn)
        return ppn

    # -- statistics (Table II / Table V) ---------------------------------------

    @property
    def hot_page_ratio(self) -> float:
        """Hot pages extracted per MC READ access (Table II)."""
        return self.hot_pages / self.accesses if self.accesses else 0.0

    @property
    def bandwidth_overhead(self) -> float:
        """Extra DRAM bandwidth for writing hot-page records, as a
        fraction of the application's MC bandwidth (Table V, HPD row)."""
        app_bytes = self.accesses * BLOCK_SIZE
        hot_bytes = self.hot_pages * HOT_PAGE_RECORD_BYTES
        return hot_bytes / app_bytes if app_bytes else 0.0

    @property
    def tracked_pages(self) -> int:
        return len(self._table)

    def reset_stats(self) -> None:
        self.accesses = 0
        self.writes_ignored = 0
        self.dropped_after_send = 0
        self.hot_pages = 0
        self.repeated_detections = 0
        self._ever_sent.clear()
        self._table.reset_stats()


class MultiChannelHpd:
    """Per-channel hot page detection — Section III-B's multi-channel
    discussion made concrete.

    With channel interleaving, consecutive cachelines of one page land
    on different controllers, so each channel's HPD only sees
    ``1/channels`` of the page's accesses: the threshold must drop
    proportionally ("we need to reduce N").  That makes *repeated*
    extractions of the same page from different channels likely; the
    training framework de-duplicates them (the STT drops same-VPN
    repeats).  Without interleaving, whole pages map to one channel and
    each HPD runs at the full threshold; the shared training framework
    merges the channels' outputs for free.
    """

    def __init__(
        self,
        channels: int = 2,
        threshold: int = HPD_THRESHOLD,
        interleaved: bool = True,
        nsets: int = HPD_SETS,
        nways: int = HPD_WAYS,
    ) -> None:
        if channels < 1:
            raise ValueError("channels must be >= 1")
        self.channels = channels
        self.interleaved = interleaved
        per_channel = (
            max(1, threshold // channels) if interleaved else threshold
        )
        self.per_channel_threshold = per_channel
        self._detectors = [
            HotPageDetector(per_channel, nsets, nways) for _ in range(channels)
        ]

    def channel_of(self, paddr: int) -> int:
        if self.interleaved:
            return (paddr >> 6) % self.channels
        return (paddr >> PAGE_SHIFT) % self.channels

    def process(self, paddr: int, is_write: bool = False) -> Optional[int]:
        return self._detectors[self.channel_of(paddr)].process(paddr, is_write)

    def process_batch(self, paddrs, writes=None) -> tuple:
        """Batch interface for the chunked kernel (HMTT drains bursts,
        not single events).  Routes each access to its channel's
        detector and stops at the first extraction; returns
        ``(consumed, hot_ppn)`` with the same contract as
        :meth:`HotPageDetector.process_batch`.
        """
        detectors = self._detectors
        channel_of = self.channel_of
        if writes is None:
            for idx, paddr in enumerate(paddrs):
                hot = detectors[channel_of(paddr)].process(paddr, False)
                if hot is not None:
                    return idx + 1, hot
        else:
            for idx, paddr in enumerate(paddrs):
                hot = detectors[channel_of(paddr)].process(paddr, writes[idx])
                if hot is not None:
                    return idx + 1, hot
        return len(paddrs), None

    # -- aggregated statistics --------------------------------------------------

    @property
    def accesses(self) -> int:
        return sum(d.accesses for d in self._detectors)

    @property
    def hot_pages(self) -> int:
        return sum(d.hot_pages for d in self._detectors)

    @property
    def hot_page_ratio(self) -> float:
        return self.hot_pages / self.accesses if self.accesses else 0.0

    @property
    def bandwidth_overhead(self) -> float:
        app_bytes = self.accesses * BLOCK_SIZE
        hot_bytes = self.hot_pages * HOT_PAGE_RECORD_BYTES
        return hot_bytes / app_bytes if app_bytes else 0.0

    @property
    def detectors(self):
        return list(self._detectors)
