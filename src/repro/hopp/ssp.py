"""Simple-Stream-based Prefetch (SSP) — Section III-D(2).

A stride is *dominant* when it occurs at least L/2 times in the stream's
stride history; the prefetch target is ``VPN_history[L-1] + i * stride``
where ``i`` is the policy engine's prefetch offset.
"""

from __future__ import annotations

from typing import Optional

from repro.common.types import PrefetchDecision, StreamObservation

TIER_NAME = "ssp"


def dominant_stride(strides, min_count: int) -> Optional[int]:
    """The most frequent stride if it reaches ``min_count``, else None.

    Zero strides never dominate: a self-stride carries no direction.
    Ties go to the stride seen first, matching ``Counter.most_common``
    (insertion-ordered counts, stable selection) — this runs once per
    stream observation, so it is hand-rolled instead of building a
    Counter per call.
    """
    counts: dict = {}
    for s in strides:
        if s != 0:
            counts[s] = counts.get(s, 0) + 1
    best = None
    best_count = 0
    for s, c in counts.items():
        if c > best_count:
            best = s
            best_count = c
    return best if best_count >= min_count else None


def train(observation: StreamObservation) -> Optional[PrefetchDecision]:
    """Identify a simple stream; None hands over to LSP."""
    history_len = len(observation.vpn_history)
    stride = dominant_stride(observation.stride_history, min_count=history_len // 2)
    if stride is None:
        return None
    return PrefetchDecision(
        tier=TIER_NAME,
        base_vpn=observation.vpn_history[-1],
        per_offset_stride=stride,
    )
