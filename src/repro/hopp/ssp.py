"""Simple-Stream-based Prefetch (SSP) — Section III-D(2).

A stride is *dominant* when it occurs at least L/2 times in the stream's
stride history; the prefetch target is ``VPN_history[L-1] + i * stride``
where ``i`` is the policy engine's prefetch offset.
"""

from __future__ import annotations

from typing import Optional

from repro.common.types import PrefetchDecision, StreamObservation

TIER_NAME = "ssp"


def dominant_stride(strides, min_count: int) -> Optional[int]:
    """The most frequent stride if it reaches ``min_count``, else None.

    Zero strides never dominate: a self-stride carries no direction.
    Ties go to the stride seen first, matching ``Counter.most_common``
    (insertion-ordered counts, stable selection) — this runs once per
    stream observation, so it is hand-rolled instead of building a
    Counter per call.
    """
    counts: dict = {}
    for s in strides:
        if s != 0:
            counts[s] = counts.get(s, 0) + 1
    best = None
    best_count = 0
    for s, c in counts.items():
        if c > best_count:
            best = s
            best_count = c
    return best if best_count >= min_count else None


def dominant_stride_from_counts(counts, strides, min_count: int) -> Optional[int]:
    """``dominant_stride`` on a precomputed non-zero-stride histogram.

    Picks the same winner: the stride with the highest count, ties going
    to the one seen first in ``strides`` (the histogram's insertion
    order is re-insertion order, not first-occurrence order, so ties
    re-scan the window — the rare path).
    """
    best_count = 0
    for c in counts.values():
        if c > best_count:
            best_count = c
    if best_count < min_count:
        return None
    tied = [s for s, c in counts.items() if c == best_count]
    if len(tied) == 1:
        return tied[0]
    tied_set = set(tied)
    for s in strides:
        if s in tied_set:
            return s
    return None  # pragma: no cover - tied strides always appear in strides


def train(observation: StreamObservation) -> Optional[PrefetchDecision]:
    """Identify a simple stream; None hands over to LSP."""
    history_len = len(observation.vpn_history)
    counts = observation.stride_counts
    if counts is None:
        stride = dominant_stride(
            observation.stride_history, min_count=history_len // 2
        )
    else:
        stride = dominant_stride_from_counts(
            counts, observation.stride_history, min_count=history_len // 2
        )
    if stride is None:
        return None
    return PrefetchDecision(
        tier=TIER_NAME,
        base_vpn=observation.vpn_history[-1],
        per_offset_stride=stride,
    )
