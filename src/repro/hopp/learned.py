"""An online learned prefetcher — the Section III-D alternative.

"Our proposal is just one solution in a large design space, advanced
solutions like machine learning-based ones [58] can also be enabled by
full trace."

:class:`LearnedStridePredictor` is a compact online model in the spirit
of table-based neural/Markov prefetchers (Shi et al. [58], Joseph &
Grunwald [25]): an order-``context_len`` stride-context table with
exponentially decayed counts, trained continuously on the STT's stream
observations and queried for the most probable next stride.  It plugs
into the same trainer slot as the three-tier cascade, so the two
designs are directly comparable (``hopp-learned`` vs ``hopp``).

It generalizes SSP (constant-stride contexts predict the constant) and
LSP (ladder stride patterns are exactly recurring contexts), but it
must *learn* each pattern instance instead of recognizing the shape
analytically — the trade the paper's hand-built tiers avoid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.common.types import PrefetchDecision, StreamObservation

TIER_NAME = "learned"


@dataclass
class _ContextStats:
    counts: Dict[int, float] = field(default_factory=dict)
    total: float = 0.0

    def update(self, stride: int, decay: float) -> None:
        for key in list(self.counts):
            self.counts[key] *= decay
        self.total *= decay
        self.counts[stride] = self.counts.get(stride, 0.0) + 1.0
        self.total += 1.0
        # Prune vanishing entries so the table stays compact.
        for key in [k for k, v in self.counts.items() if v < 0.01]:
            del self.counts[key]

    def best(self) -> Optional[Tuple[int, float]]:
        if not self.counts or self.total <= 0.0:
            return None
        stride, weight = max(self.counts.items(), key=lambda item: item[1])
        return stride, weight / self.total


class LearnedStridePredictor:
    """Order-N stride-context model with confidence gating.

    ``context_len``      strides of history forming the context key.
    ``confidence``       minimum probability mass the predicted stride
                         must hold before a prefetch is issued (the
                         accuracy/coverage dial).
    ``decay``            per-update exponential decay, so the model
                         tracks phase changes.
    ``max_contexts``     table capacity; coldest contexts are evicted.
    """

    def __init__(
        self,
        context_len: int = 2,
        confidence: float = 0.55,
        decay: float = 0.98,
        max_contexts: int = 4096,
    ) -> None:
        if context_len < 1:
            raise ValueError("context_len must be >= 1")
        if not 0.0 < confidence <= 1.0:
            raise ValueError("confidence must be in (0, 1]")
        self.context_len = context_len
        self.confidence = confidence
        self.decay = decay
        self.max_contexts = max_contexts
        self._table: Dict[Tuple[int, ...], _ContextStats] = {}
        self.updates = 0
        self.predictions = 0
        self.abstentions = 0

    # -- online training + inference -----------------------------------------

    def train(self, observation: StreamObservation) -> Optional[PrefetchDecision]:
        """Update the model with the newest transition, then predict."""
        strides = observation.stride_history
        if len(strides) < self.context_len + 1:
            return None
        # Learn every (context -> next stride) transition in the window
        # that ends at the newest stride; older ones were learned when
        # they were newest, so only the latest transition is new.
        context = tuple(strides[-self.context_len - 1 : -1])
        self._learn(context, strides[-1])
        # Predict from the context ending at the newest stride.
        query = tuple(strides[-self.context_len :])
        stats = self._table.get(query)
        prediction = stats.best() if stats is not None else None
        if prediction is None:
            self.abstentions += 1
            return None
        stride, probability = prediction
        if probability < self.confidence or stride == 0:
            self.abstentions += 1
            return None
        self.predictions += 1
        return PrefetchDecision(
            tier=TIER_NAME,
            base_vpn=observation.vpn_history[-1],
            per_offset_stride=stride,
        )

    def _learn(self, context: Tuple[int, ...], next_stride: int) -> None:
        self.updates += 1
        stats = self._table.get(context)
        if stats is None:
            if len(self._table) >= self.max_contexts:
                coldest = min(self._table.items(), key=lambda item: item[1].total)
                del self._table[coldest[0]]
            stats = _ContextStats()
            self._table[context] = stats
        stats.update(next_stride, self.decay)

    @property
    def table_size(self) -> int:
        return len(self._table)


class LearnedTrainer:
    """Adapter exposing the three-tier trainer's interface."""

    def __init__(self, predictor: Optional[LearnedStridePredictor] = None) -> None:
        self.predictor = predictor or LearnedStridePredictor()
        self.decisions_by_tier: Dict[str, int] = {TIER_NAME: 0}
        self.no_decision = 0

    def train(self, observation: StreamObservation) -> Optional[PrefetchDecision]:
        decision = self.predictor.train(observation)
        if decision is None:
            self.no_decision += 1
        else:
            self.decisions_by_tier[TIER_NAME] += 1
        return decision
