"""Huge-page batch prefetching — the Section IV extension.

Kernel-based paging swaps 4 KB pages; swapping a 2 MB page takes >1 ms
on the critical path, so remote huge pages are undesirable.  Section IV
sketches HoPP's alternative: *"when HoPP detects the page stream is
long enough, it can choose to swap 512 consecutive future pages with
one prefetch request to the reserved 2 MB space."*

:class:`HugePageBatcher` implements that: it watches SSP decisions per
stream, and once a stream has sustained a unit stride long enough, it
emits one aligned 512-page batch request ahead of the stream instead of
dribbling single-page prefetches.  The batch rides a single RDMA
request (one propagation delay, back-to-back page service), and every
page's PTE is injected on arrival.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Protocol, Set, Tuple

#: Pages per 2 MB huge-page region.
HUGE_BATCH_PAGES = 512


class BatchBackend(Protocol):
    def prefetch_batch(
        self, pid: int, start_vpn: int, npages: int, now_us: float,
        inject_pte: bool, tier: str,
    ) -> Optional[float]:
        ...


@dataclass
class StreamProgress:
    consecutive_unit: int = 0
    last_vpn: int = -1
    #: Aligned region base the stream last attempted batches from; a
    #: fresh attempt happens once per region the stream head enters.
    attempted_from: Optional[int] = None
    #: Whether the last attempt actually put a batch in flight.
    covered: bool = False


class HugePageBatcher:
    """Decides when a stream graduates to 2 MB batch prefetching.

    ``stream_len`` — consecutive unit-stride SSP decisions a stream must
    sustain before batching starts (the "long enough" test).
    ``batch_pages`` — pages per request, aligned to its own size (the
    reserved huge-page space is 2 MB-aligned).
    """

    TIER = "huge"

    def __init__(
        self,
        backend: BatchBackend,
        stream_len: int = 128,
        batch_pages: int = HUGE_BATCH_PAGES,
        lead_batches: int = 1,
    ) -> None:
        if stream_len < 1:
            raise ValueError("stream_len must be >= 1")
        if batch_pages < 1:
            raise ValueError("batch_pages must be >= 1")
        self.backend = backend
        self.stream_len = stream_len
        self.batch_pages = batch_pages
        self.lead_batches = lead_batches
        self._progress: Dict[int, StreamProgress] = {}
        self.batches_issued = 0
        self.pages_batched = 0

    def observe(
        self, stream_id: int, pid: int, vpn: int, stride: int, now_us: float
    ) -> bool:
        """Feed one trained stream step; returns True when this step was
        absorbed by batch prefetching (single-page prefetch skipped)."""
        progress = self._progress.get(stream_id)
        if progress is None:
            progress = StreamProgress()
            self._progress[stream_id] = progress
        if abs(stride) == 1 and (
            progress.last_vpn < 0 or abs(vpn - progress.last_vpn) <= 2
        ):
            progress.consecutive_unit += 1
        else:
            progress.consecutive_unit = 0
        progress.last_vpn = vpn
        if progress.consecutive_unit < self.stream_len:
            return False
        direction = 1 if stride >= 0 else -1
        return self._issue_ahead(progress, pid, vpn, direction, now_us)

    def _issue_ahead(
        self,
        progress: StreamProgress,
        pid: int,
        vpn: int,
        direction: int,
        now_us: float,
    ) -> bool:
        """Request the next ``lead_batches`` aligned regions ahead, once
        per region the stream head enters.  Returns True when the space
        ahead is covered by an in-flight or already-local batch — only
        then may the single-page path be skipped."""
        current_region = (vpn // self.batch_pages) * self.batch_pages
        if progress.attempted_from == current_region:
            return progress.covered
        progress.attempted_from = current_region
        any_issued = False
        # Step 0 covers the remainder of the region the head is in (the
        # stream graduates mid-region); pages already local are filtered
        # out by the backend.
        for step in range(0, self.lead_batches + 1):
            start = current_region + direction * step * self.batch_pages
            if start < 0:
                continue
            arrival = self.backend.prefetch_batch(
                pid, start, self.batch_pages, now_us,
                inject_pte=True, tier=self.TIER,
            )
            if arrival is not None:
                any_issued = True
                self.batches_issued += 1
                self.pages_batched += self.batch_pages
        progress.covered = any_issued
        return any_issued

    def forget_stream(self, stream_id: int) -> None:
        self._progress.pop(stream_id, None)
