"""Prefetch Execution Engine — Section III-F.

Accepts finalized requests from the policy engine, de-duplicates them,
reads the pages from remote memory over RDMA, and *injects* the PTE the
moment a page arrives (early PTE injection) so the future access is a
plain DRAM hit instead of a 2.3 us prefetch-hit fault.

Because the MC trace tells HoPP which prefetched pages were actually
accessed, the engine can account true accuracy and per-stream timeliness
(T = first hit - arrival) even though injected pages never fault — the
flexibility Depth-N lacks (Section II-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Tuple

from repro.common.stats import Histogram
from repro.common.types import PrefetchRequest
from repro.hopp.policy import CircuitBreaker, PolicyEngine
from repro.telemetry.events import EV_PREFETCH_GATE, EV_TIMELINESS


class PrefetchBackend(Protocol):
    """What the execution engine needs from the machine: issue an RDMA
    read of (pid, vpn) with optional PTE injection on arrival.  Returns
    False when the page is not remote (already local or in flight)."""

    def prefetch_page(
        self, pid: int, vpn: int, now_us: float, inject_pte: bool, tier: str
    ) -> Optional[float]:
        ...


@dataclass
class PrefetchRecord:
    """Lifecycle of one prefetched page, keyed by (pid, vpn)."""

    tier: str
    stream_id: int
    issued_us: float
    arrival_us: float = -1.0
    hit: bool = False


class ExecutionEngine:
    def __init__(
        self,
        backend: PrefetchBackend,
        policy: Optional[PolicyEngine] = None,
        inject_pte: bool = True,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self.backend = backend
        self.policy = policy
        self.inject_pte = inject_pte
        #: Circuit breaker over the issue path (armed only under fault
        #: injection); outcomes are fed by the machine's drop/timeout
        #: callbacks through :meth:`on_fabric_drop`.
        self.breaker = breaker
        #: Outstanding + resident prefetched pages awaiting first hit.
        self._records: Dict[Tuple[int, int], PrefetchRecord] = {}
        self.issued = 0
        self.duplicates = 0
        self.rejected = 0
        self.hits = 0
        self.wasted = 0
        #: Requests dropped at the gate while the breaker was open.
        self.suppressed = 0
        #: Fabric-level drops (timeouts) observed on any prefetch path.
        self.fabric_dropped = 0
        self.hits_by_tier: Dict[str, int] = {}
        self.issued_by_tier: Dict[str, int] = {}
        self.timeliness = Histogram()
        self._drop_signal = False
        #: Telemetry event bus; None keeps the engine probe-free.  Wired
        #: by the data plane when the backend machine has telemetry.
        self.bus = None

    # -- issue path ------------------------------------------------------------------

    def submit(self, requests: List[PrefetchRequest], now_us: float) -> int:
        """Issue de-duplicated requests; returns how many went out."""
        sent = 0
        for request in requests:
            key = (request.pid, request.vpn)
            if key in self._records:
                self.duplicates += 1
                continue
            if self.breaker is not None and not self.breaker.allow(now_us):
                self.suppressed += 1
                if self.bus is not None:
                    self.bus.emit(EV_PREFETCH_GATE, now_us)
                continue
            self._drop_signal = False
            arrival = self.backend.prefetch_page(
                request.pid, request.vpn, now_us, self.inject_pte, request.tier
            )
            if arrival is None:
                # Either nothing to fetch (already local / in flight) or
                # a fabric drop; the machine reports drops synchronously
                # through on_fabric_drop, which sets the signal flag.
                if not self._drop_signal:
                    self.rejected += 1
                    if self.breaker is not None:
                        # No transfer happened, so the probe (if any)
                        # observed nothing — give it back.
                        self.breaker.refund_probe()
                continue
            if self.breaker is not None:
                self.breaker.record_success(now_us, arrival - now_us)
            self._records[key] = PrefetchRecord(
                tier=request.tier,
                stream_id=request.stream_id,
                issued_us=now_us,
                arrival_us=arrival,
            )
            self.issued += 1
            self.issued_by_tier[request.tier] = (
                self.issued_by_tier.get(request.tier, 0) + 1
            )
            sent += 1
        return sent

    # -- machine callbacks ----------------------------------------------------------------

    def on_arrival(self, pid: int, vpn: int, now_us: float) -> None:
        record = self._records.get((pid, vpn))
        if record is not None:
            record.arrival_us = now_us

    def on_first_hit(self, pid: int, vpn: int, now_us: float) -> None:
        """The application touched a prefetched page for the first time."""
        record = self._records.pop((pid, vpn), None)
        if record is None or record.hit:
            return
        record.hit = True
        self.hits += 1
        self.hits_by_tier[record.tier] = self.hits_by_tier.get(record.tier, 0) + 1
        if record.arrival_us >= 0:
            t_us = max(now_us - record.arrival_us, 0.0)
            self.timeliness.add(t_us)
            if self.bus is not None:
                self.bus.emit(EV_TIMELINESS, now_us, t_us=t_us, tier=record.tier)
            if self.policy is not None:
                self.policy.report_timeliness(
                    record.stream_id, t_us, record.issued_us, now_us
                )

    def on_evicted_unused(self, pid: int, vpn: int) -> None:
        """A prefetched page left local memory without ever being hit —
        an inaccurate prefetch that wasted bandwidth and DRAM."""
        if self._records.pop((pid, vpn), None) is not None:
            self.wasted += 1

    def on_fabric_drop(self, now_us: float) -> None:
        """The machine observed an injected fabric failure (a dropped
        prefetch, or a demand-read timeout): feed the breaker so issue
        throttles while the fabric is hostile."""
        self._drop_signal = True
        self.fabric_dropped += 1
        if self.breaker is not None:
            self.breaker.record_failure(now_us)

    # -- metrics ---------------------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        return len(self._records)

    @property
    def accuracy(self) -> float:
        """Hits / issued.  Pages still resident and unhit at read time
        count against accuracy, matching the paper's end-of-run metric."""
        return self.hits / self.issued if self.issued else 0.0

    def is_prefetched_unhit(self, pid: int, vpn: int) -> bool:
        return (pid, vpn) in self._records
