"""Prefetch Policy Engine — Section III-E.

Two knobs tune aggressiveness and timeliness per stream:

* **intensity** — pages prefetched per hot page received.  One page
  matches the stream's memory access rate; more than one compensates for
  a congested fabric.
* **offset** (``i``) — how far ahead along the identified pattern to
  prefetch.  HoPP measures T, the time a prefetched page sits in local
  memory before its first hit, and keeps it inside [T_min, T_max]:
  T < T_min means the page nearly arrived late, so prefetch further
  (i *= 1 + alpha); T > T_max wastes local memory, so prefetch closer
  (i *= 1 - alpha).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.constants import (
    POLICY_ALPHA,
    POLICY_DEFAULT_INTENSITY,
    POLICY_OFFSET_MAX,
    POLICY_T_MAX_US,
    POLICY_T_MIN_US,
)
from repro.common.types import PrefetchDecision, PrefetchRequest, StreamObservation


@dataclass
class PolicyConfig:
    intensity: int = POLICY_DEFAULT_INTENSITY
    alpha: float = POLICY_ALPHA
    initial_offset: float = 1.0
    offset_max: float = POLICY_OFFSET_MAX
    t_min_us: float = POLICY_T_MIN_US
    t_max_us: float = POLICY_T_MAX_US
    #: When False the offset never adapts (the fixed-offset arms of
    #: Figure 22).
    adaptive: bool = True


class PolicyEngine:
    """Finalizes *what* to fetch and *when* (how far ahead)."""

    def __init__(self, config: PolicyConfig = None) -> None:
        self.config = config or PolicyConfig()
        if self.config.intensity < 1:
            raise ValueError("intensity must be >= 1")
        #: Per-stream adaptive offset (float internally; applied rounded).
        self._offsets: Dict[int, float] = {}
        #: When each stream's offset was last adjusted: further reports
        #: only count once they reflect prefetches issued *after* the
        #: adjustment (the control loop's feedback delay).
        self._adjusted_at: Dict[int, float] = {}
        self.requests_out = 0
        self.offset_increases = 0
        self.offset_decreases = 0

    # -- request finalization -----------------------------------------------------

    def offset_of(self, stream_id: int) -> float:
        return self._offsets.get(stream_id, self.config.initial_offset)

    def finalize(
        self,
        decision: PrefetchDecision,
        observation: StreamObservation,
        now_us: float,
    ) -> List[PrefetchRequest]:
        """Apply offset + intensity to a tier decision.

        Emits ``intensity`` consecutive targets starting at the stream's
        current offset.  Targets with negative VPNs (streams walking down
        past zero) are dropped.
        """
        base_offset = max(1, round(self.offset_of(observation.stream_id)))
        requests: List[PrefetchRequest] = []
        for extra in range(self.config.intensity):
            vpn = decision.target_vpn(base_offset + extra)
            if vpn < 0:
                continue
            requests.append(
                PrefetchRequest(
                    pid=observation.pid,
                    vpn=vpn,
                    tier=decision.tier,
                    issued_at_us=now_us,
                    stream_id=observation.stream_id,
                )
            )
        self.requests_out += len(requests)
        return requests

    # -- timeliness feedback (from the execution engine) ----------------------------

    def report_timeliness(
        self,
        stream_id: int,
        t_us: float,
        issued_us: float = 0.0,
        now_us: Optional[float] = None,
    ) -> None:
        """Adjust the stream's offset from one measured T.

        An adjustment only takes effect for prefetches issued after the
        previous adjustment (``issued_us`` gate) — without this the ramp
        keeps multiplying before its own effect is observable and
        overshoots wildly past the end of the stream.
        """
        if not self.config.adaptive:
            return
        if issued_us < self._adjusted_at.get(stream_id, -1.0):
            return
        current = self.offset_of(stream_id)
        if t_us < self.config.t_min_us:
            current *= 1.0 + self.config.alpha
            self.offset_increases += 1
        elif t_us > self.config.t_max_us:
            current *= 1.0 - self.config.alpha
            self.offset_decreases += 1
        else:
            return
        self._offsets[stream_id] = min(max(current, 1.0), self.config.offset_max)
        self._adjusted_at[stream_id] = now_us if now_us is not None else issued_us

    def forget_stream(self, stream_id: int) -> None:
        self._offsets.pop(stream_id, None)
        self._adjusted_at.pop(stream_id, None)
