"""Prefetch Policy Engine — Section III-E.

Two knobs tune aggressiveness and timeliness per stream:

* **intensity** — pages prefetched per hot page received.  One page
  matches the stream's memory access rate; more than one compensates for
  a congested fabric.
* **offset** (``i``) — how far ahead along the identified pattern to
  prefetch.  HoPP measures T, the time a prefetched page sits in local
  memory before its first hit, and keeps it inside [T_min, T_max]:
  T < T_min means the page nearly arrived late, so prefetch further
  (i *= 1 + alpha); T > T_max wastes local memory, so prefetch closer
  (i *= 1 - alpha).

A third mechanism protects the fabric itself: the
:class:`CircuitBreaker` watches per-prefetch outcomes (drops, timeouts,
latency inflation) and suspends prefetch issue when the fabric turns
hostile, re-opening through a half-open probe phase after a cool-down —
demand faults keep their priority lane while speculative traffic backs
off.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.common.constants import (
    POLICY_ALPHA,
    POLICY_DEFAULT_INTENSITY,
    POLICY_OFFSET_MAX,
    POLICY_T_MAX_US,
    POLICY_T_MIN_US,
)
from repro.common.types import PrefetchDecision, PrefetchRequest, StreamObservation


@dataclass
class PolicyConfig:
    intensity: int = POLICY_DEFAULT_INTENSITY
    alpha: float = POLICY_ALPHA
    initial_offset: float = 1.0
    offset_max: float = POLICY_OFFSET_MAX
    t_min_us: float = POLICY_T_MIN_US
    t_max_us: float = POLICY_T_MAX_US
    #: When False the offset never adapts (the fixed-offset arms of
    #: Figure 22).
    adaptive: bool = True


@dataclass
class BreakerConfig:
    """Knobs of the prefetch circuit breaker.

    The breaker opens (suspends prefetch issue) when, over the last
    ``window`` recorded outcomes (with at least ``min_samples`` of
    them), the failure fraction reaches ``failure_threshold``.  A
    fetch that completes but takes longer than ``latency_threshold_us``
    counts as a failure too — that is how pure latency-degradation
    epochs (no drops) still trip the breaker.  After ``cooldown_us`` the
    breaker half-opens and lets ``probe_quota`` probes through: the
    first success closes it, a failure re-opens it.
    """

    enabled: bool = True
    window: int = 32
    min_samples: int = 8
    failure_threshold: float = 0.5
    latency_threshold_us: float = 200.0
    cooldown_us: float = 2_000.0
    probe_quota: int = 4

    def __post_init__(self) -> None:
        if self.window < 1 or self.min_samples < 1:
            raise ValueError("window and min_samples must be >= 1")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if self.cooldown_us <= 0 or self.probe_quota < 1:
            raise ValueError("cooldown_us must be > 0 and probe_quota >= 1")


class BreakerState:
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure-rate circuit breaker over the prefetch issue path."""

    def __init__(self, config: Optional[BreakerConfig] = None) -> None:
        self.config = config or BreakerConfig()
        self.state = BreakerState.CLOSED
        self._outcomes: Deque[bool] = deque(maxlen=self.config.window)
        self._opened_at_us = 0.0
        self._reopen_at_us = 0.0
        self._probes_left = 0
        self.opens = 0
        self.closes = 0
        self._degraded_total_us = 0.0

    # -- issue gate -------------------------------------------------------------------

    def allow(self, now_us: float) -> bool:
        """May this prefetch go out at ``now_us``?"""
        if self.state == BreakerState.CLOSED:
            return True
        if self.state == BreakerState.OPEN:
            if now_us < self._reopen_at_us:
                return False
            self.state = BreakerState.HALF_OPEN
            self._probes_left = self.config.probe_quota
        if self._probes_left > 0:
            self._probes_left -= 1
            return True
        return False

    # -- outcome feed -----------------------------------------------------------------

    def record_success(self, now_us: float, latency_us: Optional[float] = None) -> None:
        slow = (
            latency_us is not None
            and latency_us > self.config.latency_threshold_us
        )
        if self.state == BreakerState.HALF_OPEN:
            if slow:
                self._reopen(now_us)
            else:
                self._close(now_us)
            return
        self._record(now_us, ok=not slow)

    def record_failure(self, now_us: float) -> None:
        if self.state == BreakerState.HALF_OPEN:
            self._reopen(now_us)
            return
        self._record(now_us, ok=False)

    def refund_probe(self) -> None:
        """A granted probe produced no transfer at all (the backend had
        nothing to fetch).  That neither confirms nor refutes recovery,
        so return the slot — otherwise no-op probes exhaust the quota
        and the breaker wedges in HALF_OPEN forever."""
        if self.state == BreakerState.HALF_OPEN:
            self._probes_left += 1

    def trip(self, now_us: float, cooldown_us: Optional[float] = None) -> None:
        """Force the breaker OPEN regardless of the outcome window — the
        load-shedding entry point.  The scenario admission controller
        reuses the breaker as its per-tenant prefetch throttle: tripping
        suspends issue for ``cooldown_us`` (defaults to the configured
        cooldown), after which the normal half-open probe path decides
        recovery.  Tripping an already-OPEN breaker just extends the
        cooldown without counting another open."""
        hold = cooldown_us if cooldown_us is not None else self.config.cooldown_us
        if self.state == BreakerState.OPEN:
            self._reopen_at_us = max(self._reopen_at_us, now_us + hold)
            return
        self._open(now_us)
        self._reopen_at_us = now_us + hold

    # -- observability ----------------------------------------------------------------

    def time_degraded_us(self, now_us: float) -> float:
        """Total simulated time spent OPEN or HALF_OPEN so far."""
        total = self._degraded_total_us
        if self.state != BreakerState.CLOSED:
            total += max(now_us - self._opened_at_us, 0.0)
        return total

    @property
    def failure_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return sum(1 for ok in self._outcomes if not ok) / len(self._outcomes)

    # -- transitions ------------------------------------------------------------------

    def _record(self, now_us: float, ok: bool) -> None:
        if self.state != BreakerState.CLOSED:
            return
        self._outcomes.append(ok)
        if (
            len(self._outcomes) >= self.config.min_samples
            and self.failure_rate >= self.config.failure_threshold
        ):
            self._open(now_us)

    def _open(self, now_us: float) -> None:
        self.state = BreakerState.OPEN
        self.opens += 1
        self._opened_at_us = now_us
        self._reopen_at_us = now_us + self.config.cooldown_us
        self._outcomes.clear()

    def _reopen(self, now_us: float) -> None:
        """A half-open probe failed: back to OPEN, degraded span continues."""
        self.state = BreakerState.OPEN
        self.opens += 1
        self._reopen_at_us = now_us + self.config.cooldown_us
        self._probes_left = 0

    def _close(self, now_us: float) -> None:
        self._degraded_total_us += max(now_us - self._opened_at_us, 0.0)
        self.state = BreakerState.CLOSED
        self.closes += 1
        self._outcomes.clear()
        self._probes_left = 0


class PolicyEngine:
    """Finalizes *what* to fetch and *when* (how far ahead)."""

    def __init__(self, config: PolicyConfig = None) -> None:
        self.config = config or PolicyConfig()
        if self.config.intensity < 1:
            raise ValueError("intensity must be >= 1")
        #: Per-stream adaptive offset (float internally; applied rounded).
        self._offsets: Dict[int, float] = {}
        #: When each stream's offset was last adjusted: further reports
        #: only count once they reflect prefetches issued *after* the
        #: adjustment (the control loop's feedback delay).
        self._adjusted_at: Dict[int, float] = {}
        self.requests_out = 0
        self.offset_increases = 0
        self.offset_decreases = 0

    # -- request finalization -----------------------------------------------------

    def offset_of(self, stream_id: int) -> float:
        return self._offsets.get(stream_id, self.config.initial_offset)

    def finalize(
        self,
        decision: PrefetchDecision,
        observation: StreamObservation,
        now_us: float,
    ) -> List[PrefetchRequest]:
        """Apply offset + intensity to a tier decision.

        Emits ``intensity`` consecutive targets starting at the stream's
        current offset.  Targets with negative VPNs (streams walking down
        past zero) are dropped.
        """
        base_offset = max(1, round(self.offset_of(observation.stream_id)))
        requests: List[PrefetchRequest] = []
        for extra in range(self.config.intensity):
            vpn = decision.target_vpn(base_offset + extra)
            if vpn < 0:
                continue
            requests.append(
                PrefetchRequest(
                    pid=observation.pid,
                    vpn=vpn,
                    tier=decision.tier,
                    issued_at_us=now_us,
                    stream_id=observation.stream_id,
                )
            )
        self.requests_out += len(requests)
        return requests

    # -- timeliness feedback (from the execution engine) ----------------------------

    def report_timeliness(
        self,
        stream_id: int,
        t_us: float,
        issued_us: float = 0.0,
        now_us: Optional[float] = None,
    ) -> None:
        """Adjust the stream's offset from one measured T.

        An adjustment only takes effect for prefetches issued after the
        previous adjustment (``issued_us`` gate) — without this the ramp
        keeps multiplying before its own effect is observable and
        overshoots wildly past the end of the stream.
        """
        if not self.config.adaptive:
            return
        if issued_us < self._adjusted_at.get(stream_id, -1.0):
            return
        current = self.offset_of(stream_id)
        if t_us < self.config.t_min_us:
            current *= 1.0 + self.config.alpha
            self.offset_increases += 1
        elif t_us > self.config.t_max_us:
            current *= 1.0 - self.config.alpha
            self.offset_decreases += 1
        else:
            return
        self._offsets[stream_id] = min(max(current, 1.0), self.config.offset_max)
        self._adjusted_at[stream_id] = now_us if now_us is not None else issued_us

    def forget_stream(self, stream_id: int) -> None:
        self._offsets.pop(stream_id, None)
        self._adjusted_at.pop(stream_id, None)
