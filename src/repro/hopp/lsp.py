"""Ladder-Stream-based Prefetch (LSP) — Section III-D(3), Algorithm 1.

Ladder streams (Figure 2) repeat a short spatial pattern: a *tread* of
concentrated cross-stream accesses followed by a *rise* with a larger,
stable stride — the footprint of blocked matrix code such as HPL.

The algorithm forms a target pattern from the newest M=2 consecutive
strides (including stride_A) and scans the stride history, newest first,
for earlier occurrences of that pattern.  Each occurrence contributes:

* its *next stride* (the stride that followed it) — the majority vote
  becomes ``stride_target``;
* the VPN distance to the previous (more recent) occurrence — the
  majority vote becomes ``pattern_stride``, the period of the ladder.

The prefetch target is ``VPN_A + stride_target + i * pattern_stride``
(paper Algorithm 1, line 16): continue the way the previous repetition
continued, then jump ``i`` whole repetitions ahead.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Sequence

from repro.common.constants import LSP_PATTERN_LEN
from repro.common.types import PrefetchDecision, StreamObservation

TIER_NAME = "lsp"


def _majority(values: Sequence[int]) -> int:
    """The most common value (ties break to the most recent, which is
    listed first because the scan walks newest-to-oldest)."""
    return Counter(values).most_common(1)[0][0]


def train(
    observation: StreamObservation,
    pattern_len: int = LSP_PATTERN_LEN,
) -> Optional[PrefetchDecision]:
    """Algorithm 1.  Returns None when no earlier pattern occurrence
    exists (next_stride empty -> stride_target = 0, no prefetch)."""
    vpns = observation.vpn_history
    strides = observation.stride_history
    n = len(vpns)
    if n < pattern_len + 2 or len(strides) != n - 1:
        return None

    # Target pattern: the newest M consecutive strides, ending in stride_A.
    target = tuple(strides[n - 1 - pattern_len : n - 1])

    next_strides: List[int] = []
    stride_sums: List[int] = []
    # VPN index where the most recent known occurrence ends; starts at the
    # target occurrence itself (the newest VPN).
    last_end = n - 1

    # A candidate occurrence ends at VPN index e; its strides are
    # strides[e - pattern_len : e].  Scan newest first, skipping the
    # target occurrence and requiring a following stride to exist
    # (e <= n - 2 so strides[e] is valid).
    for end in range(n - 2, pattern_len - 1, -1):
        candidate = tuple(strides[end - pattern_len : end])
        if candidate != target:
            continue
        next_strides.append(strides[end])
        stride_sums.append(vpns[last_end] - vpns[end])
        last_end = end

    if not next_strides:
        return None

    stride_target = _majority(next_strides)
    pattern_stride = _majority(stride_sums)
    if pattern_stride == 0:
        # Degenerate ladder (period 0) — nothing new to prefetch.
        return None
    return PrefetchDecision(
        tier=TIER_NAME,
        base_vpn=observation.vpn_history[-1],
        per_offset_stride=pattern_stride,
        fixed_delta=stride_target,
    )
