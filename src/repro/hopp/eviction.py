"""Stream-aware eviction advice — the second Section IV extension.

"Besides prefetching, the software can serve other purposes with full
memory traces, e.g., improving kernel page eviction."

LRU is scan-hostile: a long stream floods the recency list and pushes
out medium-reuse pages that are actually coming back.  The full trace
tells HoPP exactly which resident pages are *stream-behind* — already
passed by an identified stream's head — and those are dead until the
next pass.  :class:`StreamAwareEvictionAdvisor` collects them as
preferred reclaim victims; the machine's reclaim drains the advisor
before falling back to plain LRU, making reclaim scan-resistant.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, List, Optional, Tuple

PageKey = Tuple[int, int]


class StreamAwareEvictionAdvisor:
    """Tracks stream-behind pages as preferred eviction victims.

    ``protect_pages`` — pages immediately behind the head stay
    protected (out-of-order consumers like ripples revisit them).
    ``capacity`` — bound on remembered victims (oldest dropped first;
    if the hint set overflows, plain LRU covers the rest anyway).
    """

    def __init__(self, protect_pages: int = 64, capacity: int = 1 << 16) -> None:
        if protect_pages < 0:
            raise ValueError("protect_pages must be >= 0")
        self.protect_pages = protect_pages
        self.capacity = capacity
        self._victims: "OrderedDict[PageKey, None]" = OrderedDict()
        self.hints_added = 0
        self.hints_used = 0

    def on_stream_step(self, pid: int, vpn: int, stride: int) -> None:
        """The trained stream at (pid, vpn) advanced with ``stride``:
        the page ``protect_pages`` behind the head is now dead."""
        direction = 1 if stride >= 0 else -1
        behind = vpn - direction * self.protect_pages
        if behind < 0:
            return
        key = (pid, behind)
        if key in self._victims:
            return
        if len(self._victims) >= self.capacity:
            self._victims.popitem(last=False)
        self._victims[key] = None
        self.hints_added += 1

    def cancel(self, pid: int, vpn: int) -> None:
        """The page was touched again: it is not dead after all."""
        self._victims.pop((pid, vpn), None)

    def take_victims(
        self,
        count: int,
        is_evictable: Callable[[int, int], bool],
    ) -> List[PageKey]:
        """Up to ``count`` hinted victims that are still resident.

        Stale hints (pages already evicted or re-faulted) are discarded
        as they are encountered.
        """
        out: List[PageKey] = []
        while self._victims and len(out) < count:
            key, _ = self._victims.popitem(last=False)
            if is_evictable(*key):
                out.append(key)
                self.hints_used += 1
        return out

    def __len__(self) -> int:
        return len(self._victims)
