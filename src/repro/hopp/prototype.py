"""The Section V prototype emulation: hot page detection in *software*.

The paper's testbed cannot modify a real memory controller, so HMTT
snoops the DIMM bus and DMA-writes the full trace into a reserved DRAM
area; a *dedicated CPU core* then runs the HPD in software over that
ring ("HPD reads traces from that reserved area in DRAM 1 to detect hot
pages... it takes up an additional CPU core").

:class:`PrototypeDataPlane` reproduces that arrangement: MC accesses are
enqueued as raw records, and the pipeline consumes them at a bounded
rate (records per microsecond of virtual time — the software core's
throughput).  Two effects distinguish it from the in-MC design:

* **lag** — hot pages are discovered a little after the accesses that
  made them hot, so prefetches trail the app slightly more;
* **loss** — if the application out-runs the consumer, the ring
  overflows and trace records are dropped, costing coverage.

At realistic consumption rates the prototype matches the design —
which is the paper's implicit claim ("the rest of the prototype
implementation follows the design"), and what the A8 ablation checks.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.hopp.system import HoppConfig, HoppDataPlane


class PrototypeDataPlane(HoppDataPlane):
    """HoPP with Section V's software trace consumer in front.

    ``consume_rate_per_us`` — records the dedicated core can process
    per microsecond of application time (default 100 ≈ one record per
    10 ns, a comfortable software rate).
    ``ring_capacity`` — the reserved DRAM trace area, in records.
    """

    def __init__(
        self,
        backend,
        config: Optional[HoppConfig] = None,
        consume_rate_per_us: float = 100.0,
        ring_capacity: int = 1 << 16,
    ) -> None:
        super().__init__(backend, config)
        if consume_rate_per_us <= 0:
            raise ValueError("consume_rate_per_us must be > 0")
        self.consume_rate_per_us = consume_rate_per_us
        self.ring_capacity = ring_capacity
        self._ring: Deque[Tuple[float, int, bool]] = deque()
        self._last_drain_us = 0.0
        self._budget = 0.0
        self.records_enqueued = 0
        self.records_dropped = 0
        self.records_consumed = 0

    # -- the MC tap now only enqueues ------------------------------------------

    def on_mc_access(self, timestamp_us: float, paddr: int, is_write: bool) -> None:
        self.records_enqueued += 1
        if len(self._ring) >= self.ring_capacity:
            # The consumer fell behind: HMTT overwrites the oldest
            # records in the reserved area.
            self._ring.popleft()
            self.records_dropped += 1
        self._ring.append((timestamp_us, paddr, is_write))
        self._drain(timestamp_us)

    def _drain(self, now_us: float) -> None:
        """Consume what the software core managed since the last call."""
        elapsed = max(now_us - self._last_drain_us, 0.0)
        self._last_drain_us = now_us
        self._budget = min(
            self._budget + elapsed * self.consume_rate_per_us,
            float(self.ring_capacity),
        )
        while self._ring and self._budget >= 1.0:
            self._budget -= 1.0
            _, paddr, is_write = self._ring.popleft()
            self.records_consumed += 1
            # The consumer acts at *its* time, i.e. now.
            super().on_mc_access(now_us, paddr, is_write)

    @property
    def backlog(self) -> int:
        return len(self._ring)

    @property
    def drop_rate(self) -> float:
        return (
            self.records_dropped / self.records_enqueued
            if self.records_enqueued
            else 0.0
        )
