"""Ripple-Stream-based Prefetch (RSP) — Section III-D(4), Algorithm 2.

Ripple streams (Figure 3) are stride-1 simple streams distorted by
out-of-order and cross-stream accesses inside a tiny address range.  The
insight: if the page belongs to a ripple, the walk back through the
stride history keeps *returning* — the cumulative stride from the newest
access repeatedly lands within +/- max_stride (2, tolerating two
out-of-order hops).  Count such returns as ripple evidence; with at least
L/2 of them the stream is a ripple and the target stride is 1.
"""

from __future__ import annotations

from typing import Optional

from repro.common.constants import RSP_MAX_STRIDE
from repro.common.types import PrefetchDecision, StreamObservation

TIER_NAME = "rsp"


def ripple_score(strides, max_stride: int = RSP_MAX_STRIDE) -> int:
    """Number of ripple returns in a stride history (newest stride last).

    Mirrors Algorithm 2: the newest stride (stride_A) counts directly
    when small; then walk the remaining strides newest-to-oldest,
    accumulating, and count + reset each time the cumulative offset
    returns within +/- max_stride.
    """
    if not strides:
        return 0
    score = 0
    if abs(strides[-1]) <= max_stride:
        score += 1
    accumulate = 0
    for i in range(len(strides) - 2, -1, -1):
        accumulate += strides[i]
        if abs(accumulate) <= max_stride:
            score += 1
            accumulate = 0
    return score


def train(
    observation: StreamObservation,
    max_stride: int = RSP_MAX_STRIDE,
) -> Optional[PrefetchDecision]:
    """Algorithm 2.  Returns a stride-1 decision when the ripple count
    reaches L/2, else None (no prefetch)."""
    history_len = len(observation.vpn_history)
    if ripple_score(observation.stride_history, max_stride) < history_len // 2:
        return None
    return PrefetchDecision(
        tier=TIER_NAME,
        base_vpn=observation.vpn_history[-1],
        per_offset_stride=1,
    )
