"""Adaptive Three-Tier Prefetching — Section III-D.

Tiers run in fixed priority order: SSP first (simple streams cover the
majority of patterns and are cheapest to identify), then LSP for ladder
streams, then RSP as the last resort for ripples.  Each tier can be
toggled off, which is how the Figure 18-20 tier-contribution study and
the revamped-majority baseline are built.

Vocabulary note: the "tiers" here are *prefetch-policy* tiers
(SSP/LSP/RSP priority levels inside the trainer).  They are unrelated
to the *memory* tiers of :mod:`repro.memtier` (local DRAM / pooled CXL
/ RDMA far), whose identifiers always carry a ``memtier_`` prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.types import PrefetchDecision, StreamObservation
from repro.hopp import lsp, rsp, ssp


@dataclass
class TierConfig:
    enable_ssp: bool = True
    enable_lsp: bool = True
    enable_rsp: bool = True

    @classmethod
    def only(cls, *tiers: str) -> "TierConfig":
        names = set(tiers)
        unknown = names - {"ssp", "lsp", "rsp"}
        if unknown:
            raise ValueError(f"unknown tiers: {sorted(unknown)}")
        return cls(
            enable_ssp="ssp" in names,
            enable_lsp="lsp" in names,
            enable_rsp="rsp" in names,
        )


class ThreeTierTrainer:
    """Applies the tier cascade to one stream observation."""

    def __init__(self, config: Optional[TierConfig] = None) -> None:
        self.config = config or TierConfig()
        self.decisions_by_tier: Dict[str, int] = {"ssp": 0, "lsp": 0, "rsp": 0}
        self.no_decision = 0

    def train(self, observation: StreamObservation) -> Optional[PrefetchDecision]:
        decision: Optional[PrefetchDecision] = None
        if self.config.enable_ssp:
            decision = ssp.train(observation)
        if decision is None and self.config.enable_lsp:
            decision = lsp.train(observation)
        if decision is None and self.config.enable_rsp:
            decision = rsp.train(observation)
        if decision is None:
            self.no_decision += 1
        else:
            self.decisions_by_tier[decision.tier] += 1
        return decision
