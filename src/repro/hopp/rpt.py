"""Reverse Page Table (RPT) and its in-MC cache — Section III-C.

The RPT maps PPN -> (PID, VPN, shared flag, huge-page flag); the only full
copy lives in a reserved, uncached DRAM area (Figure 6) and the MC holds a
small 16-way cache in front of it.  All reads and writes go through the
cache, so no coherence with DRAM is needed; dirty entries are written
back lazily on eviction.

Maintenance mirrors Section V: at startup HoPP walks all existing page
tables to seed the RPT; afterwards kernel PTE hooks (set_pte_at /
pte_clear and the pmd variants for huge pages) keep it current.
"""

from __future__ import annotations

from dataclasses import field
from typing import Dict, Iterable, Optional, Tuple

from repro.common.assoc import SetAssociativeTable
from repro.common.compat import slotted_dataclass
from repro.common.constants import (
    BLOCK_SIZE,
    HOT_PAGE_RECORD_BYTES,
    RPT_CACHE_KB,
    RPT_CACHE_WAYS,
    RPT_ENTRY_BYTES,
    RPT_PID_BITS,
    RPT_VPN_BITS,
)
from repro.common.types import PageKind, RptEntry
from repro.kernel.page_table import PageTable, Pte


class ReversePageTable:
    """The DRAM-resident PPN -> RptEntry store."""

    def __init__(self) -> None:
        self._entries: Dict[int, RptEntry] = {}
        self.reads = 0
        self.writes = 0

    def read(self, ppn: int) -> Optional[RptEntry]:
        self.reads += 1
        return self._entries.get(ppn)

    def write(self, ppn: int, entry: Optional[RptEntry]) -> None:
        self.writes += 1
        if entry is None:
            self._entries.pop(ppn, None)
        else:
            self._entries[ppn] = entry

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, ppn: int) -> bool:
        return ppn in self._entries

    @staticmethod
    def size_bytes(local_memory_pages: int) -> int:
        """RPT footprint for a machine with that many physical pages —
        0.17% of physical memory with 8-byte entries (Section III-C)."""
        return local_memory_pages * RPT_ENTRY_BYTES


@slotted_dataclass()
class _CacheLine:
    entry: Optional[RptEntry]
    dirty: bool = False


class RptCache:
    """16-way write-back cache over the RPT (default 64 KB -> 8K entries).

    ``lookup`` resolves a hot PPN to its PID+VPN combo; misses fill from
    the DRAM RPT.  PTE hooks update the cache directly (write-allocate),
    and dirty lines reach DRAM only on eviction — the lazy write-back of
    Section V.
    """

    def __init__(
        self,
        backing: ReversePageTable,
        size_kb: int = RPT_CACHE_KB,
        ways: int = RPT_CACHE_WAYS,
    ) -> None:
        entries = (size_kb * 1024) // RPT_ENTRY_BYTES
        if entries < ways:
            raise ValueError("RPT cache smaller than one set")
        nsets = entries // ways
        self.backing = backing
        self.size_kb = size_kb
        self._table: SetAssociativeTable[_CacheLine] = SetAssociativeTable(nsets, ways)
        self.lookups = 0
        self.lookup_hits = 0
        self.dram_fills = 0
        self.writebacks = 0

    # -- the hot-page path -------------------------------------------------------

    def lookup(self, ppn: int) -> Optional[RptEntry]:
        """Resolve a hot page's PPN.  Returns None for frames the kernel
        never mapped (e.g., kernel/DMA memory) — those hot pages are
        dropped before reaching the training framework."""
        self.lookups += 1
        line = self._table.lookup(ppn)
        if line is not None:
            self.lookup_hits += 1
            return line.entry
        entry = self.backing.read(ppn)
        self.dram_fills += 1
        self._install(ppn, _CacheLine(entry=entry, dirty=False))
        return entry

    # -- kernel hook side ----------------------------------------------------------

    def update(self, ppn: int, entry: Optional[RptEntry]) -> None:
        """PTE set/clear hook: write the mapping through the cache.

        Hook traffic does not count toward the hot-page-query hit rate
        (Table III measures the lookup path only).
        """
        line = self._table.peek(ppn)
        if line is not None:
            self._table.touch(ppn)
            line.entry = entry
            line.dirty = True
            return
        self._install(ppn, _CacheLine(entry=entry, dirty=True))

    def _install(self, ppn: int, line: _CacheLine) -> None:
        victim = self._table.insert(ppn, line)
        if victim is not None and victim[1].dirty:
            self.backing.write(victim[0], victim[1].entry)
            self.writebacks += 1

    def flush(self) -> None:
        """Write back every dirty line (used by tests and shutdown)."""
        for ppn, line in list(self._table):
            if line.dirty:
                self.backing.write(ppn, line.entry)
                self.writebacks += 1
                line.dirty = False

    # -- statistics (Table III / Table V) ------------------------------------------

    @property
    def hit_rate(self) -> float:
        """Hit rate of the hot-page lookup path (Table III's metric)."""
        return self.lookup_hits / self.lookups if self.lookups else 0.0

    @property
    def bandwidth_overhead(self) -> float:
        """Extra DRAM bandwidth from RPT misses and writebacks relative to
        the hot-page traffic it serves (Table V, RPT row uses the app's MC
        traffic as denominator; see RptMaintainer.bandwidth_overhead)."""
        moved = (self.dram_fills + self.writebacks) * RPT_ENTRY_BYTES
        served = self.lookups * HOT_PAGE_RECORD_BYTES
        return moved / served if served else 0.0

    def dram_bytes_moved(self) -> int:
        return (self.dram_fills + self.writebacks) * RPT_ENTRY_BYTES


class RptMaintainer:
    """Wires kernel PTE hooks into the RPT cache and offers the startup
    full-walk seeding pass (Section V)."""

    def __init__(self, cache: RptCache) -> None:
        self.cache = cache
        self.hook_updates = 0

    def attach(self, page_table: PageTable) -> None:
        page_table.add_set_hook(self.on_pte_set)
        page_table.add_clear_hook(self.on_pte_clear)

    def seed(self, page_tables: Iterable[PageTable]) -> int:
        """Initial full page-table walk; returns entries written."""
        written = 0
        for table in page_tables:
            for vpn, pte in table.present_pages():
                self.cache.update(
                    pte.ppn,
                    RptEntry(table.pid, vpn, pte.shared, pte.kind),
                )
                written += 1
        return written

    def on_pte_set(self, pid: int, vpn: int, ppn: int, pte: Pte) -> None:
        self.hook_updates += 1
        self.cache.update(ppn, RptEntry(pid, vpn, pte.shared, pte.kind))

    def on_pte_clear(self, pid: int, vpn: int, ppn: int) -> None:
        self.hook_updates += 1
        self.cache.update(ppn, None)


def rpt_bandwidth_overhead(cache: RptCache, mc_accesses: int) -> float:
    """Table V's RPT row: RPT DRAM traffic / application MC traffic."""
    app_bytes = mc_accesses * BLOCK_SIZE
    return cache.dram_bytes_moved() / app_bytes if app_bytes else 0.0
