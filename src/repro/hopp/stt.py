"""Stream Training Table (STT) — Section III-D, Figure 7.

64 LRU-managed entries, each a potential page stream for one PID.  An
entry keeps the last L VPNs received (``VPN_history``) and the L-1
derived strides.  A new hot page joins a stream when the PID matches and
its VPN is within Delta_stream pages of the stream's most recent VPN
(the pages-clustering technique of Section II-B); otherwise a new entry
is allocated, evicting the LRU one.

Once an entry's history is full, every further hot page appended to it
yields a :class:`StreamObservation` for the tier algorithms.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import field
from typing import Deque, Dict, List, Optional, Tuple

from repro.common.compat import slotted_dataclass
from repro.common.constants import STT_ENTRIES, STT_HISTORY_LEN, STT_STREAM_DELTA
from repro.common.types import StreamObservation


@slotted_dataclass()
class SttEntry:
    stream_id: int
    pid: int
    vpns: Deque[int]
    #: Strides between consecutive VPNs; len == len(vpns) - 1.
    strides: Deque[int]
    #: Invariant: Counter of the non-zero strides currently in
    #: ``strides``, maintained incrementally by ``feed`` so SSP's
    #: dominant-stride scan is O(distinct strides) per observation
    #: instead of O(history).
    stride_counts: Dict[int, int] = field(default_factory=dict)
    #: Mirror of ``vpns[-1]`` kept as a plain slot: ``_match`` reads it
    #: once per scanned peer, and the deque indexing adds up.
    last: int = 0

    @property
    def last_vpn(self) -> int:
        return self.vpns[-1]


class StreamTrainingTable:
    def __init__(
        self,
        entries: int = STT_ENTRIES,
        history_len: int = STT_HISTORY_LEN,
        stream_delta: int = STT_STREAM_DELTA,
    ) -> None:
        if entries < 1:
            raise ValueError("entries must be >= 1")
        if history_len < 4:
            raise ValueError("history_len must be >= 4 for LSP/RSP to work")
        self.capacity = entries
        self.history_len = history_len
        self.stream_delta = stream_delta
        #: stream_id -> entry; ordering encodes recency (last = MRU).
        self._entries: "OrderedDict[int, SttEntry]" = OrderedDict()
        #: pid -> (stream_id -> entry), mirroring ``_entries``'s recency
        #: order among that pid's streams; lets ``_match`` scan only the
        #: pid's own streams with an identical tie-break order.
        self._by_pid: Dict[int, "OrderedDict[int, SttEntry]"] = {}
        self._next_stream_id = 0
        self.hot_pages_in = 0
        self.duplicates_dropped = 0
        self.observations_out = 0
        self.streams_created = 0
        self.streams_evicted = 0

    # -- feeding hot pages ---------------------------------------------------------

    def feed(self, pid: int, vpn: int, now_us: float = 0.0) -> Optional[StreamObservation]:
        """Insert one hot page; returns an observation when the matched
        stream's history is full (training can run), else None."""
        self.hot_pages_in += 1
        entry = self._match(pid, vpn)
        if entry is None:
            self._allocate(pid, vpn)
            return None
        if vpn == entry.last:
            # Repeated extraction of the same page (multi-channel dedup,
            # Section III-B) — no new information.
            self.duplicates_dropped += 1
            self._entries.move_to_end(entry.stream_id)
            self._by_pid[pid].move_to_end(entry.stream_id)
            return None
        stride = vpn - entry.last
        strides = entry.strides
        counts = entry.stride_counts
        if len(strides) == strides.maxlen:
            # Appending will drop the oldest stride out of the window.
            old = strides[0]
            if old:
                left = counts[old] - 1
                if left:
                    counts[old] = left
                else:
                    del counts[old]
        entry.vpns.append(vpn)
        entry.last = vpn
        strides.append(stride)
        if stride:
            counts[stride] = counts.get(stride, 0) + 1
        self._entries.move_to_end(entry.stream_id)
        self._by_pid[pid].move_to_end(entry.stream_id)
        if len(entry.vpns) < self.history_len:
            return None
        self.observations_out += 1
        return StreamObservation(
            pid=pid,
            vpn=vpn,
            stride=stride,
            vpn_history=tuple(entry.vpns),
            stride_history=tuple(strides),
            stream_id=entry.stream_id,
            timestamp_us=now_us,
            stride_counts=counts,
        )

    def feed_batch(self, hot_pages, now_us: float = 0.0) -> List[StreamObservation]:
        """Feed a batch of ``(pid, vpn)`` hot pages at one timestamp.

        Returns the observations the batch produced, in feed order —
        exactly ``[feed(pid, vpn, now_us) for ...]`` with the Nones
        dropped.  The batch kernel enters the pipeline one extraction at
        a time (an extraction can issue prefetches that change what the
        next one sees), so this is for offline consumers: trace-driven
        training, multi-channel drain sweeps, and tests.
        """
        feed = self.feed
        out: List[StreamObservation] = []
        append = out.append
        for pid, vpn in hot_pages:
            observation = feed(pid, vpn, now_us)
            if observation is not None:
                append(observation)
        return out

    # -- internals -------------------------------------------------------------------

    def _match(self, pid: int, vpn: int) -> Optional[SttEntry]:
        """Closest stream with the same PID within Delta_stream pages.

        Scans only the pid's own streams via ``_by_pid``; their relative
        recency order matches ``_entries``, so the strict ``<`` tie-break
        (first-scanned wins among equal distances) picks the same entry
        the full-table scan would.
        """
        peers = self._by_pid.get(pid)
        if not peers:
            return None
        best: Optional[SttEntry] = None
        best_distance = self.stream_delta + 1
        _abs = abs
        for entry in peers.values():
            distance = _abs(vpn - entry.last)
            if distance < best_distance:
                best = entry
                best_distance = distance
        return best if best_distance <= self.stream_delta else None

    def _allocate(self, pid: int, vpn: int) -> SttEntry:
        if len(self._entries) >= self.capacity:
            _, victim = self._entries.popitem(last=False)
            del self._by_pid[victim.pid][victim.stream_id]
            self.streams_evicted += 1
        entry = SttEntry(
            stream_id=self._next_stream_id,
            pid=pid,
            vpns=deque([vpn], maxlen=self.history_len),
            strides=deque(maxlen=self.history_len - 1),
            stride_counts={},
            last=vpn,
        )
        self._next_stream_id += 1
        self.streams_created += 1
        self._entries[entry.stream_id] = entry
        peers = self._by_pid.get(pid)
        if peers is None:
            peers = self._by_pid[pid] = OrderedDict()
        peers[entry.stream_id] = entry
        return entry

    # -- introspection ------------------------------------------------------------------

    def streams(self) -> List[SttEntry]:
        return list(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)
