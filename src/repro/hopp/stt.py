"""Stream Training Table (STT) — Section III-D, Figure 7.

64 LRU-managed entries, each a potential page stream for one PID.  An
entry keeps the last L VPNs received (``VPN_history``) and the L-1
derived strides.  A new hot page joins a stream when the PID matches and
its VPN is within Delta_stream pages of the stream's most recent VPN
(the pages-clustering technique of Section II-B); otherwise a new entry
is allocated, evicting the LRU one.

Once an entry's history is full, every further hot page appended to it
yields a :class:`StreamObservation` for the tier algorithms.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import field
from typing import Deque, Dict, List, Optional, Tuple

from repro.common.compat import slotted_dataclass
from repro.common.constants import STT_ENTRIES, STT_HISTORY_LEN, STT_STREAM_DELTA
from repro.common.types import StreamObservation


@slotted_dataclass()
class SttEntry:
    stream_id: int
    pid: int
    vpns: Deque[int]
    #: Strides between consecutive VPNs; len == len(vpns) - 1.
    strides: Deque[int]

    @property
    def last_vpn(self) -> int:
        return self.vpns[-1]


class StreamTrainingTable:
    def __init__(
        self,
        entries: int = STT_ENTRIES,
        history_len: int = STT_HISTORY_LEN,
        stream_delta: int = STT_STREAM_DELTA,
    ) -> None:
        if entries < 1:
            raise ValueError("entries must be >= 1")
        if history_len < 4:
            raise ValueError("history_len must be >= 4 for LSP/RSP to work")
        self.capacity = entries
        self.history_len = history_len
        self.stream_delta = stream_delta
        #: stream_id -> entry; ordering encodes recency (last = MRU).
        self._entries: "OrderedDict[int, SttEntry]" = OrderedDict()
        self._next_stream_id = 0
        self.hot_pages_in = 0
        self.duplicates_dropped = 0
        self.observations_out = 0
        self.streams_created = 0
        self.streams_evicted = 0

    # -- feeding hot pages ---------------------------------------------------------

    def feed(self, pid: int, vpn: int, now_us: float = 0.0) -> Optional[StreamObservation]:
        """Insert one hot page; returns an observation when the matched
        stream's history is full (training can run), else None."""
        self.hot_pages_in += 1
        entry = self._match(pid, vpn)
        if entry is None:
            self._allocate(pid, vpn)
            return None
        if vpn == entry.last_vpn:
            # Repeated extraction of the same page (multi-channel dedup,
            # Section III-B) — no new information.
            self.duplicates_dropped += 1
            self._entries.move_to_end(entry.stream_id)
            return None
        stride = vpn - entry.last_vpn
        entry.vpns.append(vpn)
        entry.strides.append(stride)
        self._entries.move_to_end(entry.stream_id)
        if len(entry.vpns) < self.history_len:
            return None
        self.observations_out += 1
        return StreamObservation(
            pid=pid,
            vpn=vpn,
            stride=stride,
            vpn_history=tuple(entry.vpns),
            stride_history=tuple(entry.strides),
            stream_id=entry.stream_id,
            timestamp_us=now_us,
        )

    # -- internals -------------------------------------------------------------------

    def _match(self, pid: int, vpn: int) -> Optional[SttEntry]:
        """Closest stream with the same PID within Delta_stream pages."""
        best: Optional[SttEntry] = None
        best_distance = self.stream_delta + 1
        for entry in self._entries.values():
            if entry.pid != pid:
                continue
            distance = abs(vpn - entry.last_vpn)
            if distance <= self.stream_delta and distance < best_distance:
                best = entry
                best_distance = distance
        return best

    def _allocate(self, pid: int, vpn: int) -> SttEntry:
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.streams_evicted += 1
        entry = SttEntry(
            stream_id=self._next_stream_id,
            pid=pid,
            vpns=deque([vpn], maxlen=self.history_len),
            strides=deque(maxlen=self.history_len - 1),
        )
        self._next_stream_id += 1
        self.streams_created += 1
        self._entries[entry.stream_id] = entry
        return entry

    # -- introspection ------------------------------------------------------------------

    def streams(self) -> List[SttEntry]:
        return list(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)
