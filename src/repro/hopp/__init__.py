"""HoPP core: hardware modules (HPD, RPT) and the software stack
(training framework, policy engine, execution engine)."""

from repro.hopp.eviction import StreamAwareEvictionAdvisor
from repro.hopp.executor import ExecutionEngine, PrefetchRecord
from repro.hopp.hugepage import HugePageBatcher
from repro.hopp.learned import LearnedStridePredictor, LearnedTrainer
from repro.hopp.prototype import PrototypeDataPlane
from repro.hopp.hardware_model import SramEstimate, SramModel
from repro.hopp.hpd import HotPageDetector, MultiChannelHpd
from repro.hopp.policy import PolicyConfig, PolicyEngine
from repro.hopp.rpt import (
    ReversePageTable,
    RptCache,
    RptMaintainer,
    rpt_bandwidth_overhead,
)
from repro.hopp.stt import StreamTrainingTable
from repro.hopp.system import HoppConfig, HoppDataPlane
from repro.hopp.three_tier import ThreeTierTrainer, TierConfig

__all__ = [
    "StreamAwareEvictionAdvisor",
    "ExecutionEngine",
    "HugePageBatcher",
    "LearnedStridePredictor",
    "LearnedTrainer",
    "PrototypeDataPlane",
    "PrefetchRecord",
    "SramEstimate",
    "SramModel",
    "HotPageDetector",
    "MultiChannelHpd",
    "PolicyConfig",
    "PolicyEngine",
    "ReversePageTable",
    "RptCache",
    "RptMaintainer",
    "rpt_bandwidth_overhead",
    "StreamTrainingTable",
    "HoppConfig",
    "HoppDataPlane",
    "ThreeTierTrainer",
    "TierConfig",
]
