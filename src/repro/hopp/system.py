"""The assembled HoPP data plane — Figure 4.

Wires the pipeline end to end:

  MC access -> HPD (hot page?) -> RPT cache (PPN -> PID+VPN)
            -> STT (stream match) -> three-tier trainer -> policy engine
            -> execution engine -> RDMA read + early PTE injection.

The data plane is *asynchronous* with respect to the application's fault
path: it consumes the MC trace and issues prefetches on its own, which is
what lets HoPP hide swap latency instead of amortizing it (Section III).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hopp.executor import ExecutionEngine, PrefetchBackend
from repro.hopp.hpd import HotPageDetector
from repro.hopp.policy import (
    BreakerConfig,
    CircuitBreaker,
    PolicyConfig,
    PolicyEngine,
)
from repro.hopp.rpt import ReversePageTable, RptCache, RptMaintainer
from repro.hopp.stt import StreamTrainingTable
from repro.hopp.three_tier import ThreeTierTrainer, TierConfig


@dataclass
class HoppConfig:
    """Every knob of the HoPP stack with the paper's defaults."""

    hpd_threshold: int = 8
    hpd_sets: int = 4
    hpd_ways: int = 16
    #: Memory channels feeding separate HPD instances (Section III-B's
    #: multi-channel discussion); with interleaving the per-channel
    #: threshold drops to N / channels.
    mc_channels: int = 1
    mc_interleaved: bool = True
    rpt_cache_kb: int = 64
    rpt_cache_ways: int = 16
    stt_entries: int = 64
    stt_history_len: int = 16
    stt_stream_delta: int = 64
    tiers: TierConfig = field(default_factory=TierConfig)
    #: Training framework: "three-tier" (the paper's adaptive cascade)
    #: or "learned" (the Section III-D ML-style alternative).
    trainer: str = "three-tier"
    policy: PolicyConfig = field(default_factory=PolicyConfig)
    #: Early PTE injection (Section III-F); off -> prefetches land in the
    #: swapcache like Fastswap's.
    inject_pte: bool = True
    #: Prefetch circuit breaker (degraded-mode throttling).  Armed only
    #: when the machine runs with a fault plan, so clean runs are
    #: bit-identical with or without it.
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    #: Section IV huge-page extension: long unit-stride streams graduate
    #: to one 512-page batch request per 2 MB region.
    hugepage_enabled: bool = False
    hugepage_stream_len: int = 128
    hugepage_batch_pages: int = 512
    #: Section IV eviction extension: hint stream-behind pages to the
    #: kernel's reclaim as preferred victims (scan-resistant LRU).
    eviction_advisor_enabled: bool = False
    eviction_protect_pages: int = 64


class HoppDataPlane:
    """One instance per compute node; tap it onto the memory controller."""

    def __init__(self, backend: PrefetchBackend, config: Optional[HoppConfig] = None) -> None:
        self.config = config or HoppConfig()
        cfg = self.config
        if cfg.mc_channels > 1:
            from repro.hopp.hpd import MultiChannelHpd

            self.hpd = MultiChannelHpd(
                cfg.mc_channels,
                cfg.hpd_threshold,
                cfg.mc_interleaved,
                cfg.hpd_sets,
                cfg.hpd_ways,
            )
        else:
            self.hpd = HotPageDetector(cfg.hpd_threshold, cfg.hpd_sets, cfg.hpd_ways)
        self.rpt = ReversePageTable()
        self.rpt_cache = RptCache(self.rpt, cfg.rpt_cache_kb, cfg.rpt_cache_ways)
        self.maintainer = RptMaintainer(self.rpt_cache)
        self.stt = StreamTrainingTable(
            cfg.stt_entries, cfg.stt_history_len, cfg.stt_stream_delta
        )
        if cfg.trainer == "three-tier":
            self.trainer = ThreeTierTrainer(cfg.tiers)
        elif cfg.trainer == "learned":
            from repro.hopp.learned import LearnedTrainer

            self.trainer = LearnedTrainer()
        else:
            raise ValueError(
                f"unknown trainer {cfg.trainer!r}; use 'three-tier' or 'learned'"
            )
        self.policy = PolicyEngine(cfg.policy)
        # The breaker only arms when the backend actually injects faults
        # (Machine.faults); a clean run never records an outcome, so the
        # extra branch cannot perturb baseline numbers.
        breaker = None
        if cfg.breaker.enabled and getattr(backend, "faults", None) is not None:
            breaker = CircuitBreaker(cfg.breaker)
        self.executor = ExecutionEngine(
            backend,
            policy=self.policy,
            inject_pte=cfg.inject_pte,
            breaker=breaker,
        )
        # Like the breaker arming above, telemetry wiring keys off the
        # backend machine's state: when it carries a Telemetry instance,
        # the engine emits gate/timeliness events onto the same bus.
        telemetry = getattr(backend, "telemetry", None)
        if telemetry is not None:
            self.executor.bus = telemetry.bus
        self.batcher = None
        if cfg.hugepage_enabled:
            from repro.hopp.hugepage import HugePageBatcher

            self.batcher = HugePageBatcher(
                backend,
                stream_len=cfg.hugepage_stream_len,
                batch_pages=cfg.hugepage_batch_pages,
            )
        self.advisor = None
        if cfg.eviction_advisor_enabled:
            from repro.hopp.eviction import StreamAwareEvictionAdvisor

            self.advisor = StreamAwareEvictionAdvisor(
                protect_pages=cfg.eviction_protect_pages
            )
        self.hot_pages_unresolved = 0
        # Memory-tier bridge: on a tiered machine, HPD hotness doubles
        # as the promotion signal (see repro.memtier) — None otherwise.
        self._memtier = getattr(backend, "memtier", None)

    # -- the MC tap (step 1-4 of Figure 4) -------------------------------------------

    def on_mc_access(self, timestamp_us: float, paddr: int, is_write: bool) -> None:
        hot_ppn = self.hpd.process(paddr, is_write)
        if hot_ppn is None:
            return
        self.on_hot_page(timestamp_us, hot_ppn)

    def on_hot_page(self, timestamp_us: float, hot_ppn: int) -> None:
        """Resolve one extracted hot page through RPT → STT → trainer →
        policy → executor (steps 2-4 of Figure 4).

        Split out of :meth:`on_mc_access` so the chunked batch kernel,
        which runs HPD itself over whole same-page runs, can enter the
        pipeline directly at an extraction barrier.
        """
        entry = self.rpt_cache.lookup(hot_ppn)
        if entry is None:
            # Frame not mapped by any process (kernel/DMA memory).
            self.hot_pages_unresolved += 1
            return
        if self._memtier is not None:
            # Hardware said this page is hot; the migration engine will
            # promote its remote copy poolward if it sits in the far tier.
            self._memtier.note_hot(entry.pid, entry.vpn, timestamp_us)
        observation = self.stt.feed(entry.pid, entry.vpn, timestamp_us)
        if observation is None:
            return
        decision = self.trainer.train(observation)
        if decision is None:
            return
        if self.advisor is not None:
            self.advisor.on_stream_step(
                observation.pid, observation.vpn, decision.per_offset_stride
            )
        if self.batcher is not None and decision.tier == "ssp":
            absorbed = self.batcher.observe(
                observation.stream_id,
                observation.pid,
                observation.vpn,
                decision.per_offset_stride,
                timestamp_us,
            )
            if absorbed:
                # The stream rides 2 MB batches now; skip the
                # single-page request for this step.
                return
        requests = self.policy.finalize(decision, observation, timestamp_us)
        if requests:
            self.executor.submit(requests, timestamp_us)

    # -- fault-path visibility ----------------------------------------------------------

    def on_page_mapped(self, pid: int, vpn: int, now_us: float) -> None:
        """Machine callback when any page becomes PRESENT; the executor
        uses it to close prefetch records on their first hit."""
        self.executor.on_first_hit(pid, vpn, now_us)

    def on_page_evicted(self, pid: int, vpn: int) -> None:
        self.executor.on_evicted_unused(pid, vpn)

    # -- fault-injection visibility ------------------------------------------------------

    def on_prefetch_dropped(self, now_us: float) -> None:
        """A prefetch READ (any tier, any issue path) lost its completion
        to an injected fault: count it and trip the breaker toward open."""
        self.executor.on_fabric_drop(now_us)

    def on_fabric_timeout(self, now_us: float) -> None:
        """A demand READ timed out (it will be retried with backoff);
        the breaker treats it as evidence the fabric is hostile."""
        self.executor.on_fabric_drop(now_us)
