"""Virtual-memory-subsystem substrate: page tables, frames, swap,
cgroups, reclaim, and VMAs."""

from repro.kernel.cgroup import CgroupManager, CgroupOverLimitError, MemoryCgroup
from repro.kernel.frames import FrameAllocator, OutOfFramesError
from repro.kernel.page_table import PageTable, Pte, PteState
from repro.kernel.reclaim import LruPageList, Reclaimer, ReclaimStats
from repro.kernel.swap import SwapCache, SwapSpace
from repro.kernel.vma import VmaMap, VmaRegistry

__all__ = [
    "CgroupManager",
    "CgroupOverLimitError",
    "MemoryCgroup",
    "FrameAllocator",
    "OutOfFramesError",
    "PageTable",
    "Pte",
    "PteState",
    "LruPageList",
    "Reclaimer",
    "ReclaimStats",
    "SwapCache",
    "SwapSpace",
    "VmaMap",
    "VmaRegistry",
]
