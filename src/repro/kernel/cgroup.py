"""Cgroup-v2-style memory accounting.

The paper isolates co-running applications with cgroups (Section VI-B) and
notes that HoPP charges prefetched pages to the application's cgroup while
Fastswap and Leap do not (Section I, point 4).  ``charge_prefetch``
reproduces that difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


class CgroupOverLimitError(RuntimeError):
    """Raised by ``charge(strict=True)`` when the limit would be exceeded."""


@dataclass
class MemoryCgroup:
    """Tracks charged pages against a hard limit.

    ``charge_prefetch`` — when False, pages brought in by a prefetcher are
    not charged until the application actually touches them (the
    Fastswap/Leap behaviour the paper calls out).
    """

    name: str
    limit_pages: int
    charge_prefetch: bool = True
    charged: int = 0
    max_charged: int = 0
    prefetch_uncharged: int = 0
    #: Strict charges refused at the limit (each raised a
    #: :class:`CgroupOverLimitError` that the caller absorbed).
    overlimit_rejects: int = 0

    def charge(self, npages: int = 1, prefetch: bool = False, strict: bool = False) -> bool:
        """Account ``npages``; returns True when now over the limit (the
        caller should trigger reclaim).  Uncharged prefetch pages are
        tracked separately so reclaim can still find them."""
        if prefetch and not self.charge_prefetch:
            self.prefetch_uncharged += npages
            return False
        if strict and self.charged + npages > self.limit_pages:
            self.overlimit_rejects += 1
            raise CgroupOverLimitError(
                f"cgroup {self.name}: {self.charged}+{npages} > {self.limit_pages}"
            )
        self.charged += npages
        if self.charged > self.max_charged:
            self.max_charged = self.charged
        return self.charged > self.limit_pages

    def uncharge(self, npages: int = 1, prefetch: bool = False) -> None:
        if prefetch and not self.charge_prefetch:
            self.prefetch_uncharged = max(0, self.prefetch_uncharged - npages)
            return
        if npages > self.charged:
            raise ValueError(
                f"cgroup {self.name}: uncharge {npages} > charged {self.charged}"
            )
        self.charged -= npages

    def promote_prefetch(self, npages: int = 1) -> bool:
        """A prefetched-but-uncharged page was touched: move its
        accounting onto the application."""
        if not self.charge_prefetch:
            self.prefetch_uncharged = max(0, self.prefetch_uncharged - npages)
            return self.charge(npages)
        return False

    def would_exceed(self, npages: int = 1) -> bool:
        """Whether charging ``npages`` more would cross the limit — the
        pre-flight check batch prefetch uses to trim a request to budget
        instead of unwinding it page by page."""
        return self.charged + npages > self.limit_pages

    @property
    def over_limit(self) -> bool:
        return self.charged > self.limit_pages

    @property
    def headroom(self) -> int:
        return self.limit_pages - self.charged


class CgroupManager:
    """Registry of cgroups, one per co-running application."""

    def __init__(self) -> None:
        self._groups: Dict[str, MemoryCgroup] = {}

    def create(self, name: str, limit_pages: int, charge_prefetch: bool = True) -> MemoryCgroup:
        if name in self._groups:
            raise ValueError(f"cgroup {name} already exists")
        group = MemoryCgroup(name, limit_pages, charge_prefetch)
        self._groups[name] = group
        return group

    def get(self, name: str) -> MemoryCgroup:
        return self._groups[name]

    def __iter__(self):
        return iter(self._groups.values())

    def __len__(self) -> int:
        return len(self._groups)
