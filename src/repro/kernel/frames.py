"""Physical frame allocator for the compute node's local DRAM."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class OutOfFramesError(RuntimeError):
    """Raised when allocation is attempted with no free frame; callers are
    expected to reclaim first (the machine does)."""


class FrameAllocator:
    """Fixed pool of physical frames with O(1) allocate/free.

    Fresh frames are preferred over recycled ones: real buddy
    allocators spread allocations across physical memory rather than
    immediately reusing the last freed frame.  This matters to HoPP's
    hardware models — a PPN that cycles between different virtual pages
    too quickly would pin stale state in the HPD table (its send bit)
    and the RPT cache.  Recycling kicks in only once the pool's fresh
    space is exhausted.
    """

    def __init__(self, total_frames: int, base_ppn: int = 0) -> None:
        if total_frames < 1:
            raise ValueError("total_frames must be >= 1")
        self.total_frames = total_frames
        self.base_ppn = base_ppn
        self._next_fresh = base_ppn
        self._limit = base_ppn + total_frames
        self._free: List[int] = []
        #: PPN -> (pid, vpn) owner map; -1 owner marks kernel/reserved use.
        self._owner: Dict[int, Tuple[int, int]] = {}

    def allocate(self, pid: int, vpn: int) -> int:
        """Grab a frame for (pid, vpn); raises OutOfFramesError when full."""
        if self._next_fresh < self._limit:
            ppn = self._next_fresh
            self._next_fresh += 1
        elif self._free:
            ppn = self._free.pop()
        else:
            raise OutOfFramesError(
                f"all {self.total_frames} frames in use"
            )
        self._owner[ppn] = (pid, vpn)
        return ppn

    def free(self, ppn: int) -> None:
        if ppn not in self._owner:
            raise ValueError(f"double free of PPN {ppn}")
        del self._owner[ppn]
        self._free.append(ppn)

    def owner(self, ppn: int) -> Optional[Tuple[int, int]]:
        return self._owner.get(ppn)

    @property
    def used(self) -> int:
        return len(self._owner)

    @property
    def available(self) -> int:
        return self.total_frames - self.used

    def __contains__(self, ppn: int) -> bool:
        return ppn in self._owner
