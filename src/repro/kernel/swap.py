"""Swap-slot space and swapcache.

Swap slots are allocated in eviction order, which is the property
Fastswap's read-ahead depends on: it prefetches pages *adjacent in swap
offset*, i.e., pages that happened to be reclaimed together — not pages
adjacent in the virtual address space (Section VI-E contrasts this with
VMA-based read-ahead).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class SwapSpace:
    """Monotonic slot allocator with a slot -> (pid, vpn) reverse map."""

    def __init__(self) -> None:
        self._next_slot = 0
        self._slot_to_page: Dict[int, Tuple[int, int]] = {}
        self._page_to_slot: Dict[Tuple[int, int], int] = {}

    def allocate(self, pid: int, vpn: int) -> int:
        """Assign the next slot to (pid, vpn); re-evicting a page gets a
        fresh slot, just like Linux after the old one was faulted back."""
        old = self._page_to_slot.pop((pid, vpn), None)
        if old is not None:
            self._slot_to_page.pop(old, None)
        slot = self._next_slot
        self._next_slot += 1
        self._slot_to_page[slot] = (pid, vpn)
        self._page_to_slot[(pid, vpn)] = slot
        return slot

    def free(self, slot: int) -> None:
        page = self._slot_to_page.pop(slot, None)
        if page is not None:
            self._page_to_slot.pop(page, None)

    def page_at(self, slot: int) -> Optional[Tuple[int, int]]:
        return self._slot_to_page.get(slot)

    def slot_of(self, pid: int, vpn: int) -> Optional[int]:
        return self._page_to_slot.get((pid, vpn))

    def neighbors(self, slot: int, before: int, after: int) -> List[Tuple[int, int]]:
        """Live pages in slots [slot-before, slot+after], excluding
        ``slot`` itself — the read-ahead window."""
        out: List[Tuple[int, int]] = []
        for candidate in range(slot - before, slot + after + 1):
            if candidate == slot:
                continue
            page = self._slot_to_page.get(candidate)
            if page is not None:
                out.append(page)
        return out

    @property
    def slots_in_use(self) -> int:
        return len(self._slot_to_page)


class SwapCache:
    """Pages resident in local DRAM but not mapped into any page table.

    A fault on one of these is a *prefetch-hit*: it still pays the
    synchronous fault cost (2.3 us) but skips the network (Section II-C).
    """

    def __init__(self) -> None:
        self._pages: Dict[Tuple[int, int], float] = {}
        self.inserts = 0
        self.hits = 0
        self.drops = 0

    def insert(self, pid: int, vpn: int, arrival_us: float) -> None:
        self._pages[(pid, vpn)] = arrival_us
        self.inserts += 1

    def lookup(self, pid: int, vpn: int) -> Optional[float]:
        """Arrival time when present (the page stays cached; the fault
        handler removes it when mapping)."""
        return self._pages.get((pid, vpn))

    def take(self, pid: int, vpn: int) -> Optional[float]:
        """Remove and return the arrival time (fault-path mapping)."""
        arrival = self._pages.pop((pid, vpn), None)
        if arrival is not None:
            self.hits += 1
        return arrival

    def drop(self, pid: int, vpn: int) -> bool:
        """Reclaim an unused swapcache page (it was clean by definition)."""
        if self._pages.pop((pid, vpn), None) is not None:
            self.drops += 1
            return True
        return False

    def __contains__(self, key: Tuple[int, int]) -> bool:
        return key in self._pages

    def __len__(self) -> int:
        return len(self._pages)
