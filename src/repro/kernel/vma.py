"""Virtual memory areas.

Workload generators register their allocations as VMAs; the VMA-based
read-ahead baseline (Linux 5.4 behaviour, Section VI-E) uses them to
bound prefetching to the faulting page's region, which the paper notes is
"a resemblance of page clustering".
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional

from repro.common.types import VmaRegion


class VmaMap:
    """Sorted, non-overlapping VMA registry for one process."""

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self._starts: List[int] = []
        self._regions: List[VmaRegion] = []

    def add(self, start_vpn: int, npages: int, name: str = "") -> VmaRegion:
        if npages < 1:
            raise ValueError("a VMA needs at least one page")
        region = VmaRegion(start_vpn, start_vpn + npages, name, self.pid)
        idx = bisect.bisect_left(self._starts, start_vpn)
        prev_overlaps = idx > 0 and self._regions[idx - 1].end_vpn > start_vpn
        next_overlaps = (
            idx < len(self._regions) and region.end_vpn > self._regions[idx].start_vpn
        )
        if prev_overlaps or next_overlaps:
            raise ValueError(
                f"VMA [{start_vpn}, {region.end_vpn}) overlaps an existing region"
            )
        self._starts.insert(idx, start_vpn)
        self._regions.insert(idx, region)
        return region

    def find(self, vpn: int) -> Optional[VmaRegion]:
        idx = bisect.bisect_right(self._starts, vpn) - 1
        if idx < 0:
            return None
        region = self._regions[idx]
        return region if vpn in region else None

    def __len__(self) -> int:
        return len(self._regions)

    def __iter__(self):
        return iter(self._regions)


class VmaRegistry:
    """Per-PID VMA maps."""

    def __init__(self) -> None:
        self._maps: Dict[int, VmaMap] = {}

    def for_pid(self, pid: int) -> VmaMap:
        vmas = self._maps.get(pid)
        if vmas is None:
            vmas = VmaMap(pid)
            self._maps[pid] = vmas
        return vmas

    def find(self, pid: int, vpn: int) -> Optional[VmaRegion]:
        vmas = self._maps.get(pid)
        return vmas.find(vpn) if vmas else None
