"""Page reclaim: per-cgroup LRU lists and batch eviction.

Models the post-Linux-v5.8 behaviour the paper assumes (Section II-A):
reclaim runs ahead of the fault path in batches, so its 2-5 us/page cost
is mostly off the critical path.  New/faulted pages enter at the MRU end —
which is exactly why inaccurately prefetched pages with injected PTEs are
"more difficult to evict" (Section II-C): they sit in front of genuinely
useful pages.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.common.constants import T_RECLAIM_PER_PAGE_US

#: A page identity on the LRU lists.
PageKey = Tuple[int, int]  # (pid, vpn)


class LruPageList:
    """Recency-ordered resident pages for one cgroup.

    The left end is least-recently-used; ``insert`` places pages at the
    MRU (right) end like Linux's lru_cache_add, ``touch`` refreshes.
    """

    def __init__(self) -> None:
        self._pages: "OrderedDict[PageKey, None]" = OrderedDict()

    def insert(self, pid: int, vpn: int) -> None:
        key = (pid, vpn)
        if key in self._pages:
            self._pages.move_to_end(key)
        else:
            self._pages[key] = None

    def touch(self, pid: int, vpn: int) -> bool:
        key = (pid, vpn)
        if key in self._pages:
            self._pages.move_to_end(key)
            return True
        return False

    def remove(self, pid: int, vpn: int) -> bool:
        key = (pid, vpn)
        if key in self._pages:
            del self._pages[key]
            return True
        return False

    def demote(self, pid: int, vpn: int) -> bool:
        """Move a page to the LRU (coldest) end — the 'eager eviction'
        hint Leap applies to already-consumed prefetch pages."""
        key = (pid, vpn)
        if key in self._pages:
            self._pages.move_to_end(key, last=False)
            return True
        return False

    def victims(self, count: int) -> List[PageKey]:
        """Up to ``count`` LRU-end pages, coldest first (non-destructive)."""
        out: List[PageKey] = []
        for key in self._pages:
            if len(out) >= count:
                break
            out.append(key)
        return out

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, key: PageKey) -> bool:
        return key in self._pages

    def __iter__(self) -> Iterator[PageKey]:
        return iter(self._pages)


@dataclass
class ReclaimStats:
    batches: int = 0
    pages_reclaimed: int = 0
    clean_drops: int = 0
    writebacks: int = 0
    background_us: float = 0.0


class Reclaimer:
    """Batch reclaim policy.

    ``watermark_slack`` pages of headroom are restored per pass so reclaim
    runs in bursts (like kswapd between low/high watermarks) instead of
    one page at a time.
    """

    def __init__(self, batch_size: int = 32, watermark_slack: int = 16) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = batch_size
        self.watermark_slack = watermark_slack
        self.stats = ReclaimStats()

    def plan(self, lru: LruPageList, resident: int, limit: int) -> List[PageKey]:
        """Choose victims so that ``resident`` drops to
        ``limit - watermark_slack`` (bounded by what's on the list)."""
        if resident <= limit:
            return []
        goal = resident - max(limit - self.watermark_slack, 0)
        goal = max(goal, 0)
        victims = lru.victims(min(goal, len(lru)))
        if victims:
            self.stats.batches += 1
        return victims

    def account(self, npages: int, clean: int) -> float:
        """Record a completed batch; returns its background CPU time."""
        self.stats.pages_reclaimed += npages
        self.stats.clean_drops += clean
        self.stats.writebacks += npages - clean
        cost = npages * T_RECLAIM_PER_PAGE_US
        self.stats.background_us += cost
        return cost
