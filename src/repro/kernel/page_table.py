"""Per-process page tables with HoPP's RPT maintenance hooks.

The paper keeps the reverse page table consistent by hooking the kernel's
PTE update functions (``set_pte_at`` / ``pte_clear``, Section V).  The
:class:`PageTable` here exposes the same hook points: every transition
that maps or unmaps a physical frame notifies registered listeners.
"""

from __future__ import annotations

import enum
from dataclasses import field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.common.compat import slotted_dataclass
from repro.common.types import PageKind


class PteState(enum.IntEnum):
    """Lifecycle of a virtual page in the remote-swap world.

    UNTOUCHED  never accessed; first touch is a minor fault.
    PRESENT    mapped in local DRAM (present bit set).
    SWAPCACHE  resident in the local swapcache but *not* mapped: the next
               access takes a fault that resolves as a prefetch-hit
               (Section II-C's 2.3 us path).
    INFLIGHT   a demand or prefetch read is outstanding on the fabric.
    REMOTE     swapped out to the remote memory node.
    """

    UNTOUCHED = 0
    PRESENT = 1
    SWAPCACHE = 2
    INFLIGHT = 3
    REMOTE = 4


@slotted_dataclass()
class Pte:
    """One page-table entry plus the swap metadata the simulator needs.

    ``slots=True``: one Pte exists per touched virtual page, so the
    per-instance dict would dominate the simulator's memory and the
    attribute loads its time.
    """

    state: PteState = PteState.UNTOUCHED
    ppn: int = -1
    swap_slot: int = -1
    dirty: bool = False
    kind: PageKind = PageKind.BASE_4K
    shared: bool = False
    #: Prefetch bookkeeping: which system/tier fetched this copy, when it
    #: arrived, and whether its PTE was injected before first use.
    prefetched: bool = False
    prefetch_tier: str = ""
    arrival_us: float = 0.0
    injected: bool = False


#: Hook signature: (pid, vpn, ppn, entry) on set; (pid, vpn, ppn) on clear.
PteSetHook = Callable[[int, int, int, Pte], None]
PteClearHook = Callable[[int, int, int], None]


class PageTable:
    """Sparse VPN -> PTE mapping for one process."""

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self._entries: Dict[int, Pte] = {}
        self._set_hooks: List[PteSetHook] = []
        self._clear_hooks: List[PteClearHook] = []

    # -- hooks (Section V: set_pte_at / pte_clear callbacks) -------------------

    def add_set_hook(self, hook: PteSetHook) -> None:
        self._set_hooks.append(hook)

    def add_clear_hook(self, hook: PteClearHook) -> None:
        self._clear_hooks.append(hook)

    # -- entry access -----------------------------------------------------------

    def entry(self, vpn: int) -> Pte:
        """Return the PTE for ``vpn``, creating an UNTOUCHED one on demand."""
        pte = self._entries.get(vpn)
        if pte is None:
            pte = Pte()
            self._entries[vpn] = pte
        return pte

    def peek(self, vpn: int) -> Optional[Pte]:
        return self._entries.get(vpn)

    def map_page(self, vpn: int, ppn: int, injected: bool = False) -> Pte:
        """Set the present bit: VPN now maps to local frame ``ppn``.

        Fires the set hooks so the reverse page table stays consistent.
        """
        pte = self.entry(vpn)
        pte.state = PteState.PRESENT
        pte.ppn = ppn
        pte.injected = injected
        for hook in self._set_hooks:
            hook(self.pid, vpn, ppn, pte)
        return pte

    def unmap_page(self, vpn: int) -> Optional[Pte]:
        """Clear the present bit (reclaim path); fires the clear hooks."""
        pte = self._entries.get(vpn)
        if pte is None or pte.state != PteState.PRESENT:
            return None
        ppn = pte.ppn
        pte.ppn = -1
        for hook in self._clear_hooks:
            hook(self.pid, vpn, ppn)
        return pte

    # -- iteration ----------------------------------------------------------------

    def present_pages(self) -> Iterator[Tuple[int, Pte]]:
        for vpn, pte in self._entries.items():
            if pte.state == PteState.PRESENT:
                yield vpn, pte

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._entries
