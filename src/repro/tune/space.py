"""Typed search-space DSL for the design-space autotuner.

A :class:`SearchSpace` is an ordered tuple of named parameters, each a
typed dimension (int / float / categorical, linear or log scale) whose
``name`` is a dotted *binding path* that says where the sampled value
lands in a :class:`~repro.exec.spec.RunSpec`:

``system.<knob>``
    A HoppConfig knob override (``system.hpd_threshold``,
    ``system.policy.alpha`` — see :func:`repro.sim.systems.hopp_knobs`),
    shipped via ``RunSpec.system_kwargs``.
``cluster.<field>``
    A :class:`~repro.cluster.cluster.ClusterConfig` field
    (``cluster.nodes``, ``cluster.placement``, ``cluster.replication``).
``memtier.<field>``
    A :class:`~repro.memtier.MemtierConfig` field; the special value
    ``memtier.pool_nodes = 0`` turns tiering off entirely (RunSpec
    ``memtier=None``), making "no CXL pool" a searchable design point.
``workload.<kwarg>``
    A workload constructor override (``workload.passes`` — the
    trace-length fidelity axis successive halving scales).
``run.fraction``
    The local-memory fraction.

Everything is a pure value object: sampling and mutation draw only from
the caller's ``random.Random``, so a search trajectory is a function of
its seed.  ``to_dict``/``from_dict`` round-trip a space through the
journal header, which is how a resumed run proves it is continuing the
same search.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from random import Random
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.cluster import ClusterConfig
from repro.exec.spec import RunSpec
from repro.memtier import MemtierConfig

#: A sampled design point: binding path -> scalar value.
Config = Dict[str, object]

#: Binding roots :func:`to_run_spec` understands.
BINDING_ROOTS = ("system", "cluster", "memtier", "workload", "run")


class SpaceError(ValueError):
    """A malformed parameter, space, or config."""


def _check_name(name: str) -> None:
    root, dot, rest = name.partition(".")
    if root not in BINDING_ROOTS or not dot or not rest:
        raise SpaceError(
            f"parameter name {name!r} must be '<root>.<path>' with root "
            f"in {', '.join(BINDING_ROOTS)}"
        )
    if root == "run" and rest != "fraction":
        raise SpaceError(
            f"parameter name {name!r}: the 'run' root only binds "
            "'run.fraction'"
        )


@dataclass(frozen=True)
class IntParam:
    """An integer dimension in [lo, hi]; ``log=True`` samples on a log
    scale (geometry-style knobs where 2 -> 4 matters like 16 -> 32)."""

    name: str
    lo: int
    hi: int
    log: bool = False

    def __post_init__(self) -> None:
        _check_name(self.name)
        if not isinstance(self.lo, int) or not isinstance(self.hi, int):
            raise SpaceError(f"{self.name}: int bounds must be ints")
        if self.lo > self.hi:
            raise SpaceError(f"{self.name}: lo {self.lo} > hi {self.hi}")
        if self.log and self.lo < 1:
            raise SpaceError(f"{self.name}: log scale needs lo >= 1")

    def sample(self, rng: Random) -> int:
        if self.log:
            value = math.exp(rng.uniform(math.log(self.lo), math.log(self.hi)))
            return min(self.hi, max(self.lo, int(round(value))))
        return rng.randint(self.lo, self.hi)

    def mutate(self, value: object, rng: Random) -> int:
        current = int(value)  # journal round-trips keep ints exact
        if self.log:
            moved = int(round(current * math.exp(rng.gauss(0.0, 0.5))))
        else:
            span = max(1, (self.hi - self.lo) // 4)
            moved = current + int(round(rng.gauss(0.0, span)))
        moved = min(self.hi, max(self.lo, moved))
        if moved == current:
            # A mutation that moves nowhere stalls evolution on small
            # ranges; force one deterministic step toward the far bound.
            step = 1 if current < self.hi else -1
            moved = min(self.hi, max(self.lo, current + step))
        return moved

    def validate(self, value: object) -> None:
        if isinstance(value, bool) or not isinstance(value, int):
            raise SpaceError(f"{self.name}: expected int, got {value!r}")
        if not self.lo <= value <= self.hi:
            raise SpaceError(
                f"{self.name}: {value} outside [{self.lo}, {self.hi}]"
            )

    def to_dict(self) -> Dict[str, object]:
        return {"kind": "int", "name": self.name, "lo": self.lo,
                "hi": self.hi, "log": self.log}


@dataclass(frozen=True)
class FloatParam:
    """A float dimension in [lo, hi], linear or log scale."""

    name: str
    lo: float
    hi: float
    log: bool = False

    def __post_init__(self) -> None:
        _check_name(self.name)
        if self.lo > self.hi:
            raise SpaceError(f"{self.name}: lo {self.lo} > hi {self.hi}")
        if self.log and self.lo <= 0:
            raise SpaceError(f"{self.name}: log scale needs lo > 0")

    def sample(self, rng: Random) -> float:
        if self.log:
            return math.exp(rng.uniform(math.log(self.lo), math.log(self.hi)))
        return rng.uniform(self.lo, self.hi)

    def mutate(self, value: object, rng: Random) -> float:
        current = float(value)
        if self.log:
            moved = current * math.exp(rng.gauss(0.0, 0.4))
        else:
            moved = current + rng.gauss(0.0, 0.25 * (self.hi - self.lo))
        moved = min(self.hi, max(self.lo, moved))
        if moved == current and self.lo < self.hi:
            # A draw clamped back onto the current value (sitting on a
            # bound) would stall evolution; step halfway to the far
            # bound instead so mutation always moves.
            target = self.lo if current - self.lo > self.hi - current else self.hi
            moved = (current + target) / 2.0
        return moved

    def validate(self, value: object) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SpaceError(f"{self.name}: expected float, got {value!r}")
        if not self.lo <= value <= self.hi:
            raise SpaceError(
                f"{self.name}: {value} outside [{self.lo}, {self.hi}]"
            )

    def to_dict(self) -> Dict[str, object]:
        return {"kind": "float", "name": self.name, "lo": self.lo,
                "hi": self.hi, "log": self.log}


@dataclass(frozen=True)
class CatParam:
    """A categorical dimension over an explicit choice tuple."""

    name: str
    choices: Tuple[object, ...]

    def __post_init__(self) -> None:
        _check_name(self.name)
        choices = tuple(self.choices)
        object.__setattr__(self, "choices", choices)
        if len(choices) < 2:
            raise SpaceError(f"{self.name}: needs >= 2 choices")
        if len(set(map(repr, choices))) != len(choices):
            raise SpaceError(f"{self.name}: duplicate choices")

    def sample(self, rng: Random) -> object:
        return self.choices[rng.randrange(len(self.choices))]

    def mutate(self, value: object, rng: Random) -> object:
        others = [c for c in self.choices if c != value]
        return others[rng.randrange(len(others))]

    def validate(self, value: object) -> None:
        if value not in self.choices:
            raise SpaceError(
                f"{self.name}: {value!r} not in {self.choices!r}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {"kind": "cat", "name": self.name,
                "choices": list(self.choices)}


Param = object  # IntParam | FloatParam | CatParam (py3.9-safe alias)

_PARAM_KINDS = {"int": IntParam, "float": FloatParam, "cat": CatParam}


def _param_from_dict(payload: Dict[str, object]):
    kind = payload.get("kind")
    cls = _PARAM_KINDS.get(kind)
    if cls is None:
        raise SpaceError(f"unknown parameter kind {kind!r}")
    if cls is CatParam:
        return CatParam(payload["name"], tuple(payload["choices"]))
    return cls(payload["name"], payload["lo"], payload["hi"],
               bool(payload.get("log", False)))


@dataclass(frozen=True)
class SearchSpace:
    """An ordered, validated tuple of parameters."""

    params: Tuple[Param, ...]
    name: str = "custom"

    def __post_init__(self) -> None:
        params = tuple(self.params)
        object.__setattr__(self, "params", params)
        if not params:
            raise SpaceError("a search space needs >= 1 parameter")
        names = [p.name for p in params]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SpaceError(f"duplicate parameter names: {', '.join(dupes)}")

    def __iter__(self):
        return iter(self.params)

    def sample(self, rng: Random) -> Config:
        """One design point, drawing each dimension in declared order."""
        return {p.name: p.sample(rng) for p in self.params}

    def mutate(self, config: Config, rng: Random, rate: float = 0.35) -> Config:
        """A neighbor of ``config``: each dimension moves with
        probability ``rate``; at least one always moves."""
        self.validate(config)
        child = dict(config)
        moved = False
        for param in self.params:
            if rng.random() < rate:
                child[param.name] = param.mutate(config[param.name], rng)
                moved = True
        if not moved:
            param = self.params[rng.randrange(len(self.params))]
            child[param.name] = param.mutate(config[param.name], rng)
        return child

    def validate(self, config: Config) -> None:
        """``config`` must bind exactly this space's dimensions."""
        expected = {p.name for p in self.params}
        got = set(config)
        if expected != got:
            missing = sorted(expected - got)
            extra = sorted(got - expected)
            raise SpaceError(
                f"config does not match space: missing {missing}, "
                f"extra {extra}"
            )
        for param in self.params:
            param.validate(config[param.name])

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name,
                "params": [p.to_dict() for p in self.params]}

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "SearchSpace":
        return SearchSpace(
            params=tuple(_param_from_dict(p) for p in payload["params"]),
            name=payload.get("name", "custom"),
        )


def to_run_spec(base: RunSpec, config: Config) -> RunSpec:
    """Bind a design point onto a base RunSpec.

    The base carries everything the search does not touch (workload,
    seed, fabric, fault plan...); each config entry lands where its
    binding root says.  Pure: the base is never modified, and the same
    (base, config) always produces an identical spec — which is what
    makes the result cacheable and the search resumable.
    """
    system_kwargs = dict(base.system_kwargs)
    workload_kwargs = dict(base.workload_kwargs)
    cluster_fields: Dict[str, object] = {}
    memtier_fields: Dict[str, object] = {}
    fraction = base.fraction
    for name in sorted(config):
        value = config[name]
        root, _, path = name.partition(".")
        if root == "system":
            system_kwargs[path] = value
        elif root == "workload":
            workload_kwargs[path] = value
        elif root == "cluster":
            cluster_fields[path] = value
        elif root == "memtier":
            memtier_fields[path] = value
        elif root == "run":  # _check_name pinned path == "fraction"
            fraction = float(value)
        else:
            raise SpaceError(f"unknown binding root in {name!r}")

    cluster = base.cluster
    if cluster_fields:
        cluster = replace(cluster or ClusterConfig(), **cluster_fields)
    memtier = base.memtier
    if memtier_fields:
        pool_nodes = memtier_fields.pop("pool_nodes", None)
        if pool_nodes == 0:
            # "No pooled tier" is itself a design point.
            memtier = None
        else:
            if pool_nodes is not None:
                memtier_fields["pool_nodes"] = pool_nodes
            memtier = replace(memtier or MemtierConfig(), **memtier_fields)
    return replace(
        base,
        fraction=fraction,
        workload_kwargs=workload_kwargs,
        system_kwargs=system_kwargs,
        cluster=cluster,
        memtier=memtier,
    )


def _snap(param: Param, value: object) -> object:
    """Coerce a base-spec value onto a dimension: clamp numeric ranges,
    snap to the nearest numeric choice, refuse anything else loudly."""
    if isinstance(param, CatParam):
        if value in param.choices:
            return value
        numeric = [
            c for c in param.choices
            if isinstance(c, (int, float)) and not isinstance(c, bool)
        ]
        if (
            numeric
            and isinstance(value, (int, float))
            and not isinstance(value, bool)
        ):
            return min(numeric, key=lambda c: (abs(c - value), c))
        raise SpaceError(
            f"{param.name}: base value {value!r} is not a choice in "
            f"{param.choices!r} and cannot be snapped"
        )
    if isinstance(param, IntParam):
        return min(param.hi, max(param.lo, int(value)))
    return float(min(param.hi, max(param.lo, float(value))))


def default_config(space: SearchSpace, base: RunSpec) -> Config:
    """``base`` expressed as a design point in ``space``.

    This is "the paper's configuration" as the search sees it: every
    ``system.*`` dimension takes the registered system's current knob
    value, cluster/memtier/run dimensions take the base spec's settings
    (snapped into the dimension's domain when the default sits outside
    it).  Evolutionary search seeds generation zero with this point, so
    the best-found config can never score below the expert baseline.
    """
    from repro.sim import systems as systems_mod

    knob_values: Optional[Dict[str, object]] = None
    config: Config = {}
    for param in space.params:
        root, _, path = param.name.partition(".")
        if root == "system":
            if path in base.system_kwargs:
                value = base.system_kwargs[path]
            else:
                if knob_values is None:
                    knob_values = systems_mod.hopp_knob_values(base.system)
                value = knob_values[path]
        elif root == "cluster":
            value = getattr(base.cluster or ClusterConfig(), path)
        elif root == "memtier":
            if base.memtier is None:
                value = 0 if path == "pool_nodes" else getattr(
                    MemtierConfig(), path
                )
            else:
                value = getattr(base.memtier, path)
        elif root == "workload":
            if path not in base.workload_kwargs:
                raise SpaceError(
                    f"{param.name}: base spec has no workload kwarg "
                    f"{path!r} to take a default from"
                )
            value = base.workload_kwargs[path]
        else:  # run.fraction
            value = base.fraction
        config[param.name] = _snap(param, value)
    space.validate(config)
    return config


# ---------------------------------------------------------------------------
# Named spaces (the paper's hand-tuned tables as searchable dimensions).

_SPACES: Dict[str, Callable[[], SearchSpace]] = {}


def register_space(name: str, factory: Callable[[], SearchSpace]) -> None:
    """Extension point: add a named space for the CLI / benches."""
    _SPACES[name] = factory


def space_names() -> List[str]:
    return sorted(_SPACES)


def build_space(name: str) -> SearchSpace:
    factory = _SPACES.get(name)
    if factory is None:
        raise SpaceError(
            f"unknown search space {name!r}; known: "
            f"{', '.join(space_names())}"
        )
    return factory()


def _hpd_params() -> Tuple[Param, ...]:
    # Table 2 sweeps the hot threshold N; Table 3 and the A2 ablation
    # sweep the table geometry.
    return (
        IntParam("system.hpd_threshold", 2, 32, log=True),
        CatParam("system.hpd_sets", (1, 2, 4, 8, 16)),
        CatParam("system.hpd_ways", (4, 8, 16, 32)),
    )


def _stt_params() -> Tuple[Param, ...]:
    return (
        CatParam("system.stt_entries", (16, 32, 64, 128)),
        CatParam("system.stt_history_len", (8, 16, 32)),
        CatParam("system.stt_stream_delta", (32, 64, 128)),
    )


def _policy_params() -> Tuple[Param, ...]:
    # Figure 22's alpha / T-range / i_max sensitivity arms.  The T
    # ranges are disjoint so t_min < t_max holds at every design point.
    return (
        FloatParam("system.policy.alpha", 0.02, 0.8, log=True),
        IntParam("system.policy.intensity", 1, 4),
        FloatParam("system.policy.offset_max", 64.0, 4096.0, log=True),
        FloatParam("system.policy.t_min_us", 10.0, 100.0, log=True),
        FloatParam("system.policy.t_max_us", 500.0, 20_000.0, log=True),
    )


def _placement_params() -> Tuple[Param, ...]:
    # nodes >= 2 keeps every sampled replication in ClusterConfig's
    # valid range, so the space never produces an unbuildable spec.
    return (
        CatParam("cluster.nodes", (2, 3)),
        CatParam("cluster.replication", (1, 2)),
        CatParam("cluster.placement", ("interleave", "hash", "affinity")),
        CatParam("memtier.pool_nodes", (0, 1, 2)),
        FloatParam("memtier.cxl_latency_us", 0.4, 3.2, log=True),
    )


register_space("hpd", lambda: SearchSpace(_hpd_params(), name="hpd"))
register_space(
    "hopp-core",
    lambda: SearchSpace(
        _hpd_params() + _stt_params() + _policy_params(), name="hopp-core"
    ),
)
register_space(
    "placement", lambda: SearchSpace(_placement_params(), name="placement")
)
register_space(
    "full",
    lambda: SearchSpace(
        _hpd_params() + _stt_params() + _policy_params() + _placement_params(),
        name="full",
    ),
)
