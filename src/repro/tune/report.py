"""Trajectory and best-config reporting for tuning runs.

The archgym-style artifact is best-fitness-vs-trials: for every trial
index, the best scalarized score seen so far.  Two searches are
"the same" exactly when these curves coincide — which is what the
determinism and resume tests assert.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from repro.tune.tuner import TuneResult


def trajectory_rows(result: TuneResult) -> List[Dict[str, object]]:
    """One row per trial: index, fidelity, this score, best-so-far."""
    rows: List[Dict[str, object]] = []
    best = float("-inf")
    for trial in result.trials:
        if trial.score > best:
            best = trial.score
        rows.append(
            {
                "trial": trial.index,
                "fidelity": trial.fidelity,
                "score": trial.score,
                "best": best,
                "source": trial.source,
            }
        )
    return rows


def render_trajectory(result: TuneResult, width: int = 40) -> str:
    """A terminal-friendly best-fitness-vs-trials sparkline table."""
    rows = trajectory_rows(result)
    if not rows:
        return "(no trials)"
    scores = [row["best"] for row in rows]
    lo, hi = min(scores), max(scores)
    span = hi - lo
    lines = [f"{'trial':>5}  {'score':>10}  {'best':>10}  progress"]
    for row in rows:
        frac = 1.0 if span == 0 else (row["best"] - lo) / span
        bar = "#" * max(1, int(round(frac * width)))
        lines.append(
            f"{row['trial']:>5}  {row['score']:>10.4f}  "
            f"{row['best']:>10.4f}  {bar}"
        )
    return "\n".join(lines)


def best_config_report(result: TuneResult) -> Dict[str, object]:
    """The machine-readable "what won" summary the CLI and CI emit."""
    best = result.best
    return {
        "strategy": result.strategy_name,
        "objective": result.objective.to_dict(),
        "trials": len(result.trials),
        "evaluations": result.evaluations,
        "journal_replays": result.journal_replays,
        "cache": dict(result.cache_stats),
        "best": None
        if best is None
        else {
            "trial": best.index,
            "score": best.score,
            "feasible": result.objective.feasible(best.metrics),
            "config": dict(best.config),
            "metrics": dict(best.metrics),
        },
        "trajectory": [[i, s] for i, s in result.trajectory()],
    }


def write_report(result: TuneResult, path: Path) -> Path:
    """Persist the best-config report (JSON) next to the journal."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(best_config_report(result), indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
    return path
