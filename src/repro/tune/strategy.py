"""Search strategies behind a common ask/tell interface.

A :class:`Strategy` proposes batches of design points (``ask``) and
learns their scores (``tell``).  All randomness comes from a private
``random.Random(seed)`` advanced only inside ``ask``, so the proposal
sequence is a pure function of (seed, space, strategy config, tell
history) — that is the whole determinism/resume argument: re-running the
loop replays the identical trajectory, whether the evaluations come from
the simulator, the result cache, or the journal.

Three strategies ship:

* :class:`RandomSearch` — seeded uniform sampling; the honest baseline.
* :class:`Evolutionary` — a (mu + lambda) loop: keep the best ``mu``
  ever seen, breed ``lam`` children by binary tournament + mutation.
  Optionally warm-started from expert configs (e.g. the paper's).
* :class:`SuccessiveHalving` — a cohort at the cheapest trace-length
  rung, top 1/eta promoted per rung until the full-fidelity rung.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Callable, Dict, List, Optional, Sequence

from repro.tune.space import Config, SearchSpace


class StrategyError(ValueError):
    """A malformed strategy configuration."""


@dataclass(frozen=True)
class TrialRequest:
    """One proposed evaluation: a design point at a fidelity rung.

    ``fidelity`` indexes the tuner's trace-length ladder; ``None`` means
    full fidelity (the only rung random/evolutionary search uses).
    """

    config: Config
    fidelity: Optional[int] = None


@dataclass
class Trial:
    """One completed evaluation, as the strategies and journal see it."""

    index: int
    config: Config
    fidelity: Optional[int]
    metrics: Dict[str, float]
    score: float
    source: str = "run"  # "run" (simulated or cache-served) | "journal"

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "trial",
            "index": self.index,
            "config": dict(self.config),
            "fidelity": self.fidelity,
            "metrics": dict(self.metrics),
            "score": self.score,
        }


class Strategy:
    """ask/tell interface every search strategy implements."""

    name: str = "strategy"

    def config_dict(self) -> Dict[str, object]:
        """The journal-header projection: everything that shapes the
        proposal sequence besides the space and the tell history."""
        raise NotImplementedError

    def ask(self, remaining: int) -> List[TrialRequest]:
        """At most ``remaining`` proposals (> 0); empty means done."""
        raise NotImplementedError

    def tell(self, trials: Sequence[Trial]) -> None:
        """Results for the last ``ask`` batch, in proposal order."""
        raise NotImplementedError

    def finished(self) -> bool:
        """True once the strategy has nothing left to propose."""
        return False


class RandomSearch(Strategy):
    """Seeded uniform sampling over the space, ``batch`` points per ask."""

    name = "random"

    def __init__(self, space: SearchSpace, seed: int, batch: int = 8) -> None:
        if batch < 1:
            raise StrategyError(f"batch must be >= 1, got {batch}")
        self.space = space
        self.seed = seed
        self.batch = batch
        self._rng = Random(seed)

    def config_dict(self) -> Dict[str, object]:
        return {"seed": self.seed, "batch": self.batch}

    def ask(self, remaining: int) -> List[TrialRequest]:
        count = min(self.batch, remaining)
        return [TrialRequest(self.space.sample(self._rng)) for _ in range(count)]

    def tell(self, trials: Sequence[Trial]) -> None:
        pass  # memoryless by design


class Evolutionary(Strategy):
    """(mu + lambda) evolution: elitist parent pool, tournament + mutate.

    ``seed_configs`` warm-start the initial population (the classic
    "include the expert config" trick — the paper's defaults enter
    generation zero, so the best-found can never fall below them).
    """

    name = "evolve"

    def __init__(
        self,
        space: SearchSpace,
        seed: int,
        mu: int = 6,
        lam: int = 6,
        mutation_rate: float = 0.35,
        seed_configs: Sequence[Config] = (),
    ) -> None:
        if mu < 1 or lam < 1:
            raise StrategyError(f"mu and lam must be >= 1, got {mu}/{lam}")
        if not 0.0 < mutation_rate <= 1.0:
            raise StrategyError(
                f"mutation_rate must be in (0, 1], got {mutation_rate}"
            )
        self.space = space
        self.seed = seed
        self.mu = mu
        self.lam = lam
        self.mutation_rate = mutation_rate
        self.seed_configs = tuple(dict(c) for c in seed_configs)
        for config in self.seed_configs:
            space.validate(config)
        self._rng = Random(seed)
        self._told: List[Trial] = []
        self._generation = 0

    def config_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "mu": self.mu,
            "lam": self.lam,
            "mutation_rate": self.mutation_rate,
            "seed_configs": [dict(c) for c in self.seed_configs],
        }

    def _parents(self) -> List[Trial]:
        """The best ``mu`` trials ever told, earliest index on ties —
        the elitist (mu + lambda) survivor rule."""
        ranked = sorted(self._told, key=lambda t: (-t.score, t.index))
        return ranked[: self.mu]

    def ask(self, remaining: int) -> List[TrialRequest]:
        if self._generation == 0:
            count = min(self.mu, remaining)
            initial = [dict(c) for c in self.seed_configs[:count]]
            while len(initial) < count:
                initial.append(self.space.sample(self._rng))
            return [TrialRequest(config) for config in initial]
        parents = self._parents()
        children: List[TrialRequest] = []
        for _ in range(min(self.lam, remaining)):
            a = parents[self._rng.randrange(len(parents))]
            b = parents[self._rng.randrange(len(parents))]
            winner = a if (a.score, -a.index) >= (b.score, -b.index) else b
            children.append(
                TrialRequest(
                    self.space.mutate(
                        winner.config, self._rng, rate=self.mutation_rate
                    )
                )
            )
        return children

    def tell(self, trials: Sequence[Trial]) -> None:
        self._told.extend(trials)
        self._generation += 1


class SuccessiveHalving(Strategy):
    """Successive halving over the tuner's trace-length fidelity ladder.

    An ``initial`` cohort runs at rung 0 (the shortest traces); after
    each rung the top ``1/eta`` by score are promoted to the next rung,
    down to the final full-fidelity rung.  Cheap rungs weed out the bulk
    of the space, full fidelity decides among the survivors.
    """

    name = "sha"

    def __init__(
        self,
        space: SearchSpace,
        seed: int,
        initial: int = 8,
        eta: int = 2,
        rungs: int = 2,
    ) -> None:
        if initial < 1:
            raise StrategyError(f"initial cohort must be >= 1, got {initial}")
        if eta < 2:
            raise StrategyError(f"eta must be >= 2, got {eta}")
        if rungs < 1:
            raise StrategyError(f"rungs must be >= 1, got {rungs}")
        self.space = space
        self.seed = seed
        self.initial = initial
        self.eta = eta
        self.rungs = rungs
        self._rng = Random(seed)
        self._rung = 0
        self._cohort: Optional[List[Config]] = None
        self._last_told: List[Trial] = []
        self._finished = False

    def config_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "initial": self.initial,
            "eta": self.eta,
            "rungs": self.rungs,
        }

    @staticmethod
    def plan_initial(budget: int, eta: int = 2, rungs: int = 2) -> int:
        """The largest rung-0 cohort whose full ladder fits ``budget``
        evaluations (every rung evaluation costs one budget unit)."""
        if budget < 1:
            raise StrategyError(f"budget must be >= 1, got {budget}")
        best = 1
        for n0 in range(1, budget + 1):
            total, n = 0, n0
            for _ in range(rungs):
                total += n
                n = max(1, n // eta)
            if total <= budget:
                best = n0
            else:
                break
        return best

    def ask(self, remaining: int) -> List[TrialRequest]:
        if self._finished:
            return []
        if self._cohort is None:
            self._cohort = [
                self.space.sample(self._rng) for _ in range(self.initial)
            ]
        else:
            ranked = sorted(
                self._last_told, key=lambda t: (-t.score, t.index)
            )
            keep = max(1, len(ranked) // self.eta)
            self._cohort = [dict(t.config) for t in ranked[:keep]]
            self._rung += 1
        cohort = self._cohort[:remaining]
        return [
            TrialRequest(dict(config), fidelity=self._rung)
            for config in cohort
        ]

    def tell(self, trials: Sequence[Trial]) -> None:
        self._last_told = list(trials)
        # A lone survivor still climbs the remaining rungs: the final
        # decision must come from full fidelity, not a cheap proxy.
        if self._rung >= self.rungs - 1:
            self._finished = True

    def finished(self) -> bool:
        return self._finished


#: name -> factory(space, seed, **kwargs); the CLI and benches build
#: strategies through this registry.
_STRATEGIES: Dict[str, Callable[..., Strategy]] = {
    "random": RandomSearch,
    "evolve": Evolutionary,
    "sha": SuccessiveHalving,
}


def strategy_names() -> List[str]:
    return sorted(_STRATEGIES)


def build_strategy(
    name: str, space: SearchSpace, seed: int, **kwargs
) -> Strategy:
    factory = _STRATEGIES.get(name)
    if factory is None:
        raise StrategyError(
            f"unknown strategy {name!r}; known: {', '.join(strategy_names())}"
        )
    return factory(space, seed, **kwargs)
