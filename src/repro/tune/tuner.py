"""The Tuner driver: ask -> evaluate through the exec engine -> tell.

Every candidate evaluation is a :class:`~repro.exec.spec.RunSpec` sent
through :func:`repro.exec.pool.execute`, so a batch fans out over
``jobs`` workers and every point lands in (and is served from) the
content-addressed ResultCache — re-running or resuming a search performs
zero fresh simulator work for points it has already seen.

Determinism and resume
----------------------
A search is a pure function of (seed, space, strategy config, objective,
base spec): strategies draw randomness only from their own seeded RNG,
evaluations are deterministic simulations, and the loop schedule depends
on nothing else.  The journal (``tune.jsonl``) records a header (that
identity) plus one line per trial.  Resuming replays the loop from trial
zero: the strategies re-propose the identical configs, journaled trials
are served from the journal (no simulation, no cache lookup even), and
the first un-journaled trial continues live — so a killed run picks up
exactly where it died, with the identical trajectory, asserted by tests
and the CI smoke.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exec.cache import ResultCache, canonical_json
from repro.exec.pool import execute, local_ct_spec
from repro.exec.spec import RunSpec
from repro.tune.objective import Objective, extract_metrics, pareto_front
from repro.tune.space import SearchSpace, to_run_spec
from repro.tune.strategy import Strategy, Trial, TrialRequest

#: Journal format version; bump when the line schema changes.
JOURNAL_VERSION = 1


class TuneError(ValueError):
    """A malformed tuning setup or an inconsistent journal."""


@dataclass(frozen=True)
class FidelitySpec:
    """The trace-length ladder successive halving climbs.

    ``kwarg`` names a workload constructor knob that scales the trace
    (``passes``, ``iterations``, ``operations``...); ``values`` are its
    rung settings, cheapest first, full fidelity last.  Strategies that
    do not use rungs always evaluate at ``values[-1]``.
    """

    kwarg: str
    values: Tuple[object, ...]

    def __post_init__(self) -> None:
        values = tuple(self.values)
        object.__setattr__(self, "values", values)
        if not self.kwarg:
            raise TuneError("fidelity kwarg must be non-empty")
        if not values:
            raise TuneError("fidelity needs >= 1 rung value")

    def value_for(self, fidelity: Optional[int]) -> object:
        if fidelity is None:
            return self.values[-1]
        if not 0 <= fidelity < len(self.values):
            raise TuneError(
                f"fidelity rung {fidelity} outside ladder of "
                f"{len(self.values)}"
            )
        return self.values[fidelity]

    def to_dict(self) -> Dict[str, object]:
        return {"kwarg": self.kwarg, "values": list(self.values)}

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "FidelitySpec":
        return FidelitySpec(payload["kwarg"], tuple(payload["values"]))


@dataclass
class TuneResult:
    """Everything a finished (or exhausted-budget) search produced."""

    trials: List[Trial]
    best: Optional[Trial]
    evaluations: int
    journal_replays: int
    cache_stats: Dict[str, int]
    space: SearchSpace
    objective: Objective
    strategy_name: str

    def trajectory(self) -> List[Tuple[int, float]]:
        """archgym-style best-fitness-vs-trials: (trial index, best
        score seen so far), one entry per trial."""
        out: List[Tuple[int, float]] = []
        best = float("-inf")
        for trial in self.trials:
            if trial.score > best:
                best = trial.score
            out.append((trial.index, best))
        return out

    def pareto(self, axes: Sequence[str] = ("coverage", "accuracy")) -> List[Trial]:
        """Non-dominated trials over ``axes`` (full-fidelity only, so
        cheap-rung proxies never pollute the front)."""
        full = [t for t in self.trials if self._is_full_fidelity(t)]
        front = pareto_front([t.metrics for t in full], axes)
        return [full[i] for i in front]

    def _is_full_fidelity(self, trial: Trial) -> bool:
        return trial.fidelity is None or trial.fidelity == self._top_rung

    #: Set by the Tuner; -1 means "no fidelity ladder".
    _top_rung: int = -1

    def to_dict(self) -> Dict[str, object]:
        return {
            "strategy": self.strategy_name,
            "space": self.space.to_dict(),
            "objective": self.objective.to_dict(),
            "evaluations": self.evaluations,
            "journal_replays": self.journal_replays,
            "cache": dict(self.cache_stats),
            "best": None if self.best is None else self.best.to_dict(),
            "trajectory": [[i, s] for i, s in self.trajectory()],
            "trials": [t.to_dict() for t in self.trials],
        }


class Tuner:
    """Drive one strategy over one search space against one base spec.

    ``base`` pins everything the space does not bind: workload, system,
    seed, fabric, fault plan.  ``budget`` caps candidate evaluations
    (CT_local yardstick runs are free: they are shared across trials and
    almost always cache hits).  ``journal`` (a path) arms trial logging
    and resume; ``resume=True`` replays an existing journal first.
    """

    def __init__(
        self,
        space: SearchSpace,
        strategy: Strategy,
        base: RunSpec,
        budget: int,
        objective: Optional[Objective] = None,
        fidelity: Optional[FidelitySpec] = None,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        journal: Optional[Path] = None,
        resume: bool = False,
    ) -> None:
        if budget < 1:
            raise TuneError(f"budget must be >= 1 evaluation, got {budget}")
        if jobs < 1:
            raise TuneError(f"jobs must be >= 1, got {jobs}")
        self.space = space
        self.strategy = strategy
        self.base = base
        self.budget = budget
        self.objective = objective or Objective()
        self.fidelity = fidelity
        self.jobs = jobs
        self.cache = cache
        self.journal = Path(journal) if journal is not None else None
        self.resume = resume
        self._replay: List[Dict[str, object]] = []
        self.journal_replays = 0
        self._ct_local: Dict[str, float] = {}

    # -- journal ----------------------------------------------------------

    def _header(self) -> Dict[str, object]:
        return {
            "kind": "header",
            "version": JOURNAL_VERSION,
            "space": self.space.to_dict(),
            "strategy": {
                "name": self.strategy.name,
                "config": self.strategy.config_dict(),
            },
            "objective": self.objective.to_dict(),
            "fidelity": (
                None if self.fidelity is None else self.fidelity.to_dict()
            ),
            # key_dict is the canonical projection of every
            # result-affecting base input — exactly the identity a
            # resumed run must share.
            "base": self.base.key_dict(),
        }

    def _load_journal(self) -> None:
        try:
            lines = self.journal.read_text(encoding="utf-8").splitlines()
        except OSError as error:
            raise TuneError(
                f"cannot resume: journal {self.journal} unreadable ({error})"
            ) from None
        if not lines:
            raise TuneError(f"cannot resume: journal {self.journal} is empty")
        try:
            header = json.loads(lines[0])
            entries = [json.loads(line) for line in lines[1:] if line.strip()]
        except ValueError as error:
            raise TuneError(
                f"cannot resume: journal {self.journal} is not valid "
                f"JSONL ({error})"
            ) from None
        if header.get("kind") != "header":
            raise TuneError(
                f"cannot resume: journal {self.journal} has no header line"
            )
        ours = self._header()
        if canonical_json(header) != canonical_json(ours):
            raise TuneError(
                "cannot resume: journal header does not match this search "
                "(seed, space, strategy, objective, or base spec differ); "
                "start a fresh journal or rerun the original configuration"
            )
        for position, entry in enumerate(entries):
            if entry.get("kind") != "trial" or entry.get("index") != position:
                raise TuneError(
                    f"cannot resume: journal {self.journal} trial line "
                    f"{position} is malformed or out of order"
                )
        self._replay = entries

    def _write_header(self) -> None:
        self.journal.parent.mkdir(parents=True, exist_ok=True)
        with open(self.journal, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(self._header(), sort_keys=True) + "\n")

    def _append_trials(self, trials: Sequence[Trial]) -> None:
        fresh = [t for t in trials if t.source != "journal"]
        if not fresh or self.journal is None:
            return
        with open(self.journal, "a", encoding="utf-8") as handle:
            for trial in fresh:
                handle.write(json.dumps(trial.to_dict(), sort_keys=True) + "\n")

    # -- evaluation -------------------------------------------------------

    def _spec_for(self, request: TrialRequest) -> RunSpec:
        base = self.base
        if self.fidelity is not None:
            kwargs = dict(base.workload_kwargs)
            kwargs[self.fidelity.kwarg] = self.fidelity.value_for(
                request.fidelity
            )
            base = replace(base, workload_kwargs=kwargs)
        elif request.fidelity is not None:
            raise TuneError(
                "strategy proposed a fidelity rung but the tuner has no "
                "FidelitySpec; successive halving needs one"
            )
        return to_run_spec(base, request.config)

    def _ct_key(self, spec: RunSpec) -> str:
        return canonical_json(
            {"workload": spec.workload, "kwargs": {
                str(k): spec.workload_kwargs[k]
                for k in sorted(spec.workload_kwargs)
            }}
        )

    def _evaluate(
        self, requests: Sequence[TrialRequest], start_index: int
    ) -> List[Trial]:
        trials: List[Optional[Trial]] = [None] * len(requests)
        live: List[Tuple[int, TrialRequest, RunSpec]] = []
        for offset, request in enumerate(requests):
            index = start_index + offset
            if index < len(self._replay):
                entry = self._replay[index]
                same_config = entry["config"] == {
                    str(k): request.config[k] for k in request.config
                }
                if not same_config or entry.get("fidelity") != request.fidelity:
                    raise TuneError(
                        f"cannot resume: journal trial {index} diverges from "
                        "the re-proposed trajectory (the journal belongs to "
                        "a different search)"
                    )
                trials[offset] = Trial(
                    index=index,
                    config=dict(entry["config"]),
                    fidelity=entry.get("fidelity"),
                    metrics=dict(entry["metrics"]),
                    score=float(entry["score"]),
                    source="journal",
                )
                self.journal_replays += 1
            else:
                live.append((offset, request, self._spec_for(request)))

        if live:
            # One execute() batch: the CT_local yardsticks this batch
            # still misses, then every candidate point — the pool and
            # cache see them all at once.
            ct_keys_needed: List[str] = []
            ct_specs: List[RunSpec] = []
            for _, _, spec in live:
                key = self._ct_key(spec)
                if key not in self._ct_local and key not in ct_keys_needed:
                    ct_keys_needed.append(key)
                    ct_specs.append(
                        local_ct_spec(
                            spec.workload, spec.seed, spec.fabric,
                            spec.workload_kwargs,
                        )
                    )
            batch = ct_specs + [spec for _, _, spec in live]
            outputs = execute(batch, jobs=self.jobs, cache=self.cache)
            for key, result in zip(ct_keys_needed, outputs):
                self._ct_local[key] = result.completion_time_us
            for (offset, request, spec), result in zip(
                live, outputs[len(ct_specs):]
            ):
                metrics = extract_metrics(
                    result, self._ct_local[self._ct_key(spec)]
                )
                trials[offset] = Trial(
                    index=start_index + offset,
                    config=dict(request.config),
                    fidelity=request.fidelity,
                    metrics=metrics,
                    score=self.objective.score(metrics),
                )
        return list(trials)

    # -- driver -----------------------------------------------------------

    def run(self) -> TuneResult:
        if self.journal is not None:
            if self.resume and self.journal.exists():
                self._load_journal()
            else:
                self._write_header()

        all_trials: List[Trial] = []
        while len(all_trials) < self.budget and not self.strategy.finished():
            remaining = self.budget - len(all_trials)
            requests = self.strategy.ask(remaining)
            if not requests:
                break
            if len(requests) > remaining:
                raise TuneError(
                    f"strategy over-asked: {len(requests)} requests with "
                    f"{remaining} budget remaining"
                )
            trials = self._evaluate(requests, start_index=len(all_trials))
            self._append_trials(trials)
            self.strategy.tell(trials)
            all_trials.extend(trials)

        best = None
        top_rung = -1 if self.fidelity is None else len(self.fidelity.values) - 1
        for trial in all_trials:
            # Only full-fidelity scores compete for "best": a cheap-rung
            # proxy number is not comparable to a full evaluation.
            full = trial.fidelity is None or trial.fidelity == top_rung
            if full and (best is None or trial.score > best.score):
                best = trial
        result = TuneResult(
            trials=all_trials,
            best=best,
            evaluations=len(all_trials) - self.journal_replays,
            journal_replays=self.journal_replays,
            cache_stats=(
                self.cache.stats() if self.cache is not None else {}
            ),
            space=self.space,
            objective=self.objective,
            strategy_name=self.strategy.name,
        )
        result._top_rung = top_rung
        return result
