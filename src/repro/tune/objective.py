"""Composable objective layer: what "better" means for a design point.

An :class:`Objective` names one metric to maximize (or minimize) and any
number of :class:`Constraint` bounds on other metrics.  Scalarization is
penalty-based: the score is the goal metric minus ``penalty *
violation`` per violated constraint, so infeasible points sort below
feasible ones but still rank among themselves (the search can climb out
of an infeasible region instead of flailing on ties).

Metrics are extracted from a RunResult plus its CT_local reference
(normalized performance needs the yardstick).  :func:`pareto_front`
reports the non-dominated set when one scalar is not the whole story.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.sim.metrics import RunResult

#: Metrics the objective layer can reference.  Sign conventions are
#: handled by Objective.goal, not here.
METRIC_NAMES = (
    "normalized_performance",
    "accuracy",
    "coverage",
    "completion_time_us",
    "page_faults",
    "remote_accesses",
    "prefetch_wasted",
    "prefetch_issued",
)


class ObjectiveError(ValueError):
    """A malformed objective or constraint expression."""


def extract_metrics(result: RunResult, ct_local_us: float) -> Dict[str, float]:
    """The full metric vector for one evaluated design point."""
    return {
        "normalized_performance": result.normalized_performance(ct_local_us),
        "accuracy": result.accuracy,
        "coverage": result.coverage,
        "completion_time_us": result.completion_time_us,
        "page_faults": float(result.page_faults),
        "remote_accesses": float(result.remote_accesses),
        "prefetch_wasted": float(result.prefetch_wasted),
        "prefetch_issued": float(result.prefetch_issued),
    }


@dataclass(frozen=True)
class Constraint:
    """``metric <op> bound`` with a scalarization penalty weight."""

    metric: str
    op: str  # ">=" or "<="
    bound: float
    penalty: float = 10.0

    def __post_init__(self) -> None:
        if self.metric not in METRIC_NAMES:
            raise ObjectiveError(
                f"unknown constraint metric {self.metric!r}; known: "
                f"{', '.join(METRIC_NAMES)}"
            )
        if self.op not in (">=", "<="):
            raise ObjectiveError(
                f"constraint op must be '>=' or '<=', got {self.op!r}"
            )
        if self.penalty <= 0:
            raise ObjectiveError("constraint penalty must be > 0")

    def violation(self, metrics: Dict[str, float]) -> float:
        """How far outside the bound the point sits (0 = satisfied)."""
        value = metrics[self.metric]
        if self.op == ">=":
            return max(0.0, self.bound - value)
        return max(0.0, value - self.bound)

    def to_dict(self) -> Dict[str, object]:
        return {"metric": self.metric, "op": self.op, "bound": self.bound,
                "penalty": self.penalty}

    @staticmethod
    def parse(text: str) -> "Constraint":
        """``"accuracy>=0.5"`` / ``"prefetch_wasted<=200"`` (an optional
        ``@<penalty>`` suffix overrides the default weight)."""
        body, penalty = text, 10.0
        if "@" in text:
            body, raw = text.rsplit("@", 1)
            try:
                penalty = float(raw)
            except ValueError:
                raise ObjectiveError(
                    f"bad constraint penalty {raw!r} in {text!r}"
                ) from None
        for op in (">=", "<="):
            if op in body:
                metric, raw_bound = body.split(op, 1)
                try:
                    bound = float(raw_bound)
                except ValueError:
                    raise ObjectiveError(
                        f"bad constraint bound {raw_bound!r} in {text!r}"
                    ) from None
                return Constraint(metric.strip(), op, bound, penalty)
        raise ObjectiveError(
            f"constraint {text!r} needs '>=' or '<=' (e.g. 'accuracy>=0.5')"
        )


@dataclass(frozen=True)
class Objective:
    """Maximize (or minimize) ``goal`` subject to ``constraints``."""

    goal: str = "normalized_performance"
    maximize: bool = True
    constraints: Tuple[Constraint, ...] = ()

    def __post_init__(self) -> None:
        if self.goal not in METRIC_NAMES:
            raise ObjectiveError(
                f"unknown objective metric {self.goal!r}; known: "
                f"{', '.join(METRIC_NAMES)}"
            )
        object.__setattr__(self, "constraints", tuple(self.constraints))

    def score(self, metrics: Dict[str, float]) -> float:
        """Scalarized fitness: higher is always better."""
        base = metrics[self.goal]
        if not self.maximize:
            base = -base
        return base - sum(
            c.penalty * c.violation(metrics) for c in self.constraints
        )

    def feasible(self, metrics: Dict[str, float]) -> bool:
        return all(c.violation(metrics) == 0.0 for c in self.constraints)

    def to_dict(self) -> Dict[str, object]:
        return {
            "goal": self.goal,
            "maximize": self.maximize,
            "constraints": [c.to_dict() for c in self.constraints],
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "Objective":
        return Objective(
            goal=payload["goal"],
            maximize=bool(payload["maximize"]),
            constraints=tuple(
                Constraint(c["metric"], c["op"], c["bound"], c["penalty"])
                for c in payload.get("constraints", ())
            ),
        )

    @staticmethod
    def parse(goal: str, constraints: Sequence[str] = ()) -> "Objective":
        """CLI form: goal is a metric name, ``-`` prefix to minimize."""
        maximize = True
        goal = goal.strip()
        if goal.startswith("-"):
            maximize = False
            goal = goal[1:].strip()
        return Objective(
            goal=goal,
            maximize=maximize,
            constraints=tuple(Constraint.parse(c) for c in constraints),
        )


def pareto_front(
    metric_rows: Sequence[Dict[str, float]],
    axes: Sequence[str] = ("coverage", "accuracy"),
) -> List[int]:
    """Indices of the non-dominated rows, maximizing every axis.

    Ties are kept (two identical points both survive), so the front is
    deterministic in input order.
    """
    if not axes:
        raise ObjectiveError("pareto_front needs >= 1 axis")
    front: List[int] = []
    for i, row in enumerate(metric_rows):
        dominated = False
        for j, other in enumerate(metric_rows):
            if j == i:
                continue
            at_least = all(other[a] >= row[a] for a in axes)
            strictly = any(other[a] > row[a] for a in axes)
            if at_least and strictly:
                dominated = True
                break
        if not dominated:
            front.append(i)
    return front
