"""Design-space autotuner: deterministic black-box search over the
HoPP configuration space (HPD geometry, STT, policy, placement, memory
tiers), riding the exec engine so every evaluation is cached, parallel,
and resumable.  See docs/architecture.md section 16.
"""

from repro.tune.objective import (
    Constraint,
    Objective,
    ObjectiveError,
    extract_metrics,
    pareto_front,
)
from repro.tune.report import (
    best_config_report,
    render_trajectory,
    trajectory_rows,
    write_report,
)
from repro.tune.space import (
    CatParam,
    FloatParam,
    IntParam,
    SearchSpace,
    SpaceError,
    build_space,
    default_config,
    register_space,
    space_names,
    to_run_spec,
)
from repro.tune.strategy import (
    Evolutionary,
    RandomSearch,
    Strategy,
    StrategyError,
    SuccessiveHalving,
    Trial,
    TrialRequest,
    build_strategy,
    strategy_names,
)
from repro.tune.tuner import FidelitySpec, TuneError, TuneResult, Tuner

__all__ = [
    "CatParam",
    "Constraint",
    "Evolutionary",
    "FidelitySpec",
    "FloatParam",
    "IntParam",
    "Objective",
    "ObjectiveError",
    "RandomSearch",
    "SearchSpace",
    "SpaceError",
    "Strategy",
    "StrategyError",
    "SuccessiveHalving",
    "Trial",
    "TrialRequest",
    "TuneError",
    "TuneResult",
    "Tuner",
    "best_config_report",
    "build_space",
    "build_strategy",
    "default_config",
    "extract_metrics",
    "pareto_front",
    "register_space",
    "render_trajectory",
    "space_names",
    "strategy_names",
    "to_run_spec",
    "trajectory_rows",
    "write_report",
]
