"""RDMA fabric and remote memory node models."""

from repro.net.rdma import FabricConfig, RdmaFabric
from repro.net.remote import RemoteMemoryNode, RemoteReadError

__all__ = ["FabricConfig", "RdmaFabric", "RemoteMemoryNode", "RemoteReadError"]
