"""Deterministic fault injection for the fabric and the remote node.

The paper's testbed rides real Infiniband, which loses completions,
flaps links, and stalls remote CPUs; the simulator's fabric used to
model only the happy path.  A :class:`FaultPlan` is a declarative,
seeded schedule of hostile fabric behaviour; a :class:`FaultInjector`
executes it against ``RdmaFabric`` and ``RemoteMemoryNode`` so the
swap path can be exercised under typed, reproducible failures:

* **per-transfer drops** — a READ/WRITE whose completion never arrives
  (:class:`TransferTimeout`), chosen by a seeded coin per transfer;
* **link-down windows** — flaps during which every transfer times out;
* **bulk-QP brownouts** — windows during which only prefetch reads are
  dropped while the priority (demand) QP stays up;
* **degraded epochs** — intervals where propagation latency is
  multiplied (incast, congestion collapse);
* **remote-node stalls** — intervals adding fixed service delay at the
  memory node;
* **remote-node restarts** — intervals where the node answers nothing
  (:class:`RemoteUnavailableError`);
* **node crashes** — ``node_crash`` timestamps after which the node is
  *permanently* dead (its stored pages are gone) until a paired
  ``node_rejoin`` timestamp, if any, re-admits it empty.  Crashes are
  what the cluster's health monitor and repair engine exist for
  (:mod:`repro.cluster.health`, :mod:`repro.cluster.repair`);
* **silent corruption** — ``bit_flip_read`` (transient wire flip on a
  READ payload), ``bit_flip_write`` (the stored copy lands corrupted),
  and ``media_error_rate`` (a stored copy silently rots at a later,
  deterministic strike time).  None of these raise at injection time:
  they poison *data*, not completions, and only checksum verification
  (:mod:`repro.integrity`) ever notices.

Everything is a pure function of (plan, seed, transfer sequence), so a
run under faults is exactly as reproducible as a clean run.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple


# -- typed failures -------------------------------------------------------------------


class FaultError(RuntimeError):
    """Base of every injected-fault error."""


class TransferTimeout(FaultError):
    """A fabric transfer whose completion (CQE) never arrived.

    ``wasted_us`` is the time the issuer spent waiting before declaring
    the transfer dead — it is real elapsed time the caller must account.
    """

    def __init__(self, kind: str, at_us: float, wasted_us: float) -> None:
        super().__init__(f"{kind} transfer timed out at {at_us:.1f} us")
        self.kind = kind
        self.at_us = at_us
        self.wasted_us = wasted_us


class RemoteUnavailableError(TransferTimeout):
    """The remote node is restarting and answers nothing; from the
    issuer's side this is indistinguishable from a transfer timeout."""


class RemoteFetchFatalError(FaultError):
    """A demand fetch (or reclaim writeback) exhausted its retry budget."""

    def __init__(
        self, pid: int, vpn: int, attempts: int, waited_us: float = 0.0
    ) -> None:
        super().__init__(
            f"remote fetch of (pid={pid}, vpn={vpn}) failed after "
            f"{attempts} attempts"
        )
        self.pid = pid
        self.vpn = vpn
        self.attempts = attempts
        #: Elapsed time the issuer burned across every attempt — what an
        #: absorbing caller must still charge to the fault.
        self.waited_us = waited_us


# -- the declarative plan -------------------------------------------------------------


@dataclass(frozen=True)
class Window:
    """A half-open interval [start_us, end_us) of simulated time."""

    start_us: float
    end_us: float

    def __post_init__(self) -> None:
        if self.start_us < 0 or self.end_us < self.start_us:
            raise ValueError(
                f"invalid window [{self.start_us}, {self.end_us})"
            )

    def contains(self, t_us: float) -> bool:
        return self.start_us <= t_us < self.end_us


@dataclass(frozen=True)
class DegradedEpoch(Window):
    """A window during which propagation latency is multiplied."""

    factor: float = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.factor < 1.0:
            raise ValueError(f"degradation factor must be >= 1, got {self.factor}")


def _windows(raw: Sequence) -> Tuple[Window, ...]:
    out = []
    for item in raw:
        if isinstance(item, Window):
            out.append(item)
        else:
            out.append(Window(float(item[0]), float(item[1])))
    return tuple(out)


def _epochs(raw: Sequence) -> Tuple[DegradedEpoch, ...]:
    out = []
    for item in raw:
        if isinstance(item, DegradedEpoch):
            out.append(item)
        else:
            out.append(
                DegradedEpoch(float(item[0]), float(item[1]), float(item[2]))
            )
    return tuple(out)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative schedule of fabric and remote-node faults.

    An all-defaults plan injects nothing; ``Machine`` treats it exactly
    like no plan at all, so baseline numbers are untouched.
    """

    seed: int = 0
    #: Per-READ chance (demand and prefetch alike) of a dropped completion.
    timeout_probability: float = 0.0
    #: Per-WRITE chance (reclaim writeback) of a dropped completion.
    write_timeout_probability: float = 0.0
    #: Time the issuer waits before declaring a transfer dead (the CQE
    #: timeout); charged as wasted latency per drop.
    timeout_us: float = 50.0
    #: Link flaps: every transfer issued inside one of these times out.
    link_down: Tuple[Window, ...] = ()
    #: Bulk-QP brownouts: windows during which only *prefetch* reads are
    #: dropped — the priority (demand) QP and writebacks stay up.  This
    #: is the fault that exercises the prefetch circuit breaker without
    #: stalling the critical path.
    prefetch_down: Tuple[Window, ...] = ()
    #: Latency-degradation epochs (propagation multiplied by ``factor``).
    degraded: Tuple[DegradedEpoch, ...] = ()
    #: Remote-node stall windows (fixed extra service delay per access).
    remote_stall: Tuple[Window, ...] = ()
    remote_stall_extra_us: float = 20.0
    #: Remote-node restart windows (node answers nothing).
    remote_restart: Tuple[Window, ...] = ()
    #: Permanent-crash timestamps: from ``node_crash[i]`` on, the node
    #: struck by crash *i* answers nothing and its stored pages are lost.
    #: On a cluster, crash *i* lands on node ``i % nodes`` (like windows).
    node_crash: Tuple[float, ...] = ()
    #: Optional rejoin timestamps, paired by index with ``node_crash``:
    #: ``node_rejoin[i]`` re-admits the node struck by crash *i* — empty,
    #: as a fresh machine racked in to replace the dead one.  Fewer
    #: rejoins than crashes means the unpaired crashes are forever.
    node_rejoin: Tuple[float, ...] = ()
    #: Per-READ chance the payload arrives with a flipped bit.  Transient
    #: wire corruption: the stored copy is fine, a re-read from the same
    #: node comes back clean.
    bit_flip_read: float = 0.0
    #: Per-WRITE chance the payload lands corrupted.  Persistent: the
    #: stored copy is bad until it is overwritten or repaired.
    bit_flip_write: float = 0.0
    #: Per-stored-copy chance of a latent media error: the copy is clean
    #: at write time and silently rots at a deterministic later strike
    #: time, uniform in ``(write, write + media_error_latency_us)``.
    media_error_rate: float = 0.0
    media_error_latency_us: float = 20_000.0

    def __post_init__(self) -> None:
        for name in (
            "timeout_probability",
            "write_timeout_probability",
            "bit_flip_read",
            "bit_flip_write",
            "media_error_rate",
        ):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.timeout_us <= 0:
            raise ValueError(f"timeout_us must be > 0, got {self.timeout_us}")
        if self.remote_stall_extra_us < 0:
            raise ValueError("remote_stall_extra_us must be >= 0")
        if self.media_error_latency_us <= 0:
            raise ValueError(
                f"media_error_latency_us must be > 0, "
                f"got {self.media_error_latency_us}"
            )
        object.__setattr__(self, "link_down", _windows(self.link_down))
        object.__setattr__(self, "prefetch_down", _windows(self.prefetch_down))
        object.__setattr__(self, "degraded", _epochs(self.degraded))
        object.__setattr__(self, "remote_stall", _windows(self.remote_stall))
        object.__setattr__(self, "remote_restart", _windows(self.remote_restart))
        object.__setattr__(
            self, "node_crash", tuple(float(t) for t in self.node_crash)
        )
        object.__setattr__(
            self, "node_rejoin", tuple(float(t) for t in self.node_rejoin)
        )
        if len(self.node_rejoin) > len(self.node_crash):
            raise ValueError(
                f"{len(self.node_rejoin)} node_rejoin times for only "
                f"{len(self.node_crash)} node_crash times"
            )
        for index, rejoin in enumerate(self.node_rejoin):
            if rejoin <= self.node_crash[index]:
                raise ValueError(
                    f"node_rejoin[{index}]={rejoin} must come after "
                    f"node_crash[{index}]={self.node_crash[index]}"
                )
        for crash in self.node_crash:
            if crash < 0:
                raise ValueError(f"node_crash times must be >= 0, got {crash}")

    @property
    def is_empty(self) -> bool:
        """True when the plan can never inject anything."""
        return (
            self.timeout_probability == 0.0
            and self.write_timeout_probability == 0.0
            and not self.link_down
            and not self.prefetch_down
            and not self.degraded
            and not self.remote_stall
            and not self.remote_restart
            and not self.node_crash
            and not self.has_corruption
        )

    @property
    def has_corruption(self) -> bool:
        """True when the plan can silently corrupt data (which arms the
        checksum-verify machinery on the demand and migration paths)."""
        return (
            self.bit_flip_read > 0.0
            or self.bit_flip_write > 0.0
            or self.media_error_rate > 0.0
        )

    # -- construction helpers ---------------------------------------------------------

    @classmethod
    def none(cls) -> "FaultPlan":
        return cls()

    @classmethod
    def chaos(cls, seed: int = 1) -> "FaultPlan":
        """The standard hostile-fabric preset: probabilistic drops on
        both READ paths, one long degraded epoch, two short link flaps,
        a remote-CPU stall, and one remote restart."""
        return cls(
            seed=seed,
            timeout_probability=0.05,
            write_timeout_probability=0.02,
            timeout_us=50.0,
            link_down=((20_000.0, 20_500.0), (60_000.0, 60_400.0)),
            degraded=((30_000.0, 45_000.0, 4.0),),
            remote_stall=((50_000.0, 55_000.0),),
            remote_stall_extra_us=25.0,
            remote_restart=((70_000.0, 70_400.0),),
        )

    @classmethod
    def crash(cls, seed: int = 1, at_us: float = 30_000.0) -> "FaultPlan":
        """One permanent node crash mid-run and nothing else: the
        cleanest way to exercise detect -> repair -> (maybe) lose."""
        return cls(seed=seed, node_crash=(at_us,))

    @classmethod
    def crash_rejoin(
        cls,
        seed: int = 1,
        at_us: float = 30_000.0,
        rejoin_us: float = 80_000.0,
    ) -> "FaultPlan":
        """A crash whose node is replaced (empty) later in the run, so
        the full DOWN -> repair -> REJOINING -> UP lifecycle runs."""
        return cls(seed=seed, node_crash=(at_us,), node_rejoin=(rejoin_us,))

    @classmethod
    def corruption(cls, seed: int = 1) -> "FaultPlan":
        """Silent corruption only: wire flips on both transfer
        directions plus latent media errors, with no loud faults at all
        — every wrong page the run serves would be *undetected* without
        checksum verification."""
        return cls(
            seed=seed,
            bit_flip_read=0.01,
            bit_flip_write=0.005,
            media_error_rate=0.05,
            media_error_latency_us=15_000.0,
        )

    @classmethod
    def corruption_chaos(cls, seed: int = 1) -> "FaultPlan":
        """The hostile-fabric preset with silent corruption layered on
        top: drops, flaps and stalls racing wire flips and media rot."""
        chaos = cls.chaos(seed)
        return replace(
            chaos,
            bit_flip_read=0.01,
            bit_flip_write=0.005,
            media_error_rate=0.05,
            media_error_latency_us=15_000.0,
        )

    #: Field -> converter used by :meth:`from_dict` so a malformed JSON
    #: plan fails naming the offending field, not with a bare TypeError.
    _FIELD_PARSERS = {
        "seed": int,
        "timeout_probability": float,
        "write_timeout_probability": float,
        "timeout_us": float,
        "link_down": _windows,
        "prefetch_down": _windows,
        "degraded": _epochs,
        "remote_stall": _windows,
        "remote_stall_extra_us": float,
        "remote_restart": _windows,
        "node_crash": lambda raw: tuple(float(t) for t in raw),
        "node_rejoin": lambda raw: tuple(float(t) for t in raw),
        "bit_flip_read": float,
        "bit_flip_write": float,
        "media_error_rate": float,
        "media_error_latency_us": float,
    }

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultPlan":
        unknown = set(data) - set(cls._FIELD_PARSERS)
        if unknown:
            raise ValueError(f"unknown fault-plan keys: {sorted(unknown)}")
        parsed = {}
        for key, value in data.items():
            try:
                parsed[key] = cls._FIELD_PARSERS[key](value)
            except (TypeError, ValueError, IndexError) as error:
                raise ValueError(
                    f"fault-plan field {key!r} is malformed "
                    f"({value!r}): {error}"
                ) from None
        return cls(**parsed)

    @classmethod
    def from_json_file(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "timeout_probability": self.timeout_probability,
            "write_timeout_probability": self.write_timeout_probability,
            "timeout_us": self.timeout_us,
            "link_down": [[w.start_us, w.end_us] for w in self.link_down],
            "prefetch_down": [
                [w.start_us, w.end_us] for w in self.prefetch_down
            ],
            "degraded": [
                [e.start_us, e.end_us, e.factor] for e in self.degraded
            ],
            "remote_stall": [[w.start_us, w.end_us] for w in self.remote_stall],
            "remote_stall_extra_us": self.remote_stall_extra_us,
            "remote_restart": [[w.start_us, w.end_us] for w in self.remote_restart],
            "node_crash": list(self.node_crash),
            "node_rejoin": list(self.node_rejoin),
            "bit_flip_read": self.bit_flip_read,
            "bit_flip_write": self.bit_flip_write,
            "media_error_rate": self.media_error_rate,
            "media_error_latency_us": self.media_error_latency_us,
        }


# -- the executor ---------------------------------------------------------------------


class FaultInjector:
    """Executes a :class:`FaultPlan` against the fabric and remote node.

    Holds its own seeded RNG (independent of the fabric's jitter RNG, so
    arming a plan does not perturb the clean latency sequence) and the
    injection counters surfaced into ``RunResult``.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        # Corruption coins come from their own stream so arming (or
        # re-tuning) corruption never perturbs the timeout/drop sequence
        # existing chaos results are pinned to.
        self._corrupt_rng = random.Random(plan.seed ^ 0xC0FFEE)
        self.timeouts_injected = 0
        self.drops_by_kind: Dict[str, int] = {}
        self.link_down_drops = 0
        self.prefetch_down_drops = 0
        self.degraded_transfers = 0
        self.remote_stalls = 0
        self.remote_unavailable = 0
        self.crash_refusals = 0
        self.bit_flips_injected = 0
        self.media_errors_injected = 0

    # -- fabric hooks -----------------------------------------------------------------

    def check_transfer(self, now_us: float, kind: str) -> None:
        """Raise :class:`TransferTimeout` when this transfer is dropped
        (dead node, link-down window, or the per-transfer seeded coin)."""
        if self.node_dead(now_us):
            self.crash_refusals += 1
            self._count_drop(kind)
            raise RemoteUnavailableError(kind, now_us, self.plan.timeout_us)
        for window in self.plan.link_down:
            if window.contains(now_us):
                self.link_down_drops += 1
                self._count_drop(kind)
                raise TransferTimeout(kind, now_us, self.plan.timeout_us)
        if kind == "prefetch":
            for window in self.plan.prefetch_down:
                if window.contains(now_us):
                    self.prefetch_down_drops += 1
                    self._count_drop(kind)
                    raise TransferTimeout(kind, now_us, self.plan.timeout_us)
        probability = (
            self.plan.write_timeout_probability
            if kind == "write"
            else self.plan.timeout_probability
        )
        if probability and self._rng.random() < probability:
            self._count_drop(kind)
            raise TransferTimeout(kind, now_us, self.plan.timeout_us)

    def latency_factor(self, now_us: float) -> float:
        """Propagation multiplier from any active degraded epoch."""
        factor = 1.0
        for epoch in self.plan.degraded:
            if epoch.contains(now_us):
                factor *= epoch.factor
        if factor > 1.0:
            self.degraded_transfers += 1
        return factor

    # -- silent-corruption hooks ------------------------------------------------------

    def corrupt_read(self, now_us: float) -> bool:
        """Seeded coin: did this READ payload arrive with a flipped bit?
        Transient — the stored copy is untouched."""
        p = self.plan.bit_flip_read
        if p and self._corrupt_rng.random() < p:
            self.bit_flips_injected += 1
            return True
        return False

    def corrupt_write(self, now_us: float) -> bool:
        """Seeded coin: did this WRITE land a corrupted stored copy?"""
        p = self.plan.bit_flip_write
        if p and self._corrupt_rng.random() < p:
            self.bit_flips_injected += 1
            return True
        return False

    def media_strike_us(
        self, slot: int, write_index: int, now_us: float
    ) -> Optional[float]:
        """The future time at which this freshly-written copy silently
        rots, or None if it never does.  A pure function of (plan seed,
        slot, write index) — independent of the shared coin streams —
        so identical writes rot identically regardless of interleaving.
        """
        rate = self.plan.media_error_rate
        if not rate:
            return None
        rng = random.Random(
            (self.plan.seed * 1_000_003 + slot) * 1_000_003 + write_index
        )
        if rng.random() >= rate:
            return None
        self.media_errors_injected += 1
        return now_us + rng.random() * self.plan.media_error_latency_us

    # -- remote-node hooks ------------------------------------------------------------

    def node_dead(self, now_us: float) -> bool:
        """True while a permanent crash holds: some ``node_crash[i]`` has
        struck and its paired ``node_rejoin[i]`` (if any) has not."""
        for index, crash in enumerate(self.plan.node_crash):
            if crash <= now_us:
                rejoins = self.plan.node_rejoin
                if index >= len(rejoins) or now_us < rejoins[index]:
                    return True
        return False

    def check_remote(self, now_us: float) -> None:
        """Raise :class:`RemoteUnavailableError` during restart windows
        and after a permanent crash (until its rejoin, if any)."""
        if self.node_dead(now_us):
            self.crash_refusals += 1
            raise RemoteUnavailableError("remote", now_us, self.plan.timeout_us)
        for window in self.plan.remote_restart:
            if window.contains(now_us):
                self.remote_unavailable += 1
                raise RemoteUnavailableError("remote", now_us, self.plan.timeout_us)

    def remote_delay_us(self, now_us: float) -> float:
        """Extra service delay while the remote node's CPU is stalled."""
        for window in self.plan.remote_stall:
            if window.contains(now_us):
                self.remote_stalls += 1
                return self.plan.remote_stall_extra_us
        return 0.0

    # -- bookkeeping ------------------------------------------------------------------

    def _count_drop(self, kind: str) -> None:
        self.timeouts_injected += 1
        self.drops_by_kind[kind] = self.drops_by_kind.get(kind, 0) + 1
