"""RDMA fabric model.

Substitutes the paper's 56 Gbps Infiniband testbed with a latency and
bandwidth model.  The base 4 KB transfer takes ~4 us (Section II-A step 4);
on top of that we model the two effects HoPP's policy engine exists to
absorb (Section III-E): *volatility* (jitter in network and remote-node
service time) and *congestion* (queueing when outstanding transfers exceed
the link's service rate).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.common.constants import PAGE_SIZE, T_RDMA_PAGE_US
from repro.common.stats import RunningStat
from repro.net.faults import FaultInjector
from repro.telemetry.events import (
    EV_FABRIC_READ,
    EV_FABRIC_WRITE,
    EV_FETCH_LATENCY,
)


@dataclass
class FabricConfig:
    """Knobs of the fabric model.

    ``base_latency_us``    one uncontended 4 KB READ.
    ``jitter_us``          uniform [0, jitter] extra latency per transfer.
    ``spike_probability``  chance of a latency spike (incast, remote CPU
                           stall) multiplying the base by ``spike_factor``.
    ``gbps``               link bandwidth; queueing delay builds when the
                           instantaneous offered load exceeds it.
    """

    base_latency_us: float = T_RDMA_PAGE_US
    jitter_us: float = 0.8
    spike_probability: float = 0.01
    spike_factor: float = 5.0
    gbps: float = 56.0
    seed: int = 1

    def __post_init__(self) -> None:
        if self.base_latency_us < 0:
            raise ValueError(
                f"base_latency_us must be >= 0, got {self.base_latency_us}"
            )
        if self.jitter_us < 0:
            raise ValueError(f"jitter_us must be >= 0, got {self.jitter_us}")
        if not 0.0 <= self.spike_probability <= 1.0:
            raise ValueError(
                f"spike_probability must be in [0, 1], got {self.spike_probability}"
            )
        if self.spike_factor < 1.0:
            raise ValueError(
                f"spike_factor must be >= 1, got {self.spike_factor}"
            )
        if self.gbps <= 0:
            raise ValueError(f"gbps must be > 0, got {self.gbps}")


class RdmaFabric:
    """Issues page-sized READs/WRITEs and returns their completion time.

    The fabric is work-conserving with a single FIFO service queue: each
    page occupies the link for ``page_service_us`` and a transfer issued
    while the link is busy queues behind earlier ones.  Latency =
    propagation (base + jitter + spikes) + queueing.
    """

    def __init__(
        self,
        config: Optional[FabricConfig] = None,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        self.config = config or FabricConfig()
        self.injector = injector
        #: Telemetry probe pre-labelled with this link's node id; None
        #: (the default) keeps every traffic path probe-free.  Counts
        #: are emitted *before* the injector check so a timed-out
        #: attempt still reconciles with ``reads``/``writes`` (the
        #: attempt is wire traffic either way); latency is sampled only
        #: on successful completions.
        self.probe = None
        self._rng = random.Random(self.config.seed)
        # Time the link becomes free for the next bulk transfer.
        self._link_free_at_us = 0.0
        # Separate service cursor for priority (demand-fault) reads:
        # they ride their own QP and do not queue behind prefetch
        # bursts, like the separate data paths of Section III.
        self._prio_free_at_us = 0.0
        self.reads = 0
        self.writes = 0
        self.latency_stat = RunningStat()

    @property
    def page_service_us(self) -> float:
        """Link occupancy of one 4 KB page at the configured bandwidth."""
        bits = PAGE_SIZE * 8
        return bits / (self.config.gbps * 1e3)  # Gbps -> bits/us

    def _propagation_us(self, now_us: float) -> float:
        cfg = self.config
        latency = cfg.base_latency_us + self._rng.uniform(0.0, cfg.jitter_us)
        if cfg.spike_probability and self._rng.random() < cfg.spike_probability:
            latency *= cfg.spike_factor
        if self.injector is not None:
            latency *= self.injector.latency_factor(now_us)
        return latency

    def read_page(self, now_us: float, priority: bool = False) -> float:
        """Issue a 4 KB READ at ``now_us``; returns its completion time.

        ``priority`` marks demand-fault reads, which use their own queue
        pair and therefore only contend with other demand reads.

        With a fault injector armed, raises
        :class:`~repro.net.faults.TransferTimeout` when the transfer's
        completion is dropped; the attempt still counts as wire traffic.
        """
        self.reads += 1
        if self.probe is not None:
            self.probe.emit(EV_FABRIC_READ, now_us, n=1)
        if self.injector is not None:
            self.injector.check_transfer(
                now_us, "demand" if priority else "prefetch"
            )
        done = self._transfer(now_us, priority)
        if self.probe is not None:
            self.probe.emit(EV_FETCH_LATENCY, done, latency_us=done - now_us)
        return done

    def read_batch(self, now_us: float, npages: int):
        """One scatter-gather READ of ``npages`` consecutive pages (the
        Section IV huge-page batch): a single propagation delay, then
        pages stream back-to-back at link rate.  Returns the list of
        per-page arrival times (the i-th page lands once its bytes have
        crossed the link)."""
        if npages < 1:
            raise ValueError("npages must be >= 1")
        self.reads += npages
        if self.probe is not None:
            self.probe.emit(EV_FABRIC_READ, now_us, n=npages)
        if self.injector is not None:
            self.injector.check_transfer(now_us, "prefetch")
        start = max(now_us, self._link_free_at_us)
        self._link_free_at_us = start + npages * self.page_service_us
        first_byte = start + self._propagation_us(now_us)
        arrivals = [
            first_byte + (i + 1) * self.page_service_us for i in range(npages)
        ]
        self.latency_stat.add(arrivals[-1] - now_us)
        if self.probe is not None:
            self.probe.emit(
                EV_FETCH_LATENCY, arrivals[-1],
                latency_us=arrivals[-1] - now_us,
            )
        return arrivals

    def write_page(self, now_us: float) -> float:
        """Issue a 4 KB WRITE (reclaim writeback); returns completion."""
        self.writes += 1
        if self.probe is not None:
            self.probe.emit(EV_FABRIC_WRITE, now_us)
        if self.injector is not None:
            self.injector.check_transfer(now_us, "write")
        return self._transfer(now_us, priority=False)

    def _transfer(self, now_us: float, priority: bool) -> float:
        if priority:
            start = max(now_us, self._prio_free_at_us)
            self._prio_free_at_us = start + self.page_service_us
            # The link is shared: bulk traffic sees priority occupancy.
            self._link_free_at_us = max(self._link_free_at_us, self._prio_free_at_us)
        else:
            start = max(now_us, self._link_free_at_us)
            self._link_free_at_us = start + self.page_service_us
        done = start + self._propagation_us(now_us)
        self.latency_stat.add(done - now_us)
        return done

    @property
    def transfers(self) -> int:
        return self.reads + self.writes

    @property
    def bytes_moved(self) -> int:
        return self.transfers * PAGE_SIZE

    def stats_snapshot(self) -> dict:
        """Public counter snapshot, for per-link metrics aggregation and
        debugging (no caller should poke the private service cursors)."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "bytes_moved": self.bytes_moved,
            "latency_mean_us": self.latency_stat.mean,
            "latency_max_us": self.latency_stat.max or 0.0,
            "link_busy_until_us": self._link_free_at_us,
            "prio_busy_until_us": self._prio_free_at_us,
        }

    def metrics_snapshot(self) -> dict:
        """Export-facing counter snapshot with the unified key naming
        shared by :meth:`RemoteMemoryNode.metrics_snapshot`: monotone
        counters end in ``_total``, gauges do not.  The Prometheus
        exporter maps these keys 1:1 onto metric families with no
        per-class special-casing; :meth:`stats_snapshot` keeps its
        original keys because goldens and CI scripts pin them."""
        return {
            "reads_total": self.reads,
            "writes_total": self.writes,
            "bytes_moved_total": self.bytes_moved,
            "latency_mean_us": self.latency_stat.mean,
            "latency_max_us": self.latency_stat.max or 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RdmaFabric(gbps={self.config.gbps}, reads={self.reads}, "
            f"writes={self.writes}, "
            f"mean_latency_us={self.latency_stat.mean:.2f})"
        )
