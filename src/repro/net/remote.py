"""Remote memory node: the far side of the disaggregated pool.

The paper's memory node is a passive RDMA target (6 x 8 GB DRAM); here it
is a capacity-bounded page store keyed by swap slot.  Reads of a slot that
was never written raise — a real one-sided RDMA READ of an unwritten
region would return garbage, and in the simulator that is always a bug.

With a :class:`~repro.net.faults.FaultInjector` armed, reads and writes
inside a remote-restart window raise
:class:`~repro.net.faults.RemoteUnavailableError`, and slot accounting
(`pages_written` / `pages_overwritten` / `pages_released`) is kept so
slot leaks are visible: at any moment

    pages_written == pages_stored + pages_overwritten + pages_released
                     + pages_lost + pages_migrated_out

where ``pages_lost`` counts pages wiped by a permanent node crash
(:meth:`RemoteMemoryNode.crash`) and ``pages_migrated_out`` counts
pages moved to another node by the memory-tier migration engine
(:meth:`RemoteMemoryNode.migrate_out` — exactly 0 unless the node
belongs to a tiered cluster, see :mod:`repro.memtier`).  Those are the
only ways a written page can leave the store without being read back
or released.

A node may carry a memory-tier label (``tier="pool"`` for the CXL
pool, ``"far"`` for the RDMA far tier, None for the untiered legacy
cluster); untiered snapshots omit the tier keys entirely so pre-tier
goldens stay byte-identical.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.integrity.checksum import SlotChecksums
from repro.net.faults import FaultInjector


class RemoteReadError(KeyError):
    """READ of a slot that holds no page."""


class RemoteMemoryNode:
    def __init__(
        self,
        capacity_pages: int,
        injector: Optional[FaultInjector] = None,
        tier: Optional[str] = None,
    ) -> None:
        if capacity_pages < 1:
            raise ValueError("capacity_pages must be >= 1")
        self.capacity_pages = capacity_pages
        self.injector = injector
        #: Memory-tier label ("pool"/"far"); None on untiered clusters.
        self.tier = tier
        self._slots: Dict[int, Tuple[int, int]] = {}
        #: Per-slot content checksums (:mod:`repro.integrity`).  Pure
        #: bookkeeping with no injector armed, so the golden path is
        #: untouched; with corruption armed, the injector's coins decide
        #: which stored copies go bad.
        self.checksums = SlotChecksums(injector)
        self.pages_written = 0
        self.pages_read = 0
        self.pages_overwritten = 0
        self.pages_released = 0
        self.pages_lost = 0
        self.pages_migrated_out = 0
        self.crashes = 0

    def write(
        self, slot: int, pid: int, vpn: int, now_us: Optional[float] = None
    ) -> None:
        """Store page (pid, vpn) at ``slot`` (reclaim writeback)."""
        self._check_available(now_us)
        if slot not in self._slots and len(self._slots) >= self.capacity_pages:
            raise MemoryError(
                f"remote node full ({self.capacity_pages} pages)"
            )
        if slot in self._slots:
            self.pages_overwritten += 1
        self._slots[slot] = (pid, vpn)
        self.checksums.record_write(slot, now_us, self.pages_written)
        self.pages_written += 1

    def read(self, slot: int, now_us: Optional[float] = None) -> Tuple[int, int]:
        """Fetch the page at ``slot`` (demand fault or prefetch)."""
        self._check_available(now_us)
        page = self._slots.get(slot)
        if page is None:
            raise RemoteReadError(f"slot {slot} holds no page")
        self.pages_read += 1
        return page

    def release(self, slot: int) -> None:
        """Free a slot once its page was faulted back and re-dirtied."""
        if self._slots.pop(slot, None) is not None:
            self.checksums.drop(slot)
            self.pages_released += 1

    def migrate_out(self, slot: int) -> None:
        """The migration engine moved ``slot``'s copy to another node:
        drop it here, conserved via ``pages_migrated_out`` (the target
        node's ``write`` accounts for the new copy)."""
        if self._slots.pop(slot, None) is not None:
            self.checksums.drop(slot)
            self.pages_migrated_out += 1

    def crash(self) -> int:
        """The node died: every stored page is gone.  Returns how many
        pages were wiped; accounting stays conserved via ``pages_lost``."""
        wiped = len(self._slots)
        self._slots.clear()
        self.checksums.clear()
        self.pages_lost += wiped
        self.crashes += 1
        return wiped

    def holds(self, slot: int) -> bool:
        return slot in self._slots

    @property
    def pages_stored(self) -> int:
        return len(self._slots)

    @property
    def conserved(self) -> bool:
        """The slot-conservation invariant: every written page is still
        stored, was overwritten, was released, died in a crash, or was
        migrated to another tier's node."""
        return self.pages_written == (
            self.pages_stored
            + self.pages_overwritten
            + self.pages_released
            + self.pages_lost
            + self.pages_migrated_out
        )

    def stats_snapshot(self) -> Dict[str, int]:
        """Public counter snapshot, for metrics aggregation and debugging
        (no caller should poke the private slot map)."""
        snap = {
            "capacity_pages": self.capacity_pages,
            "pages_stored": self.pages_stored,
            "pages_written": self.pages_written,
            "pages_read": self.pages_read,
            "pages_overwritten": self.pages_overwritten,
            "pages_released": self.pages_released,
            "pages_lost": self.pages_lost,
        }
        if self.tier is not None:
            # Tier keys appear only on tiered clusters so the untiered
            # snapshot (pinned by goldens_v1.json) is unchanged.
            snap["tier"] = self.tier
            snap["pages_migrated_out"] = self.pages_migrated_out
        return snap

    def metrics_snapshot(self) -> Dict[str, int]:
        """Export-facing counter snapshot with the unified key naming
        shared by :meth:`RdmaFabric.metrics_snapshot`: monotone counters
        end in ``_total``, gauges do not.  :meth:`stats_snapshot` keeps
        its original keys because goldens and CI scripts pin them."""
        return {
            "pages_written_total": self.pages_written,
            "pages_read_total": self.pages_read,
            "pages_overwritten_total": self.pages_overwritten,
            "pages_released_total": self.pages_released,
            "pages_lost_total": self.pages_lost,
            "pages_migrated_out_total": self.pages_migrated_out,
            "crashes_total": self.crashes,
            "pages_stored": self.pages_stored,
            "capacity_pages": self.capacity_pages,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RemoteMemoryNode(stored={self.pages_stored}/"
            f"{self.capacity_pages}, written={self.pages_written}, "
            f"read={self.pages_read}, conserved={self.conserved})"
        )

    def _check_available(self, now_us: Optional[float]) -> None:
        """Restart windows: the node answers nothing for their duration."""
        if self.injector is not None and now_us is not None:
            self.injector.check_remote(now_us)
