"""The tenant-scale scenario engine: overload, shedding, elasticity.

One scenario drives a fleet of tenants (:mod:`repro.scenario.traffic`)
through the co-run machine in *rounds*.  Each round:

1. **Arrivals** — tenants whose ``start_round`` has come ask the
   :class:`~repro.scenario.admission.AdmissionController` for
   admission; a typed rejection parks them for retry next round.
2. **Traffic** — every admitted tenant offers
   ``accesses_per_round * intensity * slice_factor`` accesses from its
   own trace; slices are interleaved with the same seeded time-slice
   merge the Figure-15 co-runs use and driven through the machine.
3. **Control** — a pressure signal (bulk-QP backlog and demand-fault
   p99 against the guaranteed SLO) feeds the degradation ladder and
   the :class:`~repro.scenario.autoscaler.Autoscaler`; degraded
   tenants' PIDs drop to the bulk QP for the next round.

Chaos composes: an overlay :class:`~repro.net.faults.FaultPlan`
(crash, crash-rejoin, full chaos) runs underneath, and the machine is
built with ``absorb_fatal_faults=True`` so even a retry-exhausted
demand read degrades to a counted zero-fill instead of an unhandled
exception — the engine's never-crash contract.

Everything the ladder sheds, the autoscaler moves, and the SLO tracker
observes lands in ``RunResult.scenario`` — absent (and byte-identical
to the goldens) for every non-scenario run.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.cluster.cluster import ClusterConfig
from repro.common.stats import Histogram
from repro.net.faults import FaultPlan
from repro.net.rdma import FabricConfig
from repro.scenario.admission import (
    AdmissionController,
    AdmissionRejectedError,
    LadderConfig,
)
from repro.scenario.autoscaler import Autoscaler, AutoscalerConfig
from repro.scenario.slo import SloTarget, SloTracker
from repro.scenario.traffic import (
    TIER_GUARANTEED,
    TenantSpec,
    build_fleet,
    intensity,
)
from repro.sim import systems as systems_mod
from repro.sim.machine import Machine, MachineConfig
from repro.sim.metrics import RunResult
from repro.sim.multiprogram import (
    PID_STRIDE,
    attach_workload,
    interleave_traces,
)
from repro.sim.runner import collect
from repro.telemetry import TelemetryConfig
from repro.telemetry.events import EV_DEMAND_FAULT


@dataclass(frozen=True)
class ScenarioConfig:
    """Declarative description of one overload scenario."""

    name: str
    tenants: Tuple[TenantSpec, ...]
    rounds: int = 8
    #: Base access quota per tenant-round, scaled by pattern intensity.
    accesses_per_round: int = 400
    system: str = "hopp"
    local_memory_fraction: float = 0.5
    #: Initially placeable remote nodes.
    remote_nodes: int = 2
    #: Extra nodes built into the cluster but parked in standby for the
    #: autoscaler to rack in.
    standby_nodes: int = 1
    replication: int = 1
    #: Fabric shaping; None takes the defaults.  The SLO bench narrows
    #: the link to manufacture saturation.
    fabric: Optional[FabricConfig] = None
    #: Chaos overlay; None still arms recovery with an empty plan.
    fault_plan: Optional[FaultPlan] = None
    seed: int = 1
    epoch_us: float = 1000.0
    #: Declarative tier objectives.  The guaranteed ceiling doubles as
    #: the pressure normalizer: demand-fault p99 at the ceiling reads
    #: as pressure 1.0, which is exactly the ladder's default enter
    #: threshold.
    slo_guaranteed: SloTarget = SloTarget(p99_us=80.0, max_lost=0)
    slo_best_effort: SloTarget = SloTarget(p99_us=250.0, max_lost=2)
    ladder: LadderConfig = LadderConfig()
    autoscaler: AutoscalerConfig = AutoscalerConfig()
    check_invariants: bool = True
    slice_accesses: int = 64
    #: Horizon (us) over which bulk-QP backlog normalizes to pressure 1.0.
    pressure_window_us: float = 2_000.0

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("a scenario needs at least one tenant")
        if self.rounds < 1 or self.accesses_per_round < 1:
            raise ValueError("rounds and accesses_per_round must be >= 1")
        if self.remote_nodes < 1 or self.standby_nodes < 0:
            raise ValueError("remote_nodes >= 1, standby_nodes >= 0")
        if not 1 <= self.replication <= self.remote_nodes:
            raise ValueError(
                "replication must fit the initially active nodes"
            )

    def target_for(self, spec: TenantSpec) -> SloTarget:
        if spec.tier == TIER_GUARANTEED:
            return self.slo_guaranteed
        return self.slo_best_effort


class _Tenant:
    """Engine-side state for one admitted tenant."""

    def __init__(self, index: int, spec: TenantSpec, machine: Machine) -> None:
        self.index = index
        self.spec = spec
        self.workload = spec.build_workload()
        self.trace: Iterator[Tuple[int, int]] = attach_workload(
            machine,
            self.workload,
            index,
            spec.limit_fraction,
            cgroup_name=f"tenant-{index}-{spec.name}",
        )
        self.pids = frozenset(
            process.pid + index * PID_STRIDE
            for process in self.workload.processes
        )
        self.offered = 0

    def take(self, n: int) -> List[Tuple[int, int]]:
        """Next ``n`` accesses; the trace re-arms when it drains so a
        tenant keeps offering load for as long as the scenario runs."""
        out = list(itertools.islice(self.trace, n))
        while len(out) < n:
            offset = self.index * PID_STRIDE
            self.trace = (
                (pid + offset, vaddr)
                for pid, vaddr in self.workload.trace()
            )
            got = list(itertools.islice(self.trace, n - len(out)))
            if not got:
                break
            out.extend(got)
        self.offered += len(out)
        return out


class _RoundLatency:
    """Bus subscriber that windows demand-fault latency per round."""

    def __init__(self) -> None:
        self._hist = Histogram()

    def on_event(self, kind: str, ts_us: float, fields: Dict) -> None:
        if kind == EV_DEMAND_FAULT:
            self._hist.add(float(fields.get("cost_us", 0.0)))

    def p99_and_reset(self) -> float:
        p99 = self._hist.quantile(0.99)
        self._hist = Histogram()
        return p99


def _build_machine(config: ScenarioConfig) -> Machine:
    workloads = [spec.build_workload() for spec in config.tenants]
    total_nodes = config.remote_nodes + config.standby_nodes
    machine_config = MachineConfig(
        local_memory_pages=sum(w.footprint_pages for w in workloads),
        compute_us_per_access=sum(w.compute_us_per_access for w in workloads)
        / len(workloads),
        fabric=config.fabric or FabricConfig(),
        # Recovery is always armed: the autoscaler and the chaos overlay
        # both need the monitor/repair machinery.
        fault_plan=config.fault_plan or FaultPlan(),
        cluster=ClusterConfig(
            nodes=total_nodes, replication=config.replication
        ),
        check_invariants=config.check_invariants,
        telemetry=TelemetryConfig(epoch_us=config.epoch_us),
        strict_cgroup_prefetch=True,
        absorb_fatal_faults=True,
    )
    spec = systems_mod.build(config.system)
    machine = spec.build(machine_config)
    # Park the elastic headroom in standby before any page lands.
    for node_id in range(config.remote_nodes, total_nodes):
        machine.health.retire(node_id)
    return machine


def _pressure(
    machine: Machine, round_p99: float, config: ScenarioConfig
) -> float:
    """Max of bulk-QP backlog (normalized to the pressure window) and
    demand-fault p99 (normalized to the guaranteed SLO) over active
    nodes — whichever bottleneck is angrier."""
    health = machine.health
    backlog = 0.0
    for node in machine.cluster.nodes:
        if health.is_standby(node.node_id) or not health.is_placeable(
            node.node_id
        ):
            continue
        busy = node.fabric.stats_snapshot()["link_busy_until_us"]
        backlog = max(backlog, busy - machine.now_us)
    return max(
        backlog / config.pressure_window_us,
        round_p99 / config.slo_guaranteed.p99_us,
    )


def run_scenario(config: ScenarioConfig) -> RunResult:
    """Drive one scenario end to end; returns the standard
    :class:`RunResult` with its ``scenario`` section attached."""
    machine = _build_machine(config)

    controller = AdmissionController(config.ladder)
    controller.attach_pid_stride(PID_STRIDE)
    machine.prefetch_admission = controller.prefetch_gate
    autoscaler = Autoscaler(machine, config.autoscaler)

    name_of_index = {
        index: spec.name for index, spec in enumerate(config.tenants)
    }
    tracker = SloTracker(
        epoch_us=config.epoch_us,
        tenant_of=lambda pid: name_of_index.get(pid // PID_STRIDE),
        targets={
            spec.name: config.target_for(spec) for spec in config.tenants
        },
    )
    machine.telemetry.bus.subscribe(tracker.on_event)
    window = _RoundLatency()
    machine.telemetry.bus.subscribe(window.on_event)

    admitted: Dict[int, _Tenant] = {}
    pending = {
        index: spec for index, spec in enumerate(config.tenants)
    }
    deferrals = 0
    rounds_series: List[Dict[str, object]] = []
    pressure = 0.0

    for rnd in range(config.rounds):
        # -- 1: arrivals through the admission gate ------------------------------------
        arrived: List[str] = []
        for index in sorted(pending):
            spec = pending[index]
            if spec.start_round > rnd:
                continue
            try:
                controller.admit(index, spec, machine.now_us)
            except AdmissionRejectedError:
                deferrals += 1
                continue
            del pending[index]
            admitted[index] = _Tenant(index, spec, machine)
            arrived.append(spec.name)

        # -- 2: offered traffic, shaped by pattern and ladder --------------------------
        slices: List[Iterator[Tuple[int, int]]] = []
        offered = 0
        for index in sorted(admitted):
            tenant = admitted[index]
            scale = intensity(
                tenant.spec.pattern, tenant.spec.seed, rnd, config.rounds
            ) * controller.slice_factor(index)
            quota = int(config.accesses_per_round * scale)
            if quota <= 0:
                continue
            chunk = tenant.take(quota)
            if chunk:
                offered += len(chunk)
                slices.append(iter(chunk))
        if slices:
            rng = random.Random(config.seed * 9_176 + rnd)
            machine.run(
                interleave_traces(rng=rng, traces=slices,
                                  slice_accesses=config.slice_accesses)
            )

        # -- 3: control loop -----------------------------------------------------------
        pressure = _pressure(machine, window.p99_and_reset(), config)
        level = controller.update(pressure, machine.now_us)
        degraded = controller.degraded_tenants()
        machine.deprioritized_pids = set().union(
            *(admitted[i].pids for i in degraded if i in admitted)
        ) if degraded else set()
        action = autoscaler.observe(pressure, rnd)
        rounds_series.append(
            {
                "round": rnd,
                "offered": offered,
                "arrived": arrived,
                "pressure": round(pressure, 4),
                "level": level,
                "active_nodes": len(autoscaler.active_nodes()),
                "autoscale": action,
            }
        )

    # Converge recovery, then measure.
    machine.flush_recovery()
    if machine.sanitizer is not None:
        machine.sanitizer.check()
    result = collect(machine, f"scenario-{config.system}", config.name)
    result.scenario = {
        "name": config.name,
        "tenants": len(config.tenants),
        "admitted": len(admitted),
        "never_admitted": sorted(
            spec.name for spec in pending.values()
        ),
        "rounds": config.rounds,
        "deferrals": deferrals,
        "admission": controller.export(),
        "shedding": {
            "prefetch_throttled": machine.prefetch_throttled,
            "prefetch_overlimit_rejects": machine.prefetch_overlimit_rejects,
            "deprioritized_pids": len(machine.deprioritized_pids),
        },
        "fatal": {
            "fatal_faults_absorbed": machine.fatal_faults_absorbed,
            "writebacks_abandoned": machine.writebacks_abandoned,
        },
        "autoscaler": autoscaler.export(),
        "slo": tracker.export(),
        "conservation": {
            "cluster_conserved": machine.cluster.conserved(),
            "invariant_checks": (
                machine.sanitizer.checks_run
                if machine.sanitizer is not None
                else 0
            ),
            "cgroups": {
                group.name: {
                    "charged": group.charged,
                    "limit": group.limit_pages,
                    "overlimit_rejects": group.overlimit_rejects,
                }
                for group in sorted(machine.cgroups, key=lambda g: g.name)
            },
        },
        "series": rounds_series,
        "final_pressure": round(pressure, 4),
    }
    return result


# -- presets ----------------------------------------------------------------------------


def _preset_smoke(**overrides) -> ScenarioConfig:
    """Small and fast: CI's sanity scenario."""
    base = dict(
        name="smoke",
        tenants=tuple(
            build_fleet(6, seed=7, pattern="mixed", rounds=6,
                        pages_per_tenant=120)
        ),
        rounds=6,
        accesses_per_round=1500,
        remote_nodes=2,
        standby_nodes=1,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def _preset_burst(**overrides) -> ScenarioConfig:
    """Synchronized bursts from a mid-size fleet: exercises the ladder."""
    base = dict(
        name="burst",
        tenants=tuple(
            build_fleet(12, seed=11, pattern="bursty", rounds=8,
                        pages_per_tenant=120)
        ),
        rounds=8,
        accesses_per_round=2000,
        remote_nodes=2,
        standby_nodes=2,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def _preset_diurnal(**overrides) -> ScenarioConfig:
    """Slow day/night swell: exercises the autoscaler in both directions."""
    base = dict(
        name="diurnal",
        tenants=tuple(
            build_fleet(16, seed=13, pattern="diurnal", rounds=10,
                        pages_per_tenant=100)
        ),
        rounds=10,
        accesses_per_round=1500,
        remote_nodes=2,
        standby_nodes=2,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def _preset_flash(**overrides) -> ScenarioConfig:
    """Flash crowd at mid-run: the admission controller's reason to exist."""
    base = dict(
        name="flash",
        tenants=tuple(
            build_fleet(12, seed=17, pattern="flash", rounds=10,
                        pages_per_tenant=120)
        ),
        rounds=10,
        accesses_per_round=2500,
        remote_nodes=2,
        standby_nodes=2,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


PRESETS = {
    "smoke": _preset_smoke,
    "burst": _preset_burst,
    "diurnal": _preset_diurnal,
    "flash": _preset_flash,
}


def preset(name: str, **overrides) -> ScenarioConfig:
    try:
        factory = PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario preset {name!r} "
            f"(have: {', '.join(sorted(PRESETS))})"
        ) from None
    return factory(**overrides)
