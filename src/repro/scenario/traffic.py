"""Tenant fleet construction and arrival-pattern shaping.

A *tenant* is one workload instance (from the registry) running under
its own :class:`~repro.kernel.cgroup.MemoryCgroup` budget and service
tier, with an arrival pattern that scales how much of its trace it
replays per scenario round.  Patterns are pure functions of
``(tenant seed, round index)`` — no shared RNG stream — so adding or
removing a tenant never perturbs anyone else's traffic, and a fleet is
reproducible from its seed alone.

Intensity is a float in [0, 1]: the fraction of the tenant's base
per-round access quota it offers that round.  CXL-ClusterSim's traffic
model motivates the shapes: ``diurnal`` (sinusoidal day/night),
``bursty`` (seeded on/off), ``flash`` (ramp, spike, decay — the flash
crowd that admission control exists for), and ``steady``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.workloads import registry as workload_registry
from repro.workloads.base import Workload

#: Service tiers, in degradation order: best-effort tenants are shed
#: first, guaranteed tenants only after every softer rung is exhausted.
TIER_GUARANTEED = "guaranteed"
TIER_BEST_EFFORT = "best_effort"
TIERS = (TIER_GUARANTEED, TIER_BEST_EFFORT)

#: Pattern signature: (tenant_seed, round_index, total_rounds) -> [0, 1].
PatternFn = Callable[[int, int, int], float]

_PATTERNS: Dict[str, PatternFn] = {}


def register_pattern(name: str):
    def deco(fn: PatternFn) -> PatternFn:
        _PATTERNS[name] = fn
        return fn

    return deco


def pattern_names() -> List[str]:
    return sorted(_PATTERNS)


def intensity(pattern: str, tenant_seed: int, rnd: int, rounds: int) -> float:
    fn = _PATTERNS.get(pattern)
    if fn is None:
        raise KeyError(
            f"unknown arrival pattern {pattern!r} "
            f"(have: {', '.join(pattern_names())})"
        )
    value = fn(tenant_seed, rnd, max(rounds, 1))
    return min(max(value, 0.0), 1.0)


def _coin(tenant_seed: int, rnd: int) -> float:
    """A stable per-(tenant, round) uniform draw; independent streams."""
    return random.Random(tenant_seed * 1_000_003 + rnd).random()


@register_pattern("steady")
def _steady(tenant_seed: int, rnd: int, rounds: int) -> float:
    return 1.0


@register_pattern("diurnal")
def _diurnal(tenant_seed: int, rnd: int, rounds: int) -> float:
    """One full day per scenario, phase-shifted per tenant so fleets do
    not beat in lockstep; floor keeps night traffic non-zero."""
    phase = (tenant_seed % 17) / 17.0
    cycle = (rnd / rounds + phase) * 2.0 * math.pi
    return 0.25 + 0.75 * (0.5 + 0.5 * math.sin(cycle))


@register_pattern("bursty")
def _bursty(tenant_seed: int, rnd: int, rounds: int) -> float:
    """Seeded on/off: ~40% of rounds run hot, the rest idle-tick."""
    return 1.0 if _coin(tenant_seed, rnd) < 0.4 else 0.1


@register_pattern("flash")
def _flash(tenant_seed: int, rnd: int, rounds: int) -> float:
    """Flash crowd: quiet, a 2-round full-rate spike at a seeded
    position past mid-run, then exponential decay."""
    spike_at = rounds // 2 + tenant_seed % max(rounds // 4, 1)
    if rnd < spike_at:
        return 0.15
    if rnd < spike_at + 2:
        return 1.0
    return max(0.15, math.exp(-(rnd - spike_at - 1) / 2.0))


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's declarative description."""

    name: str
    workload: str = "stream-simple"
    seed: int = 1
    tier: str = TIER_GUARANTEED
    #: Cgroup budget as a fraction of the workload footprint.
    limit_fraction: float = 0.5
    pattern: str = "steady"
    #: Round at which the tenant asks to be admitted.
    start_round: int = 0
    #: Workload constructor overrides (footprint scaling etc).
    workload_kwargs: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.tier not in TIERS:
            raise ValueError(f"tier must be one of {TIERS}, got {self.tier!r}")
        if not 0.0 < self.limit_fraction:
            raise ValueError("limit_fraction must be > 0")
        if self.start_round < 0:
            raise ValueError("start_round must be >= 0")
        if self.pattern not in _PATTERNS:
            raise ValueError(f"unknown pattern {self.pattern!r}")

    def build_workload(self) -> Workload:
        return workload_registry.build(
            self.workload, seed=self.seed, **dict(self.workload_kwargs)
        )


def build_fleet(
    tenants: int,
    seed: int = 1,
    pattern: str = "mixed",
    best_effort_fraction: float = 0.5,
    staggered: bool = True,
    rounds: int = 8,
    pages_per_tenant: int = 600,
) -> List[TenantSpec]:
    """A deterministic fleet of small key-value-cache tenants.

    ``kv-cache`` is the shape that makes overload interesting: zipf
    reuse keeps re-touching pages the cgroup budget already evicted, so
    saturation shows up as demand-fault latency, not just reclaim.
    ``pattern='mixed'`` cycles through every registered arrival shape; a
    concrete name pins all tenants to it.  Tiers alternate so both
    tiers see every pattern; ``staggered`` spreads admissions over the
    first half of the run (the arrival process the admission controller
    gates)."""
    if tenants < 1:
        raise ValueError("need at least one tenant")
    shapes = pattern_names() if pattern == "mixed" else [pattern]
    specs: List[TenantSpec] = []
    for index in range(tenants):
        # Floor-accumulator interleave: best-effort tenants appear at
        # the requested fraction, evenly spread through the index order.
        tier = (
            TIER_BEST_EFFORT
            if math.floor((index + 1) * best_effort_fraction)
            > math.floor(index * best_effort_fraction)
            else TIER_GUARANTEED
        )
        start = (index % max(rounds // 2, 1)) if staggered and index else 0
        specs.append(
            TenantSpec(
                name=f"t{index:03d}",
                workload="kv-cache",
                seed=seed * 1000 + index,
                tier=tier,
                limit_fraction=0.5,
                pattern=shapes[index % len(shapes)],
                start_round=start,
                workload_kwargs=(
                    ("objects", pages_per_tenant),
                    ("operations", pages_per_tenant * 6),
                ),
            )
        )
    return specs
