"""Admission control and the graceful-degradation ladder.

When cluster pressure crosses thresholds, load is shed in a strict
order — the softest, most reversible knob first:

====  ==============================================================
rung  action
====  ==============================================================
0     nothing: everyone runs at full service
1     **throttle prefetch** of best-effort tenants — each tenant owns
      a :class:`~repro.hopp.policy.CircuitBreaker` reused as its
      prefetch gate; the controller trips it for one pressure window
      and the machine's admission hook refuses issue while it is open
2     \\+ **defer/reject new admissions** — a tenant asking to start
      gets a typed :class:`AdmissionRejectedError`; the engine parks
      it and retries next round
3     \\+ **degrade best-effort tenants** — their demand reads drop to
      the bulk QP (queueing behind everyone's prefetch traffic) and
      their traffic slice is halved.  Guaranteed tenants are *never*
      degraded — that tier separation is exactly what the SLO bench
      must show
====  ==============================================================

The ladder climbs one rung per update when pressure is above
``enter``, and descends one rung only after ``calm_updates``
consecutive updates below ``exit`` (asymmetric hysteresis: shedding is
fast, un-shedding is cautious).  Nothing here ever raises past the
typed admission error, and every shed action is counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.hopp.policy import BreakerConfig, BreakerState, CircuitBreaker
from repro.scenario.traffic import TIER_BEST_EFFORT, TenantSpec

#: Ladder rungs, in shedding order.
LEVEL_NOMINAL = 0
LEVEL_THROTTLE = 1
LEVEL_REJECT = 2
LEVEL_DEGRADE = 3
LEVEL_NAMES = ("nominal", "throttle", "reject", "degrade")


class AdmissionRejectedError(RuntimeError):
    """A tenant's admission was refused under overload (rung >= 2)."""

    def __init__(self, tenant: str, level: int, pressure: float) -> None:
        super().__init__(
            f"admission of tenant {tenant!r} rejected: ladder at "
            f"{LEVEL_NAMES[level]} (pressure {pressure:.2f})"
        )
        self.tenant = tenant
        self.level = level
        self.pressure = pressure


@dataclass(frozen=True)
class LadderConfig:
    """Thresholds of the degradation ladder."""

    #: Pressure at/above which the ladder climbs one rung per update.
    enter: float = 1.0
    #: Pressure below which an update counts as calm.
    exit: float = 0.5
    #: Consecutive calm updates required to descend one rung.
    calm_updates: int = 2
    #: How long one trip of a tenant's prefetch breaker holds (us).
    throttle_hold_us: float = 5_000.0
    #: Traffic-slice multiplier for degraded best-effort tenants.
    degrade_slice_factor: float = 0.5

    def __post_init__(self) -> None:
        if self.enter <= self.exit:
            raise ValueError("enter threshold must exceed exit threshold")
        if self.calm_updates < 1:
            raise ValueError("calm_updates must be >= 1")
        if self.throttle_hold_us <= 0:
            raise ValueError("throttle_hold_us must be > 0")
        if not 0.0 < self.degrade_slice_factor <= 1.0:
            raise ValueError("degrade_slice_factor must be in (0, 1]")


class AdmissionController:
    """Owns the ladder level, the per-tenant prefetch breakers, and the
    degraded set.  The scenario engine calls :meth:`update` once per
    round with the measured pressure, :meth:`admit` for every arriving
    tenant, and installs :meth:`prefetch_gate` as the machine's
    ``prefetch_admission`` hook."""

    def __init__(self, config: LadderConfig = LadderConfig()) -> None:
        self.config = config
        self.level = LEVEL_NOMINAL
        self._calm = 0
        self._pressure = 0.0
        #: tenant index -> its prefetch breaker (created lazily).
        self._breakers: Dict[int, CircuitBreaker] = {}
        #: tenant index -> spec, registered at admission request time.
        self._specs: Dict[int, TenantSpec] = {}
        self._degraded: Set[int] = set()
        # Shed accounting.
        self.admissions = 0
        self.rejections = 0
        self.rejections_by_tenant: Dict[str, int] = {}
        self.throttle_trips = 0
        self.degradations = 0
        self.restorations = 0
        #: (update index, from level, to level) audit trail.
        self.transitions: List[Tuple[int, int, int]] = []
        self._updates = 0

    # -- registration -----------------------------------------------------------------

    def register(self, index: int, spec: TenantSpec) -> None:
        self._specs[index] = spec
        self._breakers[index] = CircuitBreaker(
            BreakerConfig(cooldown_us=self.config.throttle_hold_us)
        )

    # -- the ladder -------------------------------------------------------------------

    def update(self, pressure: float, now_us: float) -> int:
        """One control-loop step; returns the (possibly new) level."""
        self._updates += 1
        self._pressure = pressure
        old = self.level
        if pressure >= self.config.enter:
            self._calm = 0
            if self.level < LEVEL_DEGRADE:
                self.level += 1
        elif pressure < self.config.exit:
            self._calm += 1
            if self._calm >= self.config.calm_updates and self.level > 0:
                self.level -= 1
                self._calm = 0
        else:
            self._calm = 0
        if self.level != old:
            self.transitions.append((self._updates, old, self.level))
        self._apply(now_us)
        return self.level

    def _apply(self, now_us: float) -> None:
        """Enforce the current rung's actions."""
        if self.level >= LEVEL_THROTTLE:
            for index, spec in self._specs.items():
                if spec.tier == TIER_BEST_EFFORT:
                    self._breakers[index].trip(
                        now_us, self.config.throttle_hold_us
                    )
                    self.throttle_trips += 1
        if self.level >= LEVEL_DEGRADE:
            for index, spec in self._specs.items():
                if spec.tier == TIER_BEST_EFFORT and index not in self._degraded:
                    self._degraded.add(index)
                    self.degradations += 1
        elif self._degraded:
            self.restorations += len(self._degraded)
            self._degraded.clear()

    # -- admission --------------------------------------------------------------------

    def admit(self, index: int, spec: TenantSpec, now_us: float) -> None:
        """Admit ``spec`` or raise :class:`AdmissionRejectedError`.

        Registration happens on success only: a rejected tenant holds
        no breaker and sheds no one else's load."""
        if self.level >= LEVEL_REJECT:
            self.rejections += 1
            self.rejections_by_tenant[spec.name] = (
                self.rejections_by_tenant.get(spec.name, 0) + 1
            )
            raise AdmissionRejectedError(spec.name, self.level, self._pressure)
        self.register(index, spec)
        self.admissions += 1

    # -- machine hooks ----------------------------------------------------------------

    def prefetch_gate(self, pid: int, tier: str, now_us: float) -> bool:
        """The machine's ``prefetch_admission`` hook: PID -> tenant via
        the caller-supplied stride, then that tenant's breaker."""
        breaker = self._breakers.get(self._tenant_of(pid))
        if breaker is None:
            return True
        return breaker.allow(now_us)

    def degraded_tenants(self) -> Set[int]:
        return set(self._degraded)

    def slice_factor(self, index: int) -> float:
        """Traffic multiplier for a tenant this round (rung 3 action)."""
        if index in self._degraded:
            return self.config.degrade_slice_factor
        return 1.0

    def is_throttled(self, index: int, now_us: float) -> bool:
        breaker = self._breakers.get(index)
        if breaker is None:
            return False
        return breaker.state != BreakerState.CLOSED

    def attach_pid_stride(self, stride: int) -> None:
        self._stride = stride

    def _tenant_of(self, pid: int) -> int:
        return pid // getattr(self, "_stride", 100)

    # -- export -----------------------------------------------------------------------

    def export(self) -> Dict[str, object]:
        return {
            "level": self.level,
            "level_name": LEVEL_NAMES[self.level],
            "admissions": self.admissions,
            "rejections": self.rejections,
            "rejections_by_tenant": dict(
                sorted(self.rejections_by_tenant.items())
            ),
            "throttle_trips": self.throttle_trips,
            "degradations": self.degradations,
            "restorations": self.restorations,
            "transitions": [list(t) for t in self.transitions],
        }
