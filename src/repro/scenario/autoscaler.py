"""Elastic remote-capacity autoscaler over the standby node pool.

The cluster is built with its *maximum* node count; nodes beyond the
initial active set are parked in the health monitor's standby overlay
(:meth:`HealthMonitor.retire`) — healthy hardware, reachable, holding
zero pages, excluded from placement.  The autoscaler then moves nodes
between the pools, reusing the recovery machinery end to end:

* **scale-out** — sustained pressure above ``out_pressure`` for
  ``sustain_rounds`` rounds activates the lowest-id standby node
  (:meth:`HealthMonitor.activate`) and fires
  :meth:`RepairEngine.on_node_rejoin`, whose top-up sweep re-spreads
  under-replicated slots onto the fresh capacity — exactly the rack-in
  path a crash-rejoin takes.
* **scale-in** — sustained calm below ``in_pressure`` flags the
  highest-id active node with
  :meth:`HealthMonitor.retire_after_drain` and starts a graceful
  drain (:meth:`Machine.drain_node`): the repair engine evacuates its
  pages in the background and, on completion, the node parks itself
  in standby instead of rejoining placement.

State machine: ``STEADY -> (hot streak) -> SCALE_OUT -> cooldown ->
STEADY -> (calm streak) -> SCALE_IN -> cooldown -> STEADY``.  The
cooldown stops flapping; chaos composes freely — a node crash during
peak just makes the pressure signal angrier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.cluster.health import NodeState

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.sim.machine import Machine


@dataclass(frozen=True)
class AutoscalerConfig:
    #: Pressure at/above which a round counts toward scale-out.
    out_pressure: float = 1.0
    #: Pressure at/below which a round counts toward scale-in.
    in_pressure: float = 0.2
    #: Consecutive qualifying rounds before acting.
    sustain_rounds: int = 2
    #: Rounds to hold after any action before evaluating again.
    cooldown_rounds: int = 2
    #: Never scale below this many active (placeable or draining) nodes.
    min_active: int = 1

    def __post_init__(self) -> None:
        if self.out_pressure <= self.in_pressure:
            raise ValueError("out_pressure must exceed in_pressure")
        if self.sustain_rounds < 1 or self.cooldown_rounds < 0:
            raise ValueError("sustain_rounds >= 1, cooldown_rounds >= 0")
        if self.min_active < 1:
            raise ValueError("min_active must be >= 1")


class Autoscaler:
    """Round-driven elastic controller; requires armed recovery."""

    def __init__(
        self, machine: "Machine", config: AutoscalerConfig = AutoscalerConfig()
    ) -> None:
        if machine.health is None or machine.repair is None:
            raise RuntimeError(
                "autoscaler needs armed recovery: build the machine with "
                "a fault plan (an empty FaultPlan() suffices)"
            )
        self.machine = machine
        self.config = config
        self._hot = 0
        self._calm = 0
        self._cooldown = 0
        self.scale_outs = 0
        self.scale_ins = 0
        #: (round, action, node_id) audit trail.
        self.events: List[List[object]] = []

    # -- pool queries -----------------------------------------------------------------

    def active_nodes(self) -> List[int]:
        """Nodes serving placement or mid-drain (still active capacity)."""
        health = self.machine.health
        return [
            node_id
            for node_id in sorted(health.states_snapshot())
            if not health.is_standby(node_id)
            and health.state(node_id)
            in (NodeState.UP, NodeState.SUSPECT, NodeState.DRAINING)
        ]

    def standby_nodes(self) -> List[int]:
        return self.machine.health.standby_nodes()

    # -- control loop -----------------------------------------------------------------

    def observe(self, pressure: float, rnd: int) -> Optional[str]:
        """One round's pressure sample; returns the action taken."""
        if self._cooldown > 0:
            self._cooldown -= 1
            return None
        if pressure >= self.config.out_pressure:
            self._hot += 1
            self._calm = 0
        elif pressure <= self.config.in_pressure:
            self._calm += 1
            self._hot = 0
        else:
            self._hot = 0
            self._calm = 0
        if self._hot >= self.config.sustain_rounds:
            self._hot = 0
            return self._scale_out(rnd)
        if self._calm >= self.config.sustain_rounds:
            self._calm = 0
            return self._scale_in(rnd)
        return None

    def _scale_out(self, rnd: int) -> Optional[str]:
        standby = self.standby_nodes()
        if not standby:
            return None
        node_id = standby[0]
        now = self.machine.now_us
        health = self.machine.health
        health.activate(node_id)
        # A standby node could only have left UP if its hardware died
        # while parked; only rack in live machines.
        if health.state(node_id) is NodeState.UP:
            self.machine.repair.on_node_rejoin(node_id, now)
        self.scale_outs += 1
        self._cooldown = self.config.cooldown_rounds
        self.events.append([rnd, "scale_out", node_id])
        return "scale_out"

    def _scale_in(self, rnd: int) -> Optional[str]:
        health = self.machine.health
        candidates = [
            node_id
            for node_id in self.active_nodes()
            if health.state(node_id) in (NodeState.UP, NodeState.SUSPECT)
        ]
        # Count only non-draining capacity against the floor: a node
        # mid-drain is already on its way out, and retiring the last
        # placeable node would leave its pages nowhere to evacuate.
        if len(candidates) <= self.config.min_active:
            return None
        node_id = candidates[-1]
        health.retire_after_drain(node_id)
        self.machine.drain_node(node_id)
        self.scale_ins += 1
        self._cooldown = self.config.cooldown_rounds
        self.events.append([rnd, "scale_in", node_id])
        return "scale_in"

    # -- export -----------------------------------------------------------------------

    def export(self) -> Dict[str, object]:
        return {
            "scale_outs": self.scale_outs,
            "scale_ins": self.scale_ins,
            "active_nodes": self.active_nodes(),
            "standby_nodes": self.standby_nodes(),
            "events": [list(e) for e in self.events],
        }
