"""Per-tenant SLO tracking fed from the telemetry event bus.

The tracker is one more :class:`~repro.telemetry.events.EventBus`
subscriber — same contract as the time-series engine: it observes,
never mutates, so an SLO-tracked run produces byte-identical simulator
counters to an untracked one.

It buckets every ``demand_fault`` event into fixed simulated-time
epochs keyed by tenant (PID stride recovers the tenant index), keeps a
log-bucketed latency histogram per (tenant, epoch), and counts
zero-filled (lost-data) faults.  Attainment is evaluated per epoch
against a declarative :class:`SloTarget`: an epoch *attains* when its
p99 demand-fault latency is within target AND no lost page surfaced.
The headline number per tenant is the fraction of trafficked epochs
that attained — flat 1.0 for an idle tenant is meaningless, so idle
epochs simply do not count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.stats import Histogram
from repro.telemetry.events import EV_DEMAND_FAULT


@dataclass(frozen=True)
class SloTarget:
    """Declarative per-tier objective."""

    #: p99 demand-fault latency ceiling per epoch (critical-path us).
    p99_us: float = 100.0
    #: Zero-filled (lost-data) faults tolerated per epoch.
    max_lost: int = 0

    def __post_init__(self) -> None:
        if self.p99_us <= 0:
            raise ValueError("p99_us must be > 0")
        if self.max_lost < 0:
            raise ValueError("max_lost must be >= 0")


class SloTracker:
    """Bus subscriber keyed on ``demand_fault`` events.

    ``tenant_of`` maps a PID to a tenant key (the scenario engine
    passes ``pid // PID_STRIDE``); ``targets`` maps tenant key to its
    :class:`SloTarget`.  Unknown tenants fall back to ``default``.
    """

    def __init__(
        self,
        epoch_us: float,
        tenant_of,
        targets: Optional[Dict[object, SloTarget]] = None,
        default: SloTarget = SloTarget(),
    ) -> None:
        if epoch_us <= 0:
            raise ValueError("epoch_us must be > 0")
        self.epoch_us = epoch_us
        self.tenant_of = tenant_of
        self.targets: Dict[object, SloTarget] = dict(targets or {})
        self.default = default
        #: (tenant, epoch) -> latency histogram of demand-fault cost.
        self._hists: Dict[Tuple[object, int], Histogram] = {}
        #: (tenant, epoch) -> zero-filled fault count.
        self._lost: Dict[Tuple[object, int], int] = {}
        #: tenant -> total demand faults observed.
        self.faults_by_tenant: Dict[object, int] = {}
        self.events_seen = 0

    # -- bus side ---------------------------------------------------------------------

    def on_event(self, kind: str, ts_us: float, fields: Dict[str, object]) -> None:
        if kind != EV_DEMAND_FAULT:
            return
        pid = fields.get("pid")
        if pid is None:
            return
        tenant = self.tenant_of(pid)
        if tenant is None:
            return
        self.events_seen += 1
        epoch = int(ts_us // self.epoch_us)
        key = (tenant, epoch)
        hist = self._hists.get(key)
        if hist is None:
            hist = self._hists[key] = Histogram()
        hist.add(float(fields.get("cost_us", 0.0)))
        if fields.get("zero_filled"):
            self._lost[key] = self._lost.get(key, 0) + 1
        self.faults_by_tenant[tenant] = self.faults_by_tenant.get(tenant, 0) + 1

    # -- evaluation -------------------------------------------------------------------

    def target_for(self, tenant) -> SloTarget:
        return self.targets.get(tenant, self.default)

    def epochs_of(self, tenant) -> List[int]:
        return sorted(e for (t, e) in self._hists if t == tenant)

    def epoch_p99(self, tenant, epoch: int) -> float:
        hist = self._hists.get((tenant, epoch))
        return hist.quantile(0.99) if hist is not None else 0.0

    def epoch_attained(self, tenant, epoch: int) -> bool:
        target = self.target_for(tenant)
        return (
            self.epoch_p99(tenant, epoch) <= target.p99_us
            and self._lost.get((tenant, epoch), 0) <= target.max_lost
        )

    def attainment_series(self, tenant) -> List[Tuple[int, bool]]:
        """(epoch, attained) for every epoch the tenant saw traffic."""
        return [
            (epoch, self.epoch_attained(tenant, epoch))
            for epoch in self.epochs_of(tenant)
        ]

    def attainment(self, tenant) -> float:
        """Fraction of trafficked epochs meeting the SLO (1.0 when the
        tenant never demand-faulted at all — no evidence of violation)."""
        series = self.attainment_series(tenant)
        if not series:
            return 1.0
        return sum(1 for _, ok in series if ok) / len(series)

    def lost_pages(self, tenant) -> int:
        return sum(n for (t, _), n in self._lost.items() if t == tenant)

    def overall_p99(self, tenant) -> float:
        merged = Histogram()
        for (t, _), hist in self._hists.items():
            if t == tenant:
                merged.merge(hist)
        return merged.quantile(0.99)

    # -- export -----------------------------------------------------------------------

    def export(self) -> Dict[str, object]:
        """JSON-serializable per-tenant summary (sorted for stability)."""
        tenants = sorted(
            {t for (t, _) in self._hists} | set(self.faults_by_tenant),
            key=str,
        )
        per_tenant = {}
        for tenant in tenants:
            series = self.attainment_series(tenant)
            target = self.target_for(tenant)
            per_tenant[str(tenant)] = {
                "target_p99_us": target.p99_us,
                "max_lost": target.max_lost,
                "faults": self.faults_by_tenant.get(tenant, 0),
                "lost_pages": self.lost_pages(tenant),
                "epochs": len(series),
                "epochs_attained": sum(1 for _, ok in series if ok),
                "attainment": self.attainment(tenant),
                "p99_us": self.overall_p99(tenant),
                "series": [[epoch, bool(ok)] for epoch, ok in series],
            }
        return {
            "epoch_us": self.epoch_us,
            "events": self.events_seen,
            "tenants": per_tenant,
        }
