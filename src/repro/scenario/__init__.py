"""Tenant-scale traffic scenarios: overload, shedding, elasticity.

The public surface of the scenario engine:

* :mod:`~repro.scenario.traffic` — tenant fleets and arrival patterns
* :mod:`~repro.scenario.slo` — per-tenant SLO targets and attainment
* :mod:`~repro.scenario.admission` — admission control and the
  graceful-degradation ladder
* :mod:`~repro.scenario.autoscaler` — elastic remote capacity over the
  health monitor's standby pool
* :mod:`~repro.scenario.engine` — the round loop that composes them
"""

from repro.scenario.admission import (
    LEVEL_DEGRADE,
    LEVEL_NOMINAL,
    LEVEL_REJECT,
    LEVEL_THROTTLE,
    AdmissionController,
    AdmissionRejectedError,
    LadderConfig,
)
from repro.scenario.autoscaler import Autoscaler, AutoscalerConfig
from repro.scenario.engine import (
    PRESETS,
    ScenarioConfig,
    preset,
    run_scenario,
)
from repro.scenario.slo import SloTarget, SloTracker
from repro.scenario.traffic import (
    TIER_BEST_EFFORT,
    TIER_GUARANTEED,
    TenantSpec,
    build_fleet,
    intensity,
    pattern_names,
    register_pattern,
)

__all__ = [
    "AdmissionController",
    "AdmissionRejectedError",
    "Autoscaler",
    "AutoscalerConfig",
    "LadderConfig",
    "LEVEL_DEGRADE",
    "LEVEL_NOMINAL",
    "LEVEL_REJECT",
    "LEVEL_THROTTLE",
    "PRESETS",
    "ScenarioConfig",
    "SloTarget",
    "SloTracker",
    "TenantSpec",
    "TIER_BEST_EFFORT",
    "TIER_GUARANTEED",
    "build_fleet",
    "intensity",
    "pattern_names",
    "preset",
    "register_pattern",
    "run_scenario",
]
