"""Set-associative table with LRU replacement.

This is the shared hardware primitive behind the LLC model, the HPD table
(Section III-B) and the RPT cache (Section III-C).  Each set is an ordered
dict from tag to payload; ordering encodes recency (last item = most
recently used), which keeps every operation O(1).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Generic, Iterator, List, Optional, Tuple, TypeVar

V = TypeVar("V")

#: Internal miss sentinel: lets ``lookup`` run a single dict probe
#: instead of a containment check plus two keyed reads.
_MISS = object()


class SetAssociativeTable(Generic[V]):
    """An ``nsets`` x ``nways`` LRU table keyed by an integer.

    The set index is ``key % nsets`` by default, matching the paper's HPD
    table which uses the lowest bits of the PPN as the set index; pass
    ``index_fn`` to override.
    """

    def __init__(
        self,
        nsets: int,
        nways: int,
        index_fn: Optional[Callable[[int], int]] = None,
    ) -> None:
        if nsets < 1 or nways < 1:
            raise ValueError("nsets and nways must both be >= 1")
        self.nsets = nsets
        self.nways = nways
        #: None means the default ``key % nsets`` mapping, which the hot
        #: paths inline instead of paying a call per probe.
        self._custom_index = index_fn
        self._index_fn = index_fn or (lambda key: key % nsets)
        self._sets: List["OrderedDict[int, V]"] = [OrderedDict() for _ in range(nsets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- core operations ----------------------------------------------------

    def set_index(self, key: int) -> int:
        return self._index_fn(key)

    def lookup(self, key: int, touch: bool = True) -> Optional[V]:
        """Return the payload for ``key`` or None, updating hit/miss stats.

        When ``touch`` is true a hit also refreshes the entry's recency.
        """
        if self._custom_index is None:
            target = self._sets[key % self.nsets]
        else:
            target = self._sets[self._custom_index(key)]
        value = target.get(key, _MISS)
        if value is not _MISS:
            self.hits += 1
            if touch:
                target.move_to_end(key)
            return value
        self.misses += 1
        return None

    def peek(self, key: int) -> Optional[V]:
        """Lookup without disturbing recency or statistics."""
        return self._sets[self._index_fn(key)].get(key)

    def insert(self, key: int, value: V) -> Optional[Tuple[int, V]]:
        """Insert (or overwrite) ``key`` as most-recently-used.

        Returns the evicted ``(key, value)`` pair if the set overflowed,
        else None.
        """
        target = self._sets[self._index_fn(key)]
        if key in target:
            target[key] = value
            target.move_to_end(key)
            return None
        victim = None
        if len(target) >= self.nways:
            victim = target.popitem(last=False)
            self.evictions += 1
        target[key] = value
        return victim

    def remove(self, key: int) -> Optional[V]:
        return self._sets[self._index_fn(key)].pop(key, None)

    def touch(self, key: int) -> bool:
        """Refresh recency of ``key``; returns whether it was present."""
        target = self._sets[self._index_fn(key)]
        if key in target:
            target.move_to_end(key)
            return True
        return False

    # -- introspection -------------------------------------------------------

    def __contains__(self, key: int) -> bool:
        return key in self._sets[self._index_fn(key)]

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def __iter__(self) -> Iterator[Tuple[int, V]]:
        for target in self._sets:
            yield from target.items()

    @property
    def capacity(self) -> int:
        return self.nsets * self.nways

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def clear(self) -> None:
        for target in self._sets:
            target.clear()
        self.reset_stats()


class LruDict(Generic[V]):
    """A capacity-bounded LRU mapping (a 1-set associative table with a
    friendlier mapping interface), used for fully-associative structures
    such as the kernel's page LRU lists and the executor's dedup window."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._data: "OrderedDict[Any, V]" = OrderedDict()

    def get(self, key: Any, default: Optional[V] = None) -> Optional[V]:
        if key in self._data:
            self._data.move_to_end(key)
            return self._data[key]
        return default

    def put(self, key: Any, value: V) -> Optional[Tuple[Any, V]]:
        """Insert as MRU; returns the evicted pair when over capacity."""
        if key in self._data:
            self._data[key] = value
            self._data.move_to_end(key)
            return None
        victim = None
        if len(self._data) >= self.capacity:
            victim = self._data.popitem(last=False)
        self._data[key] = value
        return victim

    def pop(self, key: Any, default: Optional[V] = None) -> Optional[V]:
        return self._data.pop(key, default)

    def lru_key(self) -> Any:
        """The least-recently-used key, or None when empty."""
        return next(iter(self._data), None)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._data)
