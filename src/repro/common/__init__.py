"""Shared primitives: constants, value types, LRU structures, statistics."""

from repro.common import constants
from repro.common.assoc import LruDict, SetAssociativeTable
from repro.common.stats import CounterSet, Histogram, RunningStat, safe_ratio
from repro.common.types import (
    FaultBreakdown,
    HotPage,
    MemoryAccess,
    PageKind,
    PrefetchDecision,
    PrefetchRequest,
    RptEntry,
    StreamObservation,
    TraceRecord,
    VmaRegion,
)

__all__ = [
    "constants",
    "LruDict",
    "SetAssociativeTable",
    "CounterSet",
    "Histogram",
    "RunningStat",
    "safe_ratio",
    "FaultBreakdown",
    "HotPage",
    "MemoryAccess",
    "PageKind",
    "PrefetchDecision",
    "PrefetchRequest",
    "RptEntry",
    "StreamObservation",
    "TraceRecord",
    "VmaRegion",
]
