"""Core value types passed between subsystems.

Hot simulation loops use plain integers and tuples internally; these
dataclasses define the public-facing records at module boundaries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.common.compat import slotted_dataclass
from repro.common.constants import BLOCK_SHIFT, PAGE_SHIFT


class PageKind(enum.IntEnum):
    """Page size class carried in the reverse page table (Figure 6)."""

    BASE_4K = 0
    HUGE_2M = 1
    HUGE_1G = 2


@dataclass(frozen=True)
class MemoryAccess:
    """One cacheline-granular reference seen at the memory controller.

    ``vaddr`` is a byte address in the issuing process's virtual address
    space.  ``is_write`` distinguishes READ from WRITE traffic; the HPD
    only consumes READs (Section III-B).
    """

    pid: int
    vaddr: int
    is_write: bool = False

    @property
    def vpn(self) -> int:
        return self.vaddr >> PAGE_SHIFT

    @property
    def block(self) -> int:
        """Cacheline index within the page."""
        return (self.vaddr >> BLOCK_SHIFT) & ((1 << (PAGE_SHIFT - BLOCK_SHIFT)) - 1)


@dataclass(frozen=True)
class HotPage:
    """A hot page extracted by the HPD and resolved through the RPT cache.

    This is the record HoPP hardware writes to the reserved hot-page DRAM
    area (step 2 in Figure 4), consumed by the training framework.
    """

    pid: int
    vpn: int
    timestamp_us: float
    shared: bool = False
    kind: PageKind = PageKind.BASE_4K


@slotted_dataclass(frozen=True)
class PrefetchRequest:
    """A finalized prefetch decision sent to the execution engine.

    ``tier`` records which algorithm produced the request ("ssp", "lsp",
    "rsp", or a baseline name) so benches can attribute coverage per tier
    (Figures 19-20).
    """

    pid: int
    vpn: int
    tier: str
    issued_at_us: float
    stream_id: int = -1


@slotted_dataclass()
class StreamObservation:
    """What the Stream Training Table hands to the tier algorithms.

    ``vpn_history`` holds the last L VPNs of the stream (oldest first) and
    ``stride_history`` the corresponding L-1 strides, exactly the inputs of
    Algorithms 1 and 2 in the paper.

    ``stride_counts`` is an optional precomputed non-zero-stride
    histogram of ``stride_history`` (the STT maintains one incrementally
    per stream).  It is a live view, valid until the stream's next hot
    page; SSP consumes it synchronously.  None means "not provided" —
    consumers recount from ``stride_history``.
    """

    pid: int
    vpn: int
    stride: int
    vpn_history: Tuple[int, ...]
    stride_history: Tuple[int, ...]
    stream_id: int
    timestamp_us: float = 0.0
    stride_counts: Optional[dict] = None


@slotted_dataclass()
class PrefetchDecision:
    """Raw output of one tier algorithm, before the policy engine applies
    the prefetch offset and intensity knobs.

    The final target VPN for offset ``i`` is
    ``base_vpn + stride_target + i * pattern_stride`` for LSP, and
    ``base_vpn + i * stride_target`` for SSP/RSP, matching the send steps
    of Algorithms 1 and 2.  ``per_offset_stride`` is the stride multiplied
    by the offset; ``fixed_delta`` is added once regardless of offset.
    """

    tier: str
    base_vpn: int
    per_offset_stride: int
    fixed_delta: int = 0

    def target_vpn(self, offset: int) -> int:
        return self.base_vpn + self.fixed_delta + offset * self.per_offset_stride


@dataclass(frozen=True)
class TraceRecord:
    """HMTT-format trace record (Section V): 8-bit sequence number, 8-bit
    timestamp, 1-bit read/write flag, and the physical address."""

    seq: int
    timestamp: int
    is_write: bool
    paddr: int

    @property
    def ppn(self) -> int:
        return self.paddr >> PAGE_SHIFT


@slotted_dataclass()
class RptEntry:
    """Reverse-page-table entry (Figure 6): PPN -> PID + VPN + flags."""

    pid: int
    vpn: int
    shared: bool = False
    kind: PageKind = PageKind.BASE_4K


@dataclass
class FaultBreakdown:
    """Per-category microsecond totals accumulated by the fault path."""

    dram_hit_us: float = 0.0
    prefetch_hit_us: float = 0.0
    remote_fault_us: float = 0.0
    inflight_wait_us: float = 0.0
    reclaim_us: float = 0.0

    @property
    def total_us(self) -> float:
        return (
            self.dram_hit_us
            + self.prefetch_hit_us
            + self.remote_fault_us
            + self.inflight_wait_us
            + self.reclaim_us
        )


@dataclass
class VmaRegion:
    """A virtual memory area: [start_vpn, end_vpn) with a name for debug."""

    start_vpn: int
    end_vpn: int
    name: str = ""
    pid: int = 0

    def __contains__(self, vpn: int) -> bool:
        return self.start_vpn <= vpn < self.end_vpn

    @property
    def npages(self) -> int:
        return self.end_vpn - self.start_vpn
