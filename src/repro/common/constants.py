"""Architectural constants shared by every subsystem.

All latency constants come from the swap-path breakdown in Section II-A of
the HoPP paper (HPCA 2023) and are expressed in microseconds of simulated
virtual time.  All geometry constants (page/cacheline sizes, table shapes)
come from Section III.
"""

# ---------------------------------------------------------------------------
# Address geometry.
# ---------------------------------------------------------------------------

#: Bytes per 4 KB page (log2).
PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT

#: Bytes per cacheline (log2).
BLOCK_SHIFT = 6
BLOCK_SIZE = 1 << BLOCK_SHIFT

#: Cachelines per page.  A 4 KB page holds 64 blocks, which bounds the HPD
#: hot-page threshold N to [1, 64] (Section III-B).
BLOCKS_PER_PAGE = PAGE_SIZE // BLOCK_SIZE

#: Huge page sizes supported by the reverse page table (Section III-C).
HUGE_PAGE_2M_SHIFT = 21
HUGE_PAGE_1G_SHIFT = 30

# ---------------------------------------------------------------------------
# Swap-path latencies, Section II-A, in microseconds.
# ---------------------------------------------------------------------------

#: Step 1 - page-fault context switch.
T_CONTEXT_SWITCH_US = 0.3

#: Step 2 - kernel page-table walk to locate the PTE.
T_PTE_WALK_US = 0.6

#: Step 3 - swapcache query + page/swap-entry allocation.
T_SWAPCACHE_OP_US = 0.4

#: Step 4 - one 4 KB page over RDMA (56 Gbps fabric, paper's testbed).
T_RDMA_PAGE_US = 4.0

#: Step 5 - per-page amortized reclaim cost.  Since Linux v5.8 reclaim runs
#: ahead of the fault, so only a small residue lands on the critical path.
T_RECLAIM_PER_PAGE_US = 2.0
T_RECLAIM_CRITICAL_RESIDUE_US = 0.0

#: Step 6 - establish the PTE and return to user space.
T_PTE_SET_US = 1.0

#: A prefetch-hit still takes a synchronous fault into the swapcache
#: (Section II-C): context switch + walk + swapcache lookup + PTE set.
T_PREFETCH_HIT_US = (
    T_CONTEXT_SWITCH_US + T_PTE_WALK_US + T_SWAPCACHE_OP_US + T_PTE_SET_US
)

#: Full remote fault on the critical path (steps 1-4 and 6; reclaim is
#: asynchronous post-v5.8).  This is the paper's 8.3 us side of the
#: "8.3 to 11.3 us" range.
T_REMOTE_FAULT_US = (
    T_CONTEXT_SWITCH_US
    + T_PTE_WALK_US
    + T_SWAPCACHE_OP_US
    + T_RDMA_PAGE_US
    + T_PTE_SET_US
)

#: An LLC miss served by local DRAM (Section II-C's "DRAM-hit").
T_DRAM_HIT_US = 0.1

#: CPU cost of posting one prefetch READ from *inside the fault handler*
#: (swapcache entry allocation + RDMA verb post).  Fault-time
#: prefetchers (Fastswap, Leap, Depth-N) pay this on the critical path
#: for every page in their window; HoPP's execution engine issues from
#: its own data plane and does not (Section III's separate data path).
T_PREFETCH_ISSUE_US = 0.35

# ---------------------------------------------------------------------------
# HoPP hardware geometry, Section III-B / III-C defaults.
# ---------------------------------------------------------------------------

#: Hot Page Detection table: 16-way, 4-set associative cache (M = 64).
HPD_WAYS = 16
HPD_SETS = 4

#: Hot-page threshold: a page is extracted after N READ misses.
HPD_THRESHOLD = 8

#: Reverse-page-table cache: 64 KB, 16-way; each entry is 8 bytes.
RPT_CACHE_KB = 64
RPT_CACHE_WAYS = 16
RPT_ENTRY_BYTES = 8

#: RPT entry field widths (Figure 6): 16-bit PID, 40-bit VPN, 1-bit shared
#: flag, 2-bit huge-page flag (4K / 2M / 1G), padded to 64 bits.
RPT_PID_BITS = 16
RPT_VPN_BITS = 40

#: Bytes written to the hot-page DRAM area per extracted hot page
#: (PID + VPN combo, one RPT-entry-sized record).
HOT_PAGE_RECORD_BYTES = 8

# ---------------------------------------------------------------------------
# HoPP software defaults, Section III-D / III-E.
# ---------------------------------------------------------------------------

#: Stream Training Table entries.
STT_ENTRIES = 64

#: VPN history length per stream (L).  A stream is identified once the
#: history is full; the dominant stride must occur >= L/2 times.
STT_HISTORY_LEN = 16

#: A new hot page joins a stream when its VPN is within this many pages of
#: the stream's most recent VPN (Delta_stream).
STT_STREAM_DELTA = 64

#: LSP target-pattern length (M): consecutive strides forming the pattern.
LSP_PATTERN_LEN = 2

#: RSP out-of-order tolerance: cumulative strides within +/- max_stride
#: count as a return to the ripple stream.
RSP_MAX_STRIDE = 2

#: Policy engine defaults (Section III-E).
POLICY_ALPHA = 0.2
POLICY_OFFSET_MAX = 1024
POLICY_T_MIN_US = 40.0
POLICY_T_MAX_US = 5_000.0
POLICY_DEFAULT_INTENSITY = 1
