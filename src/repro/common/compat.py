"""Version-compat shims.

The hot per-page / per-access dataclasses want ``slots=True`` (one
instance per touched page adds up to real memory and attribute-lookup
cost), but the ``slots`` parameter only exists on Python >= 3.10 and the
project supports 3.9.  :func:`slotted_dataclass` applies slots where the
interpreter can and silently degrades to a plain dataclass where it
cannot — behavior is identical either way, only footprint and speed
differ.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

if sys.version_info >= (3, 10):

    def slotted_dataclass(**kwargs):
        """``@dataclass(slots=True, **kwargs)`` when supported."""
        return dataclass(slots=True, **kwargs)

else:  # pragma: no cover - exercised only on Python 3.9

    def slotted_dataclass(**kwargs):
        """Plain ``@dataclass(**kwargs)`` fallback for Python < 3.10."""
        return dataclass(**kwargs)
