"""Lightweight statistics helpers used across the simulator."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence


class RunningStat:
    """Streaming mean/variance/min/max (Welford's algorithm)."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "RunningStat") -> None:
        """Fold ``other`` into this stat (Chan's parallel Welford
        combination); the result is exact, as if every sample had been
        added to one stat."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RunningStat(count={self.count}, mean={self.mean:.4g}, "
            f"min={self.min}, max={self.max})"
        )


class Histogram:
    """A fixed-bucket histogram over [0, +inf) with log-spaced bounds,
    used for the timeliness distribution (Section VI-A)."""

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        if bounds is None:
            # 1 us .. ~1e6 us, half-decade buckets.
            bounds = [10 ** (exp / 2.0) for exp in range(0, 13)]
        self.bounds: List[float] = sorted(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.stat = RunningStat()

    def add(self, value: float) -> None:
        self.stat.add(value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def total(self) -> int:
        return sum(self.counts)

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s buckets and running stat into this one.
        Both histograms must share the same bucket bounds — merging
        across different binnings has no well-defined result."""
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.stat.merge(other.stat)

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket upper bounds."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.total == 0:
            return 0.0
        target = q * self.total
        seen = 0
        for i, count in enumerate(self.counts):
            seen += count
            if seen >= target:
                if i < len(self.bounds):
                    return self.bounds[i]
                return self.stat.max or self.bounds[-1]
        return self.stat.max or self.bounds[-1]


class CounterSet:
    """A named bag of integer counters with dict export."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def bump(self, name: str, amount: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def __getitem__(self, name: str) -> int:
        return self.get(name)


def safe_ratio(numerator: float, denominator: float) -> float:
    """numerator / denominator, or 0.0 when the denominator is zero."""
    return numerator / denominator if denominator else 0.0


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values; 0.0 for an empty sequence."""
    positives = [value for value in values if value > 0]
    if not positives:
        return 0.0
    return math.exp(sum(math.log(value) for value in positives) / len(positives))
