"""Command-line interface: ``python -m repro <command>``.

Commands
--------
list                 show registered workloads and systems
run                  run one workload under one system, print metrics
compare              run one workload under several systems
sweep                run a (workload x system x fraction) grid
tune                 black-box search over the HoPP design space
trace                capture a workload's HMTT trace to a file
analyze              classify a trace's stream patterns

Simulation commands go through the execution engine: results are cached
on disk keyed by the full run configuration (``--no-cache`` to opt out,
``--cache-dir`` to relocate), ``compare``/``sweep`` fan points out over
``--jobs`` worker processes, and ``run --profile`` reports where the
wall-clock went by simulator component.
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.patterns import analyze_trace, page_sequence
from repro.analysis.report import render_table
from repro.cluster import ClusterConfig, placement_names
from repro.exec.cache import ResultCache
from repro.exec.pool import execute, local_ct_spec
from repro.exec.spec import RunSpec
from repro.net.faults import FaultPlan
from repro.net.rdma import FabricConfig
from repro.sim import runner, systems
from repro.telemetry import TelemetryConfig, chrome_trace, prometheus_snapshot
from repro.trace.hmtt import HmttTracer
from repro.trace.persist import load_trace, write_trace
from repro.workloads import build as build_workload
from repro.workloads import names as workload_names


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HoPP (HPCA 2023) trace-driven reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show registered workloads and systems")

    def add_run_args(p):
        p.add_argument("--workload", "-w", required=True)
        p.add_argument("--fraction", "-f", type=float, default=0.5,
                       help="local memory as a fraction of the footprint")
        p.add_argument("--seed", type=int, default=1)

    def add_fault_args(p):
        p.add_argument(
            "--fault-plan", default=None, metavar="PLAN",
            help="inject fabric/remote faults: 'chaos' (the hostile-"
                 "fabric preset), 'chaos:<seed>', 'crash' (one node dies "
                 "permanently mid-run), 'crash:<seed>', 'crash-rejoin' "
                 "(dies, then a replacement racks in), 'corruption' "
                 "(silent bit flips + latent media errors), "
                 "'corruption-chaos' (both at once), each with an "
                 "optional ':<seed>' suffix, or a JSON plan file",
        )
        p.add_argument(
            "--scrub-rate", type=float, default=None, metavar="PAGES/S",
            help="arm the background patrol scrubber at this audit rate "
                 "(pages per second of simulated time); scrub reads ride "
                 "the repair engine's rate limiter and pay modeled READ "
                 "cost",
        )
        p.add_argument(
            "--check-invariants", action="store_true",
            help="run the cross-layer invariant sanitizer at epoch "
                 "boundaries and after every recovery event (opt-in: "
                 "each sweep walks every page-table entry)",
        )

    def add_cache_args(p):
        p.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="result-cache directory (default: $REPRO_CACHE_DIR or "
                 "~/.cache/repro-hopp)",
        )
        p.add_argument(
            "--no-cache", action="store_true",
            help="always simulate; neither read nor write the result "
                 "cache",
        )

    def add_telemetry_args(p):
        p.add_argument(
            "--telemetry", action="store_true",
            help="record windowed time-series telemetry (per-epoch "
                 "coverage/accuracy/remote accesses, fetch-latency "
                 "p50/p99) onto the result; off by default — disabled "
                 "runs are byte-identical and probe-free",
        )
        p.add_argument(
            "--telemetry-epoch-us", type=float, default=1000.0,
            metavar="US", help="time-series window width in simulated "
                               "microseconds (default 1000)",
        )
        p.add_argument(
            "--trace-out", default=None, metavar="FILE",
            help="also record the swap-path/prefetch-lifecycle timeline "
                 "and write it as Chrome trace-event JSON (load in "
                 "chrome://tracing or https://ui.perfetto.dev); implies "
                 "--telemetry",
        )
        p.add_argument(
            "--prom-out", default=None, metavar="FILE",
            help="write a Prometheus text-format snapshot of the run's "
                 "counters (aggregate + per-node); implies --telemetry",
        )

    def add_jobs_arg(p):
        p.add_argument(
            "--jobs", "-j", type=int, default=1, metavar="N",
            help="run independent points over N worker processes "
                 "(results are byte-identical to a serial run)",
        )

    def add_cluster_args(p):
        p.add_argument(
            "--remote-nodes", type=int, default=1, metavar="N",
            help="memory nodes in the remote pool, each behind its own "
                 "link (default 1 = the paper's single-node testbed)",
        )
        p.add_argument(
            "--placement", default="interleave",
            choices=placement_names(),
            help="page placement policy across nodes",
        )
        p.add_argument(
            "--replication", type=int, default=1, metavar="R",
            help="copies per page (R > 1 enables demand-read failover)",
        )

    def add_memtier_args(p):
        p.add_argument(
            "--mem-tiers", type=int, default=0, metavar="P",
            help="arm the CXL-style memory-tier pool with P pooled "
                 "nodes in front of the --remote-nodes far (RDMA) "
                 "nodes; 0 (default) keeps the untiered legacy model "
                 "byte-identical",
        )
        p.add_argument(
            "--cxl-latency-us", type=float, default=None, metavar="US",
            help="per-page latency of the pooled tier's link (default: "
                 "8x the DRAM hit, 5x under the RDMA page read — the "
                 "NUMA-emulation ratio methodology)",
        )
        p.add_argument(
            "--pool-capacity", type=int, default=None, metavar="PAGES",
            help="capacity of each pooled node in pages (default: "
                 "match the far nodes); small pools exercise "
                 "watermark demotion",
        )

    run_parser = sub.add_parser("run", help="run one workload/system pair")
    add_run_args(run_parser)
    add_fault_args(run_parser)
    add_cluster_args(run_parser)
    add_memtier_args(run_parser)
    add_cache_args(run_parser)
    add_telemetry_args(run_parser)
    run_parser.add_argument("--system", "-s", default="hopp")
    run_parser.add_argument("--json", action="store_true",
                            help="emit the full result as JSON")
    run_parser.add_argument(
        "--profile", action="store_true",
        help="profile the run and report time shares by simulator "
             "component (forces a fresh simulation)",
    )

    compare_parser = sub.add_parser("compare", help="compare systems")
    add_run_args(compare_parser)
    add_fault_args(compare_parser)
    add_cluster_args(compare_parser)
    add_memtier_args(compare_parser)
    add_cache_args(compare_parser)
    add_jobs_arg(compare_parser)
    compare_parser.add_argument(
        "--systems", default="fastswap,hopp",
        help="comma-separated system names",
    )

    sweep_parser = sub.add_parser(
        "sweep", help="run a (workload x system x fraction) grid"
    )
    sweep_parser.add_argument(
        "--workloads", "-w", required=True,
        help="comma-separated workload names",
    )
    sweep_parser.add_argument(
        "--systems", "-s", default="fastswap,hopp",
        help="comma-separated system names",
    )
    sweep_parser.add_argument(
        "--fractions", "-f", default="0.25,0.5",
        help="comma-separated local-memory fractions",
    )
    sweep_parser.add_argument("--seed", type=int, default=1)
    sweep_parser.add_argument(
        "--metrics", default="normalized_performance,accuracy,coverage",
        help="comma-separated metric columns",
    )
    add_cache_args(sweep_parser)
    add_jobs_arg(sweep_parser)

    tune_parser = sub.add_parser(
        "tune",
        help="black-box search over the HoPP design space "
             "(HPD/STT/policy/placement), cached and resumable",
    )
    tune_parser.add_argument(
        "--space", default="hpd",
        help="named search space: hpd, hopp-core, placement, or full",
    )
    tune_parser.add_argument(
        "--strategy", default="random",
        help="search strategy: random, evolve, or sha",
    )
    tune_parser.add_argument(
        "--budget", type=int, default=8, metavar="N",
        help="candidate evaluations to spend (cache hits still count: "
             "the trajectory must not depend on cache state)",
    )
    tune_parser.add_argument("--workload", "-w", required=True)
    tune_parser.add_argument(
        "--system", "-s", default="hopp",
        help="base system whose knobs the space overrides "
             "(must be HoPP-based for system.* dimensions)",
    )
    tune_parser.add_argument("--fraction", "-f", type=float, default=0.5,
                             help="local memory fraction of the footprint")
    tune_parser.add_argument("--seed", type=int, default=1,
                             help="seeds both the simulations and the search")
    tune_parser.add_argument(
        "--objective", default="normalized_performance", metavar="METRIC",
        help="metric to maximize; prefix '-' to minimize "
             "(e.g. '-completion_time_us')",
    )
    tune_parser.add_argument(
        "--constrain", action="append", default=[], metavar="EXPR",
        help="constraint like 'accuracy>=0.5' or "
             "'prefetch_wasted<=100@5' (repeatable; '@w' sets the "
             "scalarization penalty weight)",
    )
    tune_parser.add_argument(
        "--fidelity", default=None, metavar="KWARG=V1,V2,...",
        help="trace-length ladder over a workload kwarg, cheapest "
             "first (e.g. 'passes=1,2'); required for --strategy sha",
    )
    tune_parser.add_argument(
        "--journal", default=None, metavar="FILE",
        help="append-only JSONL trial journal (enables --resume)",
    )
    tune_parser.add_argument(
        "--resume", action="store_true",
        help="replay an existing --journal and continue the identical "
             "trajectory from where it stopped",
    )
    tune_parser.add_argument(
        "--report-out", default=None, metavar="FILE",
        help="write the best-config report (JSON, trajectory included)",
    )
    add_cache_args(tune_parser)
    add_jobs_arg(tune_parser)

    trace_parser = sub.add_parser("trace", help="capture an HMTT trace")
    add_run_args(trace_parser)
    trace_parser.add_argument("--system", "-s", default="noprefetch")
    trace_parser.add_argument("--out", "-o", required=True)
    trace_parser.add_argument("--limit", type=int, default=0,
                              help="stop after N accesses (0 = all)")
    # Default to all-local capture: without reclaim the frame allocator
    # hands out contiguous PPNs, matching the paper's quiescent offline
    # capture setup (physical streams stay streams).
    trace_parser.set_defaults(fraction=4.0)

    analyze_parser = sub.add_parser("analyze", help="classify stream patterns")
    analyze_parser.add_argument("--trace", help="an HMTT trace file")
    analyze_parser.add_argument("--workload", "-w", help="or a workload name")
    analyze_parser.add_argument("--seed", type=int, default=1)

    study_parser = sub.add_parser(
        "study", help="offline prefetch study over an HMTT trace"
    )
    study_parser.add_argument("--trace", required=True)
    study_parser.add_argument("--threshold", type=int, default=8,
                              help="HPD hot threshold N")
    study_parser.add_argument("--offset", type=int, default=4,
                              help="prefetch offset i for the replay")

    scenario_parser = sub.add_parser(
        "scenario",
        help="tenant-scale overload scenario: admission control, SLO "
             "tracking, graceful degradation, elastic scale-out",
    )
    scenario_parser.add_argument(
        "--preset", default="smoke",
        help="scenario preset: smoke, burst, diurnal, or flash",
    )
    scenario_parser.add_argument(
        "--tenants", type=int, default=None,
        help="override the preset's fleet size (mixed-pattern fleet)",
    )
    scenario_parser.add_argument("--rounds", type=int, default=None)
    scenario_parser.add_argument(
        "--accesses-per-round", type=int, default=None,
        help="base per-tenant access quota per round",
    )
    scenario_parser.add_argument("--remote-nodes", type=int, default=None,
                                 help="initially active remote nodes")
    scenario_parser.add_argument("--standby-nodes", type=int, default=None,
                                 help="parked nodes the autoscaler can rack in")
    scenario_parser.add_argument("--replication", type=int, default=None)
    scenario_parser.add_argument(
        "--gbps", type=float, default=None,
        help="fabric bandwidth; narrow it to manufacture saturation",
    )
    scenario_parser.add_argument("--seed", type=int, default=1)
    scenario_parser.add_argument(
        "--fault-plan", default=None, metavar="PLAN",
        help="chaos overlay under the scenario: same presets/files as "
             "'run --fault-plan'",
    )
    scenario_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the full RunResult (scenario section included)",
    )
    scenario_parser.add_argument(
        "--slo-out", default=None, metavar="PATH",
        help="write the per-tenant SLO attainment report",
    )
    return parser


def _load_fault_plan(value: Optional[str], seed: int) -> Optional[FaultPlan]:
    """Resolve a --fault-plan argument: a preset name or a JSON file."""
    if value is None or value in ("", "none"):
        return None
    if value == "chaos":
        return FaultPlan.chaos(seed)
    if value == "crash":
        return FaultPlan.crash(seed)
    if value == "crash-rejoin":
        return FaultPlan.crash_rejoin(seed)
    if value == "corruption":
        return FaultPlan.corruption(seed)
    if value == "corruption-chaos":
        return FaultPlan.corruption_chaos(seed)
    for preset, builder in (
        ("chaos:", FaultPlan.chaos),
        ("crash:", FaultPlan.crash),
        ("crash-rejoin:", FaultPlan.crash_rejoin),
        ("corruption:", FaultPlan.corruption),
        ("corruption-chaos:", FaultPlan.corruption_chaos),
    ):
        if value.startswith(preset):
            raw_seed = value.split(":", 1)[1]
            try:
                return builder(int(raw_seed))
            except ValueError:
                raise ValueError(
                    f"bad --fault-plan seed {raw_seed!r}; expected "
                    f"{preset}<int>"
                ) from None
    return FaultPlan.from_json_file(value)


def _cluster_config(args) -> ClusterConfig:
    """Build the remote-pool topology from --remote-nodes/--placement/
    --replication (the default triple is the single-node model)."""
    return ClusterConfig(
        nodes=args.remote_nodes,
        placement=args.placement,
        replication=args.replication,
    )


def _memtier_config(args):
    """The MemtierConfig selected by --mem-tiers/--cxl-latency-us/
    --pool-capacity, or None (tiering off) when --mem-tiers is 0.

    Rejects non-positive overrides up front: a zero/negative link
    latency or pool capacity is always a typo, and failing here gives a
    one-line error instead of a deep simulator traceback."""
    if args.cxl_latency_us is not None and args.cxl_latency_us <= 0:
        raise ValueError(
            f"--cxl-latency-us must be > 0, got {args.cxl_latency_us:g}"
        )
    if args.pool_capacity is not None and args.pool_capacity <= 0:
        raise ValueError(
            f"--pool-capacity must be > 0 pages, got {args.pool_capacity}"
        )
    pool_nodes = getattr(args, "mem_tiers", 0)
    if not pool_nodes:
        return None
    from repro.memtier import MemtierConfig

    kwargs = {"pool_nodes": pool_nodes}
    if args.cxl_latency_us is not None:
        kwargs["cxl_latency_us"] = args.cxl_latency_us
    if args.pool_capacity is not None:
        kwargs["pool_capacity_pages"] = args.pool_capacity
    return MemtierConfig(**kwargs)


def _scrub_config(args):
    """The ScrubConfig selected by --scrub-rate, or None (scrubber off)
    when the flag was not given."""
    rate = getattr(args, "scrub_rate", None)
    if rate is None:
        return None
    if rate <= 0:
        raise ValueError(f"--scrub-rate must be > 0 pages/s, got {rate:g}")
    from repro.integrity import ScrubConfig

    return ScrubConfig(rate_pages_per_s=rate)


def _integrity_rows(result) -> List[List[object]]:
    """Summary rows for the data-integrity section, empty when neither
    corruption injection nor the scrubber was armed."""
    section = getattr(result, "integrity", None)
    if not section:
        return []
    return [
        ["corruption detected (repaired/unresolved)",
         f"{section['corruption_detected']} "
         f"({section['corruption_repaired']}/"
         f"{section['corruption_unresolved']})"],
        ["pages poisoned / poisoned reads",
         f"{section['pages_poisoned']}/{section['poisoned_reads']}"],
        ["promotions barred by poison", section["promotions_barred"]],
        ["scrub reads / scrub detections",
         f"{section['scrub_reads']}/{section['scrub_detected']}"],
        ["corruption injected (flips/media)",
         f"{section['bit_flips_injected']}/"
         f"{section['media_errors_injected']}"],
    ]


def _memtier_rows(result) -> List[List[object]]:
    """Summary rows for the memory-tier section, empty when tiering
    was off."""
    section = getattr(result, "memtier", None)
    if not section:
        return []
    return [
        ["memory tiers (pool + far nodes)",
         f"{section['pool_nodes']} + {section['far_nodes']}"],
        ["tier demand reads (pool/far)",
         f"{section['pool_demand_reads']}/{section['far_demand_reads']}"],
        ["tier prefetch reads (pool/far)",
         f"{section['pool_prefetch_reads']}/"
         f"{section['far_prefetch_reads']}"],
        ["tier writebacks (pool/far)",
         f"{section['pool_writebacks']}/{section['far_writebacks']}"],
        ["pages promoted / demoted",
         f"{section['promotions']}/{section['demotions']}"],
        ["migration traffic (bytes)", section["migration_bytes"]],
        ["pool pages stored", section["pool_pages_stored"]],
    ]


def _telemetry_config(args) -> Optional[TelemetryConfig]:
    """The TelemetryConfig selected by --telemetry/--trace-out/--prom-out,
    or None (the probe-free null-object) when no flag asked for it."""
    wants = (
        getattr(args, "telemetry", False)
        or getattr(args, "trace_out", None) is not None
        or getattr(args, "prom_out", None) is not None
    )
    if not wants:
        return None
    return TelemetryConfig(
        epoch_us=args.telemetry_epoch_us,
        trace=args.trace_out is not None,
    )


def _write_telemetry_artifacts(args, result) -> List[List[object]]:
    """Write --trace-out/--prom-out files and return the telemetry rows
    for the run summary table."""
    telemetry = result.telemetry
    if telemetry is None:
        return []
    series = telemetry["timeseries"]
    rows: List[List[object]] = [
        ["telemetry events / epochs",
         f"{telemetry['events_total']}/{series['epochs']}"],
    ]
    latency = series.get("fetch_latency_us") or {}
    counts = latency.get("count") or []
    total = sum(counts)
    if total:
        # Per-epoch blocks carry lists; fold them into run-level numbers
        # (exact for the mean, worst-epoch for the tail).
        weighted_mean = sum(
            m * c for m, c in zip(latency["mean"], counts) if m is not None
        ) / total
        worst_p99 = max(p for p in latency["p99"] if p is not None)
        rows.append(["fetch latency mean / worst-epoch p99 (us)",
                     f"{weighted_mean:.1f}/{worst_p99:.1f}"])
    if args.trace_out is not None:
        trace_doc = chrome_trace(telemetry["trace_events"])
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            json.dump(trace_doc, handle)
        note = f"{len(telemetry['trace_events'])} events"
        if telemetry.get("trace_truncated"):
            note += f" (+{telemetry['trace_dropped']} dropped at limit)"
        rows.append(["trace timeline", f"{args.trace_out} ({note})"])
    if args.prom_out is not None:
        with open(args.prom_out, "w", encoding="utf-8") as handle:
            handle.write(prometheus_snapshot(result))
        rows.append(["prometheus snapshot", args.prom_out])
    return rows


def _make_cache(args) -> Optional[ResultCache]:
    """The result cache selected by --cache-dir/--no-cache."""
    if getattr(args, "no_cache", False):
        return None
    root = getattr(args, "cache_dir", None)
    return ResultCache(Path(root)) if root else ResultCache()


def _require_positive(value, flag: str, kind: str = "int") -> None:
    """The shared numeric-flag guard: a zero or negative count/budget/
    fraction is always a typo, and failing here gives a one-line error
    instead of a deep traceback (or a silent no-op sweep)."""
    if value is None:
        return
    if value <= 0:
        shown = f"{value:g}" if kind == "float" else str(value)
        raise ValueError(f"{flag} must be > 0, got {shown}")


def _cache_summary(cache: Optional[ResultCache]) -> str:
    """One line of ResultCache counters for sweep/tune summaries —
    'misses 0, stores 0' on a warm rerun is the proof that no fresh
    simulation happened."""
    if cache is None:
        return "cache: disabled (--no-cache)"
    stats = cache.stats()
    return (
        f"cache: {stats['hits']} hits, {stats['misses']} misses, "
        f"{stats['stores']} stores, {stats['refused']} refused"
    )


def _cmd_list(_args) -> int:
    print("workloads:")
    for name in workload_names():
        print(f"  {name}")
    print("systems:")
    for name in systems.names():
        print(f"  {name}")
    print("placements:")
    for name in placement_names():
        print(f"  {name}")
    return 0


def _cmd_run(args) -> int:
    fabric = FabricConfig(seed=args.seed)
    fault_plan = _load_fault_plan(args.fault_plan, args.seed)
    cluster = _cluster_config(args)
    cache = _make_cache(args)
    spec = RunSpec(
        workload=args.workload,
        system=args.system,
        fraction=args.fraction,
        seed=args.seed,
        fabric=fabric,
        fault_plan=fault_plan,
        cluster=cluster,
        check_invariants=args.check_invariants,
        telemetry=_telemetry_config(args),
        memtier=_memtier_config(args),
        scrub=_scrub_config(args),
    )
    ct_local = execute(
        [local_ct_spec(args.workload, args.seed, fabric)], cache=cache
    )[0].completion_time_us
    report = None
    if args.profile:
        from repro.exec.profile import profile_spec

        report = profile_spec(spec)
        result = report.result
        if cache is not None:
            cache.put(spec, result)
    else:
        result = execute([spec], cache=cache)[0]
    if args.json:
        payload = result.to_dict()
        payload["normalized_performance"] = result.normalized_performance(ct_local)
        payload["ct_local_us"] = ct_local
        print(json.dumps(payload, indent=2, sort_keys=True))
        _write_telemetry_artifacts(args, result)
        return 0
    rows = [
        ["completion time (us)", f"{result.completion_time_us:.1f}"],
        ["normalized performance", f"{result.normalized_performance(ct_local):.3f}"],
        ["accuracy", f"{result.accuracy:.3f}"],
        ["coverage", f"{result.coverage:.3f}"],
        ["page faults", result.page_faults],
        ["demand remote reads", result.remote_demand_reads],
        ["prefetch hits (dram/swapcache/inflight)",
         f"{result.prefetch_hit_dram}/{result.prefetch_hit_swapcache}/"
         f"{result.prefetch_hit_inflight}"],
        ["prefetched pages wasted", result.prefetch_wasted],
        ["compute time (us)", f"{result.compute_us:.1f}"],
        ["memory-controller reads / writes",
         f"{result.mc_reads}/{result.mc_writes}"],
        ["swapcache inserts / hits / drops",
         f"{result.swapcache_inserts}/{result.swapcache_hits}/"
         f"{result.swapcache_drops}"],
        ["reclaim batches / writebacks / clean drops",
         f"{result.reclaim_batches}/{result.reclaim_writebacks}/"
         f"{result.reclaim_clean_drops}"],
    ]
    if fault_plan is not None:
        rows += [
            ["injected timeouts", result.timeouts],
            ["demand/write retries", result.retries],
            ["retry latency (us)", f"{result.retry_latency_us:.1f}"],
            ["dropped prefetches", result.dropped_prefetches],
            ["degraded-mode time (us)", f"{result.degraded_mode_us:.1f}"],
            ["breaker opens / suppressed",
             f"{result.breaker_opens}/{result.prefetch_suppressed}"],
        ]
    if result.remote_nodes > 1:
        per_node_reads = "/".join(
            str(stats["fabric"]["reads"]) for stats in result.node_stats
        )
        rows += [
            ["remote nodes (placement x replication)",
             f"{result.remote_nodes} ({result.placement} x "
             f"{result.replication})"],
            ["demand failovers", result.demand_failovers],
            ["writeback re-routes", result.writeback_reroutes],
            ["replica writes", result.replica_writes],
            ["fabric reads per node", per_node_reads],
        ]
    if result.node_crashes or result.pages_repaired or result.pages_lost:
        rows += [
            ["node crashes / rejoins",
             f"{result.node_crashes}/{result.node_rejoins}"],
            ["pages repaired", result.pages_repaired],
            ["pages lost (zero-filled)",
             f"{result.pages_lost} ({result.pages_zero_filled})"],
            ["pages salvaged / drained",
             f"{result.pages_salvaged}/{result.pages_drained}"],
            ["repair traffic (bytes)", result.repair_bytes],
        ]
    if result.invariant_checks:
        rows.append(["invariant checks passed", result.invariant_checks])
    rows += _memtier_rows(result)
    rows += _integrity_rows(result)
    rows += _write_telemetry_artifacts(args, result)
    print(render_table(["metric", "value"], rows,
                       title=f"{args.workload} on {args.system} "
                             f"(local={args.fraction:.0%})"))
    if report is not None:
        print(render_table(
            ["component", "seconds", "share"], report.rows(),
            title=f"wall-clock by component ({report.total_s:.2f}s total)",
        ))
        loop_rows = [
            [loop, f"{aps:,.0f}"]
            for loop, aps in sorted(report.loop_acc_per_sec.items())
        ]
        if loop_rows:
            print(render_table(
                ["replay loop", "accesses/sec"], loop_rows,
                title="replay-loop throughput (unprofiled probe)",
            ))
    return 0


def _cmd_compare(args) -> int:
    _require_positive(args.jobs, "--jobs")
    _require_positive(args.fraction, "--fraction", kind="float")
    fabric = FabricConfig(seed=args.seed)
    fault_plan = _load_fault_plan(args.fault_plan, args.seed)
    cluster = _cluster_config(args)
    memtier = _memtier_config(args)
    scrub = _scrub_config(args)
    cache = _make_cache(args)
    names = [name.strip() for name in args.systems.split(",") if name.strip()]
    # CT_local first (always fault-free, single-node: it is the
    # yardstick, not the condition under test), then one point per
    # system — a single batch so --jobs overlaps them all.
    specs = [local_ct_spec(args.workload, args.seed, fabric)] + [
        RunSpec(
            workload=args.workload,
            system=name,
            fraction=args.fraction,
            seed=args.seed,
            fabric=fabric,
            fault_plan=fault_plan,
            cluster=cluster,
            check_invariants=args.check_invariants,
            memtier=memtier,
            scrub=scrub,
        )
        for name in names
    ]
    outputs = execute(specs, jobs=args.jobs, cache=cache)
    ct_local_us = outputs[0].completion_time_us
    rows = []
    for name, result in zip(names, outputs[1:]):
        rows.append(
            [
                name,
                result.normalized_performance(ct_local_us),
                result.accuracy,
                result.coverage,
                result.page_faults,
            ]
        )
    print(render_table(
        ["system", "norm-perf", "accuracy", "coverage", "faults"],
        rows,
        title=f"{args.workload} (local={args.fraction:.0%}, "
              f"CT_local={ct_local_us:.0f} us)",
    ))
    return 0


def _cmd_sweep(args) -> int:
    from repro.analysis.sweeps import sweep

    _require_positive(args.jobs, "--jobs")
    workloads = [n.strip() for n in args.workloads.split(",") if n.strip()]
    system_names = [n.strip() for n in args.systems.split(",") if n.strip()]
    fractions = [float(f) for f in args.fractions.split(",") if f.strip()]
    for fraction in fractions:
        _require_positive(fraction, "--fractions", kind="float")
    metrics = [m.strip() for m in args.metrics.split(",") if m.strip()]
    cache = _make_cache(args)
    result = sweep(
        workloads=workloads,
        systems=system_names,
        fractions=fractions,
        seed=args.seed,
        jobs=args.jobs,
        cache=cache,
    )
    rows = [
        row[:3] + [f"{value:.3f}" for value in row[3:]]
        for row in result.to_rows(metrics)
    ]
    print(render_table(
        ["workload", "system", "fraction"] + metrics, rows,
        title=f"{len(result.points)}-point sweep (seed={args.seed}, "
              f"jobs={args.jobs})",
    ))
    print(_cache_summary(cache))
    return 0


def _parse_fidelity(value: Optional[str]):
    """``--fidelity passes=1,2`` -> a FidelitySpec (cheapest rung
    first, full fidelity last)."""
    if value is None:
        return None
    from repro.tune import FidelitySpec

    kwarg, eq, raw = value.partition("=")
    kwarg = kwarg.strip()
    rungs: List[object] = []
    for token in raw.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            rungs.append(int(token))
        except ValueError:
            try:
                rungs.append(float(token))
            except ValueError:
                raise ValueError(
                    f"--fidelity value {token!r} is not numeric"
                ) from None
    if not eq or not kwarg or not rungs:
        raise ValueError(
            f"--fidelity must look like 'passes=1,2', got {value!r}"
        )
    return FidelitySpec(kwarg, tuple(rungs))


def _cmd_tune(args) -> int:
    from repro.tune import (
        Evolutionary,
        Objective,
        RandomSearch,
        SuccessiveHalving,
        Tuner,
        build_space,
        default_config,
        render_trajectory,
        strategy_names,
        write_report,
    )

    _require_positive(args.budget, "--budget")
    _require_positive(args.jobs, "--jobs")
    _require_positive(args.fraction, "--fraction", kind="float")
    if args.resume and args.journal is None:
        raise ValueError("--resume needs --journal (the file to replay)")
    space = build_space(args.space)
    fidelity = _parse_fidelity(args.fidelity)
    objective = Objective.parse(args.objective, args.constrain)
    fabric = FabricConfig(seed=args.seed)
    base = RunSpec(
        workload=args.workload,
        system=args.system,
        fraction=args.fraction,
        seed=args.seed,
        fabric=fabric,
    )

    # Strategy shapes must not depend on --budget: the journal header
    # records them, and a resumed run may extend the budget.  ask()
    # truncates to the remaining budget, so fixed shapes stay correct.
    if args.strategy == "random":
        strategy = RandomSearch(space, args.seed)
    elif args.strategy == "evolve":
        # Warm-start generation zero with the paper's own configuration,
        # so the search can only improve on the expert baseline.
        strategy = Evolutionary(
            space, args.seed, mu=4, lam=4,
            seed_configs=[default_config(space, base)],
        )
    elif args.strategy == "sha":
        if fidelity is None or len(fidelity.values) < 2:
            raise ValueError(
                "--strategy sha needs a --fidelity ladder with >= 2 "
                "rungs (e.g. --fidelity passes=1,2)"
            )
        rungs = len(fidelity.values)
        strategy = SuccessiveHalving(
            space, args.seed,
            initial=SuccessiveHalving.plan_initial(
                args.budget, eta=2, rungs=rungs
            ),
            eta=2, rungs=rungs,
        )
    else:
        raise ValueError(
            f"unknown --strategy {args.strategy!r}; known: "
            f"{', '.join(strategy_names())}"
        )

    cache = _make_cache(args)
    tuner = Tuner(
        space, strategy, base, budget=args.budget, objective=objective,
        fidelity=fidelity, jobs=args.jobs, cache=cache,
        journal=Path(args.journal) if args.journal else None,
        resume=args.resume,
    )
    result = tuner.run()
    print(render_trajectory(result))
    best = result.best
    if best is None:
        print("no full-fidelity trial completed; raise --budget")
    else:
        rows = [["score", f"{best.score:.4f}"],
                ["trial", best.index],
                ["feasible", objective.feasible(best.metrics)]]
        rows += [[name, f"{best.config[name]!r}"]
                 for name in sorted(best.config)]
        print(render_table(
            ["best config", "value"], rows,
            title=f"{args.strategy} over '{args.space}' on "
                  f"{args.workload} ({len(result.trials)} trials, "
                  f"{result.evaluations} evaluated, "
                  f"{result.journal_replays} replayed)",
        ))
    print(_cache_summary(cache))
    if args.report_out:
        path = write_report(result, Path(args.report_out))
        print(f"wrote {path}")
    return 0


def _cmd_trace(args) -> int:
    workload = build_workload(args.workload, seed=args.seed)
    machine = runner.make_machine(
        workload, args.system, args.fraction, FabricConfig(seed=args.seed)
    )
    tracer = HmttTracer()
    tracer.attach(machine.controller)
    trace = workload.trace()
    if args.limit:
        trace = itertools.islice(trace, args.limit)
    machine.run(trace)
    written = write_trace(args.out, tracer.ring.drain())
    print(f"wrote {written} records to {args.out}")
    return 0


def _cmd_analyze(args) -> int:
    if bool(args.trace) == bool(args.workload):
        print("analyze needs exactly one of --trace or --workload",
              file=sys.stderr)
        return 2
    if args.trace:
        vpns = [record.ppn for record in load_trace(args.trace)]
        # Collapse consecutive same-page records to page visits.
        vpns = [v for i, v in enumerate(vpns) if i == 0 or v != vpns[i - 1]]
        source = args.trace
    else:
        workload = build_workload(args.workload, seed=args.seed)
        vpns = page_sequence(workload.trace())
        source = args.workload
    breakdown = analyze_trace(vpns)
    rows = [
        [label, breakdown.counts[label], f"{breakdown.fraction(label):.1%}"]
        for label in ("simple", "ladder", "ripple", "irregular")
    ]
    print(render_table(["pattern", "windows", "share"], rows,
                       title=f"stream patterns of {source}"))
    return 0


def _cmd_study(args) -> int:
    from repro.analysis.offline import replay_study

    records = load_trace(args.trace)
    study = replay_study(records, hpd_threshold=args.threshold,
                         offset=args.offset)
    rows = [
        ["trace accesses", study.accesses],
        ["hot pages", f"{study.hot_pages} ({study.hot_page_ratio:.2%})"],
        ["stream observations", study.observations],
        ["decisions by tier", str(study.decisions_by_tier)],
        ["abstentions", study.no_decision],
        ["predictions", study.predictions],
        ["useful within lookahead", study.useful_predictions],
        ["offline prediction accuracy", f"{study.prediction_accuracy:.3f}"],
    ]
    print(render_table(["metric", "value"], rows,
                       title=f"offline HoPP study of {args.trace}"))
    return 0


def _cmd_scenario(args) -> int:
    from repro.scenario import build_fleet, preset, run_scenario
    from repro.scenario.traffic import TIER_GUARANTEED

    overrides = {"seed": args.seed}
    for attr in ("rounds", "accesses_per_round", "remote_nodes",
                 "standby_nodes", "replication"):
        value = getattr(args, attr)
        if value is not None:
            overrides[attr] = value
    if args.tenants is not None:
        overrides["tenants"] = tuple(
            build_fleet(
                args.tenants,
                seed=args.seed,
                rounds=overrides.get("rounds", 8),
                pages_per_tenant=120,
            )
        )
    if args.gbps is not None:
        overrides["fabric"] = FabricConfig(gbps=args.gbps)
    fault_plan = _load_fault_plan(args.fault_plan, args.seed)
    if fault_plan is not None:
        overrides["fault_plan"] = fault_plan

    config = preset(args.preset, **overrides)
    result = run_scenario(config)
    section = result.scenario
    admission = section["admission"]
    autoscaler = section["autoscaler"]

    tier_of = {spec.name: spec.tier for spec in config.tenants}
    attain = {TIER_GUARANTEED: [], "best_effort": []}
    for name, tenant in section["slo"]["tenants"].items():
        attain[tier_of[name]].append(tenant["attainment"])

    def _mean(values):
        return f"{sum(values) / len(values):.3f}" if values else "n/a"

    rows = [
        ["tenants (admitted/total)",
         f"{section['admitted']}/{section['tenants']}"],
        ["rounds", section["rounds"]],
        ["final ladder level", admission["level_name"]],
        ["admissions / rejections",
         f"{admission['admissions']} / {admission['rejections']}"],
        ["deferrals", section["deferrals"]],
        ["prefetch throttled", section["shedding"]["prefetch_throttled"]],
        ["prefetch over-limit rejects",
         section["shedding"]["prefetch_overlimit_rejects"]],
        ["degradations / restorations",
         f"{admission['degradations']} / {admission['restorations']}"],
        ["scale-outs / scale-ins",
         f"{autoscaler['scale_outs']} / {autoscaler['scale_ins']}"],
        ["active nodes at end", len(autoscaler["active_nodes"])],
        ["fatal faults absorbed",
         section["fatal"]["fatal_faults_absorbed"]],
        ["writebacks abandoned",
         section["fatal"]["writebacks_abandoned"]],
        ["cluster conserved",
         section["conservation"]["cluster_conserved"]],
        ["SLO attainment (guaranteed)", _mean(attain[TIER_GUARANTEED])],
        ["SLO attainment (best-effort)", _mean(attain["best_effort"])],
    ]
    print(render_table(["metric", "value"], rows,
                       title=f"scenario '{config.name}'"))
    if args.json:
        Path(args.json).write_text(
            json.dumps(result.to_dict(full=True), indent=2, sort_keys=True)
        )
        print(f"wrote {args.json}")
    if args.slo_out:
        Path(args.slo_out).write_text(
            json.dumps(section["slo"], indent=2, sort_keys=True)
        )
        print(f"wrote {args.slo_out}")
    return 0


_COMMANDS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "compare": _cmd_compare,
    "sweep": _cmd_sweep,
    "tune": _cmd_tune,
    "trace": _cmd_trace,
    "analyze": _cmd_analyze,
    "study": _cmd_study,
    "scenario": _cmd_scenario,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (KeyError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
