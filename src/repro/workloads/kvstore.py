"""An in-memory key-value cache (the paper's intro motivation names
memcached as a canonical datacenter in-memory application).

GET traffic follows a Zipf popularity curve over the object space; each
GET walks the hash index (a small, hot region) and then reads the
object's value pages (1..4 contiguous pages — larger objects span
several).  SET traffic rewrites values.  There are no long streams to
speak of, which makes this an honest *negative* case for prefetching:
the win comes from the hot index and popular objects staying local, and
a good prefetcher's job is mostly to abstain (keep accuracy high by not
spraying guesses) — exactly what HoPP's stream-gated trainer does.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.workloads import traclib
from repro.workloads.base import Access, ProcessSpec, Workload

INDEX_BASE = 1 << 20
VALUE_BASE = 1 << 22


class KvCache(Workload):
    name = "kv-cache"
    jvm = False
    compute_us_per_access = 0.2

    def __init__(
        self,
        seed: int = 1,
        objects: int = 1200,
        index_pages: int = 48,
        operations: int = 8000,
        zipf_exponent: float = 1.2,
        set_ratio: float = 0.1,
        blocks_per_page: int = 8,
    ) -> None:
        super().__init__(seed)
        self.objects = objects
        self.index_pages = index_pages
        self.operations = operations
        self.zipf_exponent = zipf_exponent
        self.set_ratio = set_ratio
        self.blocks_per_page = blocks_per_page
        rng = random.Random(seed ^ 0x6B76)
        # Object sizes in pages (mostly small, a tail of multi-page
        # values) and their starting pages, laid out back to back.
        self._sizes: List[int] = [
            1 if rng.random() < 0.7 else rng.randint(2, 4)
            for _ in range(objects)
        ]
        self._starts: List[int] = []
        cursor = VALUE_BASE
        for size in self._sizes:
            self._starts.append(cursor)
            cursor += size
        self._value_pages = cursor - VALUE_BASE

    @property
    def footprint_pages(self) -> int:
        return self.index_pages + self._value_pages

    @property
    def processes(self) -> List[ProcessSpec]:
        return [
            ProcessSpec(
                pid=1,
                vmas=(
                    (INDEX_BASE, self.index_pages, "hash-index"),
                    (VALUE_BASE, self._value_pages, "values"),
                ),
            )
        ]

    def _pick_object(self, rng: random.Random) -> int:
        u = rng.random()
        index = int(self.objects * u ** self.zipf_exponent)
        return min(index, self.objects - 1)

    def trace(self) -> Iterator[Access]:
        rng = random.Random(self.seed)
        for _ in range(self.operations):
            obj = self._pick_object(rng)
            # Hash-index probe: one or two buckets.
            bucket = INDEX_BASE + (hash((obj, 0x9E37)) % self.index_pages)
            yield from traclib.visit_page(1, bucket, blocks_per_page=2)
            # Value read (or rewrite): every page of the object.
            for offset in range(self._sizes[obj]):
                yield from traclib.visit_page(
                    1, self._starts[obj] + offset,
                    blocks_per_page=self.blocks_per_page,
                )
