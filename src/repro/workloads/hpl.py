"""High Performance Linpack (Table IV: 1.2 GB, 2 cores).

Blocked LU factorization.  Each step factors a panel (a plain stream)
and then updates the trailing submatrix, whose footprint is the
paper's canonical *ladder stream* (Section II-B, Figure 2): a tread of
concentrated accesses across several column blocks at non-uniform
offsets, followed by a stable rise to the next row of blocks.  The
non-uniform tread spacing leaves no majority stride, so SSP fails and
LSP supplies the extra coverage Figure 19/20 report for HPL.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.workloads import traclib
from repro.workloads.base import Access, ProcessSpec, Workload

MATRIX_BASE = 1 << 20
PANEL_BASE = 1 << 22

#: Non-uniformly spaced column-block offsets: strides 9, 13, 21 within a
#: tread never reach the L/2 majority SSP needs.
TREAD_OFFSETS = (0, 9, 22, 43)


class Hpl(Workload):
    name = "hpl"
    jvm = False
    compute_us_per_access = 0.5  # DGEMM is compute-heavy

    def __init__(
        self,
        seed: int = 1,
        matrix_pages: int = 1800,
        panel_pages: int = 120,
        steps: int = 10,
        blocks_per_page: int = 8,
    ) -> None:
        super().__init__(seed)
        self.matrix_pages = matrix_pages
        self.panel_pages = panel_pages
        self.steps = steps
        self.blocks_per_page = blocks_per_page

    @property
    def footprint_pages(self) -> int:
        return self.matrix_pages + self.panel_pages

    @property
    def processes(self) -> List[ProcessSpec]:
        return [
            ProcessSpec(
                pid=1,
                vmas=(
                    (MATRIX_BASE, self.matrix_pages, "matrix"),
                    (PANEL_BASE, self.panel_pages, "panel"),
                ),
            )
        ]

    def trace(self) -> Iterator[Access]:
        rng = random.Random(self.seed)
        ladder_span = max(TREAD_OFFSETS) + 1
        for step in range(self.steps):
            # Panel factorization: stream over the current panel twice.
            for _ in range(2):
                yield from traclib.scan(
                    1, PANEL_BASE, self.panel_pages, blocks_per_page=self.blocks_per_page
                )
            # Trailing update: ladder walks over the shrinking submatrix.
            remaining = self.matrix_pages - step * (self.matrix_pages // (2 * self.steps))
            base = MATRIX_BASE + self.matrix_pages - remaining
            ladder_steps = max((remaining - ladder_span) // 2, 8)
            yield from traclib.ladder(
                1,
                base,
                TREAD_OFFSETS,
                steps=ladder_steps,
                rise=2,
                blocks_per_page=self.blocks_per_page,
            )
            # Row swaps: a short pass over the factored region.
            yield from traclib.scan(
                1,
                MATRIX_BASE,
                min(self.matrix_pages, remaining // 2),
                blocks_per_page=self.blocks_per_page,
            )
