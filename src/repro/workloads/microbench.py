"""Microbenchmarks.

* Pure-pattern stream micros (simple / ladder / ripple / interleaved)
  used by unit tests, the pattern-study example, and the STT ablations.
* :class:`AdderBenchmark` — the Section VI-E sensitivity benchmark:
  two worker threads, each streaming over its own large array and
  summing every 8-byte word (512 additions per page); local memory is
  limited to a quarter of the footprint in the paper's setup.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.workloads import traclib
from repro.workloads.base import Access, ProcessSpec, Workload

BASE_A = 1 << 20
BASE_B = 1 << 22
NOISE_BASE = 1 << 25


class SimpleStream(Workload):
    """One clean fixed-stride stream."""

    name = "stream-simple"

    def __init__(self, seed: int = 1, npages: int = 1200, stride: int = 1,
                 passes: int = 2, blocks_per_page: int = 8) -> None:
        super().__init__(seed)
        self.npages = npages
        self.stride = stride
        self.passes = passes
        self.blocks_per_page = blocks_per_page

    @property
    def footprint_pages(self) -> int:
        return self.npages * abs(self.stride)

    @property
    def processes(self) -> List[ProcessSpec]:
        return [ProcessSpec(pid=1, vmas=((BASE_A, self.footprint_pages + 1, "arr"),))]

    def trace(self) -> Iterator[Access]:
        for _ in range(self.passes):
            yield from traclib.scan(
                1, BASE_A, self.npages, stride=self.stride,
                blocks_per_page=self.blocks_per_page,
            )


class LadderStream(Workload):
    """A pure ladder stream (Figure 2)."""

    name = "stream-ladder"
    OFFSETS = (0, 9, 22, 43)

    def __init__(self, seed: int = 1, steps: int = 400, rise: int = 2,
                 passes: int = 2, blocks_per_page: int = 8) -> None:
        super().__init__(seed)
        self.steps = steps
        self.rise = rise
        self.passes = passes
        self.blocks_per_page = blocks_per_page

    @property
    def footprint_pages(self) -> int:
        return max(self.OFFSETS) + self.steps * self.rise + 1

    @property
    def processes(self) -> List[ProcessSpec]:
        return [ProcessSpec(pid=1, vmas=((BASE_A, self.footprint_pages, "arr"),))]

    def trace(self) -> Iterator[Access]:
        for _ in range(self.passes):
            yield from traclib.ladder(
                1, BASE_A, self.OFFSETS, self.steps, self.rise,
                blocks_per_page=self.blocks_per_page,
            )


class RippleStream(Workload):
    """A pure ripple stream (Figure 3)."""

    name = "stream-ripple"

    def __init__(self, seed: int = 1, npages: int = 1200, passes: int = 2,
                 blocks_per_page: int = 8) -> None:
        super().__init__(seed)
        self.npages = npages
        self.passes = passes
        self.blocks_per_page = blocks_per_page

    @property
    def footprint_pages(self) -> int:
        return self.npages + 16  # hop margin

    @property
    def processes(self) -> List[ProcessSpec]:
        return [ProcessSpec(pid=1, vmas=((BASE_A, self.footprint_pages, "arr"),))]

    def trace(self) -> Iterator[Access]:
        rng = random.Random(self.seed)
        for _ in range(self.passes):
            yield from traclib.ripple(
                1, BASE_A, self.npages, rng, blocks_per_page=self.blocks_per_page
            )


class InterleavedStreams(Workload):
    """The Figure 1 motivator: two streams with different strides,
    interleaved in time, plus occasional interference pages."""

    name = "stream-interleaved"

    def __init__(self, seed: int = 1, npages: int = 800, passes: int = 2,
                 blocks_per_page: int = 8) -> None:
        super().__init__(seed)
        self.npages = npages
        self.passes = passes
        self.blocks_per_page = blocks_per_page

    @property
    def footprint_pages(self) -> int:
        return self.npages * 3 + 64

    @property
    def processes(self) -> List[ProcessSpec]:
        return [
            ProcessSpec(
                pid=1,
                vmas=(
                    (BASE_A, self.npages * 2 + 1, "stream-a"),
                    (BASE_B, self.npages + 1, "stream-b"),
                    (NOISE_BASE, 64, "noise"),
                ),
            )
        ]

    def trace(self) -> Iterator[Access]:
        rng = random.Random(self.seed)
        for _ in range(self.passes):
            a = traclib.scan(1, BASE_A, self.npages, stride=2,
                             blocks_per_page=self.blocks_per_page)
            b = traclib.scan(1, BASE_B, self.npages, stride=1,
                             blocks_per_page=self.blocks_per_page)
            mixed = traclib.interleave([a, b], rng, chunk_pages=2,
                                       blocks_per_page=self.blocks_per_page)
            yield from traclib.sprinkle(
                mixed, 1, NOISE_BASE, 64, rng, probability=0.02
            )


class AdderBenchmark(Workload):
    """Section VI-E's benchmark: 2 threads x (2 GB array, read + add all
    8-byte words of every page).  Scaled to pages; pure simple streams
    with no interference, so differences between systems isolate the
    prefetch-hit overhead and offset control."""

    name = "adder"
    compute_us_per_access = 0.4  # 64 additions per cacheline

    def __init__(self, seed: int = 1, pages_per_thread: int = 1500,
                 threads: int = 2, passes: int = 2,
                 blocks_per_page: int = 8) -> None:
        super().__init__(seed)
        self.pages_per_thread = pages_per_thread
        self.threads = threads
        self.passes = passes
        self.blocks_per_page = blocks_per_page

    @property
    def footprint_pages(self) -> int:
        return self.pages_per_thread * self.threads

    @property
    def processes(self) -> List[ProcessSpec]:
        vmas = tuple(
            (BASE_A + t * (1 << 22), self.pages_per_thread, f"array-{t}")
            for t in range(self.threads)
        )
        return [ProcessSpec(pid=1, vmas=vmas)]

    def trace(self) -> Iterator[Access]:
        rng = random.Random(self.seed)
        for _ in range(self.passes):
            scans = [
                traclib.scan(
                    1,
                    BASE_A + t * (1 << 22),
                    self.pages_per_thread,
                    blocks_per_page=self.blocks_per_page,
                )
                for t in range(self.threads)
            ]
            yield from traclib.interleave(
                scans, rng, chunk_pages=3, blocks_per_page=self.blocks_per_page
            )

class ScanWithWorkingSet(Workload):
    """A long repeated scan interleaved with random reuse of a medium
    working set that fits in local memory *by itself*.

    The classic scan-resistance stressor: plain LRU lets the scan flood
    the recency list and evict the working set, so the working set
    faults on every reuse.  A stream-aware evictor (hopp-evict) keeps
    evicting the scan's dead trail instead and the working set stays
    local."""

    name = "scan-with-workingset"
    compute_us_per_access = 0.3

    def __init__(self, seed: int = 1, scan_pages: int = 2400,
                 working_set_pages: int = 500, passes: int = 3,
                 reuse_ratio: float = 0.5, blocks_per_page: int = 8) -> None:
        super().__init__(seed)
        self.scan_pages = scan_pages
        self.working_set_pages = working_set_pages
        self.passes = passes
        self.reuse_ratio = reuse_ratio
        self.blocks_per_page = blocks_per_page

    @property
    def footprint_pages(self) -> int:
        return self.scan_pages + self.working_set_pages

    @property
    def processes(self) -> List[ProcessSpec]:
        return [
            ProcessSpec(
                pid=1,
                vmas=(
                    (BASE_A, self.scan_pages, "scan"),
                    (BASE_B, self.working_set_pages, "working-set"),
                ),
            )
        ]

    def trace(self) -> Iterator[Access]:
        rng = random.Random(self.seed)
        for _ in range(self.passes):
            scan = traclib.scan(
                1, BASE_A, self.scan_pages, blocks_per_page=self.blocks_per_page
            )
            reuse = traclib.random_gather(
                1,
                BASE_B,
                self.working_set_pages,
                int(self.scan_pages * self.reuse_ratio),
                rng,
                blocks_per_page=self.blocks_per_page,
            )
            yield from traclib.interleave(
                [scan, reuse], rng, chunk_pages=4,
                blocks_per_page=self.blocks_per_page,
            )
