"""Workload framework.

A workload describes one application of the paper's Table IV: its
processes, VMAs, and — most importantly — its LLC-miss reference trace.
Traces are generated lazily and deterministically from a seed so every
system under comparison replays the identical access sequence.

The unit of a trace is a cacheline READ that missed the LLC, expressed
as ``(pid, virtual_byte_address)``.  Generators emit a configurable
number of cacheline touches per page visit (``blocks_per_page``); with
the HPD threshold at its default of 8, a fully visited page is extracted
as hot exactly once per visit.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from repro.common.constants import PAGE_SHIFT

#: One trace item: (pid, virtual byte address).
Access = Tuple[int, int]


@dataclass(frozen=True)
class ProcessSpec:
    """A process the workload runs as, with its VMAs."""

    pid: int
    cgroup: str = "default"
    #: (start_vpn, npages, name) triples.
    vmas: Tuple[Tuple[int, int, str], ...] = ()


class Workload(abc.ABC):
    """Base class for all Table-IV applications and microbenchmarks."""

    #: Registry name, e.g. "omp-kmeans".
    name: str = "workload"
    #: JVM-hosted workloads (Spark family) — Section VI-B treats them
    #: separately because JVM memory management fragments streams.
    jvm: bool = False
    #: Simulated non-memory work per LLC-miss access, in microseconds.
    #: This is the computation the paper's applications do between
    #: misses; it sets how much memory latency can be overlapped.
    compute_us_per_access: float = 0.3

    def __init__(self, seed: int = 1) -> None:
        self.seed = seed

    @property
    @abc.abstractmethod
    def footprint_pages(self) -> int:
        """Total distinct pages the workload touches."""

    @property
    @abc.abstractmethod
    def processes(self) -> List[ProcessSpec]:
        ...

    @abc.abstractmethod
    def trace(self) -> Iterator[Access]:
        """Yield the LLC-miss reference stream."""

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def page_addr(vpn: int, block: int = 0) -> int:
        return (vpn << PAGE_SHIFT) | (block << 6)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} name={self.name!r} seed={self.seed}>"
