"""JVM/Spark memory-behaviour helpers.

Section VI-B explains why Spark workloads prefetch worse: the JVM
manages memory differently — Spark splits work into stages, each stage
writes to a *different* memory area, so streams are many and short, and
garbage collection adds its own passes.  These helpers reproduce that:

* :func:`make_segments`   — scatter an allocation into non-adjacent
  segments (RDD partitions / TLAB regions);
* :func:`segmented_scan`  — stream the segments in order; every segment
  boundary breaks the stream, so "the repetitive patterns might stop
  before HoPP finishes identifying them";
* :func:`gc_pass`         — a fast stride-1 sweep over the live heap
  (mark phase), touching everything briefly.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Sequence, Tuple

from repro.workloads import traclib
from repro.workloads.base import Access

#: A heap segment: (start_vpn, npages).
Segment = Tuple[int, int]


def make_segments(
    base_vpn: int,
    total_pages: int,
    segment_pages: int,
    rng: random.Random,
    gap_pages: int = 64,
) -> List[Segment]:
    """Split ``total_pages`` into segments separated by irregular gaps.

    Gaps exceed the STT's Delta_stream (64 pages) so each segment trains
    as its own stream.
    """
    segments: List[Segment] = []
    cursor = base_vpn
    remaining = total_pages
    while remaining > 0:
        size = min(segment_pages, remaining)
        segments.append((cursor, size))
        cursor += size + gap_pages + rng.randrange(gap_pages)
        remaining -= size
    return segments


def segmented_scan(
    pid: int,
    segments: Sequence[Segment],
    blocks_per_page: int = 8,
    parallelism: int = 1,
    rng: random.Random = None,
) -> Iterator[Access]:
    """Stream the segments (one short stream each).

    ``parallelism`` > 1 interleaves that many concurrent segment scans —
    Spark executors run one task per core, so partitions stream
    concurrently.  Interleaved eviction orders are what break Fastswap's
    swap-offset read-ahead while HoPP's pages clustering is unaffected.
    """
    if parallelism <= 1:
        for start, npages in segments:
            yield from traclib.scan(
                pid, start, npages, blocks_per_page=blocks_per_page
            )
        return
    if rng is None:
        rng = random.Random(0)
    pending = list(segments)
    while pending:
        batch = pending[:parallelism]
        del pending[:parallelism]
        scans = [
            traclib.scan(pid, start, npages, blocks_per_page=blocks_per_page)
            for start, npages in batch
        ]
        yield from traclib.interleave(
            scans, rng, chunk_pages=3, blocks_per_page=blocks_per_page
        )


def gc_pass(
    pid: int,
    segments: Sequence[Segment],
    blocks_per_page: int = 8,
) -> Iterator[Access]:
    """A mark-phase sweep over the live heap.

    Object headers are dense on JVM heap pages, so a mark pass touches
    most cachelines of every live page — enough for the HPD threshold.
    """
    for start, npages in segments:
        yield from traclib.scan(pid, start, npages, blocks_per_page=blocks_per_page)


def total_pages(segments: Sequence[Segment]) -> int:
    return sum(npages for _, npages in segments)


def span(segments: Sequence[Segment]) -> Tuple[int, int]:
    """(start_vpn, npages) of the VMA covering all segments."""
    start = min(s for s, _ in segments)
    end = max(s + n for s, n in segments)
    return start, end - start
