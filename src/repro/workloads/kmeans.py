"""OMP-K-means (Table IV: 3.2 GB footprint, 2 cores).

Two worker threads each stream their half of a large, contiguous sample
array once per iteration — the paper notes that, unlike Spark's staged
allocation, OMP-K-means "allocates a large array and writes all the data
into a contiguous memory", producing long simple streams.  A small
centroid region stays hot throughout.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.workloads import traclib
from repro.workloads.base import Access, ProcessSpec, Workload

DATA_BASE = 1 << 20
CENTROID_BASE = 1 << 22


class OmpKmeans(Workload):
    name = "omp-kmeans"
    jvm = False
    compute_us_per_access = 0.35

    def __init__(
        self,
        seed: int = 1,
        data_pages: int = 2400,
        centroid_pages: int = 24,
        iterations: int = 3,
        threads: int = 2,
        blocks_per_page: int = 8,
    ) -> None:
        super().__init__(seed)
        self.data_pages = data_pages
        self.centroid_pages = centroid_pages
        self.iterations = iterations
        self.threads = threads
        self.blocks_per_page = blocks_per_page

    @property
    def footprint_pages(self) -> int:
        return self.data_pages + self.centroid_pages

    @property
    def processes(self) -> List[ProcessSpec]:
        return [
            ProcessSpec(
                pid=1,
                vmas=(
                    (DATA_BASE, self.data_pages, "samples"),
                    (CENTROID_BASE, self.centroid_pages, "centroids"),
                ),
            )
        ]

    def trace(self) -> Iterator[Access]:
        rng = random.Random(self.seed)
        chunk = self.data_pages // self.threads
        for _ in range(self.iterations):
            scans = [
                traclib.scan(
                    1,
                    DATA_BASE + t * chunk,
                    chunk,
                    blocks_per_page=self.blocks_per_page,
                )
                for t in range(self.threads)
            ]
            centroid_visits = self.data_pages  # roughly one per data page
            hot = traclib.hotspot(
                1, CENTROID_BASE, self.centroid_pages, centroid_visits, rng
            )
            yield from traclib.interleave(
                scans + [hot], rng, chunk_pages=8, blocks_per_page=self.blocks_per_page
            )
