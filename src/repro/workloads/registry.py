"""Workload registry: name -> class, plus the paper's groupings."""

from __future__ import annotations

from typing import Dict, List, Type

from repro.workloads.base import Workload
from repro.workloads.graphx import GraphxBFS, GraphxCC, GraphxLP, GraphxPageRank
from repro.workloads.hpl import Hpl
from repro.workloads.kmeans import OmpKmeans
from repro.workloads.microbench import (
    AdderBenchmark,
    ScanWithWorkingSet,
    InterleavedStreams,
    LadderStream,
    RippleStream,
    SimpleStream,
)
from repro.workloads.kvstore import KvCache
from repro.workloads.npb import NpbCG, NpbFT, NpbIS, NpbLU, NpbMG
from repro.workloads.quicksort import Quicksort
from repro.workloads.spark import SparkBayes, SparkKmeans

_REGISTRY: Dict[str, Type[Workload]] = {
    cls.name: cls
    for cls in (
        OmpKmeans,
        Quicksort,
        Hpl,
        NpbCG,
        NpbFT,
        NpbLU,
        NpbMG,
        NpbIS,
        GraphxBFS,
        GraphxCC,
        GraphxPageRank,
        GraphxLP,
        SparkKmeans,
        SparkBayes,
        SimpleStream,
        LadderStream,
        RippleStream,
        InterleavedStreams,
        AdderBenchmark,
        ScanWithWorkingSet,
        KvCache,
    )
}

#: Figure 9-11 group (applications without JVM).
NON_JVM_APPS: List[str] = [
    "omp-kmeans",
    "quicksort",
    "hpl",
    "npb-cg",
    "npb-ft",
    "npb-lu",
    "npb-mg",
    "npb-is",
]

#: Figure 12-14 group (Spark/JVM applications).
SPARK_APPS: List[str] = [
    "graphx-cc",
    "graphx-pr",
    "graphx-bfs",
    "graphx-lp",
    "spark-kmeans",
    "spark-bayes",
]

ALL_APPS: List[str] = NON_JVM_APPS + SPARK_APPS


def build(name: str, seed: int = 1, **kwargs) -> Workload:
    """Instantiate a registered workload by name."""
    cls = _REGISTRY.get(name)
    if cls is None:
        raise KeyError(
            f"unknown workload {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        )
    return cls(seed=seed, **kwargs)


def names() -> List[str]:
    return sorted(_REGISTRY)


def register(cls: Type[Workload]) -> None:
    """Extension point for user-defined workloads."""
    _REGISTRY[cls.name] = cls
