"""Trace-generation building blocks.

Every generator yields ``(pid, virtual_byte_address)`` cacheline READs.
A *page visit* emits ``blocks_per_page`` touches spread across the
page's 64 cachelines, which is what makes the page cross the HPD's hot
threshold (N=8 by default).

The three stream shapes of Section II-B map to:

* :func:`scan`            — simple streams (fixed page stride);
* :func:`ladder`          — ladder streams (tread across substreams with
                            non-uniform spacing, then a rise);
* :func:`ripple`          — stride-1 streams distorted by bounded
                            out-of-order hops (Figure 3).
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.common.constants import BLOCK_SHIFT, BLOCKS_PER_PAGE, PAGE_SHIFT

Access = Tuple[int, int]


def visit_page(pid: int, vpn: int, blocks_per_page: int = 8) -> Iterator[Access]:
    """Touch ``blocks_per_page`` consecutive cachelines of one page
    (streaming reads touch lines in order, which also spreads them
    round-robin across interleaved memory channels)."""
    base = vpn << PAGE_SHIFT
    for i in range(min(blocks_per_page, BLOCKS_PER_PAGE)):
        yield pid, base | (i << BLOCK_SHIFT)


def scan(
    pid: int,
    start_vpn: int,
    npages: int,
    stride: int = 1,
    blocks_per_page: int = 8,
) -> Iterator[Access]:
    """A simple stream: ``npages`` page visits with a fixed page stride.

    ``stride`` may be negative (a descending scan, e.g. quicksort's
    right-to-left partition pointer).
    """
    vpn = start_vpn
    for _ in range(npages):
        yield from visit_page(pid, vpn, blocks_per_page)
        vpn += stride


def ladder(
    pid: int,
    base_vpn: int,
    substream_offsets: Sequence[int],
    steps: int,
    rise: int = 1,
    blocks_per_page: int = 8,
) -> Iterator[Access]:
    """A ladder stream (Figure 2).

    Each *tread* visits page ``base + offset + j*rise`` for every
    substream offset in order; then ``j`` advances — the *rise*.  With
    non-uniformly spaced offsets no single stride dominates, so SSP
    fails and the repetitive stride pattern is LSP's to find.
    """
    for j in range(steps):
        for offset in substream_offsets:
            yield from visit_page(pid, base_vpn + offset + j * rise, blocks_per_page)


def ripple(
    pid: int,
    start_vpn: int,
    npages: int,
    rng: random.Random,
    swap_probability: float = 0.35,
    hop_probability: float = 0.06,
    hop_distance: int = 12,
    blocks_per_page: int = 8,
    shuffle_window: int = 2,
) -> Iterator[Access]:
    """A ripple stream (Figure 3): net stride 1, locally out of order.

    Adjacent page visits swap with ``swap_probability`` — the paper's
    RSP tolerates "2 out-of-order accesses, which happens most of the
    time" (max_stride = 2).  With ``hop_probability`` an access briefly
    hops to a page ``hop_distance`` away (a neighboring stream) before
    returning — the across-stream distortion of Figure 3.

    ``shuffle_window`` > 2 widens the local reordering beyond adjacent
    swaps (used to stress RSP's tolerance limit in tests).
    """
    order: List[int] = list(range(start_vpn, start_vpn + npages))
    if shuffle_window <= 2:
        i = 0
        while i < npages - 1:
            if rng.random() < swap_probability:
                order[i], order[i + 1] = order[i + 1], order[i]
                i += 2
            else:
                i += 1
    else:
        for i in range(0, npages - shuffle_window, shuffle_window):
            window = order[i : i + shuffle_window]
            rng.shuffle(window)
            order[i : i + shuffle_window] = window
    for vpn in order:
        if rng.random() < hop_probability:
            yield from visit_page(pid, vpn + hop_distance, blocks_per_page)
        yield from visit_page(pid, vpn, blocks_per_page)


def random_gather(
    pid: int,
    start_vpn: int,
    npages: int,
    visits: int,
    rng: random.Random,
    blocks_per_page: int = 8,
    zipf_exponent: float = 0.0,
) -> Iterator[Access]:
    """Irregular page visits over a region (hash joins, sparse gathers).

    ``zipf_exponent`` > 0 skews visits toward low page numbers, modelling
    hot-vertex behaviour in power-law graphs.
    """
    for _ in range(visits):
        if zipf_exponent > 0.0:
            # Inverse-CDF sample of a bounded Zipf-like distribution.
            u = rng.random()
            index = int(npages * u ** (1.0 + zipf_exponent))
            index = min(index, npages - 1)
        else:
            index = rng.randrange(npages)
        yield from visit_page(pid, start_vpn + index, blocks_per_page)


def hotspot(
    pid: int,
    start_vpn: int,
    npages: int,
    visits: int,
    rng: random.Random,
    blocks_per_page: int = 4,
) -> Iterator[Access]:
    """Frequent touches to a small always-hot region (centroids, roots)."""
    yield from random_gather(pid, start_vpn, npages, visits, rng, blocks_per_page)


def interleave(
    sources: Sequence[Iterator[Access]],
    rng: random.Random,
    chunk_pages: int = 4,
    blocks_per_page: int = 8,
) -> Iterator[Access]:
    """Randomly interleave several access streams in page-visit chunks.

    Models concurrent threads/streams: each turn picks a live source and
    lets it emit ~``chunk_pages`` page visits.  This is what defeats
    fault-history prefetchers (Figure 1) while HoPP's pages clustering
    still separates the streams.
    """
    live: List[Iterator[Access]] = list(sources)
    chunk_accesses = max(chunk_pages * blocks_per_page, 1)
    while live:
        source = live[rng.randrange(len(live))]
        emitted = 0
        for access in source:
            yield access
            emitted += 1
            if emitted >= chunk_accesses:
                break
        else:
            live.remove(source)


def concat(*sources: Iterable[Access]) -> Iterator[Access]:
    for source in sources:
        yield from source


def sprinkle(
    source: Iterator[Access],
    pid: int,
    noise_start_vpn: int,
    noise_npages: int,
    rng: random.Random,
    probability: float = 0.02,
    blocks_per_page: int = 2,
) -> Iterator[Access]:
    """Inject interference pages (Section II-B, limitation 3): isolated
    accesses that belong to no stream."""
    for access in source:
        yield access
        if rng.random() < probability:
            vpn = noise_start_vpn + rng.randrange(noise_npages)
            yield from visit_page(pid, vpn, blocks_per_page)
