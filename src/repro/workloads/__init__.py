"""Workload suite: the 15 Table-IV applications plus microbenchmarks."""

from repro.workloads.base import Access, ProcessSpec, Workload
from repro.workloads.registry import (
    ALL_APPS,
    NON_JVM_APPS,
    SPARK_APPS,
    build,
    names,
    register,
)

__all__ = [
    "Access",
    "ProcessSpec",
    "Workload",
    "ALL_APPS",
    "NON_JVM_APPS",
    "SPARK_APPS",
    "build",
    "names",
    "register",
]
