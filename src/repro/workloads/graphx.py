"""GraphX workloads on Spark: BFS, CC, PageRank, LP (Table IV: 33 GB,
14 cores, JVM-hosted).

The graph lives in CSR-like form: edge arrays streamed per iteration and
a vertex-state table hit with power-law-skewed gathers.  Spark behaviour
per Section VI-B: the run has three parts with growing footprint (11,
22, 33 GB in the paper — thirds here); each part's RDD partitions are
scattered heap segments, so edge streams are short; GC passes sweep the
live heap between iterations.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.workloads import jvmlib, traclib
from repro.workloads.base import Access, ProcessSpec, Workload

EDGE_BASE = 1 << 20
VERTEX_BASE = 1 << 23


class _GraphxBase(Workload):
    jvm = True
    compute_us_per_access = 0.25

    #: Fraction of per-iteration work that is irregular vertex gathers.
    gather_ratio = 0.3
    #: Iterations per part.
    iterations = 2
    #: Short sequential run length for frontier-driven kernels (pages);
    #: None means full-segment streaming.
    run_pages = None

    def __init__(
        self,
        seed: int = 1,
        edge_pages: int = 3600,
        vertex_pages: int = 600,
        parts: int = 3,
        segment_pages: int = 200,
        blocks_per_page: int = 8,
    ) -> None:
        super().__init__(seed)
        self.edge_pages = edge_pages
        self.vertex_pages = vertex_pages
        self.parts = parts
        self.segment_pages = segment_pages
        self.blocks_per_page = blocks_per_page
        rng = random.Random(seed ^ 0x5A17)
        self._segments = jvmlib.make_segments(
            EDGE_BASE, edge_pages, segment_pages, rng
        )

    @property
    def footprint_pages(self) -> int:
        return self.edge_pages + self.vertex_pages

    @property
    def processes(self) -> List[ProcessSpec]:
        start, npages = jvmlib.span(self._segments)
        return [
            ProcessSpec(
                pid=1,
                vmas=(
                    (start, npages, "edge-heap"),
                    (VERTEX_BASE, self.vertex_pages, "vertex-state"),
                ),
            )
        ]

    def trace(self) -> Iterator[Access]:
        rng = random.Random(self.seed)
        nsegs = len(self._segments)
        for part in range(1, self.parts + 1):
            live = self._segments[: max(1, nsegs * part // self.parts)]
            for _ in range(self.iterations):
                yield from self._iteration(rng, live)
            # End-of-part GC: sweep the live heap.
            yield from jvmlib.gc_pass(1, live)

    def _iteration(self, rng: random.Random, live) -> Iterator[Access]:
        edge_visits = jvmlib.total_pages(live)
        gathers = traclib.random_gather(
            1,
            VERTEX_BASE,
            self.vertex_pages,
            int(edge_visits * self.gather_ratio),
            rng,
            blocks_per_page=4,
            zipf_exponent=0.8,
        )
        yield from traclib.interleave(
            [self._edge_stream(rng, live), gathers],
            rng,
            chunk_pages=5,
            blocks_per_page=self.blocks_per_page,
        )

    def _edge_stream(self, rng: random.Random, live) -> Iterator[Access]:
        if self.run_pages is None:
            yield from jvmlib.segmented_scan(
                1, live, self.blocks_per_page, parallelism=6, rng=rng
            )
            return
        # Frontier-driven: mostly short adjacency runs at random
        # positions, punctuated by long hub-vertex runs (power-law
        # graphs: a high-degree hub's edge list spans tens of pages).
        visits = jvmlib.total_pages(live)
        emitted = 0
        while emitted < visits:
            start, npages = live[rng.randrange(len(live))]
            if rng.random() < 0.3:
                run = min(rng.randrange(30, 81), npages)
            else:
                run = min(1 + rng.randrange(self.run_pages), npages)
            offset = rng.randrange(max(npages - run, 1))
            yield from traclib.scan(
                1, start + offset, run, blocks_per_page=self.blocks_per_page
            )
            emitted += run


class GraphxPageRank(_GraphxBase):
    name = "graphx-pr"
    gather_ratio = 0.3
    iterations = 2


class GraphxCC(_GraphxBase):
    name = "graphx-cc"
    gather_ratio = 0.5
    iterations = 2
    run_pages = 8


class GraphxLP(_GraphxBase):
    name = "graphx-lp"
    gather_ratio = 0.5
    iterations = 2


class GraphxBFS(_GraphxBase):
    name = "graphx-bfs"
    gather_ratio = 0.5
    iterations = 2
    run_pages = 4
