"""Spark-Bayes and Spark-K-Means (Table IV: 33 GB / 13 GB, JVM-hosted).

Section VI-B: "Spark divides the K-means workload into multiple stages,
each stage writes the data into a different memory area", so streams are
plentiful but short and may end before the STT finishes training — the
reason Spark coverage trails the OMP variants.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.workloads import jvmlib, traclib
from repro.workloads.base import Access, ProcessSpec, Workload

HEAP_BASE = 1 << 20
BROADCAST_BASE = 1 << 24


class SparkKmeans(Workload):
    name = "spark-kmeans"
    jvm = True
    compute_us_per_access = 0.3

    def __init__(
        self,
        seed: int = 1,
        data_pages: int = 2600,
        centroid_pages: int = 32,
        stages: int = 4,
        segment_pages: int = 150,
        blocks_per_page: int = 8,
    ) -> None:
        super().__init__(seed)
        self.data_pages = data_pages
        self.centroid_pages = centroid_pages
        self.stages = stages
        self.segment_pages = segment_pages
        self.blocks_per_page = blocks_per_page
        rng = random.Random(seed ^ 0x4B4D)
        self._segments = jvmlib.make_segments(
            HEAP_BASE, data_pages, segment_pages, rng
        )

    @property
    def footprint_pages(self) -> int:
        return self.data_pages + self.centroid_pages

    @property
    def processes(self) -> List[ProcessSpec]:
        start, npages = jvmlib.span(self._segments)
        return [
            ProcessSpec(
                pid=1,
                vmas=(
                    (start, npages, "rdd-heap"),
                    (BROADCAST_BASE, self.centroid_pages, "broadcast-centroids"),
                ),
            )
        ]

    def trace(self) -> Iterator[Access]:
        rng = random.Random(self.seed)
        per_stage = max(1, len(self._segments) // self.stages)
        for stage in range(self.stages):
            # Stage = one K-means iteration: re-read the cached RDD
            # (all partitions materialized so far) against the broadcast
            # centroids, then materialize this stage's new partitions.
            live = self._segments[: (stage + 1) * per_stage]
            if not live:
                break
            scans = jvmlib.segmented_scan(
                1, live, self.blocks_per_page, parallelism=4, rng=rng
            )
            hot = traclib.hotspot(
                1,
                BROADCAST_BASE,
                self.centroid_pages,
                jvmlib.total_pages(live) // 2,
                rng,
            )
            yield from traclib.interleave(
                [scans, hot], rng, chunk_pages=6,
                blocks_per_page=self.blocks_per_page,
            )
            yield from jvmlib.gc_pass(1, live)


class SparkBayes(Workload):
    name = "spark-bayes"
    jvm = True
    compute_us_per_access = 0.3

    def __init__(
        self,
        seed: int = 1,
        corpus_pages: int = 3400,
        model_pages: int = 500,
        stages: int = 3,
        segment_pages: int = 180,
        blocks_per_page: int = 8,
    ) -> None:
        super().__init__(seed)
        self.corpus_pages = corpus_pages
        self.model_pages = model_pages
        self.stages = stages
        self.segment_pages = segment_pages
        self.blocks_per_page = blocks_per_page
        rng = random.Random(seed ^ 0xBA1E)
        self._segments = jvmlib.make_segments(
            HEAP_BASE, corpus_pages, segment_pages, rng
        )

    @property
    def footprint_pages(self) -> int:
        return self.corpus_pages + self.model_pages

    @property
    def processes(self) -> List[ProcessSpec]:
        start, npages = jvmlib.span(self._segments)
        return [
            ProcessSpec(
                pid=1,
                vmas=(
                    (start, npages, "corpus-heap"),
                    (BROADCAST_BASE, self.model_pages, "model"),
                ),
            )
        ]

    def trace(self) -> Iterator[Access]:
        rng = random.Random(self.seed)
        per_stage = max(1, len(self._segments) // self.stages)
        for stage in range(self.stages):
            live = self._segments[: (stage + 1) * per_stage]
            if not live:
                break
            # Tokenize/count pass: re-stream the corpus partitions
            # materialized so far (lineage re-read) with scattered
            # updates into the model's count tables.
            scans = jvmlib.segmented_scan(
                1, live, self.blocks_per_page, parallelism=4, rng=rng
            )
            updates = traclib.random_gather(
                1,
                BROADCAST_BASE,
                self.model_pages,
                int(jvmlib.total_pages(live) * 0.5),
                rng,
                blocks_per_page=3,
            )
            yield from traclib.interleave(
                [scans, updates], rng, chunk_pages=5,
                blocks_per_page=self.blocks_per_page,
            )
            yield from jvmlib.gc_pass(1, live)
