"""NAS Parallel Benchmarks: CG, FT, LU, MG, IS (Table IV: 1-7 GB, 2 cores).

Each kernel reproduces the documented access structure:

* **CG**  — sparse mat-vec: a long stream over the matrix (values +
  column indices) with irregular gathers into the dense vector.
* **FT**  — 3-D FFT: unit-stride butterfly passes alternating with
  large-stride transpose passes (all simple streams, varied strides).
* **LU**  — SSOR wavefronts: net-stride-1 sweeps locally out of order —
  the canonical *ripple* stream.
* **MG**  — multigrid V-cycles: smoothing passes at power-of-two strides
  across levels plus ladder-shaped restriction/prolongation stencils;
  the paper's second LSP/RSP showcase (Figures 19-20).
* **IS**  — bucket sort: a sequential key scan with scattered bucket
  counter updates.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.workloads import traclib
from repro.workloads.base import Access, ProcessSpec, Workload

REGION_A = 1 << 20   # main data (matrix / grid / keys)
REGION_B = 1 << 22   # secondary data (vectors / buckets / scratch)


class _NpbKernel(Workload):
    jvm = False
    compute_us_per_access = 0.35

    def __init__(
        self,
        seed: int = 1,
        main_pages: int = 2000,
        aux_pages: int = 400,
        iterations: int = 3,
        blocks_per_page: int = 8,
    ) -> None:
        super().__init__(seed)
        self.main_pages = main_pages
        self.aux_pages = aux_pages
        self.iterations = iterations
        self.blocks_per_page = blocks_per_page

    @property
    def footprint_pages(self) -> int:
        return self.main_pages + self.aux_pages

    @property
    def processes(self) -> List[ProcessSpec]:
        return [
            ProcessSpec(
                pid=1,
                vmas=(
                    (REGION_A, self.main_pages, "main"),
                    (REGION_B, self.aux_pages, "aux"),
                ),
            )
        ]


class NpbCG(_NpbKernel):
    name = "npb-cg"

    def trace(self) -> Iterator[Access]:
        rng = random.Random(self.seed)
        for _ in range(self.iterations):
            matrix = traclib.scan(
                1, REGION_A, self.main_pages, blocks_per_page=self.blocks_per_page
            )
            # Column-index gathers into the dense vector: irregular.
            gathers = traclib.random_gather(
                1, REGION_B, self.aux_pages, self.main_pages // 3, rng,
                blocks_per_page=4,
            )
            yield from traclib.interleave(
                [matrix, gathers], rng, chunk_pages=6,
                blocks_per_page=self.blocks_per_page,
            )


class NpbFT(_NpbKernel):
    name = "npb-ft"

    def trace(self) -> Iterator[Access]:
        strides = (1, 8, 1, 16)
        for _ in range(self.iterations):
            for stride in strides:
                npages = self.main_pages // stride
                for lane in range(stride):
                    yield from traclib.scan(
                        1,
                        REGION_A + lane,
                        npages,
                        stride=stride,
                        blocks_per_page=self.blocks_per_page,
                    )


class NpbLU(_NpbKernel):
    name = "npb-lu"

    def trace(self) -> Iterator[Access]:
        rng = random.Random(self.seed)
        for _ in range(self.iterations):
            # SSOR: a forward wavefront sweep (ripple) followed by the
            # backward-substitution sweep walking the grid top-down.
            yield from traclib.ripple(
                1, REGION_A, self.main_pages, rng,
                blocks_per_page=self.blocks_per_page,
            )
            yield from traclib.scan(
                1, REGION_A + self.main_pages - 1, self.main_pages,
                stride=-1, blocks_per_page=self.blocks_per_page,
            )


class NpbMG(_NpbKernel):
    name = "npb-mg"

    #: Tread offsets of the 3-D stencil's plane touches (non-uniform).
    STENCIL_OFFSETS = (0, 11, 26)

    def trace(self) -> Iterator[Access]:
        rng = random.Random(self.seed)
        span = max(self.STENCIL_OFFSETS) + 1
        for _ in range(self.iterations):
            # Down the V-cycle: symmetric smoothing (forward + backward
            # sweeps) at coarsening strides.
            for stride in (1, 2, 4):
                npages = self.main_pages // stride
                yield from traclib.scan(
                    1,
                    REGION_A,
                    npages,
                    stride=stride,
                    blocks_per_page=self.blocks_per_page,
                )
                yield from traclib.scan(
                    1,
                    REGION_A + (npages - 1) * stride,
                    npages,
                    stride=-stride,
                    blocks_per_page=self.blocks_per_page,
                )
            # Restriction/prolongation stencils: ladder across planes.
            yield from traclib.ladder(
                1,
                REGION_A,
                self.STENCIL_OFFSETS,
                steps=max((self.main_pages - span) // 2, 8),
                rise=2,
                blocks_per_page=self.blocks_per_page,
            )
            # Finest-level smoother: slightly out-of-order stride-1.
            yield from traclib.ripple(
                1, REGION_A, self.main_pages // 2, rng,
                blocks_per_page=self.blocks_per_page,
            )


class NpbIS(_NpbKernel):
    name = "npb-is"

    def trace(self) -> Iterator[Access]:
        rng = random.Random(self.seed)
        for _ in range(self.iterations):
            keys = traclib.scan(
                1, REGION_A, self.main_pages, blocks_per_page=self.blocks_per_page
            )
            buckets = traclib.random_gather(
                1, REGION_B, self.aux_pages, self.main_pages // 2, rng,
                blocks_per_page=2,
            )
            yield from traclib.interleave(
                [keys, buckets], rng, chunk_pages=4,
                blocks_per_page=self.blocks_per_page,
            )
            # Rank pass: stream the buckets back out.
            yield from traclib.scan(
                1, REGION_B, self.aux_pages, blocks_per_page=self.blocks_per_page
            )
