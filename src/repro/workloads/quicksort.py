"""QuickSort (Table IV: 4 GB footprint, 1 core).

Hoare-partition quicksort over a big array: every partition pass runs
two *converging* page streams — one ascending from the left edge, one
descending from the right — then recurses depth-first into both halves.

Two properties matter for the reproduction: (1) the +1 and -1 streams
interleave in time, which defeats Leap's global majority vote while
HoPP's pages clustering keeps them apart; (2) recursion gives the access
pattern multi-scale reuse — sub-ranges that fit in local memory stop
faulting — so the 50% and 25% memory limits behave differently.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.workloads import traclib
from repro.workloads.base import Access, ProcessSpec, Workload

ARRAY_BASE = 1 << 20


class Quicksort(Workload):
    name = "quicksort"
    jvm = False
    compute_us_per_access = 0.3

    def __init__(
        self,
        seed: int = 1,
        array_pages: int = 3000,
        leaf_pages: int = 96,
        blocks_per_page: int = 8,
    ) -> None:
        super().__init__(seed)
        self.array_pages = array_pages
        self.leaf_pages = leaf_pages
        self.blocks_per_page = blocks_per_page

    @property
    def footprint_pages(self) -> int:
        return self.array_pages

    @property
    def processes(self) -> List[ProcessSpec]:
        return [
            ProcessSpec(pid=1, vmas=((ARRAY_BASE, self.array_pages, "array"),))
        ]

    def trace(self) -> Iterator[Access]:
        rng = random.Random(self.seed)
        yield from self._sort(rng, ARRAY_BASE, self.array_pages)

    def _sort(self, rng: random.Random, lo_vpn: int, npages: int) -> Iterator[Access]:
        if npages <= self.leaf_pages:
            # Insertion-sort leaf: one tight pass.
            yield from traclib.scan(1, lo_vpn, npages, blocks_per_page=self.blocks_per_page)
            return
        yield from self._partition(rng, lo_vpn, npages)
        # Slightly uneven split around a random pivot, like real data.
        left = max(1, int(npages * rng.uniform(0.42, 0.58)))
        yield from self._sort(rng, lo_vpn, left)
        yield from self._sort(rng, lo_vpn + left, npages - left)

    def _partition(self, rng: random.Random, lo_vpn: int, npages: int) -> Iterator[Access]:
        """Two converging pointer streams, interleaved chunk-wise."""
        half = npages // 2
        ascending = traclib.scan(
            1, lo_vpn, half, stride=1, blocks_per_page=self.blocks_per_page
        )
        descending = traclib.scan(
            1,
            lo_vpn + npages - 1,
            npages - half,
            stride=-1,
            blocks_per_page=self.blocks_per_page,
        )
        yield from traclib.interleave(
            [ascending, descending],
            rng,
            chunk_pages=4,
            blocks_per_page=self.blocks_per_page,
        )
