"""HoPP: Hardware-Software Co-Designed Page Prefetching for Disaggregated
Memory (HPCA 2023) — a from-scratch, trace-driven full-system reproduction.

Quickstart::

    import repro

    wl = repro.workloads.build("omp-kmeans", seed=7)
    result = repro.run(wl, "hopp", local_memory_fraction=0.5)
    ct_local = repro.local_completion_time(wl)
    print(result.accuracy, result.coverage,
          result.normalized_performance(ct_local))

Subpackages:

* ``repro.hopp``      — the paper's contribution: HPD, RPT (+cache),
  stream training table, SSP/LSP/RSP tiers, policy and execution engines.
* ``repro.baselines`` — Fastswap, Leap, Depth-N, VMA read-ahead.
* ``repro.kernel``    — page tables, frames, swap, reclaim, cgroups.
* ``repro.memsim``    — caches and the memory controller with taps.
* ``repro.net``       — RDMA fabric + remote memory node.
* ``repro.trace``     — HMTT-format full-trace capture.
* ``repro.sim``       — the machine simulator, runner, metrics.
* ``repro.workloads`` — the 15 Table-IV applications + microbenchmarks.
* ``repro.analysis``  — offline pattern study, report formatting.
"""

from repro import analysis, baselines, hopp, kernel, memsim, net, trace, workloads
from repro.sim import (
    Comparison,
    Machine,
    MachineConfig,
    RunResult,
    SystemSpec,
    compare,
    local_completion_time,
    make_machine,
    run,
    run_corun,
)
from repro.sim import systems

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "baselines",
    "hopp",
    "kernel",
    "memsim",
    "net",
    "trace",
    "workloads",
    "systems",
    "Comparison",
    "Machine",
    "MachineConfig",
    "RunResult",
    "SystemSpec",
    "compare",
    "local_completion_time",
    "make_machine",
    "run",
    "run_corun",
    "__version__",
]
