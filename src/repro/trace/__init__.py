"""HMTT-style full memory trace capture (Section V emulation)."""

from repro.trace.hmtt import HmttTracer, TraceRing, replay
from repro.trace.persist import (
    TraceFormatError,
    load_trace,
    read_trace,
    write_trace,
)

__all__ = [
    "HmttTracer",
    "TraceRing",
    "replay",
    "TraceFormatError",
    "load_trace",
    "read_trace",
    "write_trace",
]
