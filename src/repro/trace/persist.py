"""Binary persistence for HMTT-format traces.

The prototype persists captured traces to SSD for offline study
(Section V; the Table II / Figure 2-3 analyses run on such files).
Records are packed little-endian: 1-byte sequence number, 1-byte
timestamp, 1-byte flags (bit 0 = write), 5-byte physical address —
8 bytes per record, mirroring the hardware's compact format.
"""

from __future__ import annotations

import io
import struct
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator, List, Union

from repro.common.types import TraceRecord

#: seq (B), timestamp (B), flags (B), paddr (5 bytes, little-endian).
RECORD_BYTES = 8
_HEADER = b"HMTT\x01"
_MAX_PADDR = (1 << 40) - 1


class TraceFormatError(ValueError):
    """The file is not a valid HMTT trace."""


def write_trace(
    destination: Union[str, Path, BinaryIO], records: Iterable[TraceRecord]
) -> int:
    """Write records; returns how many were written."""
    own = isinstance(destination, (str, Path))
    stream: BinaryIO = open(destination, "wb") if own else destination
    try:
        stream.write(_HEADER)
        count = 0
        for record in records:
            if not 0 <= record.paddr <= _MAX_PADDR:
                raise TraceFormatError(
                    f"paddr {record.paddr:#x} exceeds the 40-bit field"
                )
            flags = 1 if record.is_write else 0
            stream.write(
                struct.pack(
                    "<BBB", record.seq & 0xFF, record.timestamp & 0xFF, flags
                )
            )
            stream.write(record.paddr.to_bytes(5, "little"))
            count += 1
        return count
    finally:
        if own:
            stream.close()


def read_trace(source: Union[str, Path, BinaryIO]) -> Iterator[TraceRecord]:
    """Stream records back from a trace file."""
    own = isinstance(source, (str, Path))
    stream: BinaryIO = open(source, "rb") if own else source
    try:
        header = stream.read(len(_HEADER))
        if header != _HEADER:
            raise TraceFormatError("missing HMTT trace header")
        while True:
            chunk = stream.read(RECORD_BYTES)
            if not chunk:
                return
            if len(chunk) != RECORD_BYTES:
                raise TraceFormatError("truncated trace record")
            seq, timestamp, flags = struct.unpack("<BBB", chunk[:3])
            paddr = int.from_bytes(chunk[3:], "little")
            yield TraceRecord(
                seq=seq,
                timestamp=timestamp,
                is_write=bool(flags & 1),
                paddr=paddr,
            )
    finally:
        if own:
            stream.close()


def load_trace(source: Union[str, Path, BinaryIO]) -> List[TraceRecord]:
    return list(read_trace(source))
