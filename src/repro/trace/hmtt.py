"""HMTT emulation: full off-chip memory reference tracing.

The paper's prototype snoops the DIMM bus with HMTT and DMA-writes the
trace into a reserved DRAM area on a second socket (Section V, Figure 8).
Here the tracer is a tap on the simulated memory controller that produces
the same record stream: 8-bit sequence number, 8-bit timestamp, 1-bit
read/write flag, physical address.

The 8-bit fields wrap, exactly like the hardware's; consumers that need
monotonic time use the ``timestamp_us`` kept alongside each record by the
ring buffer (the receiving card in the prototype plays the same role by
pacing DMA writes).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Iterable, Iterator, List, Optional

from repro.common.types import TraceRecord
from repro.memsim.controller import MemoryController


class TraceRing:
    """The reserved-DRAM ring buffer HMTT DMA-writes records into.

    ``capacity`` bounds the ring like the real reserved area; on overflow
    the oldest records are dropped and counted, modelling trace loss when
    the software consumer falls behind.
    """

    def __init__(self, capacity: int = 1 << 20) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._ring: Deque[TraceRecord] = deque()
        self._times: Deque[float] = deque()
        self.dropped = 0
        self.produced = 0

    def push(self, record: TraceRecord, timestamp_us: float) -> None:
        if len(self._ring) >= self.capacity:
            self._ring.popleft()
            self._times.popleft()
            self.dropped += 1
        self._ring.append(record)
        self._times.append(timestamp_us)
        self.produced += 1

    def drain(self, limit: Optional[int] = None) -> List[TraceRecord]:
        """Consume up to ``limit`` records (all when None), oldest first."""
        out: List[TraceRecord] = []
        while self._ring and (limit is None or len(out) < limit):
            out.append(self._ring.popleft())
            self._times.popleft()
        return out

    def __len__(self) -> int:
        return len(self._ring)


class HmttTracer:
    """Taps a :class:`MemoryController` and emits HMTT-format records.

    ``sink`` (if given) receives every record immediately — this is how
    the software HPD of the prototype consumes the stream; otherwise
    records accumulate in the ring for offline study, which is how the
    paper captured the traces behind Table II / Figures 2-3.
    """

    SEQ_BITS = 8
    TS_BITS = 8

    def __init__(
        self,
        ring: Optional[TraceRing] = None,
        sink: Optional[Callable[[TraceRecord, float], None]] = None,
        reads_only: bool = False,
    ) -> None:
        self.ring = ring if ring is not None else TraceRing()
        self.sink = sink
        self.reads_only = reads_only
        self._seq = 0
        self._last_ts_us = 0.0

    def attach(self, controller: MemoryController) -> None:
        controller.add_tap(self.on_access)

    def on_access(self, timestamp_us: float, paddr: int, is_write: bool) -> None:
        if self.reads_only and is_write:
            return
        record = TraceRecord(
            seq=self._seq & ((1 << self.SEQ_BITS) - 1),
            timestamp=int(timestamp_us) & ((1 << self.TS_BITS) - 1),
            is_write=is_write,
            paddr=paddr,
        )
        self._seq += 1
        self._last_ts_us = timestamp_us
        self.ring.push(record, timestamp_us)
        if self.sink is not None:
            self.sink(record, timestamp_us)


def replay(records: Iterable[TraceRecord]) -> Iterator[int]:
    """Yield the PPN sequence of an offline trace (analysis helper)."""
    for record in records:
        yield record.ppn
