"""Telemetry subsystem: event-bus probes, windowed time-series, and
trace-timeline export.

Disabled (the default) it is a null-object: ``MachineConfig.telemetry``
is ``None``, no bus exists, every probe site in the simulator is a
single ``is not None`` check on the cold path, and run output is
byte-identical to the pinned goldens.  Enabled, a :class:`Telemetry`
facade owns one :class:`~repro.telemetry.events.EventBus` wired to a
:class:`~repro.telemetry.timeseries.TimeSeriesEngine` (always) and a
:class:`~repro.telemetry.exporters.TraceRecorder` (when
``TelemetryConfig.trace``), and :meth:`Telemetry.export` folds the
whole thing into the plain-JSON dict that rides on
``RunResult.telemetry``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .events import EventBus, Probe
from .exporters import TraceRecorder, chrome_trace, prometheus_snapshot
from .timeseries import TimeSeriesEngine

__all__ = [
    "EventBus",
    "Probe",
    "Telemetry",
    "TelemetryConfig",
    "TimeSeriesEngine",
    "TraceRecorder",
    "chrome_trace",
    "prometheus_snapshot",
]


@dataclass(frozen=True)
class TelemetryConfig:
    """What to record.  Frozen: it participates in the exec-cache key
    (``RunSpec.key_dict``), so it must be hashable and immutable."""

    #: Fixed simulated-time window width for the time-series engine.
    epoch_us: float = 1000.0
    #: Record the Chrome trace timeline (memory-bounded by trace_limit).
    trace: bool = False
    #: Hard cap on stored trace events; past it they are counted, not kept.
    trace_limit: int = 200_000

    def __post_init__(self) -> None:
        if self.epoch_us <= 0:
            raise ValueError("epoch_us must be positive")
        if self.trace_limit <= 0:
            raise ValueError("trace_limit must be positive")


class Telemetry:
    """Per-run facade: one bus, its consumers, and the export step."""

    def __init__(self, config: Optional[TelemetryConfig] = None) -> None:
        self.config = config or TelemetryConfig()
        self.bus = EventBus()
        self.timeseries = TimeSeriesEngine(self.config.epoch_us)
        self.bus.subscribe(self.timeseries.on_event)
        self.recorder: Optional[TraceRecorder] = (
            TraceRecorder(self.bus, self.config.trace_limit)
            if self.config.trace
            else None
        )

    def export(
        self,
        end_us: float,
        node_metrics: Optional[List[Dict[str, object]]] = None,
    ) -> Dict[str, object]:
        """The JSON-serializable blob stored on ``RunResult.telemetry``.

        ``node_metrics`` is the per-node list of unified
        ``metrics_snapshot()`` dicts captured at collect time so the
        Prometheus exporter can run on a deserialized result."""
        out: Dict[str, object] = {
            "config": {
                "epoch_us": self.config.epoch_us,
                "trace": self.config.trace,
                "trace_limit": self.config.trace_limit,
            },
            "events_total": self.bus.events_emitted,
            "timeseries": self.timeseries.export(end_us),
        }
        if node_metrics is not None:
            out["node_metrics"] = list(node_metrics)
        if self.recorder is not None:
            out["trace_events"] = list(self.recorder.events)
            out["trace_truncated"] = self.recorder.truncated
            out["trace_dropped"] = self.recorder.dropped
        return out
