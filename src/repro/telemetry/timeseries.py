"""Windowed time-series: events bucketed into fixed-width epochs.

The paper's evaluation is time-resolved — remote accesses over time
(Fig 17), prefetch timeliness (§VI-E) — but ``RunResult`` only holds
end-of-run aggregates.  :class:`TimeSeriesEngine` subscribes to the
:class:`~repro.telemetry.events.EventBus` and folds every event into
the epoch ``int(ts_us // epoch_us)``; a timestamp exactly on a
boundary opens the *next* epoch (pure floor division, pinned by the
boundary tests).

Two storage shapes, both sparse until export:

* integer counters per (series, epoch) — demand faults, prefetch
  lifecycle steps, remote reads/writes, retries, repairs;
* streaming :class:`~repro.common.stats.Histogram` per (series, epoch)
  — fetch latency (p50/p99) and prefetch timeliness.

The reconciliation contract, enforced by tests: for every counter
series the sum over epochs equals the matching aggregate ``RunResult``
counter exactly — telemetry is a re-bucketing of the same increments,
never a second bookkeeping that can drift.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.stats import Histogram, safe_ratio

from .events import (
    EV_CACHE_INVALIDATE,
    EV_CORRUPT_REPAIR,
    EV_CORRUPTION,
    EV_DEMAND_FAULT,
    EV_FABRIC_READ,
    EV_FABRIC_WRITE,
    EV_FETCH_LATENCY,
    EV_MEMTIER_DEMOTE,
    EV_MEMTIER_FAR_READ,
    EV_MEMTIER_POOL_READ,
    EV_MEMTIER_PROMOTE,
    EV_NODE_STATE,
    EV_PREFETCH_DROP,
    EV_PREFETCH_GATE,
    EV_PREFETCH_HIT,
    EV_PREFETCH_ISSUE,
    EV_POISON,
    EV_PREFETCH_LAND,
    EV_PREFETCH_UNUSED,
    EV_REPAIR,
    EV_RETRY,
    EV_SCRUB,
    EV_TIMELINESS,
)

#: Counter series, in export order.  Maps 1:1 onto RunResult aggregates
#: (see the reconciliation tests) except node_transitions / repairs /
#: cache_invalidations, which count finer-grained occurrences.
COUNT_SERIES = (
    "demand_faults",
    "prefetch_issued",
    "prefetch_dropped",
    "prefetch_landed",
    "prefetch_hits",
    "prefetch_wasted",
    "prefetch_suppressed",
    "remote_reads",
    "remote_writes",
    "retries",
    "node_transitions",
    "repairs",
    "cache_invalidations",
    # Memory-tier series (repro.memtier) — "memtier_" marks *memory*
    # tiers (pool/far), never the SSP/LSP/RSP prefetch tiers.
    "memtier_pool_reads",
    "memtier_far_reads",
    "memtier_promotions",
    "memtier_demotions",
    # Integrity series (repro.integrity): corruption detections and
    # repairs count *copies*, poisonings count slots, scrubs count
    # audit reads.
    "corruptions_detected",
    "corruptions_repaired",
    "pages_poisoned",
    "scrub_reads",
)

#: kind -> (series, count-field or None for 1).
_COUNT_DISPATCH = {
    EV_DEMAND_FAULT: ("demand_faults", None),
    EV_PREFETCH_ISSUE: ("prefetch_issued", "n"),
    EV_PREFETCH_DROP: ("prefetch_dropped", "n"),
    EV_PREFETCH_LAND: ("prefetch_landed", None),
    EV_PREFETCH_HIT: ("prefetch_hits", None),
    EV_PREFETCH_UNUSED: ("prefetch_wasted", None),
    EV_PREFETCH_GATE: ("prefetch_suppressed", None),
    EV_FABRIC_READ: ("remote_reads", "n"),
    EV_FABRIC_WRITE: ("remote_writes", None),
    EV_RETRY: ("retries", None),
    EV_NODE_STATE: ("node_transitions", None),
    EV_REPAIR: ("repairs", None),
    EV_CACHE_INVALIDATE: ("cache_invalidations", None),
    EV_MEMTIER_POOL_READ: ("memtier_pool_reads", None),
    EV_MEMTIER_FAR_READ: ("memtier_far_reads", None),
    EV_MEMTIER_PROMOTE: ("memtier_promotions", None),
    EV_MEMTIER_DEMOTE: ("memtier_demotions", None),
    EV_CORRUPTION: ("corruptions_detected", None),
    EV_CORRUPT_REPAIR: ("corruptions_repaired", "n"),
    EV_POISON: ("pages_poisoned", None),
    EV_SCRUB: ("scrub_reads", None),
}

#: kind -> (histogram series, value field).
_SAMPLE_DISPATCH = {
    EV_FETCH_LATENCY: ("fetch_latency_us", "latency_us"),
    EV_TIMELINESS: ("timeliness_us", "t_us"),
}


class TimeSeriesEngine:
    """Aggregates bus events into fixed-width simulated-time epochs."""

    def __init__(self, epoch_us: float = 1000.0) -> None:
        if epoch_us <= 0:
            raise ValueError("epoch_us must be positive")
        self.epoch_us = float(epoch_us)
        # series name -> {epoch index -> count}
        self._counts: Dict[str, Dict[int, int]] = {
            name: {} for name in COUNT_SERIES
        }
        # series name -> {epoch index -> Histogram}
        self._hists: Dict[str, Dict[int, Histogram]] = {
            name: {} for name in ("fetch_latency_us", "timeliness_us")
        }

    # -- ingestion ----------------------------------------------------------

    def epoch_of(self, ts_us: float) -> int:
        """Floor bucketing; a boundary timestamp opens the next epoch.
        Events before t=0 cannot happen in the simulator, but clamp so a
        stray negative float rounds into epoch 0 rather than epoch -1."""
        epoch = int(ts_us // self.epoch_us)
        return epoch if epoch > 0 else 0

    def bump(self, series: str, ts_us: float, n: int = 1) -> None:
        bucket = self._counts[series]
        epoch = self.epoch_of(ts_us)
        bucket[epoch] = bucket.get(epoch, 0) + n

    def sample(self, series: str, ts_us: float, value: float) -> None:
        bucket = self._hists[series]
        epoch = self.epoch_of(ts_us)
        hist = bucket.get(epoch)
        if hist is None:
            hist = bucket[epoch] = Histogram()
        hist.add(value)

    def on_event(self, kind: str, ts_us: float, fields: Dict[str, object]) -> None:
        """EventBus subscriber: one dict probe per event, no allocation
        on the counter path."""
        hit = _COUNT_DISPATCH.get(kind)
        if hit is not None:
            series, count_field = hit
            n = int(fields.get(count_field, 1)) if count_field else 1
            self.bump(series, ts_us, n)
            return
        hit = _SAMPLE_DISPATCH.get(kind)
        if hit is not None:
            series, value_field = hit
            self.sample(series, ts_us, float(fields[value_field]))

    # -- export -------------------------------------------------------------

    def n_epochs(self, end_us: float) -> int:
        """Dense epoch count covering both the run's end time and every
        observed event (arrivals can land past ``end_us`` only if a
        producer mis-stamps; include them rather than drop counts)."""
        last = self.epoch_of(end_us) if end_us > 0 else 0
        for bucket in self._counts.values():
            if bucket:
                last = max(last, max(bucket))
        for hbucket in self._hists.values():
            if hbucket:
                last = max(last, max(hbucket))
        return last + 1

    def _dense(self, bucket: Dict[int, int], n: int) -> List[int]:
        return [bucket.get(epoch, 0) for epoch in range(n)]

    def export(self, end_us: float) -> Dict[str, object]:
        """Plain-JSON snapshot: dense per-epoch series plus derived
        per-epoch coverage/accuracy and latency/timeliness percentiles.

        Percentile lists hold ``None`` for epochs with no samples so a
        consumer can tell "no traffic" from "zero latency"."""
        n = self.n_epochs(end_us)
        series = {
            name: self._dense(self._counts[name], n) for name in COUNT_SERIES
        }

        coverage: List[float] = []
        accuracy: List[float] = []
        for epoch in range(n):
            hits = series["prefetch_hits"][epoch]
            demand = series["demand_faults"][epoch]
            delivered = (
                series["prefetch_issued"][epoch]
                - series["prefetch_dropped"][epoch]
            )
            coverage.append(safe_ratio(hits, demand + hits))
            accuracy.append(safe_ratio(hits, delivered))

        out: Dict[str, object] = {
            "epoch_us": self.epoch_us,
            "epochs": n,
            "series": series,
            "derived": {"coverage": coverage, "accuracy": accuracy},
        }
        for name, quantiles in (
            ("fetch_latency_us", (0.5, 0.99)),
            ("timeliness_us", (0.5, 0.9)),
        ):
            bucket = self._hists[name]
            block: Dict[str, List[Optional[float]]] = {
                f"p{int(q * 100)}": [] for q in quantiles
            }
            block["count"] = []
            block["mean"] = []
            for epoch in range(n):
                hist = bucket.get(epoch)
                count = hist.stat.count if hist is not None else 0
                block["count"].append(count)
                block["mean"].append(hist.stat.mean if count else None)
                for q in quantiles:
                    block[f"p{int(q * 100)}"].append(
                        hist.quantile(q) if count else None
                    )
            out[name] = block
        return out
