"""Telemetry exporters: Chrome/Perfetto trace JSON and Prometheus text.

Two consumption shapes for the same run:

* :class:`TraceRecorder` — subscribes to the bus and renders the swap
  path and every prefetch lifecycle as Chrome trace-event JSON
  (``chrome://tracing`` / https://ui.perfetto.dev, "load trace").
  Demand faults and prefetches are ``"X"`` complete events (ts/dur in
  microseconds — the simulator's native unit, so no scaling); hits,
  drops, retries, node transitions and repairs are ``"i"`` instants.
  High-volume kinds (per-READ fabric counts, latency samples) are left
  to the time-series engine — a trace is a timeline, not a metric
  store.
* :func:`prometheus_snapshot` — renders a finished ``RunResult`` into
  Prometheus text exposition format.  Per-node rows come from the
  unified ``metrics_snapshot()`` on ``RemoteMemoryNode`` and
  ``RdmaFabric``: every counter key ends in ``_total`` and every gauge
  key does not, so the exporter needs zero per-class special-casing.
"""

from __future__ import annotations

from typing import Dict, List

from .events import (
    EV_CACHE_INVALIDATE,
    EV_DEMAND_FAULT,
    EV_NODE_STATE,
    EV_PREFETCH_DROP,
    EV_PREFETCH_GATE,
    EV_PREFETCH_HIT,
    EV_PREFETCH_ISSUE,
    EV_PREFETCH_UNUSED,
    EV_REPAIR,
    EV_RETRY,
    EventBus,
)

#: Synthetic pid/tids for the trace timeline.  One "process" (the
#: machine), four "threads" grouping the phases a human scrubs through.
TRACE_PID = 1
TID_SWAP = 1
TID_PREFETCH = 2
TID_CLUSTER = 3
TID_REPAIR = 4

_THREAD_NAMES = (
    (TID_SWAP, "swap-path"),
    (TID_PREFETCH, "prefetch"),
    (TID_CLUSTER, "cluster"),
    (TID_REPAIR, "repair"),
)


def _metadata_events() -> List[Dict[str, object]]:
    events: List[Dict[str, object]] = [
        {
            "ph": "M",
            "pid": TRACE_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro-machine"},
        }
    ]
    for tid, name in _THREAD_NAMES:
        events.append(
            {
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": name},
            }
        )
    return events


class TraceRecorder:
    """Bus subscriber that accumulates Chrome trace events.

    Bounded by ``limit``: past it, events are counted as ``dropped``
    instead of stored, so a pathological run cannot OOM the harness.
    """

    def __init__(self, bus: EventBus, limit: int = 200_000) -> None:
        if limit <= 0:
            raise ValueError("trace limit must be positive")
        self.limit = limit
        self.events: List[Dict[str, object]] = []
        self.dropped = 0
        bus.subscribe(self.on_event)

    @property
    def truncated(self) -> bool:
        return self.dropped > 0

    def _push(self, event: Dict[str, object]) -> None:
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(event)

    def _span(self, tid, name, ts_us, dur_us, args) -> None:
        self._push(
            {
                "ph": "X",
                "pid": TRACE_PID,
                "tid": tid,
                "name": name,
                "ts": ts_us,
                "dur": dur_us if dur_us > 0 else 0,
                "args": args,
            }
        )

    def _instant(self, tid, name, ts_us, args) -> None:
        self._push(
            {
                "ph": "i",
                "pid": TRACE_PID,
                "tid": tid,
                "name": name,
                "ts": ts_us,
                "s": "t",
                "args": args,
            }
        )

    def on_event(self, kind: str, ts_us: float, fields: Dict[str, object]) -> None:
        if kind == EV_DEMAND_FAULT:
            self._span(
                TID_SWAP,
                "zero_fill" if fields.get("zero_filled") else "demand_fault",
                ts_us,
                fields.get("cost_us", 0.0),
                {
                    "pid": fields.get("pid"),
                    "vpn": fields.get("vpn"),
                    "wait_us": fields.get("wait_us"),
                },
            )
        elif kind == EV_PREFETCH_ISSUE:
            arrival = fields.get("arrival_us", -1.0)
            tier = fields.get("tier", "?")
            if arrival is not None and arrival >= 0:
                self._span(
                    TID_PREFETCH,
                    f"prefetch:{tier}",
                    ts_us,
                    arrival - ts_us,
                    {"pid": fields.get("pid"), "vpn": fields.get("vpn")},
                )
            else:
                self._instant(
                    TID_PREFETCH,
                    f"prefetch_dropped:{tier}",
                    ts_us,
                    {"n": fields.get("n", 1)},
                )
        elif kind == EV_PREFETCH_DROP:
            # The paired EV_PREFETCH_ISSUE already drew the dropped
            # instant; keep the drop out of the timeline to avoid
            # double-marking while the time-series still counts it.
            return
        elif kind == EV_PREFETCH_HIT:
            self._instant(
                TID_PREFETCH,
                f"hit:{fields.get('where', '?')}",
                ts_us,
                {"vpn": fields.get("vpn"), "tier": fields.get("tier")},
            )
        elif kind == EV_PREFETCH_UNUSED:
            self._instant(
                TID_PREFETCH, "evict_unused", ts_us, {"vpn": fields.get("vpn")}
            )
        elif kind == EV_PREFETCH_GATE:
            self._instant(TID_PREFETCH, "breaker_suppressed", ts_us, {})
        elif kind == EV_RETRY:
            self._instant(
                TID_SWAP,
                f"retry:{fields.get('op', '?')}",
                ts_us,
                {"node": fields.get("node")},
            )
        elif kind == EV_NODE_STATE:
            self._instant(
                TID_CLUSTER,
                f"node{fields.get('node')}:{fields.get('frm')}->{fields.get('to')}",
                ts_us,
                {"node": fields.get("node")},
            )
        elif kind == EV_REPAIR:
            self._instant(
                TID_REPAIR,
                str(fields.get("task", "repair")),
                ts_us,
                {"slot": fields.get("slot"), "node": fields.get("node")},
            )
        elif kind == EV_CACHE_INVALIDATE:
            self._instant(
                TID_SWAP, "swapcache_invalidate", ts_us, {"vpn": fields.get("vpn")}
            )
        # EV_PREFETCH_LAND is the end of the issue span (arrival_us),
        # EV_FABRIC_*/EV_FETCH_LATENCY/EV_TIMELINESS are metric volume:
        # all intentionally absent from the timeline.


def chrome_trace(events: List[Dict[str, object]]) -> Dict[str, object]:
    """Wrap recorded events into a Chrome trace-event JSON object
    (Perfetto's "JSON trace" input).  Metadata naming events are
    prepended so the UI shows labeled tracks."""
    return {
        "traceEvents": _metadata_events() + list(events),
        "displayTimeUnit": "ms",
    }


# -- Prometheus text exposition ---------------------------------------------

#: HELP strings for the aggregate metrics; anything absent still gets a
#: generated line, these just read better for the common rows.
_HELP = {
    "repro_accesses_total": "Application memory accesses simulated",
    "repro_remote_demand_reads_total": "Demand reads served over the fabric",
    "repro_prefetch_issued_total": "Prefetch READs issued",
    "repro_prefetch_hits_total": "First app touches of prefetched pages",
    "repro_prefetch_wasted_total": "Prefetched pages evicted unused",
    "repro_fabric_reads_total": "Page READs on all fabric links",
    "repro_fabric_writes_total": "Page WRITEs on all fabric links",
    "repro_retries_total": "Synchronous transfer retries",
    "repro_timeouts_total": "Injected transfer timeouts observed",
    "repro_completion_time_us": "Simulated completion time",
    "repro_coverage_ratio": "Prefetch coverage (paper metric)",
    "repro_accuracy_ratio": "Prefetch accuracy over delivered pages",
    "repro_node_crashes_total": "Remote node crashes observed",
    "repro_node_rejoins_total": "Remote node rejoins observed",
    "repro_pages_repaired_total": "Pages re-replicated by the repair engine",
    "repro_pages_lost_total": "Pages with no surviving replica",
    "repro_pages_zero_filled_total": "Demand faults resolved by zero-fill",
    "repro_pages_salvaged_total": "Lost pages recovered from the swapcache",
    "repro_pages_drained_total": "Pages evacuated by graceful drains",
    "repro_repair_reads_total": "Fabric READs issued by repair traffic",
    "repro_repair_writes_total": "Fabric WRITEs issued by repair traffic",
    "repro_repair_bytes_total": "Bytes moved by repair traffic",
    "repro_repair_retries_total": "Repair transfers retried",
    "repro_memtier_pool_demand_reads_total": "Demand reads served by the pooled CXL tier",
    "repro_memtier_far_demand_reads_total": "Demand reads served by the RDMA far tier",
    "repro_memtier_pool_prefetch_reads_total": "Prefetch page reads from the pooled CXL tier",
    "repro_memtier_far_prefetch_reads_total": "Prefetch page reads from the RDMA far tier",
    "repro_memtier_pool_writebacks_total": "Writebacks landing on the pooled CXL tier",
    "repro_memtier_far_writebacks_total": "Writebacks landing on the RDMA far tier",
    "repro_memtier_promotions_total": "Pages migrated far tier -> pool",
    "repro_memtier_demotions_total": "Pages migrated pool -> far tier",
    "repro_memtier_migration_reads_total": "Fabric READs issued by tier migrations",
    "repro_memtier_migration_writes_total": "Fabric WRITEs issued by tier migrations",
    "repro_memtier_migration_bytes_total": "Bytes moved by tier migrations",
    "repro_memtier_migration_retries_total": "Tier migrations retried",
    "repro_memtier_migrations_skipped_total": "Tier migrations abandoned after max retries",
    "repro_memtier_hot_hints_total": "HPD hot-page hints delivered to the migration engine",
    "repro_integrity_corruption_detected_total": "Stored or wire corruptions caught by checksum verification",
    "repro_integrity_corruption_repaired_total": "Detected corruptions resolved from a clean replica",
    "repro_integrity_corruption_unresolved_total": "Detected corruptions left latent (repair transfer failed)",
    "repro_integrity_pages_poisoned_total": "Slots poisoned after every replica failed verification",
    "repro_integrity_poisoned_reads_total": "Demand reads of poisoned slots resolved by zero-fill",
    "repro_integrity_promotions_barred_total": "Pool promotions refused because the slot is poisoned",
    "repro_integrity_scrub_reads_total": "Patrol-scrubber audit reads issued",
    "repro_integrity_scrub_detected_total": "Stored corruptions the patrol scrubber caught",
    "repro_integrity_repair_reads_total": "Fabric READs spent rewriting corrupt copies",
    "repro_integrity_repair_writes_total": "Fabric WRITEs spent rewriting corrupt copies",
    "repro_integrity_bit_flips_injected_total": "Bit-flip corruptions injected by the fault plan",
    "repro_integrity_media_errors_injected_total": "Latent media errors injected by the fault plan",
}

#: (Prometheus family suffix, RunResult.memtier section key).  Emitted
#: zero-valued when the section is absent (untiered run or deserialized
#: pre-tier result) so dashboards never see a missing series — the same
#: always-present convention as the recovery counters above.
_MEMTIER_FAMILIES = (
    ("pool_demand_reads", "pool_demand_reads"),
    ("far_demand_reads", "far_demand_reads"),
    ("pool_prefetch_reads", "pool_prefetch_reads"),
    ("far_prefetch_reads", "far_prefetch_reads"),
    ("pool_writebacks", "pool_writebacks"),
    ("far_writebacks", "far_writebacks"),
    ("promotions", "promotions"),
    ("demotions", "demotions"),
    ("migration_reads", "migration_reads"),
    ("migration_writes", "migration_writes"),
    ("migration_bytes", "migration_bytes"),
    ("migration_retries", "migration_retries"),
    ("migrations_skipped", "migrations_skipped"),
    ("hot_hints", "hot_hints"),
)

#: (Prometheus family suffix, RunResult.integrity section key).  Same
#: always-present, zero-when-absent convention as the memtier families.
_INTEGRITY_FAMILIES = (
    ("corruption_detected", "corruption_detected"),
    ("corruption_repaired", "corruption_repaired"),
    ("corruption_unresolved", "corruption_unresolved"),
    ("pages_poisoned", "pages_poisoned"),
    ("poisoned_reads", "poisoned_reads"),
    ("promotions_barred", "promotions_barred"),
    ("scrub_reads", "scrub_reads"),
    ("scrub_detected", "scrub_detected"),
    ("repair_reads", "repair_reads"),
    ("repair_writes", "repair_writes"),
    ("bit_flips_injected", "bit_flips_injected"),
    ("media_errors_injected", "media_errors_injected"),
)


def _fmt_value(value: object) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _metric_lines(name: str, rows: List) -> List[str]:
    """One ``# HELP``/``# TYPE`` header plus one sample line per
    (labels, value) row.  Counter vs gauge comes purely from the
    ``_total`` suffix convention — the key-naming contract the unified
    ``metrics_snapshot()`` satellite exists to uphold."""
    kind = "counter" if name.endswith("_total") else "gauge"
    lines = [
        f"# HELP {name} {_HELP.get(name, name.replace('_', ' '))}",
        f"# TYPE {name} {kind}",
    ]
    for labels, value in rows:
        if labels:
            label_txt = ",".join(f'{k}="{v}"' for k, v in labels)
            lines.append(f"{name}{{{label_txt}}} {_fmt_value(value)}")
        else:
            lines.append(f"{name} {_fmt_value(value)}")
    return lines


def prometheus_snapshot(result) -> str:
    """Render a finished RunResult as Prometheus text exposition.

    Per-node families come from ``result.telemetry["node_metrics"]``
    (the unified per-node ``metrics_snapshot()`` dicts captured at
    collect time), so the exporter works on a deserialized result with
    no live machine attached."""
    base_labels = (("system", result.system), ("workload", result.workload))
    metrics: Dict[str, List] = {}

    def put(name: str, value: object, extra_labels=()) -> None:
        metrics.setdefault(name, []).append(
            (base_labels + tuple(extra_labels), value)
        )

    put("repro_accesses_total", result.accesses)
    put("repro_remote_demand_reads_total", result.remote_demand_reads)
    put("repro_prefetch_issued_total", result.prefetch_issued)
    put("repro_prefetch_hits_total", result.prefetch_hits)
    put("repro_prefetch_wasted_total", result.prefetch_wasted)
    put("repro_fabric_reads_total", result.fabric_reads)
    put("repro_fabric_writes_total", result.fabric_writes)
    put("repro_retries_total", result.retries)
    put("repro_timeouts_total", result.timeouts)
    put("repro_completion_time_us", result.completion_time_us)
    put("repro_coverage_ratio", result.coverage)
    put("repro_accuracy_ratio", result.accuracy)

    # Recovery-section counters.  These fields default to 0 on runs
    # without an armed fault plan, so the families are always present
    # and dashboards never have to handle a missing series.
    put("repro_node_crashes_total", result.node_crashes)
    put("repro_node_rejoins_total", result.node_rejoins)
    put("repro_pages_repaired_total", result.pages_repaired)
    put("repro_pages_lost_total", result.pages_lost)
    put("repro_pages_zero_filled_total", result.pages_zero_filled)
    put("repro_pages_salvaged_total", result.pages_salvaged)
    put("repro_pages_drained_total", result.pages_drained)
    put("repro_repair_reads_total", result.repair_reads)
    put("repro_repair_writes_total", result.repair_writes)
    put("repro_repair_bytes_total", result.repair_bytes)
    put("repro_repair_retries_total", result.repair_retries)

    # Memory-tier counters: always-present families, zero-valued when
    # tiering was off.  getattr-guarded so deserialized results from
    # pre-tier schema versions export cleanly too.
    memtier = getattr(result, "memtier", None) or {}
    for suffix, key in _MEMTIER_FAMILIES:
        put(f"repro_memtier_{suffix}_total", int(memtier.get(key, 0)))

    # Integrity counters: always-present families, zero-valued when
    # neither corruption injection nor the scrubber was armed.
    integrity = getattr(result, "integrity", None) or {}
    for suffix, key in _INTEGRITY_FAMILIES:
        put(f"repro_integrity_{suffix}_total", int(integrity.get(key, 0)))

    telemetry = getattr(result, "telemetry", None) or {}
    for entry in telemetry.get("node_metrics", ()):
        node_label = (("node", entry["node"]),)
        for scope in ("remote", "fabric"):
            for key, value in sorted(entry.get(scope, {}).items()):
                put(f"repro_{scope}_{key}", value, node_label)

    lines: List[str] = []
    for name in sorted(metrics):
        lines.extend(_metric_lines(name, metrics[name]))
    return "\n".join(lines) + "\n"
