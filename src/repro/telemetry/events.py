"""Typed events and the bus that carries them.

The telemetry subsystem is event-sourced: instrumented components
(the machine's swap path, the HoPP execution engine, the cluster's
health monitor and repair engine, each node's RDMA fabric) emit small
typed events onto one :class:`EventBus` per run, and the consumers —
the windowed time-series engine and the trace-timeline recorder —
subscribe to it.  Producers never know who is listening, which is what
keeps the probe sites one guarded call each.

Overhead contract (docs/architecture.md §12): events fire only on the
*fault path* — demand faults, prefetch lifecycle steps, retries,
recovery — never per resident-hit access, so an enabled bus costs
O(remote traffic), not O(trace length).  With telemetry disabled no bus
exists at all: every probe site is a ``None`` check and the machine's
resident-hit fast path is untouched.

Event taxonomy
--------------

====================== ==============================================
kind                   emitted when / payload
====================== ==============================================
``demand_fault``       a major fault resolved over RDMA (or by
                       zero-fill); ``pid, vpn, wait_us, cost_us,
                       zero_filled``
``prefetch_issue``     a prefetch READ left the machine;
                       ``pid, vpn, tier, arrival_us`` (``arrival_us``
                       is -1 when the transfer was dropped; batch
                       drops carry ``n`` pages in one event)
``prefetch_land``      a prefetched page arrived; ``pid, vpn, tier``
``prefetch_hit``       first app touch of a prefetched page;
                       ``pid, vpn, tier, where`` (dram / swapcache /
                       inflight)
``prefetch_drop``      an injected fault dropped a prefetch READ;
                       ``tier, n``
``prefetch_unused``    a prefetched page was evicted without ever
                       being hit; ``pid, vpn, tier``
``prefetch_gate``      the circuit breaker suppressed a request
``retry``              a synchronous transfer re-issued after a
                       timeout; ``op`` (demand / writeback), ``node``
``fabric_read``        ``n`` page READs issued on a node's link;
                       ``node, n``
``fabric_write``       one page WRITE issued on a node's link;
                       ``node``
``fetch_latency``      a READ completed; ``latency_us`` (sampled into
                       the per-epoch latency histogram)
``timeliness``         a prefetch first-hit closed its lifecycle;
                       ``t_us`` = first hit - arrival
``node_state``         a health-monitor transition; ``node, frm, to``
``repair``             the repair engine finished one page copy;
                       ``task`` (replicate / evacuate), ``slot``
``cache_invalidate``   a swapcache entry was dropped by reclaim;
                       ``pid, vpn``
``memtier_pool_read``  a demand fault was served by a pooled CXL-tier
                       node; ``node, pid, vpn``
``memtier_far_read``   a demand fault was served by an RDMA far-tier
                       node; ``node, pid, vpn``
``memtier_promote``    the migration engine moved a hot page from the
                       far tier into the pool; ``slot, node, pid, vpn``
``memtier_demote``     the migration engine moved a cold pool page to
                       the far tier; ``slot, node, pid, vpn``
``corruption``         a copy failed checksum verification;
                       ``slot, node, source`` (demand / scrub /
                       migration / resolve)
``corrupt_repair``     ``n`` detected copies resolved from a clean
                       replica; ``slot, node, n``
``poison``             a slot with no clean copy was poisoned
                       (CXL poison semantics); ``slot, n`` condemned
                       copies
``scrub``              the patrol scrubber audited one stored copy;
                       ``slot, node``
====================== ==============================================

The ``memtier_*`` kinds describe *memory* tiers (where a page lives:
pool vs far — :mod:`repro.memtier`); the ``tier`` *field* on prefetch
events names a HoPP SSP/LSP/RSP *prefetch* tier
(:mod:`repro.hopp.three_tier`).  The prefix keeps the two vocabularies
apart in every exported series and counter.
"""

from __future__ import annotations

from typing import Callable, Dict, List

EV_DEMAND_FAULT = "demand_fault"
EV_PREFETCH_ISSUE = "prefetch_issue"
EV_PREFETCH_LAND = "prefetch_land"
EV_PREFETCH_HIT = "prefetch_hit"
EV_PREFETCH_DROP = "prefetch_drop"
EV_PREFETCH_UNUSED = "prefetch_unused"
EV_PREFETCH_GATE = "prefetch_gate"
EV_RETRY = "retry"
EV_FABRIC_READ = "fabric_read"
EV_FABRIC_WRITE = "fabric_write"
EV_FETCH_LATENCY = "fetch_latency"
EV_TIMELINESS = "timeliness"
EV_NODE_STATE = "node_state"
EV_REPAIR = "repair"
EV_CACHE_INVALIDATE = "cache_invalidate"
EV_MEMTIER_POOL_READ = "memtier_pool_read"
EV_MEMTIER_FAR_READ = "memtier_far_read"
EV_MEMTIER_PROMOTE = "memtier_promote"
EV_MEMTIER_DEMOTE = "memtier_demote"
EV_CORRUPTION = "corruption"
EV_CORRUPT_REPAIR = "corrupt_repair"
EV_POISON = "poison"
EV_SCRUB = "scrub"

#: The closed set of event kinds; the bus rejects anything else so a
#: typo'd probe fails loudly in tests instead of vanishing silently.
EVENT_KINDS = frozenset(
    {
        EV_DEMAND_FAULT,
        EV_PREFETCH_ISSUE,
        EV_PREFETCH_LAND,
        EV_PREFETCH_HIT,
        EV_PREFETCH_DROP,
        EV_PREFETCH_UNUSED,
        EV_PREFETCH_GATE,
        EV_RETRY,
        EV_FABRIC_READ,
        EV_FABRIC_WRITE,
        EV_FETCH_LATENCY,
        EV_TIMELINESS,
        EV_NODE_STATE,
        EV_REPAIR,
        EV_CACHE_INVALIDATE,
        EV_MEMTIER_POOL_READ,
        EV_MEMTIER_FAR_READ,
        EV_MEMTIER_PROMOTE,
        EV_MEMTIER_DEMOTE,
        EV_CORRUPTION,
        EV_CORRUPT_REPAIR,
        EV_POISON,
        EV_SCRUB,
    }
)

#: Subscriber signature: (kind, ts_us, fields).  The fields dict is
#: owned by the bus for the duration of the dispatch only — consumers
#: that retain it must copy.
Subscriber = Callable[[str, float, Dict[str, object]], None]


class EventBus:
    """One per instrumented run; producers emit, consumers subscribe."""

    __slots__ = ("_subscribers", "events_emitted")

    def __init__(self) -> None:
        self._subscribers: List[Subscriber] = []
        self.events_emitted = 0

    def subscribe(self, subscriber: Subscriber) -> None:
        self._subscribers.append(subscriber)

    def emit(self, kind: str, ts_us: float, **fields: object) -> None:
        """Dispatch one event to every subscriber, in subscribe order."""
        self.dispatch(kind, ts_us, fields)

    def dispatch(self, kind: str, ts_us: float, fields: Dict[str, object]) -> None:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        self.events_emitted += 1
        for subscriber in self._subscribers:
            subscriber(kind, ts_us, fields)

    def probe(self, **labels: object) -> "Probe":
        """A pre-labelled emitter for one component (e.g. one node's
        fabric): every event it emits carries ``labels``."""
        return Probe(self, labels)


class Probe:
    """Binds static labels onto a bus so per-component producers (one
    fabric per cluster node) need not thread identity through every
    call site."""

    __slots__ = ("_bus", "_labels")

    def __init__(self, bus: EventBus, labels: Dict[str, object]) -> None:
        self._bus = bus
        self._labels = labels

    def emit(self, kind: str, ts_us: float, **fields: object) -> None:
        merged = dict(self._labels)
        merged.update(fields)
        self._bus.dispatch(kind, ts_us, merged)
