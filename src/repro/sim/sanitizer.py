"""Runtime cross-layer invariant checking (opt-in).

The machine's correctness rests on five structures agreeing at all
times: the frame allocator, the per-process page tables, the swap-slot
space, the cluster's slot directory, and the per-node page stores.
Each layer keeps itself consistent; nothing verified that they agree
*with each other* — exactly the kind of drift that a crash-repair
cycle, a failover, or a re-route could silently introduce.

:class:`InvariantSanitizer` walks all five structures and raises a
typed :class:`InvariantViolation` naming the **first** inconsistency
(like a kernel's ``CONFIG_DEBUG_VM``, it fails loudly at the point of
corruption instead of letting it surface as a wrong metric three
subsystems later).  ``Machine`` runs it at epoch boundaries (every
``sanitizer_interval_accesses`` references) and after every recovery
event when ``MachineConfig.check_invariants`` is set; the CLI flag is
``--check-invariants``.

The checks (all must hold between accesses, never mid-fault):

1. **Frames <-> page tables** — every PTE in a frame-holding state
   (PRESENT / SWAPCACHE / INFLIGHT) owns exactly the frame the
   allocator says it does; no two PTEs share a frame; no allocated
   frame is orphaned; non-resident states hold no frame.
2. **Page tables <-> swap slots** — every REMOTE PTE names a live slot
   that maps back to the same (pid, vpn); every live slot maps to a
   PTE in a slot-holding state (REMOTE / SWAPCACHE / INFLIGHT) that
   names it.
3. **Swap slots <-> directory** — every live slot either has directory
   holders or is marked lost (and never both).
4. **Directory <-> stores** — every holder listed for a slot actually
   stores the page, and every page a node stores is listed in the
   directory (no phantom and no orphan copies), with a carve-out for
   holders on nodes whose permanent crash has not been *detected* yet
   (their store still answers, so they are consistent by construction).
5. **Residency accounting** — the per-cgroup resident counters sum to
   the frames in use, and every node's slot accounting conserves.
6. **Integrity bookkeeping** — no slot is both lost and poisoned;
   every poisoned slot still has directory holders (poison means the
   data *exists* but is known-bad — loss drops the mark); every deviant
   checksum-ledger entry names a slot its node actually stores; and the
   integrity controller's ledger arithmetic is closed (every detected
   corruption ended repaired, unresolved, or condemned by a poisoning).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.kernel.page_table import PteState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.sim.machine import Machine

#: PTE states that hold a local frame.
_FRAME_STATES = (PteState.PRESENT, PteState.SWAPCACHE, PteState.INFLIGHT)
#: PTE states that keep a remote swap slot alive.
_SLOT_STATES = (PteState.REMOTE, PteState.SWAPCACHE, PteState.INFLIGHT)


class InvariantViolation(AssertionError):
    """A cross-layer consistency check failed; the message names the
    first inconsistent structure and the page/slot/frame involved."""


def _fail(check: str, detail: str) -> None:
    raise InvariantViolation(f"[{check}] {detail}")


class InvariantSanitizer:
    """Stateless cross-checker over one machine's structures."""

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self.checks_run = 0

    def check(self) -> None:
        """Run every invariant; raises :class:`InvariantViolation` on
        the first failure, returns quietly otherwise."""
        self.checks_run += 1
        self._check_frames_vs_page_tables()
        self._check_page_tables_vs_swap()
        self._check_swap_vs_directory()
        self._check_directory_vs_stores()
        self._check_residency()
        self._check_integrity()

    # -- 1: frames <-> page tables -----------------------------------------------------

    def _check_frames_vs_page_tables(self) -> None:
        machine = self.machine
        seen_frames = {}
        for pid, table in machine._page_tables.items():
            for vpn, pte in table._entries.items():
                if pte.state in _FRAME_STATES:
                    if pte.ppn < 0:
                        _fail(
                            "frames",
                            f"(pid={pid}, vpn={vpn}) is {pte.state.name} "
                            f"but holds no frame",
                        )
                    owner = machine.frames.owner(pte.ppn)
                    if owner != (pid, vpn):
                        _fail(
                            "frames",
                            f"frame {pte.ppn} mapped by (pid={pid}, "
                            f"vpn={vpn}) but allocator says owner is "
                            f"{owner}",
                        )
                    if pte.ppn in seen_frames:
                        _fail(
                            "frames",
                            f"frame {pte.ppn} shared by "
                            f"{seen_frames[pte.ppn]} and (pid={pid}, "
                            f"vpn={vpn})",
                        )
                    seen_frames[pte.ppn] = (pid, vpn)
                elif pte.ppn != -1:
                    _fail(
                        "frames",
                        f"(pid={pid}, vpn={vpn}) is {pte.state.name} but "
                        f"still references frame {pte.ppn}",
                    )
        if len(seen_frames) != machine.frames.used:
            _fail(
            "frames",
                f"{machine.frames.used} frames allocated but "
                f"{len(seen_frames)} referenced by page tables",
            )

    # -- 2: page tables <-> swap slots -------------------------------------------------

    def _check_page_tables_vs_swap(self) -> None:
        machine = self.machine
        swap = machine.swap_space
        for pid, table in machine._page_tables.items():
            for vpn, pte in table._entries.items():
                if pte.state is PteState.REMOTE:
                    if pte.swap_slot is None or pte.swap_slot < 0:
                        _fail(
                            "swap",
                            f"(pid={pid}, vpn={vpn}) is REMOTE with no "
                            f"swap slot",
                        )
                    page = swap.page_at(pte.swap_slot)
                    if page != (pid, vpn):
                        _fail(
                            "swap",
                            f"slot {pte.swap_slot} claimed by (pid={pid}, "
                            f"vpn={vpn}) but swap space maps it to {page}",
                        )
        for slot, (pid, vpn) in swap._slot_to_page.items():
            table = machine._page_tables.get(pid)
            pte = table.peek(vpn) if table is not None else None
            if pte is None or pte.state not in _SLOT_STATES:
                state = pte.state.name if pte is not None else "missing"
                _fail(
                    "swap",
                    f"slot {slot} maps to (pid={pid}, vpn={vpn}) whose "
                    f"PTE is {state}",
                )
            if pte.swap_slot != slot:
                _fail(
                    "swap",
                    f"slot {slot} maps to (pid={pid}, vpn={vpn}) but its "
                    f"PTE names slot {pte.swap_slot}",
                )

    # -- 3: swap slots <-> directory ---------------------------------------------------

    def _check_swap_vs_directory(self) -> None:
        machine = self.machine
        cluster = machine.cluster
        for slot in machine.swap_space._slot_to_page:
            has_holders = bool(cluster.holders_of(slot))
            lost = cluster.is_lost(slot)
            if has_holders and lost:
                _fail(
                    "directory",
                    f"slot {slot} is marked lost but still has holders "
                    f"{cluster.holders_of(slot)}",
                )
            if not has_holders and not lost:
                _fail(
                    "directory",
                    f"slot {slot} is live in swap space but has no "
                    f"directory entry and is not marked lost",
                )
        for slot in cluster.slots_in_directory():
            if machine.swap_space.page_at(slot) is None:
                _fail(
                    "directory",
                    f"directory lists slot {slot} which swap space does "
                    f"not know",
                )

    # -- 4: directory <-> per-node stores ----------------------------------------------

    def _check_directory_vs_stores(self) -> None:
        cluster = self.machine.cluster
        for slot in cluster.slots_in_directory():
            for node_id in cluster.holders_of(slot):
                node = cluster.nodes[node_id]
                if not node.remote.holds(slot):
                    # A holder whose node crashed but whose crash the
                    # monitor has not detected yet is allowed: the wipe
                    # happens at detection.
                    injector = node.injector
                    if injector is not None and injector.node_dead(
                        self.machine.now_us
                    ):
                        continue
                    _fail(
                        "stores",
                        f"directory lists node {node_id} for slot {slot} "
                        f"but the node does not store it",
                    )
        for node in cluster.nodes:
            for slot in node.remote._slots:
                if node.node_id not in cluster.holders_of(slot):
                    _fail(
                        "stores",
                        f"node {node.node_id} stores slot {slot} which "
                        f"the directory does not credit to it",
                    )

    # -- 5: residency accounting -------------------------------------------------------

    def _check_residency(self) -> None:
        machine = self.machine
        resident = sum(machine._resident.values())
        if resident != machine.frames.used:
            _fail(
                "residency",
                f"cgroups count {resident} resident pages but "
                f"{machine.frames.used} frames are allocated",
            )
        for node in machine.cluster.nodes:
            if not node.remote.conserved:
                _fail(
                    "residency",
                    f"node {node.node_id} slot accounting does not "
                    f"conserve: {node.remote.stats_snapshot()}",
                )

    # -- 6: integrity bookkeeping ------------------------------------------------------

    def _check_integrity(self) -> None:
        machine = self.machine
        cluster = machine.cluster
        for slot in cluster._poisoned_slots:
            if cluster.is_lost(slot):
                _fail(
                    "integrity",
                    f"slot {slot} is marked both lost and poisoned",
                )
            if not cluster.holders_of(slot):
                _fail(
                    "integrity",
                    f"slot {slot} is poisoned but has no directory "
                    f"holders (poisoned data must still exist)",
                )
        for node in cluster.nodes:
            for slot in node.remote.checksums.tracked_slots():
                if not node.remote.holds(slot):
                    _fail(
                        "integrity",
                        f"node {node.node_id} checksum ledger tracks "
                        f"slot {slot} which the node does not store",
                    )
        controller = machine.integrity
        if controller is not None and not controller.balanced:
            _fail(
                "integrity",
                f"corruption ledger does not balance: "
                f"detected={controller.corruption_detected} != "
                f"repaired={controller.corruption_repaired} + "
                f"unresolved={controller.corruption_unresolved} + "
                f"condemned={controller.poisoned_copies}",
            )
