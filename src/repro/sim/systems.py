"""System registry: named configurations of the machine under test.

Each name maps to a factory that assembles a :class:`Machine` with the
right fault-time prefetcher and (for HoPP variants) the HoPP data plane.
HoPP runs *on top of* Fastswap (Section V: "we integrate HoPP with
Fastswap"), so every ``hopp*`` system keeps the Fastswap read-ahead on
the fault path and adds the asynchronous data plane beside it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional

from repro.baselines.base import NoPrefetch
from repro.baselines.depthn import DepthNPrefetcher
from repro.baselines.fastswap import FastswapPrefetcher
from repro.baselines.leap import LeapPrefetcher
from repro.baselines.vma_readahead import VmaReadaheadPrefetcher
from repro.hopp.policy import PolicyConfig
from repro.hopp.system import HoppConfig, HoppDataPlane
from repro.hopp.three_tier import TierConfig
from repro.sim.machine import Machine, MachineConfig

#: HoPP prefetch tiers, used by benches to attribute hits.
HOPP_TIERS = ("ssp", "lsp", "rsp")


@dataclass(frozen=True)
class SystemSpec:
    """A buildable system configuration."""

    name: str
    builder: Callable[[MachineConfig], Machine]
    #: Whether the paper's accounting says this system charges prefetched
    #: pages to the application cgroup.
    charges_prefetch: bool = True

    def build(self, config: MachineConfig) -> Machine:
        config = replace(config, charge_prefetch=self.charges_prefetch)
        return self.builder(config)


def _plain(prefetcher_factory: Callable[[], object]) -> Callable[[MachineConfig], Machine]:
    def build(config: MachineConfig) -> Machine:
        return Machine(config, fault_prefetcher=prefetcher_factory())

    return build


def _hopp(hopp_config_factory: Callable[[], HoppConfig]) -> Callable[[MachineConfig], Machine]:
    def build(config: MachineConfig) -> Machine:
        machine = Machine(config, fault_prefetcher=FastswapPrefetcher())
        plane = HoppDataPlane(machine, hopp_config_factory())
        machine.hopp = plane
        machine.controller.add_tap(plane.on_mc_access)
        return machine

    return build


def _hopp_cfg(**overrides) -> Callable[[], HoppConfig]:
    def factory() -> HoppConfig:
        return HoppConfig(**overrides)

    return factory


_REGISTRY: Dict[str, SystemSpec] = {}


def _register(spec: SystemSpec) -> None:
    _REGISTRY[spec.name] = spec


_register(SystemSpec("noprefetch", _plain(NoPrefetch)))
_register(SystemSpec("fastswap", _plain(FastswapPrefetcher), charges_prefetch=False))
_register(SystemSpec("leap", _plain(LeapPrefetcher), charges_prefetch=False))
_register(SystemSpec("vma-readahead", _plain(VmaReadaheadPrefetcher), charges_prefetch=False))
_register(SystemSpec("depth-16", _plain(lambda: DepthNPrefetcher(16))))
_register(SystemSpec("depth-32", _plain(lambda: DepthNPrefetcher(32))))

# Full HoPP and its ablations.
_register(SystemSpec("hopp", _hopp(_hopp_cfg())))
_register(
    SystemSpec("hopp-ssp", _hopp(_hopp_cfg(tiers=TierConfig.only("ssp"))))
)
_register(
    SystemSpec(
        "hopp-ssp-lsp", _hopp(_hopp_cfg(tiers=TierConfig.only("ssp", "lsp")))
    )
)
# No early PTE injection: HoPP's predictions land in the swapcache.
_register(SystemSpec("hopp-swapcache", _hopp(_hopp_cfg(inject_pte=False))))
# Fixed prefetch offsets (Figure 22's sensitivity arms).
_register(
    SystemSpec(
        "hopp-offset-1",
        _hopp(
            _hopp_cfg(policy=PolicyConfig(adaptive=False, initial_offset=1.0))
        ),
    )
)
_register(
    SystemSpec(
        "hopp-offset-20k",
        _hopp(
            _hopp_cfg(
                policy=PolicyConfig(
                    adaptive=False, initial_offset=20_000.0, offset_max=20_000.0
                )
            )
        ),
    )
)
# Section IV extension: long streams graduate to 2 MB batch requests.
_register(
    SystemSpec(
        "hopp-huge",
        _hopp(_hopp_cfg(hugepage_enabled=True)),
    )
)
# Section IV extension: stream-behind pages hinted to reclaim.
_register(
    SystemSpec(
        "hopp-evict",
        _hopp(_hopp_cfg(eviction_advisor_enabled=True)),
    )
)
# Section III-D alternative: an online learned stride-context model
# in the trainer slot instead of the three-tier cascade.
_register(SystemSpec("hopp-learned", _hopp(_hopp_cfg(trainer="learned"))))
# The Section II-B "revamped majority" prefetcher: full trace + pages
# clustering + large-window majority voting, without the new tiers and
# without early PTE injection.
_register(
    SystemSpec(
        "majority-full",
        _hopp(_hopp_cfg(tiers=TierConfig.only("ssp"), inject_pte=False)),
    )
)


def build(name: str) -> SystemSpec:
    """Look up a system by name; raises with the known names on typos."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise KeyError(
            f"unknown system {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        )
    return spec


def names() -> list:
    return sorted(_REGISTRY)


def register(spec: SystemSpec) -> None:
    """Extension point: add a custom system configuration."""
    _register(spec)
