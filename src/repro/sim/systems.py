"""System registry: named configurations of the machine under test.

Each name maps to a factory that assembles a :class:`Machine` with the
right fault-time prefetcher and (for HoPP variants) the HoPP data plane.
HoPP runs *on top of* Fastswap (Section V: "we integrate HoPP with
Fastswap"), so every ``hopp*`` system keeps the Fastswap read-ahead on
the fault path and adds the asynchronous data plane beside it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, is_dataclass, replace
from typing import Callable, Dict, List, Optional

from repro.baselines.base import NoPrefetch
from repro.baselines.depthn import DepthNPrefetcher
from repro.baselines.fastswap import FastswapPrefetcher
from repro.baselines.leap import LeapPrefetcher
from repro.baselines.vma_readahead import VmaReadaheadPrefetcher
from repro.hopp.policy import PolicyConfig
from repro.hopp.system import HoppConfig, HoppDataPlane
from repro.hopp.three_tier import TierConfig
from repro.sim.machine import Machine, MachineConfig

#: HoPP prefetch tiers, used by benches to attribute hits.
HOPP_TIERS = ("ssp", "lsp", "rsp")


@dataclass(frozen=True)
class SystemSpec:
    """A buildable system configuration."""

    name: str
    builder: Callable[[MachineConfig], Machine]
    #: Whether the paper's accounting says this system charges prefetched
    #: pages to the application cgroup.
    charges_prefetch: bool = True

    def build(self, config: MachineConfig) -> Machine:
        config = replace(config, charge_prefetch=self.charges_prefetch)
        return self.builder(config)


def _plain(prefetcher_factory: Callable[[], object]) -> Callable[[MachineConfig], Machine]:
    def build(config: MachineConfig) -> Machine:
        return Machine(config, fault_prefetcher=prefetcher_factory())

    return build


def _hopp(hopp_config_factory: Callable[[], HoppConfig]) -> Callable[[MachineConfig], Machine]:
    def build(config: MachineConfig) -> Machine:
        machine = Machine(config, fault_prefetcher=FastswapPrefetcher())
        plane = HoppDataPlane(machine, hopp_config_factory())
        machine.hopp = plane
        machine.controller.add_tap(plane.on_mc_access)
        return machine

    return build


def _hopp_cfg(**overrides) -> Callable[[], HoppConfig]:
    def factory() -> HoppConfig:
        return HoppConfig(**overrides)

    return factory


_REGISTRY: Dict[str, SystemSpec] = {}

#: HoPP-based systems keep their HoppConfig factory here so
#: :func:`variant` can rebuild them with knob overrides (the autotuner's
#: way of exploring HPD/STT/policy geometry without new registry names).
_HOPP_FACTORIES: Dict[str, Callable[[], HoppConfig]] = {}


def _register(spec: SystemSpec) -> None:
    _REGISTRY[spec.name] = spec


def _register_hopp(
    name: str, factory: Callable[[], HoppConfig], **spec_kwargs
) -> None:
    _HOPP_FACTORIES[name] = factory
    _register(SystemSpec(name, _hopp(factory), **spec_kwargs))


_register(SystemSpec("noprefetch", _plain(NoPrefetch)))
_register(SystemSpec("fastswap", _plain(FastswapPrefetcher), charges_prefetch=False))
_register(SystemSpec("leap", _plain(LeapPrefetcher), charges_prefetch=False))
_register(SystemSpec("vma-readahead", _plain(VmaReadaheadPrefetcher), charges_prefetch=False))
_register(SystemSpec("depth-16", _plain(lambda: DepthNPrefetcher(16))))
_register(SystemSpec("depth-32", _plain(lambda: DepthNPrefetcher(32))))

# Full HoPP and its ablations.
_register_hopp("hopp", _hopp_cfg())
_register_hopp("hopp-ssp", _hopp_cfg(tiers=TierConfig.only("ssp")))
_register_hopp("hopp-ssp-lsp", _hopp_cfg(tiers=TierConfig.only("ssp", "lsp")))
# No early PTE injection: HoPP's predictions land in the swapcache.
_register_hopp("hopp-swapcache", _hopp_cfg(inject_pte=False))
# Fixed prefetch offsets (Figure 22's sensitivity arms).
_register_hopp(
    "hopp-offset-1",
    _hopp_cfg(policy=PolicyConfig(adaptive=False, initial_offset=1.0)),
)
_register_hopp(
    "hopp-offset-20k",
    _hopp_cfg(
        policy=PolicyConfig(
            adaptive=False, initial_offset=20_000.0, offset_max=20_000.0
        )
    ),
)
# Section IV extension: long streams graduate to 2 MB batch requests.
_register_hopp("hopp-huge", _hopp_cfg(hugepage_enabled=True))
# Section IV extension: stream-behind pages hinted to reclaim.
_register_hopp("hopp-evict", _hopp_cfg(eviction_advisor_enabled=True))
# Section III-D alternative: an online learned stride-context model
# in the trainer slot instead of the three-tier cascade.
_register_hopp("hopp-learned", _hopp_cfg(trainer="learned"))
# The Section II-B "revamped majority" prefetcher: full trace + pages
# clustering + large-window majority voting, without the new tiers and
# without early PTE injection.
_register_hopp(
    "majority-full", _hopp_cfg(tiers=TierConfig.only("ssp"), inject_pte=False)
)


def build(name: str) -> SystemSpec:
    """Look up a system by name; raises with the known names on typos."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise KeyError(
            f"unknown system {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        )
    return spec


#: Config field types a knob override may carry (JSON-stable scalars).
_SCALAR_TYPES = (bool, int, float, str)


def _knob_paths(config: object, prefix: str = "") -> List[str]:
    """Every overridable dotted path of a (possibly nested) config
    dataclass: scalar fields directly, dataclass fields recursively."""
    paths: List[str] = []
    for spec_field in fields(config):
        value = getattr(config, spec_field.name)
        path = f"{prefix}{spec_field.name}"
        if isinstance(value, _SCALAR_TYPES):
            paths.append(path)
        elif is_dataclass(value):
            paths.extend(_knob_paths(value, prefix=f"{path}."))
    return paths


def hopp_knobs() -> List[str]:
    """All dotted HoppConfig paths :func:`variant` accepts as overrides
    (e.g. ``hpd_threshold``, ``policy.alpha``, ``breaker.window``)."""
    return sorted(_knob_paths(HoppConfig()))


def hopp_knob_values(name: str) -> Dict[str, object]:
    """Every tunable knob of a registered HoPP system with its current
    value — the "paper default" design point searches warm-start from."""
    factory = _HOPP_FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"system {name!r} is not tunable (no HoppConfig); tunable "
            f"systems: {', '.join(sorted(_HOPP_FACTORIES))}"
        )
    config = factory()
    values: Dict[str, object] = {}
    for path in _knob_paths(config):
        node: object = config
        for part in path.split("."):
            node = getattr(node, part)
        values[path] = node
    return values


def _override_one(config: object, path: str, value: object) -> object:
    """``dataclasses.replace`` along one dotted path, with type checks
    loud enough to catch a tuning-space typo at spec-build time."""
    head, _, rest = path.partition(".")
    known = {spec_field.name for spec_field in fields(config)}
    if head not in known:
        raise ValueError(
            f"unknown HoPP knob {path!r}; tunable knobs: "
            f"{', '.join(hopp_knobs())}"
        )
    current = getattr(config, head)
    if rest:
        if not is_dataclass(current):
            raise ValueError(
                f"HoPP knob {head!r} has no sub-knob {rest!r}"
            )
        return replace(config, **{head: _override_one(current, rest, value)})
    if not isinstance(current, _SCALAR_TYPES):
        raise ValueError(
            f"HoPP knob {path!r} is a {type(current).__name__} section, "
            "not a scalar; override its fields individually "
            f"({path}.<field>)"
        )
    if isinstance(current, bool):
        if not isinstance(value, bool):
            raise ValueError(
                f"HoPP knob {path!r} wants a bool, got {value!r}"
            )
    elif isinstance(current, int) and not isinstance(current, bool):
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(
                f"HoPP knob {path!r} wants an int, got {value!r}"
            )
    elif isinstance(current, float):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(
                f"HoPP knob {path!r} wants a float, got {value!r}"
            )
        value = float(value)
    elif isinstance(current, str) and not isinstance(value, str):
        raise ValueError(f"HoPP knob {path!r} wants a str, got {value!r}")
    return replace(config, **{head: value})


def variant(name: str, overrides: Optional[Dict[str, object]] = None) -> SystemSpec:
    """A registered system with HoppConfig knob overrides applied.

    ``overrides`` maps dotted config paths (see :func:`hopp_knobs`) to
    values: ``variant("hopp", {"hpd_threshold": 16, "policy.alpha":
    0.4})``.  Only HoPP-based systems are tunable — they are the ones
    whose geometry the paper's design space covers.  The returned spec
    keeps the base name (the overrides live in the RunSpec key, not the
    label) and stays cacheable: its builder is this module's code, and
    every override is a validated scalar captured by
    ``RunSpec.system_kwargs``.
    """
    base = build(name)
    if not overrides:
        return base
    factory = _HOPP_FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"system {name!r} is not tunable (no HoppConfig); tunable "
            f"systems: {', '.join(sorted(_HOPP_FACTORIES))}"
        )
    frozen = dict(overrides)
    _apply(factory(), frozen)  # validate every path/type up front

    def config_factory() -> HoppConfig:
        return _apply(factory(), frozen)

    return SystemSpec(
        name=base.name,
        builder=_hopp(config_factory),
        charges_prefetch=base.charges_prefetch,
    )


def _apply(config: HoppConfig, overrides: Dict[str, object]) -> HoppConfig:
    for path in sorted(overrides):
        config = _override_one(config, path, overrides[path])
    return config


def names() -> list:
    return sorted(_REGISTRY)


def register(spec: SystemSpec) -> None:
    """Extension point: add a custom system configuration."""
    _register(spec)
