"""Run metrics — Section VI-A.

* **Accuracy** — prefetched-page hits / total prefetched pages.
* **Coverage** — prefetch hits / (remote demand requests + prefetch hits).
* **Timeliness** — time from a prefetched page's arrival to its first hit.
* **Normalized performance** — CT_local / CT_system.
* **Speedup vs a baseline** — 1 - CT_system / CT_baseline (Section VI-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.stats import Histogram, safe_ratio
from repro.common.types import FaultBreakdown


@dataclass
class RunResult:
    """Everything measured in one simulated run of one workload."""

    system: str
    workload: str
    completion_time_us: float = 0.0
    accesses: int = 0
    mc_reads: int = 0
    minor_faults: int = 0
    #: Demand reads that had to go to the remote node (major faults that
    #: missed every local copy).
    remote_demand_reads: int = 0
    #: Prefetch hits split by where the hit landed (Figure 11's split).
    prefetch_hit_swapcache: int = 0
    prefetch_hit_inflight: int = 0
    prefetch_hit_dram: int = 0
    prefetch_issued: int = 0
    prefetch_wasted: int = 0
    issued_by_tier: Dict[str, int] = field(default_factory=dict)
    hits_by_tier: Dict[str, int] = field(default_factory=dict)
    breakdown: FaultBreakdown = field(default_factory=FaultBreakdown)
    timeliness: Optional[Histogram] = None
    fabric_reads: int = 0
    fabric_writes: int = 0
    reclaim_pages: int = 0
    peak_resident_pages: int = 0
    #: Fault-injection observability (all exactly 0 without a fault plan).
    #: Injected transfer timeouts observed (demand, prefetch, and write).
    timeouts: int = 0
    #: Retry attempts on synchronous transfers (demand reads, writebacks).
    retries: int = 0
    #: Critical-path latency spent waiting out timeouts and backoff.
    retry_latency_us: float = 0.0
    #: Prefetch reads dropped by injected faults (never retried).
    dropped_prefetches: int = 0
    dropped_by_tier: Dict[str, int] = field(default_factory=dict)
    #: Simulated time the prefetch circuit breaker spent open/half-open.
    degraded_mode_us: float = 0.0
    breaker_opens: int = 0
    #: Prefetch requests suppressed at the breaker gate while degraded.
    prefetch_suppressed: int = 0
    #: Remote-pool topology (1/interleave/1 = the single-node model).
    remote_nodes: int = 1
    placement: str = "interleave"
    replication: int = 1
    #: Demand reads answered by a replica after the primary was found
    #: restarting (requires replication > 1).
    demand_failovers: int = 0
    #: Reclaim writebacks re-routed to a live node mid-retry.
    writeback_reroutes: int = 0
    #: Extra WRITEs spent keeping replicas (0 when replication == 1).
    replica_writes: int = 0
    #: Per-node fabric/remote counter snapshots (one dict per node).
    node_stats: list = field(default_factory=list)
    #: Self-healing / recovery observability (all exactly 0 without node
    #: crashes, drains, or ``--check-invariants``).
    #: Permanent node crashes detected by the health monitor.
    node_crashes: int = 0
    #: Nodes re-admitted after a crash (``node_rejoin``) or a drain.
    node_rejoins: int = 0
    #: Under-replicated pages copied onto a live node by the repair engine.
    pages_repaired: int = 0
    #: Pages whose every replica died with its node (unrecoverable).
    pages_lost: int = 0
    #: Demand faults on lost pages resolved by mapping a zeroed frame.
    pages_zero_filled: int = 0
    #: Swapcache pages re-written back because their remote copy was lost.
    pages_salvaged: int = 0
    #: Pages evacuated off DRAINING nodes.
    pages_drained: int = 0
    #: Background repair traffic (bulk READs + WRITEs, and their bytes).
    repair_reads: int = 0
    repair_writes: int = 0
    repair_bytes: int = 0
    #: Repair tasks re-queued after their transfer timed out.
    repair_retries: int = 0
    #: Directory lookups of slots with no entry (typed error path).
    directory_misses: int = 0
    #: Cross-layer sanitizer sweeps that ran (and passed) this run.
    invariant_checks: int = 0
    #: Accumulated-but-previously-unreported machine counters, surfaced
    #: only under ``to_dict(full=True)`` (adding default keys would
    #: break the golden byte-identity contract).
    #: Application compute time overlapped with memory stalls.
    compute_us: float = 0.0
    #: Memory-controller write accesses and total bytes moved.
    mc_writes: int = 0
    mc_bytes: int = 0
    #: Reclaimer detail beyond ``reclaim_pages``.
    reclaim_batches: int = 0
    reclaim_clean_drops: int = 0
    reclaim_writebacks: int = 0
    reclaim_background_us: float = 0.0
    #: Swapcache traffic (inserts/hits/drops of prefetched pages).
    swapcache_inserts: int = 0
    swapcache_hits: int = 0
    swapcache_drops: int = 0
    #: HoPP-side occurrences with no RunResult home until now.
    hopp_hot_pages_unresolved: int = 0
    prefetch_duplicates: int = 0
    prefetch_rejected: int = 0
    fabric_drop_signals: int = 0
    #: Telemetry export (None when telemetry was disabled — the key is
    #: then absent from to_dict output, keeping goldens byte-identical).
    telemetry: Optional[Dict[str, object]] = None
    #: Tenant-scale scenario section (admission ladder, SLO attainment,
    #: autoscaler timeline) attached by :mod:`repro.scenario`; None for
    #: every non-scenario run — the key is then absent from to_dict
    #: output, keeping goldens byte-identical.
    scenario: Optional[Dict[str, object]] = None
    #: Memory-tier section (per-tier read/writeback counters, promotion
    #: and demotion totals, migration traffic) attached by
    #: :mod:`repro.memtier`; None whenever tiering is off — the key is
    #: then absent from to_dict output, keeping goldens byte-identical.
    memtier: Optional[Dict[str, object]] = None
    #: End-to-end integrity section (corruption detections/repairs,
    #: poisoned pages, scrub traffic, detection latency) attached by
    #: :mod:`repro.integrity`; None whenever neither corruption
    #: injection nor the patrol scrubber was armed — the key is then
    #: absent from to_dict output, keeping goldens byte-identical.
    integrity: Optional[Dict[str, object]] = None
    extra: Dict[str, float] = field(default_factory=dict)

    # -- paper metrics ----------------------------------------------------------

    @property
    def prefetch_hits(self) -> int:
        return (
            self.prefetch_hit_swapcache
            + self.prefetch_hit_inflight
            + self.prefetch_hit_dram
        )

    @property
    def prefetch_delivered(self) -> int:
        """Prefetched pages that actually arrived — issue attempts minus
        the ones injected faults dropped on the wire."""
        return self.prefetch_issued - self.dropped_prefetches

    @property
    def accuracy(self) -> float:
        """Prediction quality over *delivered* prefetches: an injected
        fabric drop is bad luck, not a wrong prediction, so it must not
        corrupt the paper's accuracy metric."""
        return safe_ratio(self.prefetch_hits, self.prefetch_delivered)

    @property
    def coverage(self) -> float:
        return safe_ratio(
            self.prefetch_hits, self.remote_demand_reads + self.prefetch_hits
        )

    @property
    def dram_hit_coverage(self) -> float:
        """Coverage counting only DRAM hits (injected PTEs) — the
        HoPP-only part Figure 21 plots."""
        return safe_ratio(
            self.prefetch_hit_dram, self.remote_demand_reads + self.prefetch_hits
        )

    @property
    def page_faults(self) -> int:
        """Faults the application observed: demand remote reads plus
        swapcache/inflight prefetch hits (those still fault)."""
        return (
            self.remote_demand_reads
            + self.prefetch_hit_swapcache
            + self.prefetch_hit_inflight
        )

    @property
    def remote_accesses(self) -> int:
        """Everything read over the fabric (Figure 17's numerator)."""
        return self.fabric_reads

    def normalized_performance(self, ct_local_us: float) -> float:
        return safe_ratio(ct_local_us, self.completion_time_us)

    def speedup_vs(self, baseline: "RunResult") -> float:
        if baseline.completion_time_us <= 0:
            return 0.0
        return 1.0 - self.completion_time_us / baseline.completion_time_us

    def tier_accuracy(self, tier: str) -> float:
        return safe_ratio(
            self.hits_by_tier.get(tier, 0),
            self.issued_by_tier.get(tier, 0) - self.dropped_by_tier.get(tier, 0),
        )

    def tier_coverage(self, tier: str) -> float:
        return safe_ratio(
            self.hits_by_tier.get(tier, 0),
            self.remote_demand_reads + self.prefetch_hits,
        )

    # -- export -------------------------------------------------------------------

    def to_dict(self, full: bool = False) -> Dict[str, object]:
        """A flat, JSON-serializable snapshot of the run (counters plus
        the derived paper metrics).

        ``full=True`` additionally embeds the exact timeliness-histogram
        state so :meth:`from_dict` can rebuild a RunResult that
        serializes byte-identically — the result-cache contract."""
        out: Dict[str, object] = {
            "system": self.system,
            "workload": self.workload,
            "completion_time_us": self.completion_time_us,
            "accesses": self.accesses,
            "mc_reads": self.mc_reads,
            "minor_faults": self.minor_faults,
            "remote_demand_reads": self.remote_demand_reads,
            "prefetch_hit_swapcache": self.prefetch_hit_swapcache,
            "prefetch_hit_inflight": self.prefetch_hit_inflight,
            "prefetch_hit_dram": self.prefetch_hit_dram,
            "prefetch_issued": self.prefetch_issued,
            "prefetch_wasted": self.prefetch_wasted,
            "issued_by_tier": dict(self.issued_by_tier),
            "hits_by_tier": dict(self.hits_by_tier),
            "fabric_reads": self.fabric_reads,
            "fabric_writes": self.fabric_writes,
            "reclaim_pages": self.reclaim_pages,
            "peak_resident_pages": self.peak_resident_pages,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "retry_latency_us": self.retry_latency_us,
            "dropped_prefetches": self.dropped_prefetches,
            "dropped_by_tier": dict(self.dropped_by_tier),
            "degraded_mode_us": self.degraded_mode_us,
            "breaker_opens": self.breaker_opens,
            "prefetch_suppressed": self.prefetch_suppressed,
            "cluster": {
                "remote_nodes": self.remote_nodes,
                "placement": self.placement,
                "replication": self.replication,
                "demand_failovers": self.demand_failovers,
                "writeback_reroutes": self.writeback_reroutes,
                "replica_writes": self.replica_writes,
                "per_node": list(self.node_stats),
            },
            "recovery": {
                "node_crashes": self.node_crashes,
                "node_rejoins": self.node_rejoins,
                "pages_repaired": self.pages_repaired,
                "pages_lost": self.pages_lost,
                "pages_zero_filled": self.pages_zero_filled,
                "pages_salvaged": self.pages_salvaged,
                "pages_drained": self.pages_drained,
                "repair_reads": self.repair_reads,
                "repair_writes": self.repair_writes,
                "repair_bytes": self.repair_bytes,
                "repair_retries": self.repair_retries,
                "directory_misses": self.directory_misses,
                "invariant_checks": self.invariant_checks,
            },
            "accuracy": self.accuracy,
            "coverage": self.coverage,
            "page_faults": self.page_faults,
            "breakdown_us": {
                "dram_hit": self.breakdown.dram_hit_us,
                "prefetch_hit": self.breakdown.prefetch_hit_us,
                "remote_fault": self.breakdown.remote_fault_us,
                "inflight_wait": self.breakdown.inflight_wait_us,
                "reclaim": self.breakdown.reclaim_us,
            },
            "extra": dict(self.extra),
        }
        if self.timeliness is not None and self.timeliness.stat.count:
            out["timeliness_us"] = {
                "mean": self.timeliness.stat.mean,
                "p50": self.timeliness.quantile(0.5),
                "p90": self.timeliness.quantile(0.9),
                "count": self.timeliness.stat.count,
            }
        if self.telemetry is not None:
            out["telemetry"] = self.telemetry
        if self.scenario is not None:
            out["scenario"] = self.scenario
        if self.memtier is not None:
            out["memtier"] = self.memtier
        if self.integrity is not None:
            out["integrity"] = self.integrity
        if full:
            out["machine"] = {
                "compute_us": self.compute_us,
                "mc_writes": self.mc_writes,
                "mc_bytes": self.mc_bytes,
                "reclaim_batches": self.reclaim_batches,
                "reclaim_clean_drops": self.reclaim_clean_drops,
                "reclaim_writebacks": self.reclaim_writebacks,
                "reclaim_background_us": self.reclaim_background_us,
                "swapcache_inserts": self.swapcache_inserts,
                "swapcache_hits": self.swapcache_hits,
                "swapcache_drops": self.swapcache_drops,
                "hopp_hot_pages_unresolved": self.hopp_hot_pages_unresolved,
                "prefetch_duplicates": self.prefetch_duplicates,
                "prefetch_rejected": self.prefetch_rejected,
                "fabric_drop_signals": self.fabric_drop_signals,
            }
            if self.timeliness is not None:
                stat = self.timeliness.stat
                out["timeliness_hist"] = {
                    "bounds": list(self.timeliness.bounds),
                    "counts": list(self.timeliness.counts),
                    "stat": {
                        "count": stat.count,
                        "mean": stat._mean,
                        "m2": stat._m2,
                        "min": stat.min,
                        "max": stat.max,
                    },
                }
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunResult":
        """Rebuild a RunResult from :meth:`to_dict(full=True)` output.

        The round trip is exact: ``from_dict(r.to_dict(full=True))``
        serializes byte-identically to ``r`` (pinned by the cache tests).
        Derived metrics (accuracy, coverage, ...) are recomputed from the
        restored counters, never trusted from the snapshot."""
        breakdown_us = data.get("breakdown_us", {})
        breakdown = FaultBreakdown(
            dram_hit_us=breakdown_us.get("dram_hit", 0.0),
            prefetch_hit_us=breakdown_us.get("prefetch_hit", 0.0),
            remote_fault_us=breakdown_us.get("remote_fault", 0.0),
            inflight_wait_us=breakdown_us.get("inflight_wait", 0.0),
            reclaim_us=breakdown_us.get("reclaim", 0.0),
        )
        timeliness = None
        hist = data.get("timeliness_hist")
        if hist is not None:
            timeliness = Histogram(bounds=hist["bounds"])
            timeliness.counts = list(hist["counts"])
            stat = hist["stat"]
            timeliness.stat.count = stat["count"]
            timeliness.stat._mean = stat["mean"]
            timeliness.stat._m2 = stat["m2"]
            timeliness.stat.min = stat["min"]
            timeliness.stat.max = stat["max"]
        cluster = data.get("cluster", {})
        recovery = data.get("recovery", {})
        machine = data.get("machine", {})
        result = cls(
            system=data["system"],
            workload=data["workload"],
            completion_time_us=data.get("completion_time_us", 0.0),
            accesses=data.get("accesses", 0),
            mc_reads=data.get("mc_reads", 0),
            minor_faults=data.get("minor_faults", 0),
            remote_demand_reads=data.get("remote_demand_reads", 0),
            prefetch_hit_swapcache=data.get("prefetch_hit_swapcache", 0),
            prefetch_hit_inflight=data.get("prefetch_hit_inflight", 0),
            prefetch_hit_dram=data.get("prefetch_hit_dram", 0),
            prefetch_issued=data.get("prefetch_issued", 0),
            prefetch_wasted=data.get("prefetch_wasted", 0),
            issued_by_tier=dict(data.get("issued_by_tier", {})),
            hits_by_tier=dict(data.get("hits_by_tier", {})),
            breakdown=breakdown,
            timeliness=timeliness,
            fabric_reads=data.get("fabric_reads", 0),
            fabric_writes=data.get("fabric_writes", 0),
            reclaim_pages=data.get("reclaim_pages", 0),
            peak_resident_pages=data.get("peak_resident_pages", 0),
            timeouts=data.get("timeouts", 0),
            retries=data.get("retries", 0),
            retry_latency_us=data.get("retry_latency_us", 0.0),
            dropped_prefetches=data.get("dropped_prefetches", 0),
            dropped_by_tier=dict(data.get("dropped_by_tier", {})),
            degraded_mode_us=data.get("degraded_mode_us", 0.0),
            breaker_opens=data.get("breaker_opens", 0),
            prefetch_suppressed=data.get("prefetch_suppressed", 0),
            remote_nodes=cluster.get("remote_nodes", 1),
            placement=cluster.get("placement", "interleave"),
            replication=cluster.get("replication", 1),
            demand_failovers=cluster.get("demand_failovers", 0),
            writeback_reroutes=cluster.get("writeback_reroutes", 0),
            replica_writes=cluster.get("replica_writes", 0),
            node_stats=list(cluster.get("per_node", [])),
            node_crashes=recovery.get("node_crashes", 0),
            node_rejoins=recovery.get("node_rejoins", 0),
            pages_repaired=recovery.get("pages_repaired", 0),
            pages_lost=recovery.get("pages_lost", 0),
            pages_zero_filled=recovery.get("pages_zero_filled", 0),
            pages_salvaged=recovery.get("pages_salvaged", 0),
            pages_drained=recovery.get("pages_drained", 0),
            repair_reads=recovery.get("repair_reads", 0),
            repair_writes=recovery.get("repair_writes", 0),
            repair_bytes=recovery.get("repair_bytes", 0),
            repair_retries=recovery.get("repair_retries", 0),
            directory_misses=recovery.get("directory_misses", 0),
            invariant_checks=recovery.get("invariant_checks", 0),
            compute_us=machine.get("compute_us", 0.0),
            mc_writes=machine.get("mc_writes", 0),
            mc_bytes=machine.get("mc_bytes", 0),
            reclaim_batches=machine.get("reclaim_batches", 0),
            reclaim_clean_drops=machine.get("reclaim_clean_drops", 0),
            reclaim_writebacks=machine.get("reclaim_writebacks", 0),
            reclaim_background_us=machine.get("reclaim_background_us", 0.0),
            swapcache_inserts=machine.get("swapcache_inserts", 0),
            swapcache_hits=machine.get("swapcache_hits", 0),
            swapcache_drops=machine.get("swapcache_drops", 0),
            hopp_hot_pages_unresolved=machine.get("hopp_hot_pages_unresolved", 0),
            prefetch_duplicates=machine.get("prefetch_duplicates", 0),
            prefetch_rejected=machine.get("prefetch_rejected", 0),
            fabric_drop_signals=machine.get("fabric_drop_signals", 0),
            telemetry=data.get("telemetry"),
            scenario=data.get("scenario"),
            memtier=data.get("memtier"),
            integrity=data.get("integrity"),
            extra=dict(data.get("extra", {})),
        )
        return result
