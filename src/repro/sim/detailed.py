"""Detailed mode: filter raw reference streams through a real cache
hierarchy.

The fast path feeds workload traces to the machine as LLC-*miss*
streams.  Detailed mode instead treats a trace as the full reference
stream an MMU would observe, walks it through a set-associative cache
hierarchy, and forwards only the LLC misses — the traffic a memory
controller actually sees.

This is the quantitative backbone of Section II-D's "Why Memory
Controller?" argument: the MMU sees L1 accesses, "two orders of
magnitude higher than LLC miss (e.g., 180 times for Spark-Graph-BFS)",
so hardware at the MMU would have to filter enormous volumes and would
mistake in-LLC locality for streams.  :func:`mmu_vs_mc_volumes` measures
that reduction factor for any workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Tuple

from repro.memsim.cache import Cache, CacheHierarchy
from repro.workloads.base import Access


@dataclass
class VolumeReport:
    """Reference counts at each observation point (Section II-D)."""

    mmu_accesses: int
    llc_misses: int

    @property
    def reduction_factor(self) -> float:
        """How many MMU-visible references per MC-visible miss."""
        return self.mmu_accesses / self.llc_misses if self.llc_misses else 0.0


class CacheFilter:
    """Streams (pid, vaddr) references through a hierarchy, yielding
    only the LLC misses.

    Virtual addresses index the caches directly (a VIPT idealization);
    for the volume argument the indexing function is immaterial.
    """

    def __init__(self, hierarchy: Optional[CacheHierarchy] = None) -> None:
        self.hierarchy = hierarchy or CacheHierarchy()
        self.references = 0
        self.misses = 0

    def filter(self, trace: Iterable[Access]) -> Iterator[Access]:
        for pid, vaddr in trace:
            self.references += 1
            if self.hierarchy.access(vaddr):
                self.misses += 1
                yield pid, vaddr

    @property
    def report(self) -> VolumeReport:
        return VolumeReport(self.references, self.misses)


def expand_to_references(
    trace: Iterable[Access], repeats: int = 4, unroll: int = 16
) -> Iterator[Access]:
    """Approximate an MMU-level reference stream from a miss-level one.

    Each miss-level access in real code is surrounded by register/LLC
    locality: loads revisit recent lines (loop bodies re-touch the same
    cachelines).  Replaying a sliding window ``repeats`` times per
    ``unroll`` accesses synthesizes that locality without changing the
    page-level footprint.
    """
    window = []
    for access in trace:
        yield access
        window.append(access)
        if len(window) >= unroll:
            for _ in range(repeats - 1):
                yield from window
            window.clear()


def mmu_vs_mc_volumes(
    trace: Iterable[Access],
    hierarchy: Optional[CacheHierarchy] = None,
    repeats: int = 4,
) -> VolumeReport:
    """Measure the MMU-visible vs MC-visible reference volumes for a
    reference stream synthesized from ``trace``."""
    cache_filter = CacheFilter(hierarchy)
    for _ in cache_filter.filter(expand_to_references(trace, repeats=repeats)):
        pass
    return cache_filter.report
