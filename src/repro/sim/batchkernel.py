"""Chunked batch kernel for :meth:`Machine.run`'s fast path.

The per-access fast loops (PR 4) still paid Python dispatch per
reference: unpack, arrival check, PTE probe, LRU touch, tap call.  This
kernel restructures the tapped and untapped fast paths around the
observation (DRackSim-style interval simulation; HMTT's burst-drain tap)
that between *barriers* the machine's event state is frozen:

* no prefetch arrival is due (the arrivals heap only changes inside
  slow-path excursions and prefetch issue),
* residency cannot change (only faults, prefetch issue/arrival, and
  eviction move PTEs, and all of those happen on the slow path or
  inside the HoPP extraction pipeline),
* the HPD table only moves when it is fed.

So the trace is scanned ahead into *same-page runs* — maximal spans of
consecutive accesses by one pid to one vpn — bounded by the next
barrier: the chunk edge, a due prefetch arrival (computed as a
conservative closed-form access budget, below), a residency miss, or an
HPD extraction (which re-enters the machine through the HoPP pipeline
and may issue prefetches, evict pages, and mutate the arrivals heap).
Each run is then retired with O(1) bookkeeping instead of O(run):

* HPD counters collapse via :meth:`HotPageDetector.process_run` (one
  probe, one ``move_to_end``, integer bumps sized by the run); the
  multi-channel detector takes the per-access
  :meth:`MultiChannelHpd.process_batch` path because interleaving
  spreads one page's cachelines across channels,
* the LRU touch is applied once per run (touching an already-MRU key
  again is a no-op, so consecutive duplicates collapse exactly),
* MC read/write/byte counters accumulate in locals and flush once per
  run (and once at end of run for the machine-level counters), matching
  the PR-4 loops' batching,
* the float accumulators (``now_us``, ``compute_us``,
  ``dram_hit_us``) advance by *the same sequence of float additions*
  as the oracle — per access the oracle computes
  ``cost = T_DRAM_HIT_US`` then ``cost += compute``, so the per-access
  ``now`` increment is exactly ``T_DRAM_HIT_US + compute`` rounded
  once, which is loop-invariant.  Resident retirements are therefore
  *deferred*: the kernel counts them and replays the addition chain
  (Python fold for short chains, 1-D ``numpy.cumsum`` for long ones —
  both perform identical sequential additions, verified bit-for-bit)
  at the next barrier that actually reads the accumulators.

Two chunk engines share that retirement logic:

* the *vector* engine (numpy available, uniform tuple arity) converts
  the chunk to arrays once, finds all same-page run boundaries with a
  single vectorized comparison, and walks runs instead of accesses;
* the *scalar* engine scans ahead access-by-access and is the fallback
  for mixed/odd traces, tiny chunks, and numpy-less environments.

Exactness of the arrival barrier: the oracle takes the fast path while
``arrivals[0][0] > now``.  Within a run ``now`` advances by the
constant ``cost0`` per access, so the number of accesses that fit
before the deadline has the closed form ``gap / cost0``; the kernel
budgets ``int(gap / cost0) - 1`` accesses, whose slack (>= one full
``cost0`` = at least T_DRAM_HIT_US) dwarfs the worst-case accumulated
rounding error of a <=4096-term float sum.  Accesses beyond the budget
re-enter the exact per-access path — the bound only needs to be
conservative, never tight.  Deferred chains never span an arrival
check: a pending chain exists only while the arrivals heap is empty,
and every slow-path entry, extraction, and chunk edge flushes it.

Anything else — a missing/non-PRESENT/prefetched PTE, a due arrival, an
unknown HPD implementation, extra taps — exits to the existing slow
path, keeping results byte-identical to ``use_fast_path=False`` (pinned
by tests/test_fastpath.py and tests/data/goldens_v1.json).
"""

from __future__ import annotations

from itertools import islice
from typing import Optional

try:  # numpy only accelerates long runs; the kernel runs without it
    import numpy as np
except ImportError:  # pragma: no cover - environment without numpy
    np = None

from repro.common.constants import BLOCK_SIZE, PAGE_SHIFT, T_DRAM_HIT_US
from repro.hopp.hpd import HotPageDetector, MultiChannelHpd
from repro.kernel.page_table import PteState

PAGE_OFFSET_MASK = (1 << PAGE_SHIFT) - 1

#: Trace accesses buffered per chunk.  Also caps the constant-increment
#: float runs, keeping the arrival-budget rounding analysis (<= 4096
#: sequential additions) valid.
DEFAULT_CHUNK = 4096

#: Below this chunk population the vector engine's array-conversion
#: overhead exceeds the scalar scan's cost.
MIN_VECTOR_CHUNK = 16

#: Chain length at which replaying deferred additions switches from a
#: Python fold to one ``numpy.cumsum`` pass (bit-identical either way).
CUMSUM_MIN = 32


def _seq_add(x0, c, k, seq_buf, cumsum):
    """``x0`` after ``k`` sequential ``+= c`` additions.

    Performs the exact float-addition chain the oracle's per-access
    loop would: a 1-D cumsum adds elements left to right one at a time,
    so both branches produce bit-identical results (pinned by the
    differential tests)."""
    if k >= CUMSUM_MIN and seq_buf is not None:
        view = seq_buf[: k + 1]
        view[1:] = c
        view[0] = x0
        return float(cumsum(view)[k])
    while k:
        x0 += c
        k -= 1
    return x0


def _seq_add3(a, b, c, ca, cb, cc, k, buf3):
    """Advance three accumulators by ``k`` sequential additions each.

    Equivalent to three :func:`_seq_add` calls but pays one cumsum (a
    row-wise pass over a ``(3, k+1)`` view) instead of three.  Each row
    is summed left to right one element at a time, so every chain's
    result is bit-identical to the per-access loop's (pinned by the
    unit and differential tests)."""
    if k >= CUMSUM_MIN and buf3 is not None:
        view = buf3[:, : k + 1]
        view[0, 1:] = ca
        view[1, 1:] = cb
        view[2, 1:] = cc
        view[0, 0] = a
        view[1, 0] = b
        view[2, 0] = c
        out = view.cumsum(axis=1)
        return float(out[0, k]), float(out[1, k]), float(out[2, k])
    while k:
        a += ca
        b += cb
        c += cc
        k -= 1
    return a, b, c


def supports_batch_taps(machine) -> bool:
    """True when the machine's tap wiring is exactly the HoPP data
    plane's MC tap with a detector the kernel knows how to batch.

    Anything else (HMTT tracers, benchmark-registered extra planes,
    prototype detectors) falls back to the per-access tapped loop.
    """
    plane = machine.hopp
    if plane is None:
        return False
    taps = machine.controller._taps
    if len(taps) != 1 or taps[0] != plane.on_mc_access:
        return False
    return type(plane.hpd) in (HotPageDetector, MultiChannelHpd)


class BatchKernel:
    """One trace replay through the chunked fast path.

    ``plane`` is the machine's HoPP data plane for the tapped variant,
    or None for the untapped baselines (same chunking, no HPD work).
    """

    def __init__(self, machine, plane=None, chunk_size: Optional[int] = None):
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.machine = machine
        self.plane = plane
        self.chunk = chunk_size or DEFAULT_CHUNK
        if np is not None:
            self.seq_buf = np.empty(self.chunk + 1)
            self.seq_buf3 = np.empty((3, self.chunk + 1))
        else:
            self.seq_buf = None
            self.seq_buf3 = None

    def run(self, trace) -> None:
        chunk = self.chunk
        scalar = self._chunk_scalar
        vector = self._chunk_vector
        it = iter(trace)
        while True:
            buf = list(islice(it, chunk))
            if not buf:
                break
            if np is None or len(buf) < MIN_VECTOR_CHUNK:
                scalar(buf)
                continue
            # Uniform tuple arity lets one zip transpose the chunk;
            # mixed/odd traces take the scalar scan.  strict=True makes
            # a stray 3-tuple in a mostly-2-tuple chunk raise instead
            # of silently truncating the transpose (dropping writes).
            try:
                if len(buf[0]) == 3:
                    pids_t, vaddrs_t, writes_t = zip(*buf, strict=True)
                else:
                    pids_t, vaddrs_t = zip(*buf, strict=True)
                    writes_t = None
            except (ValueError, TypeError):
                scalar(buf)
                continue
            vector(buf, pids_t, vaddrs_t, writes_t)

    # -- vector engine ---------------------------------------------------------

    def _chunk_vector(self, buf, pids_t, vaddrs_t, writes_t) -> None:
        """Replay one chunk with precomputed run boundaries.

        ``pids_t``/``vaddrs_t``/``writes_t`` are the transposed chunk
        columns (``writes_t`` None for read-only traces).
        """
        m = self.machine
        plane = self.plane
        arrivals = m._arrivals
        tables = m._page_tables
        lru_of_pid = m._lru_of_pid
        present = PteState.PRESENT
        untouched = PteState.UNTOUCHED
        swapcache = PteState.SWAPCACHE
        inflight = PteState.INFLIGHT
        breakdown = m.breakdown
        controller = m.controller
        compute = m.config.compute_us_per_access
        t_dram = T_DRAM_HIT_US
        cost0 = t_dram + compute
        page_shift = PAGE_SHIFT
        offset_mask = PAGE_OFFSET_MASK
        process_arrivals = m._process_arrivals
        count_prefetch_hit = m._count_prefetch_hit
        minor_fault = m._minor_fault
        swapcache_hit = m._swapcache_hit
        inflight_hit = m._inflight_hit
        major_fault = m._major_fault

        hpd = plane.hpd if plane is not None else None
        single = type(hpd) is HotPageDetector
        multi = hpd is not None and not single
        process_run = hpd.process_run if single else None
        hpd_process = hpd.process if hpd is not None else None
        on_hot_page = plane.on_hot_page if plane is not None else None

        if single:
            # Inline probe state for the sent-page fast case: a run on
            # an already-extracted page is pure counter math, deferred
            # into locals and flushed at the same barriers as the MC
            # counters (all additions commute).
            hpd_table = hpd._table
            hpd_sets = hpd_table._sets
            hpd_nsets = hpd_table.nsets
        dh_thits = 0  # deferred SetAssociativeTable.hits
        dh_acc = 0  # deferred HotPageDetector.accesses
        dh_drop = 0  # deferred dropped_after_send
        dh_wign = 0  # deferred writes_ignored

        hot: dict = {}
        buf3 = self.seq_buf3
        seq_add3 = _seq_add3

        n = len(buf)
        # One vectorized pass finds every same-page run boundary; the
        # main loop then walks runs, not accesses.
        va = np.array(vaddrs_t, dtype=np.int64)
        vp = va >> page_shift
        pd = np.array(pids_t, dtype=np.int64)
        same = (vp[1:] == vp[:-1]) & (pd[1:] == pd[:-1])
        bounds = (np.flatnonzero(~same) + 1).tolist()
        bounds.append(n)
        if writes_t is not None:
            # wr_cum[j] = number of writes in buf[:j]; O(1) write counts
            # for any sub-run even when a budget barrier splits it.
            wr_cum = np.concatenate(
                ([0], np.cumsum(np.array(writes_t, dtype=np.int64)))
            ).tolist()
        else:
            wr_cum = None

        i = 0
        b = 0
        end = bounds[0]
        now = m.now_us
        accesses = m.accesses
        compute_us = m.compute_us
        dram = breakdown.dram_hit_us
        mc_reads = 0
        mc_writes = 0
        #: Deferred resident retirements: number of pending
        #: ``+= cost0 / t_dram / compute`` additions.  Non-zero only
        #: while the arrivals heap is empty (flushed at every barrier).
        pend = 0
        while i < n:
            if i >= end:
                b += 1
                end = bounds[b]
                continue
            pid = pids_t[i]
            vaddr = vaddrs_t[i]
            vpn = vaddr >> page_shift
            # -- barrier checks: due/imminent arrival, residency --------
            run_pte = None
            if arrivals:
                gap = arrivals[0][0] - now
                budget = int(gap / cost0) - 1 if gap > 0.0 else 0
            else:
                budget = end - i
            if budget > 0:
                cached = hot.get(pid)
                if cached is None:
                    cached = hot[pid] = (tables[pid]._entries, lru_of_pid(pid))
                pte = cached[0].get(vpn)
                if (
                    pte is not None
                    and pte.state is present
                    and not pte.prefetched
                ):
                    run_pte = pte
            if run_pte is None:
                # ---- slow path: one access through the full fault
                # machinery, inlined from Machine.access (health and
                # sanitizer are None here by the dispatch gate).
                # Machine state is flushed before any re-entrant call
                # and reloaded after.
                if pend:
                    now, dram, compute_us = seq_add3(
                        now, dram, compute_us, cost0, t_dram, compute,
                        pend, buf3,
                    )
                    pend = 0
                if dh_acc or dh_wign:
                    hpd_table.hits += dh_thits
                    hpd.accesses += dh_acc
                    hpd.dropped_after_send += dh_drop
                    hpd.writes_ignored += dh_wign
                    dh_thits = dh_acc = dh_drop = dh_wign = 0
                is_write = False if writes_t is None else writes_t[i]
                accesses += 1
                if arrivals and arrivals[0][0] <= now:
                    m.now_us = now
                    m.accesses = accesses
                    m.compute_us = compute_us
                    breakdown.dram_hit_us = dram
                    process_arrivals(now)
                    dram = breakdown.dram_hit_us
                table = tables[pid]
                pte = table.entry(vpn)
                state = pte.state
                if state is present:
                    cost = t_dram
                    dram += cost
                    cached = hot.get(pid)
                    if cached is None:
                        cached = hot[pid] = (
                            tables[pid]._entries,
                            lru_of_pid(pid),
                        )
                    cached[1].touch(pid, vpn)
                    if pte.prefetched:
                        m.now_us = now
                        m.accesses = accesses
                        m.compute_us = compute_us
                        breakdown.dram_hit_us = dram
                        count_prefetch_hit(pid, vpn, pte, "dram")
                        dram = breakdown.dram_hit_us
                else:
                    m.now_us = now
                    m.accesses = accesses
                    m.compute_us = compute_us
                    breakdown.dram_hit_us = dram
                    if state is untouched:
                        cost = minor_fault(pid, vpn, table, pte)
                    elif state is swapcache:
                        cost = swapcache_hit(pid, vpn, table, pte)
                    elif state is inflight:
                        cost = inflight_hit(pid, vpn, table, pte)
                    else:  # PteState.REMOTE
                        cost = major_fault(pid, vpn, table, pte)
                    now = m.now_us
                    accesses = m.accesses
                    compute_us = m.compute_us
                    dram = breakdown.dram_hit_us
                cost += compute
                compute_us += compute
                now += cost
                paddr = (pte.ppn << page_shift) | (vaddr & offset_mask)
                if is_write:
                    mc_writes += 1
                else:
                    mc_reads += 1
                if hpd_process is not None:
                    hot_ppn = hpd_process(paddr, is_write)
                    if hot_ppn is not None:
                        m.now_us = now
                        m.accesses = accesses
                        m.compute_us = compute_us
                        breakdown.dram_hit_us = dram
                        controller.reads += mc_reads
                        controller.writes += mc_writes
                        controller.bytes_transferred += (
                            mc_reads + mc_writes
                        ) * BLOCK_SIZE
                        mc_reads = 0
                        mc_writes = 0
                        on_hot_page(now, hot_ppn)
                        now = m.now_us
                        accesses = m.accesses
                        compute_us = m.compute_us
                        dram = breakdown.dram_hit_us
                i += 1
                continue
            pte = run_pte
            # -- the sub-run is [i, limit): the precomputed run clipped
            # by the arrival budget --------------------------------------
            limit = i + budget
            if limit > end:
                limit = end
            avail = limit - i
            nw = 0 if wr_cum is None else wr_cum[limit] - wr_cum[i]
            # -- HPD over the sub-run -----------------------------------
            consumed = avail
            hot_ppn = None
            if single:
                reads = avail - nw
                ppn = pte.ppn
                entry = hpd_sets[ppn % hpd_nsets].get(ppn)
                if entry is not None and entry.sent:
                    # Already-extracted page: every READ drops after
                    # send — pure deferred counter math, no extraction
                    # possible.  ``process``/``process_run`` would do
                    # one recency touch for the run's reads.
                    if reads:
                        hpd_sets[ppn % hpd_nsets].move_to_end(ppn)
                        dh_thits += reads
                        dh_acc += reads
                        dh_drop += reads
                    dh_wign += nw
                    mc_writes += nw
                    mc_reads += reads
                    accesses += avail
                    cached[1].touch(pid, vpn)
                    i += avail
                    if arrivals:
                        now, dram, compute_us = seq_add3(
                            now, dram, compute_us, cost0, t_dram, compute,
                            avail, buf3,
                        )
                    else:
                        pend += avail
                    continue
                if reads:
                    reads_used, fired = process_run(ppn, reads)
                    if fired:
                        hot_ppn = pte.ppn
                        if nw == 0:
                            consumed = reads_used
                        else:
                            seen = 0
                            for pos in range(i, limit):
                                if not writes_t[pos]:
                                    seen += 1
                                    if seen == reads_used:
                                        consumed = pos - i + 1
                                        break
                if nw:
                    if consumed == avail:
                        w_cons = nw
                    else:
                        w_cons = wr_cum[i + consumed] - wr_cum[i]
                    hpd.writes_ignored += w_cons
                    mc_writes += w_cons
                    mc_reads += consumed - w_cons
                else:
                    mc_reads += consumed
            elif multi:
                base = pte.ppn << page_shift
                paddrs = [
                    base | (v & offset_mask) for v in vaddrs_t[i:limit]
                ]
                flags = None if writes_t is None else writes_t[i:limit]
                consumed, hot_ppn = hpd.process_batch(paddrs, flags)
                if wr_cum is None:
                    w_cons = 0
                else:
                    w_cons = wr_cum[i + consumed] - wr_cum[i]
                mc_writes += w_cons
                mc_reads += consumed - w_cons
            else:
                mc_writes += nw
                mc_reads += avail - nw
            # -- retire the consumed accesses ---------------------------
            accesses += consumed
            cached[1].touch(pid, vpn)
            i += consumed
            # -- barrier: extraction pipeline ---------------------------
            if hot_ppn is not None:
                now, dram, compute_us = seq_add3(
                    now, dram, compute_us, cost0, t_dram, compute,
                    pend + consumed, buf3,
                )
                pend = 0
                if dh_acc or dh_wign:
                    hpd_table.hits += dh_thits
                    hpd.accesses += dh_acc
                    hpd.dropped_after_send += dh_drop
                    hpd.writes_ignored += dh_wign
                    dh_thits = dh_acc = dh_drop = dh_wign = 0
                m.now_us = now
                m.accesses = accesses
                m.compute_us = compute_us
                breakdown.dram_hit_us = dram
                controller.reads += mc_reads
                controller.writes += mc_writes
                controller.bytes_transferred += (
                    mc_reads + mc_writes
                ) * BLOCK_SIZE
                mc_reads = 0
                mc_writes = 0
                on_hot_page(now, hot_ppn)
                now = m.now_us
                accesses = m.accesses
                compute_us = m.compute_us
                dram = breakdown.dram_hit_us
            elif arrivals:
                # Budget-limited sub-run: the next barrier check reads
                # ``now``, so the chain cannot stay deferred (pend is
                # already 0 — it only grows while arrivals is empty).
                now, dram, compute_us = seq_add3(
                    now, dram, compute_us, cost0, t_dram, compute,
                    consumed, buf3,
                )
            else:
                pend += consumed
        if pend:
            now, dram, compute_us = seq_add3(
                now, dram, compute_us, cost0, t_dram, compute, pend, buf3
            )
        if dh_acc or dh_wign:
            hpd_table.hits += dh_thits
            hpd.accesses += dh_acc
            hpd.dropped_after_send += dh_drop
            hpd.writes_ignored += dh_wign
        m.now_us = now
        m.accesses = accesses
        m.compute_us = compute_us
        breakdown.dram_hit_us = dram
        controller.reads += mc_reads
        controller.writes += mc_writes
        controller.bytes_transferred += (mc_reads + mc_writes) * BLOCK_SIZE

    # -- scalar engine ---------------------------------------------------------

    def _chunk_scalar(self, buf) -> None:
        """Access-by-access scan-ahead — the fallback engine for mixed
        tuple arities, tiny chunks, and numpy-less environments."""
        m = self.machine
        plane = self.plane
        arrivals = m._arrivals
        tables = m._page_tables
        lru_of_pid = m._lru_of_pid
        present = PteState.PRESENT
        untouched = PteState.UNTOUCHED
        swapcache = PteState.SWAPCACHE
        inflight = PteState.INFLIGHT
        breakdown = m.breakdown
        controller = m.controller
        compute = m.config.compute_us_per_access
        t_dram = T_DRAM_HIT_US
        # Per-access now_us increment: T_DRAM_HIT_US + compute, rounded
        # once — exactly the oracle's `cost` after its two assignments.
        cost0 = t_dram + compute
        page_shift = PAGE_SHIFT
        offset_mask = PAGE_OFFSET_MASK
        process_arrivals = m._process_arrivals
        count_prefetch_hit = m._count_prefetch_hit
        minor_fault = m._minor_fault
        swapcache_hit = m._swapcache_hit
        inflight_hit = m._inflight_hit
        major_fault = m._major_fault

        hpd = plane.hpd if plane is not None else None
        single = type(hpd) is HotPageDetector
        multi = hpd is not None and not single
        process_run = hpd.process_run if single else None
        hpd_process = hpd.process if hpd is not None else None
        on_hot_page = plane.on_hot_page if plane is not None else None

        hot: dict = {}
        flags: list = []  # reused per-run is-write flags (only when needed)
        vaddrs: list = []  # reused per-run vaddrs (multi-channel only)
        buf3 = self.seq_buf3
        seq_add3 = _seq_add3

        n = len(buf)
        i = 0
        now = m.now_us
        accesses = m.accesses
        compute_us = m.compute_us
        dram = breakdown.dram_hit_us
        mc_reads = 0
        mc_writes = 0
        while i < n:
            item = buf[i]
            if len(item) == 3:
                pid, vaddr, is_write = item
            else:
                pid, vaddr = item
                is_write = False
            # -- barrier checks: due/imminent arrival, residency ----
            run_pte = None
            if arrivals:
                gap = arrivals[0][0] - now
                budget = int(gap / cost0) - 1 if gap > 0.0 else 0
            else:
                budget = n
            if budget > 0:
                cached = hot.get(pid)
                if cached is None:
                    cached = hot[pid] = (tables[pid]._entries, lru_of_pid(pid))
                vpn = vaddr >> page_shift
                pte = cached[0].get(vpn)
                if (
                    pte is not None
                    and pte.state is present
                    and not pte.prefetched
                ):
                    run_pte = pte
            if run_pte is None:
                # ---- slow path: one access through the full fault
                # machinery, inlined from Machine.access (health and
                # sanitizer are None here by the dispatch gate).
                # Machine state is flushed before any re-entrant
                # call and reloaded after.
                accesses += 1
                if arrivals and arrivals[0][0] <= now:
                    m.now_us = now
                    m.accesses = accesses
                    m.compute_us = compute_us
                    breakdown.dram_hit_us = dram
                    process_arrivals(now)
                    dram = breakdown.dram_hit_us
                vpn = vaddr >> page_shift
                table = tables[pid]
                pte = table.entry(vpn)
                state = pte.state
                if state is present:
                    cost = t_dram
                    dram += cost
                    cached = hot.get(pid)
                    if cached is None:
                        cached = hot[pid] = (
                            tables[pid]._entries,
                            lru_of_pid(pid),
                        )
                    cached[1].touch(pid, vpn)
                    if pte.prefetched:
                        m.now_us = now
                        m.accesses = accesses
                        m.compute_us = compute_us
                        breakdown.dram_hit_us = dram
                        count_prefetch_hit(pid, vpn, pte, "dram")
                        dram = breakdown.dram_hit_us
                else:
                    m.now_us = now
                    m.accesses = accesses
                    m.compute_us = compute_us
                    breakdown.dram_hit_us = dram
                    if state is untouched:
                        cost = minor_fault(pid, vpn, table, pte)
                    elif state is swapcache:
                        cost = swapcache_hit(pid, vpn, table, pte)
                    elif state is inflight:
                        cost = inflight_hit(pid, vpn, table, pte)
                    else:  # PteState.REMOTE
                        cost = major_fault(pid, vpn, table, pte)
                    now = m.now_us
                    accesses = m.accesses
                    compute_us = m.compute_us
                    dram = breakdown.dram_hit_us
                cost += compute
                compute_us += compute
                now += cost
                paddr = (pte.ppn << page_shift) | (vaddr & offset_mask)
                if is_write:
                    mc_writes += 1
                else:
                    mc_reads += 1
                if hpd_process is not None:
                    hot_ppn = hpd_process(paddr, is_write)
                    if hot_ppn is not None:
                        m.now_us = now
                        m.accesses = accesses
                        m.compute_us = compute_us
                        breakdown.dram_hit_us = dram
                        controller.reads += mc_reads
                        controller.writes += mc_writes
                        controller.bytes_transferred += (
                            mc_reads + mc_writes
                        ) * BLOCK_SIZE
                        mc_reads = 0
                        mc_writes = 0
                        on_hot_page(now, hot_ppn)
                        now = m.now_us
                        accesses = m.accesses
                        compute_us = m.compute_us
                        dram = breakdown.dram_hit_us
                i += 1
                continue
            pte = run_pte
            # -- scan the same-page run -----------------------------
            limit = i + budget
            if limit > n:
                limit = n
            j = i + 1
            nw = 1 if is_write else 0
            track = is_write or multi
            if track:
                del flags[:]
                flags.append(is_write)
            if multi:
                del vaddrs[:]
                vaddrs.append(vaddr)
            while j < limit:
                nxt = buf[j]
                if len(nxt) == 3:
                    npid, nvaddr, nwrite = nxt
                else:
                    npid, nvaddr = nxt
                    nwrite = False
                if npid != pid or (nvaddr >> page_shift) != vpn:
                    break
                if nwrite and not track:
                    del flags[:]
                    flags.extend([False] * (j - i))
                    track = True
                nw += nwrite
                if track:
                    flags.append(nwrite)
                if multi:
                    vaddrs.append(nvaddr)
                j += 1
            run_len = j - i
            # -- HPD over the run -----------------------------------
            consumed = run_len
            hot_ppn = None
            if single:
                reads = run_len - nw
                if reads:
                    reads_used, fired = process_run(pte.ppn, reads)
                    if fired:
                        hot_ppn = pte.ppn
                        if nw == 0:
                            consumed = reads_used
                        else:
                            seen = 0
                            for pos, f in enumerate(flags):
                                if not f:
                                    seen += 1
                                    if seen == reads_used:
                                        consumed = pos + 1
                                        break
                if nw:
                    if consumed == run_len:
                        w_cons = nw
                    else:
                        w_cons = 0
                        for f in flags[:consumed]:
                            w_cons += f
                    hpd.writes_ignored += w_cons
                    mc_writes += w_cons
                    mc_reads += consumed - w_cons
                else:
                    mc_reads += consumed
            elif multi:
                base = pte.ppn << page_shift
                paddrs = [base | (v & offset_mask) for v in vaddrs]
                consumed, hot_ppn = hpd.process_batch(paddrs, flags)
                w_cons = 0
                for f in flags[:consumed]:
                    w_cons += f
                mc_writes += w_cons
                mc_reads += consumed - w_cons
            else:
                if nw:
                    mc_writes += nw
                    mc_reads += run_len - nw
                else:
                    mc_reads += run_len
            # -- retire the consumed accesses -----------------------
            accesses += consumed
            now, dram, compute_us = seq_add3(
                now, dram, compute_us, cost0, t_dram, compute, consumed, buf3
            )
            cached[1].touch(pid, vpn)
            i += consumed
            # -- barrier: extraction pipeline -----------------------
            if hot_ppn is not None:
                m.now_us = now
                m.accesses = accesses
                m.compute_us = compute_us
                breakdown.dram_hit_us = dram
                controller.reads += mc_reads
                controller.writes += mc_writes
                controller.bytes_transferred += (
                    mc_reads + mc_writes
                ) * BLOCK_SIZE
                mc_reads = 0
                mc_writes = 0
                on_hot_page(now, hot_ppn)
                now = m.now_us
                accesses = m.accesses
                compute_us = m.compute_us
                dram = breakdown.dram_hit_us
        m.now_us = now
        m.accesses = accesses
        m.compute_us = compute_us
        breakdown.dram_hit_us = dram
        controller.reads += mc_reads
        controller.writes += mc_writes
        controller.bytes_transferred += (mc_reads + mc_writes) * BLOCK_SIZE
