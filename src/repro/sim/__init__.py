"""Full-system simulator: machine, system registry, runner, metrics."""

from repro.sim.detailed import CacheFilter, VolumeReport, mmu_vs_mc_volumes
from repro.sim.machine import Machine, MachineConfig
from repro.sim.metrics import RunResult
from repro.sim.multiprogram import run_corun
from repro.sim.runner import (
    Comparison,
    collect,
    compare,
    local_completion_time,
    make_machine,
    run,
)
from repro.sim.systems import SystemSpec, build, names

__all__ = [
    "CacheFilter",
    "VolumeReport",
    "mmu_vs_mc_volumes",
    "Machine",
    "MachineConfig",
    "RunResult",
    "run_corun",
    "Comparison",
    "collect",
    "compare",
    "local_completion_time",
    "make_machine",
    "run",
    "SystemSpec",
    "build",
    "names",
]
