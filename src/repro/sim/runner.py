"""Run workloads under system configurations and collect paper metrics."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

from repro.cluster.cluster import ClusterConfig
from repro.integrity import ScrubConfig
from repro.memtier import MemtierConfig
from repro.net.faults import FaultPlan
from repro.net.rdma import FabricConfig
from repro.sim import systems as systems_mod
from repro.sim.machine import Machine, MachineConfig
from repro.sim.metrics import RunResult
from repro.sim.systems import SystemSpec
from repro.telemetry import TelemetryConfig
from repro.workloads.base import Workload

#: Local-memory fraction used when measuring CT_local (big enough that
#: nothing is ever reclaimed).
LOCAL_FRACTION = 4.0


def _resolve(system: Union[str, SystemSpec]) -> SystemSpec:
    if isinstance(system, SystemSpec):
        return system
    return systems_mod.build(system)


def make_machine(
    workload: Workload,
    system: Union[str, SystemSpec],
    local_memory_fraction: float = 0.5,
    fabric: Optional[FabricConfig] = None,
    fault_plan: Optional[FaultPlan] = None,
    cluster: Optional[ClusterConfig] = None,
    check_invariants: bool = False,
    telemetry: Optional[TelemetryConfig] = None,
    memtier: Optional[MemtierConfig] = None,
    scrub: Optional[ScrubConfig] = None,
) -> Machine:
    """Assemble a machine sized for ``workload`` and register its
    processes and VMAs."""
    if local_memory_fraction <= 0:
        raise ValueError("local_memory_fraction must be > 0")
    spec = _resolve(system)
    limit = max(int(math.ceil(workload.footprint_pages * local_memory_fraction)), 8)
    config = MachineConfig(
        local_memory_pages=limit,
        fabric=fabric or FabricConfig(),
        compute_us_per_access=workload.compute_us_per_access,
        fault_plan=fault_plan,
        cluster=cluster or ClusterConfig(),
        check_invariants=check_invariants,
        telemetry=telemetry,
        memtier=memtier,
        scrub=scrub,
    )
    machine = spec.build(config)
    for process in workload.processes:
        machine.register_process(process.pid, process.cgroup)
        for start_vpn, npages, name in process.vmas:
            machine.add_vma(process.pid, start_vpn, npages, name)
    return machine


def collect(machine: Machine, system_name: str, workload_name: str) -> RunResult:
    """Snapshot a machine's counters into a RunResult."""
    result = RunResult(
        system=system_name,
        workload=workload_name,
        completion_time_us=machine.now_us,
        accesses=machine.accesses,
        mc_reads=machine.controller.reads,
        minor_faults=machine.minor_faults,
        remote_demand_reads=machine.remote_demand_reads,
        prefetch_hit_swapcache=machine.prefetch_hit_swapcache,
        prefetch_hit_inflight=machine.prefetch_hit_inflight,
        prefetch_hit_dram=machine.prefetch_hit_dram,
        prefetch_issued=machine.prefetch_issued,
        prefetch_wasted=machine.prefetch_wasted,
        issued_by_tier=dict(machine.issued_by_tier),
        hits_by_tier=dict(machine.hits_by_tier),
        breakdown=machine.breakdown,
        fabric_reads=machine.cluster.fabric_reads,
        fabric_writes=machine.cluster.fabric_writes,
        reclaim_pages=machine.reclaimer.stats.pages_reclaimed,
        peak_resident_pages=machine.peak_resident_pages,
        timeouts=machine.timeouts,
        retries=machine.retries,
        retry_latency_us=machine.retry_latency_us,
        dropped_prefetches=machine.dropped_prefetches,
        dropped_by_tier=dict(machine.dropped_by_tier),
        remote_nodes=machine.cluster.node_count,
        placement=machine.cluster.placement.name,
        replication=machine.cluster.config.replication,
        demand_failovers=machine.cluster.demand_failovers,
        writeback_reroutes=machine.cluster.writeback_reroutes,
        replica_writes=machine.cluster.replica_writes,
        node_stats=[node.stats_snapshot() for node in machine.cluster.nodes],
        pages_zero_filled=machine.pages_zero_filled,
        pages_salvaged=machine.pages_salvaged,
        directory_misses=machine.cluster.directory_misses,
        compute_us=machine.compute_us,
        mc_writes=machine.controller.writes,
        mc_bytes=machine.controller.bytes_transferred,
        reclaim_batches=machine.reclaimer.stats.batches,
        reclaim_clean_drops=machine.reclaimer.stats.clean_drops,
        reclaim_writebacks=machine.reclaimer.stats.writebacks,
        reclaim_background_us=machine.reclaimer.stats.background_us,
        swapcache_inserts=machine.swapcache.inserts,
        swapcache_hits=machine.swapcache.hits,
        swapcache_drops=machine.swapcache.drops,
    )
    if machine.health is not None:
        result.node_crashes = machine.health.node_crashes
        result.node_rejoins = machine.health.node_rejoins
    if machine.repair is not None:
        result.pages_repaired = machine.repair.pages_repaired
        result.pages_lost = machine.repair.pages_lost
        result.pages_drained = machine.repair.pages_drained
        result.repair_reads = machine.repair.repair_reads
        result.repair_writes = machine.repair.repair_writes
        result.repair_bytes = machine.repair.repair_bytes
        result.repair_retries = machine.repair.repair_retries
    if machine.sanitizer is not None:
        result.invariant_checks = machine.sanitizer.checks_run
    if machine.memtier is not None:
        result.memtier = machine.memtier.section()
    if machine.integrity is not None:
        result.integrity = machine.integrity.section()
    if machine.hopp is not None:
        plane = machine.hopp
        result.hopp_hot_pages_unresolved = plane.hot_pages_unresolved
        result.prefetch_duplicates = plane.executor.duplicates
        result.prefetch_rejected = plane.executor.rejected
        result.fabric_drop_signals = plane.executor.fabric_dropped
        if plane.executor.breaker is not None:
            result.degraded_mode_us = plane.executor.breaker.time_degraded_us(
                machine.now_us
            )
            result.breaker_opens = plane.executor.breaker.opens
            result.prefetch_suppressed = plane.executor.suppressed
        result.timeliness = plane.executor.timeliness
        result.extra.update(
            {
                "hpd_hot_page_ratio": plane.hpd.hot_page_ratio,
                "hpd_bandwidth_overhead": plane.hpd.bandwidth_overhead,
                "rpt_cache_hit_rate": plane.rpt_cache.hit_rate,
                "stt_streams_created": float(plane.stt.streams_created),
                "stt_observations": float(plane.stt.observations_out),
            }
        )
    if machine.telemetry is not None:
        result.telemetry = machine.telemetry.export(
            machine.now_us,
            node_metrics=[
                {
                    "node": node.node_id,
                    "remote": node.remote.metrics_snapshot(),
                    "fabric": node.fabric.metrics_snapshot(),
                }
                for node in machine.cluster.nodes
            ],
        )
    return result


def run(
    workload: Workload,
    system: Union[str, SystemSpec] = "hopp",
    local_memory_fraction: float = 0.5,
    fabric: Optional[FabricConfig] = None,
    fault_plan: Optional[FaultPlan] = None,
    cluster: Optional[ClusterConfig] = None,
    check_invariants: bool = False,
    trace: Optional[Iterable] = None,
    telemetry: Optional[TelemetryConfig] = None,
    memtier: Optional[MemtierConfig] = None,
    scrub: Optional[ScrubConfig] = None,
) -> RunResult:
    """Drive one workload through one system; the primary entry point.

    ``trace`` overrides the workload's generated reference stream — the
    execution engine passes a materialized trace here so a sweep
    generates each workload's stream once instead of once per point.
    ``telemetry`` arms the event bus / time-series recording; None (the
    default) is the probe-free null-object.
    Every kwarg added to this signature must also be added to
    :class:`repro.exec.spec.RunSpec`, or cached results would silently
    ignore it (tests/test_exec_cache.py audits the two)."""
    spec = _resolve(system)
    machine = make_machine(
        workload,
        spec,
        local_memory_fraction,
        fabric,
        fault_plan,
        cluster,
        check_invariants,
        telemetry,
        memtier,
        scrub,
    )
    machine.run(workload.trace() if trace is None else trace)
    # Drain queued tier migrations, then let in-flight recovery converge
    # before measuring (both no-ops unless memtier / a fault plan armed
    # them).
    machine.flush_memtier()
    machine.flush_recovery()
    return collect(machine, spec.name, workload.name)


def local_completion_time(
    workload: Workload, fabric: Optional[FabricConfig] = None
) -> float:
    """CT_local: the all-in-local-memory baseline of Section VI-A."""
    result = run(workload, "noprefetch", LOCAL_FRACTION, fabric)
    return result.completion_time_us


@dataclass
class Comparison:
    """Results of one workload across systems, with the local baseline."""

    workload: str
    ct_local_us: float
    results: Dict[str, RunResult] = field(default_factory=dict)

    def normalized_performance(self, system: str) -> float:
        return self.results[system].normalized_performance(self.ct_local_us)

    def speedup(self, system: str, baseline: str = "fastswap") -> float:
        return self.results[system].speedup_vs(self.results[baseline])


def compare(
    workload: Workload,
    system_names: Iterable[str],
    local_memory_fraction: float = 0.5,
    fabric: Optional[FabricConfig] = None,
    fault_plan: Optional[FaultPlan] = None,
    cluster: Optional[ClusterConfig] = None,
    check_invariants: bool = False,
) -> Comparison:
    """Run one workload under several systems on identical traces.

    ``fault_plan`` and ``cluster`` apply to the systems under test,
    never to the CT_local reference (degraded or distributed hardware is
    the condition being measured, not the yardstick)."""
    comparison = Comparison(
        workload=workload.name,
        ct_local_us=local_completion_time(workload, fabric),
    )
    for name in system_names:
        comparison.results[name] = run(
            workload,
            name,
            local_memory_fraction,
            fabric,
            fault_plan,
            cluster,
            check_invariants,
        )
    return comparison
