"""The compute-node machine model: ties the cache/MC substrate, the
kernel VMS, the RDMA fabric, a fault-time prefetcher (the baselines) and
optionally the HoPP data plane into one trace-driven simulator.

The input is the LLC-miss reference stream (cacheline-granular virtual
addresses per PID).  Virtual time advances only by critical-path costs;
reclaim and prefetch transfers proceed asynchronously, interacting with
the application through the shared fabric queue and the LRU lists.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.baselines.base import FaultTimePrefetcher
from repro.cluster.cluster import (
    ClusterConfig,
    ClusterNode,
    PageLostError,
    RemoteMemoryCluster,
)
from repro.cluster.health import (
    EVENT_DOWN,
    EVENT_REJOIN,
    HealthConfig,
    HealthEvent,
    HealthMonitor,
)
from repro.cluster.repair import RepairConfig, RepairEngine
from repro.common.constants import (
    BLOCK_SHIFT,
    BLOCK_SIZE,
    PAGE_SHIFT,
    T_CONTEXT_SWITCH_US,
    T_DRAM_HIT_US,
    T_PREFETCH_HIT_US,
    T_PREFETCH_ISSUE_US,
    T_PTE_SET_US,
    T_PTE_WALK_US,
    T_RECLAIM_CRITICAL_RESIDUE_US,
    T_SWAPCACHE_OP_US,
)
from repro.common.types import FaultBreakdown
from repro.hopp.system import HoppDataPlane
from repro.integrity import (
    IntegrityController,
    PageCorruptError,
    PatrolScrubber,
    ScrubConfig,
)
from repro.kernel.cgroup import CgroupManager, CgroupOverLimitError, MemoryCgroup
from repro.kernel.frames import FrameAllocator
from repro.kernel.page_table import PageTable, Pte, PteState
from repro.kernel.reclaim import LruPageList, Reclaimer
from repro.kernel.swap import SwapCache, SwapSpace
from repro.kernel.vma import VmaRegistry
from repro.memsim.controller import MemoryController
from repro.memtier import MemtierConfig, MigrationEngine, derive_node_tiers
from repro.net.faults import (
    FaultInjector,
    FaultPlan,
    RemoteFetchFatalError,
    RemoteUnavailableError,
    TransferTimeout,
)
from repro.net.rdma import FabricConfig, RdmaFabric
from repro.net.remote import RemoteMemoryNode
from repro.sim import batchkernel
from repro.sim.sanitizer import InvariantSanitizer
from repro.telemetry import Telemetry, TelemetryConfig
from repro.telemetry.events import (
    EV_CACHE_INVALIDATE,
    EV_DEMAND_FAULT,
    EV_PREFETCH_DROP,
    EV_PREFETCH_HIT,
    EV_PREFETCH_ISSUE,
    EV_PREFETCH_LAND,
    EV_PREFETCH_UNUSED,
    EV_RETRY,
)

PAGE_OFFSET_MASK = (1 << PAGE_SHIFT) - 1


@dataclass
class MachineConfig:
    """Compute-node parameters.

    ``local_memory_pages`` is the default cgroup limit (the paper's
    "local memory is set to X% of the workload footprint").
    """

    local_memory_pages: int
    remote_capacity_pages: int = 1 << 22
    fabric: FabricConfig = field(default_factory=FabricConfig)
    reclaim_batch: int = 32
    watermark_slack: int = 16
    minor_fault_cost_us: float = 1.9
    #: Charge prefetched pages to the application's cgroup.  HoPP does;
    #: Fastswap and Leap do not (Section I).
    charge_prefetch: bool = True
    mc_channels: int = 1
    #: Application compute time per LLC-miss access (us), taken from the
    #: workload; it sets how much memory latency overlaps with work.
    compute_us_per_access: float = 0.0
    #: Fault-injection schedule; None (or an empty plan) leaves the
    #: remote-memory path byte-identical to the unhooked simulator.
    fault_plan: Optional[FaultPlan] = None
    #: Retry budget for synchronous transfers (demand reads, reclaim
    #: writebacks).  Prefetch reads are never retried — they are dropped.
    demand_retry_limit: int = 8
    #: Exponential backoff between retries: base * multiplier ** attempt.
    retry_backoff_us: float = 25.0
    retry_backoff_multiplier: float = 2.0
    #: Remote-pool topology.  The default (one node, interleave, no
    #: replication) is byte-identical to the pre-cluster single-node
    #: path; ``remote_capacity_pages`` is split evenly across nodes.
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    #: Health-monitor detection knobs (only used when recovery is armed,
    #: i.e. when ``fault_plan`` is not None — an *empty* plan arms the
    #: monitor and drain machinery without injecting any fault).
    health: HealthConfig = field(default_factory=HealthConfig)
    #: Repair-traffic shaping for background re-replication.
    repair: RepairConfig = field(default_factory=RepairConfig)
    #: Run the cross-layer invariant sanitizer at epoch boundaries and
    #: after every recovery event.  Opt-in: each sweep walks every PTE.
    check_invariants: bool = False
    #: Accesses between sanitizer sweeps when ``check_invariants`` is on.
    sanitizer_interval_accesses: int = 2000
    #: Telemetry recording; None (the default) is the null-object — no
    #: event bus exists, every probe site is one ``is not None`` check
    #: on the cold path, and run output stays byte-identical.
    telemetry: Optional[TelemetryConfig] = None
    #: Refuse prefetch charges that would cross the cgroup limit
    #: (``charge(strict=True)``) instead of charging over the limit and
    #: reclaiming later.  The scenario engine's multi-tenant isolation
    #: mode: one tenant's prefetch burst cannot burst its budget.
    strict_cgroup_prefetch: bool = False
    #: Absorb :class:`RemoteFetchFatalError` instead of propagating it:
    #: a demand fault whose retry budget is exhausted resolves with a
    #: zero-filled frame, and a reclaim writeback that cannot complete
    #: abandons the eviction and keeps the page resident.  This is the
    #: scenario engine's never-crash guarantee — availability over
    #: consistency, every absorption counted.
    absorb_fatal_faults: bool = False
    #: Memory-tier pool (pooled CXL nodes + hotness-driven migration,
    #: :mod:`repro.memtier`).  None (the default) builds no engine and
    #: keeps every run byte-identical to the untiered simulator.  When
    #: set and ``cluster.node_tiers`` is unset, ``pool_nodes`` pooled
    #: nodes are added in front of the configured (far) nodes and an
    #: ``interleave`` placement upgrades to ``tiered``.
    memtier: Optional[MemtierConfig] = None
    #: Patrol scrubber (:mod:`repro.integrity`): background checksum
    #: audits riding the repair engine's rate limiter.  None (the
    #: default) builds no scrubber and keeps every run byte-identical.
    #: Arming it without a fault plan upgrades to an *empty* plan so the
    #: recovery machinery (whose pump carries the scrubber) exists.
    scrub: Optional[ScrubConfig] = None


class Machine:
    """One compute node plus its remote memory pool."""

    def __init__(
        self,
        config: MachineConfig,
        fault_prefetcher: Optional[FaultTimePrefetcher] = None,
        hopp: Optional[HoppDataPlane] = None,
    ) -> None:
        self.config = config
        self.fault_prefetcher = fault_prefetcher
        self.hopp = hopp
        self.now_us = 0.0

        plan = config.fault_plan
        if plan is None and config.scrub is not None:
            # The scrubber rides the repair engine's pump, so arming it
            # arms the recovery machinery too — with an *empty* plan,
            # which injects nothing and leaves node injectors unarmed.
            plan = FaultPlan.none()
        cluster_config = config.cluster
        if config.memtier is not None and cluster_config.node_tiers is None:
            # Tiering armed on an untiered topology: put the pooled CXL
            # nodes in front of the configured (far) nodes, and let a
            # default interleave placement upgrade to the tier-aware
            # policy (an explicitly chosen placement is respected).
            cluster_config = replace(
                cluster_config,
                nodes=cluster_config.nodes + config.memtier.pool_nodes,
                node_tiers=derive_node_tiers(
                    cluster_config.nodes, config.memtier.pool_nodes
                ),
                placement=(
                    "tiered"
                    if cluster_config.placement == "interleave"
                    else cluster_config.placement
                ),
            )
        self.cluster = RemoteMemoryCluster(
            cluster_config,
            config.remote_capacity_pages,
            config.fabric,
            fault_plan=plan,
            memtier=config.memtier,
        )
        #: Node 0's injector doubles as the "is fault injection armed"
        #: flag: every node arms iff the plan is non-empty, and on the
        #: default 1-node cluster this is exactly the old single
        #: injector (same plan, same seed).
        self.faults: Optional[FaultInjector] = self.cluster.nodes[0].injector
        self.frames = FrameAllocator(total_frames=1 << 24)
        self.swap_space = SwapSpace()
        self.swapcache = SwapCache()
        #: Recovery is armed iff a fault plan was given at all — an
        #: *empty* plan arms the monitor/repair/drain machinery without
        #: injecting faults; ``fault_plan=None`` leaves ``health`` unset
        #: and every pre-recovery code path byte-identical.
        self.health: Optional[HealthMonitor] = None
        self.repair: Optional[RepairEngine] = None
        if plan is not None:
            self.health = HealthMonitor(self.cluster, config.health)
            self.cluster.health = self.health
            self.repair = RepairEngine(
                self.cluster, self.health, self.swap_space, config.repair
            )
        #: Memory-tier migration engine; armed only with a memtier
        #: config, and pumped only from remote-event paths so the
        #: resident-hit fast path never sees it.
        self.memtier: Optional[MigrationEngine] = None
        if config.memtier is not None:
            self.memtier = MigrationEngine(
                self.cluster, self.swap_space, config.memtier
            )
            self.cluster.memtier_hot = self.memtier.is_hot
        #: End-to-end integrity (repro.integrity): armed when the plan
        #: can corrupt pages or a patrol scrubber is configured.  None
        #: otherwise — every verify site is one ``is not None`` check
        #: and corruption-free runs stay byte-identical.
        self.integrity: Optional[IntegrityController] = None
        self.scrubber: Optional[PatrolScrubber] = None
        if (plan is not None and plan.has_corruption) or config.scrub is not None:
            self.integrity = IntegrityController(self.cluster, self.swap_space)
            self.integrity.memtier = self.memtier
            if self.memtier is not None:
                self.memtier.integrity = self.integrity
            if config.scrub is not None:
                self.scrubber = PatrolScrubber(
                    self.cluster, self.integrity, config.scrub
                )
                self.repair.scrubber = self.scrubber
        #: Telemetry, armed only on request.  Probes are observers: they
        #: never touch RNG state or simulator bookkeeping, so an
        #: instrumented run produces the same RunResult counters as an
        #: uninstrumented one (pinned by tests/test_telemetry.py).
        self.telemetry: Optional[Telemetry] = None
        if config.telemetry is not None:
            self.telemetry = Telemetry(config.telemetry)
            bus = self.telemetry.bus
            for node in self.cluster.nodes:
                node.fabric.probe = bus.probe(node=node.node_id)
            if self.health is not None:
                self.health.bus = bus
            if self.repair is not None:
                self.repair.bus = bus
            if self.memtier is not None:
                self.memtier.bus = bus
            if self.integrity is not None:
                self.integrity.bus = bus
        self.sanitizer: Optional[InvariantSanitizer] = (
            InvariantSanitizer(self) if config.check_invariants else None
        )
        self._sanitize_after_recovery = False
        self.cgroups = CgroupManager()
        self.reclaimer = Reclaimer(config.reclaim_batch, config.watermark_slack)
        self.vmas = VmaRegistry()
        self.controller = MemoryController(channels=config.mc_channels)

        self._page_tables: Dict[int, PageTable] = {}
        self._cgroup_of: Dict[int, MemoryCgroup] = {}
        self._lru_of: Dict[str, LruPageList] = {}
        #: Physical pages resident per cgroup, *including* uncharged
        #: prefetch pages and in-flight fetches: the cgroup's limit
        #: bounds the DRAM the app's pages can occupy regardless of the
        #: accounting policy (frames are physical either way).
        self._resident: Dict[str, int] = {}
        #: Invariant: sum(self._resident.values()) — maintained at every
        #: mutation site so _note_peak is O(1) on the prefetch/fault paths.
        self._resident_total = 0
        #: Pending prefetch arrivals: (arrival_us, seq, pid, vpn).
        self._arrivals: List[Tuple[float, int, int, int]] = []
        self._arrival_seq = 0
        #: Scenario admission gate: a callable ``(pid, tier, now_us) ->
        #: bool`` consulted before any prefetch issues; None (default)
        #: admits everything with a single ``is not None`` check.
        self.prefetch_admission = None
        #: PIDs whose demand reads ride the bulk QP instead of the
        #: priority lane — the degradation ladder's deepest rung: a
        #: degraded best-effort tenant queues behind prefetch traffic.
        self.deprioritized_pids: set = set()

        # Counters surfaced to RunResult.
        self.accesses = 0
        self.minor_faults = 0
        self.remote_demand_reads = 0
        self.prefetch_issued = 0
        self.prefetch_wasted = 0
        self.prefetch_hit_swapcache = 0
        self.prefetch_hit_inflight = 0
        self.prefetch_hit_dram = 0
        self.issued_by_tier: Dict[str, int] = {}
        self.hits_by_tier: Dict[str, int] = {}
        self.breakdown = FaultBreakdown()
        self.peak_resident_pages = 0
        self.compute_us = 0.0
        # Fault-injection counters (all exactly 0 without a fault plan).
        self.timeouts = 0
        self.retries = 0
        self.retry_latency_us = 0.0
        self.dropped_prefetches = 0
        self.dropped_by_tier: Dict[str, int] = {}
        # Recovery counters (all exactly 0 without node crashes/drains).
        #: Demand faults on a page whose every replica died: resolved by
        #: mapping a zero-filled frame (the data is gone).
        self.pages_zero_filled = 0
        #: Swapcache pages whose remote copy was lost but whose local
        #: copy survived: re-written back instead of clean-dropped.
        self.pages_salvaged = 0
        # Overload-shedding counters (all exactly 0 unless a scenario
        # engine installs its hooks or enables the strict/absorb modes).
        #: Prefetches refused by the admission gate (load shedding).
        self.prefetch_throttled = 0
        #: Prefetches refused because the strict cgroup charge would
        #: cross the tenant's budget.
        self.prefetch_overlimit_rejects = 0
        #: Demand faults resolved with a zero-filled frame after the
        #: retry budget died (``absorb_fatal_faults``).
        self.fatal_faults_absorbed = 0
        #: Evictions abandoned because the writeback could not complete;
        #: the page stayed resident (``absorb_fatal_faults``).
        self.writebacks_abandoned = 0

        if hopp is not None:
            self.controller.add_tap(hopp.on_mc_access)

    @property
    def fabric(self) -> RdmaFabric:
        """Node 0's link — *the* link on a single-node cluster."""
        return self.cluster.nodes[0].fabric

    @property
    def remote(self) -> RemoteMemoryNode:
        """Node 0's memory — *the* node on a single-node cluster."""
        return self.cluster.nodes[0].remote

    # -- process setup -------------------------------------------------------------

    def register_process(
        self,
        pid: int,
        cgroup_name: Optional[str] = None,
        limit_pages: Optional[int] = None,
    ) -> PageTable:
        """Create the process's page table and attach it to a cgroup
        (shared 'default' group unless named)."""
        if pid in self._page_tables:
            raise ValueError(f"pid {pid} already registered")
        name = cgroup_name or "default"
        if name not in self._lru_of:
            self.cgroups.create(
                name,
                limit_pages if limit_pages is not None else self.config.local_memory_pages,
                charge_prefetch=self.config.charge_prefetch,
            )
            self._lru_of[name] = LruPageList()
            self._resident[name] = 0
        table = PageTable(pid)
        self._page_tables[pid] = table
        self._cgroup_of[pid] = self.cgroups.get(name)
        if self.hopp is not None:
            self.hopp.maintainer.attach(table)
        return table

    def add_vma(self, pid: int, start_vpn: int, npages: int, name: str = "") -> None:
        self.vmas.for_pid(pid).add(start_vpn, npages, name)

    def page_table(self, pid: int) -> PageTable:
        return self._page_tables[pid]

    def resident_pages(self, cgroup: Optional[str] = None) -> int:
        """Physical pages resident for ``cgroup`` (including uncharged
        prefetch pages and in-flight fetches), or across every cgroup
        when called without an argument."""
        if cgroup is None:
            return self._resident_total
        return self._resident[cgroup]

    # -- main entry: one LLC-miss reference -------------------------------------------

    def access(self, pid: int, vaddr: int, is_write: bool = False) -> float:
        """Drive one cacheline reference through the VM stack; returns
        the critical-path cost charged to the application."""
        self.accesses += 1
        if self._arrivals and self._arrivals[0][0] <= self.now_us:
            self._process_arrivals(self.now_us)
        if self.health is not None:
            self._apply_health_events(self.health.tick(self.now_us))
            self.repair.pump(self.now_us)
        if self.sanitizer is not None and (
            self._sanitize_after_recovery
            or self.accesses % self.config.sanitizer_interval_accesses == 0
        ):
            self._sanitize_after_recovery = False
            self.sanitizer.check()

        vpn = vaddr >> PAGE_SHIFT
        table = self._page_tables[pid]
        pte = table.entry(vpn)
        state = pte.state

        if state == PteState.PRESENT:
            cost = T_DRAM_HIT_US
            self.breakdown.dram_hit_us += cost
            self._lru_of_pid(pid).touch(pid, vpn)
            if pte.prefetched:
                self._count_prefetch_hit(pid, vpn, pte, "dram")
        elif state == PteState.UNTOUCHED:
            cost = self._minor_fault(pid, vpn, table, pte)
        elif state == PteState.SWAPCACHE:
            cost = self._swapcache_hit(pid, vpn, table, pte)
        elif state == PteState.INFLIGHT:
            cost = self._inflight_hit(pid, vpn, table, pte)
        else:  # PteState.REMOTE
            cost = self._major_fault(pid, vpn, table, pte)

        cost += self.config.compute_us_per_access
        self.compute_us += self.config.compute_us_per_access
        self.now_us += cost
        # The resolved access reaches DRAM through the MC (the HoPP tap).
        paddr = (pte.ppn << PAGE_SHIFT) | (vaddr & PAGE_OFFSET_MASK)
        self.controller.access(self.now_us, paddr, is_write)
        return cost

    def run(
        self,
        trace,
        progress_every: int = 0,
        use_fast_path: bool = True,
        kernel: Optional[str] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        """Drive a whole (pid, vaddr) or (pid, vaddr, is_write) trace.

        Resident hits bypass the full fault machinery of :meth:`access`:
        by default through the chunked batch kernel
        (:mod:`repro.sim.batchkernel`), which scans ahead to the next
        barrier (due arrival, residency miss, HPD extraction, chunk
        edge) and retires whole same-page runs with O(1) bookkeeping;
        ``kernel="legacy"`` selects the PR-4 per-access loops instead
        (kept as the bench's pre-batching comparator and as the
        fallback for tap wirings the batch kernel does not understand).
        Every fast path repeats :meth:`access`'s arithmetic
        operation-for-operation (same values, same order of float
        additions), so every counter and timestamp stays byte-identical
        to the slow path — pinned by tests/test_fastpath.py.
        ``use_fast_path=False`` forces every reference through
        :meth:`access` (the differential oracle).  ``chunk_size``
        overrides the batch kernel's scan-ahead window (testing knob).
        """
        if (
            not use_fast_path
            or self.health is not None
            or self.sanitizer is not None
        ):
            # Armed recovery or an armed sanitizer needs the per-access
            # epoch work in access(); no shortcut is sound.
            access = self.access
            for item in trace:
                if len(item) == 3:
                    access(item[0], item[1], item[2])
                else:
                    access(item[0], item[1])
            return
        # Taps register at machine assembly (HoPP data plane, tracers),
        # never mid-run; pick the loop specialized for the wiring.
        batch = kernel != "legacy"
        if self.controller._taps:
            if batch and batchkernel.supports_batch_taps(self):
                batchkernel.BatchKernel(self, self.hopp, chunk_size).run(trace)
            else:
                self._run_fast_tapped(trace, self.controller._taps)
        else:
            if batch:
                batchkernel.BatchKernel(self, None, chunk_size).run(trace)
            else:
                self._run_fast_untapped(trace)

    def _fast_bindings(self):
        """Loop-stable locals shared by both fast-path loops."""
        #: pid -> (page-table entry dict, cgroup LRU); cgroup membership
        #: is fixed after register_process, so the binding is loop-stable.
        hot: Dict[int, tuple] = {}
        return (
            self.access,
            self.config.compute_us_per_access,
            self._arrivals,
            self._page_tables,
            PteState.PRESENT,
            hot,
        )

    def _run_fast_tapped(self, trace, taps) -> None:
        """Fast-path loop for machines with MC taps (HoPP, tracers).

        Machine state (``now_us``, ``accesses``) is written back before
        every tap call: taps re-enter the machine (the HoPP executor
        issues prefetches from inside the tap), so it must always be
        current.  Only the MC's own counters are batched — no tap reads
        them mid-run.
        """
        access, compute, arrivals, tables, present, hot = self._fast_bindings()
        breakdown = self.breakdown
        controller = self.controller
        mc_reads = 0
        mc_writes = 0
        for item in trace:
            if len(item) == 3:
                pid, vaddr, is_write = item
            else:
                pid, vaddr = item
                is_write = False
            if not arrivals or arrivals[0][0] > self.now_us:
                cached = hot.get(pid)
                if cached is None:
                    cached = hot[pid] = (
                        tables[pid]._entries,
                        self._lru_of_pid(pid),
                    )
                vpn = vaddr >> PAGE_SHIFT
                pte = cached[0].get(vpn)
                if pte is not None and pte.state is present and not pte.prefetched:
                    self.accesses += 1
                    cost = T_DRAM_HIT_US
                    breakdown.dram_hit_us += cost
                    cached[1].touch(pid, vpn)
                    cost += compute
                    self.compute_us += compute
                    now = self.now_us + cost
                    self.now_us = now
                    if is_write:
                        mc_writes += 1
                    else:
                        mc_reads += 1
                    paddr = (pte.ppn << PAGE_SHIFT) | (vaddr & PAGE_OFFSET_MASK)
                    for tap in taps:
                        tap(now, paddr, is_write)
                    continue
            access(pid, vaddr, is_write)
        controller.reads += mc_reads
        controller.writes += mc_writes
        controller.bytes_transferred += (mc_reads + mc_writes) * BLOCK_SIZE

    def _run_fast_untapped(self, trace) -> None:
        """Fast-path loop for tap-free machines (the baselines).

        With no tap there is no re-entry, so the hot counters live in
        locals for the whole run and are flushed around every slow-path
        excursion.  Each flush/reload preserves the exact sequence of
        float additions — only where the intermediate sums are stored
        changes, never their values.
        """
        access, compute, arrivals, tables, present, hot = self._fast_bindings()
        breakdown = self.breakdown
        controller = self.controller
        now = self.now_us
        accesses = self.accesses
        compute_us = self.compute_us
        dram_us = breakdown.dram_hit_us
        mc_reads = 0
        mc_writes = 0
        for item in trace:
            if len(item) == 3:
                pid, vaddr, is_write = item
            else:
                pid, vaddr = item
                is_write = False
            if not arrivals or arrivals[0][0] > now:
                cached = hot.get(pid)
                if cached is None:
                    cached = hot[pid] = (
                        tables[pid]._entries,
                        self._lru_of_pid(pid),
                    )
                pte = cached[0].get(vaddr >> PAGE_SHIFT)
                if pte is not None and pte.state is present and not pte.prefetched:
                    accesses += 1
                    cost = T_DRAM_HIT_US
                    dram_us += cost
                    cached[1].touch(pid, vaddr >> PAGE_SHIFT)
                    cost += compute
                    compute_us += compute
                    now += cost
                    if is_write:
                        mc_writes += 1
                    else:
                        mc_reads += 1
                    continue
            self.now_us = now
            self.accesses = accesses
            self.compute_us = compute_us
            breakdown.dram_hit_us = dram_us
            access(pid, vaddr, is_write)
            now = self.now_us
            accesses = self.accesses
            compute_us = self.compute_us
            dram_us = breakdown.dram_hit_us
        self.now_us = now
        self.accesses = accesses
        self.compute_us = compute_us
        breakdown.dram_hit_us = dram_us
        controller.reads += mc_reads
        controller.writes += mc_writes
        controller.bytes_transferred += (mc_reads + mc_writes) * BLOCK_SIZE

    # -- fault paths -----------------------------------------------------------------

    def _minor_fault(self, pid: int, vpn: int, table: PageTable, pte: Pte) -> float:
        """First touch: allocate a zero page locally."""
        self.minor_faults += 1
        self._ensure_headroom(pid)
        cgroup = self._cgroup_of[pid]
        cgroup.charge(1)
        self._resident[cgroup.name] += 1
        self._resident_total += 1
        self._note_peak()
        ppn = self.frames.allocate(pid, vpn)
        table.map_page(vpn, ppn)
        self._lru_of_pid(pid).insert(pid, vpn)
        return self.config.minor_fault_cost_us

    def _swapcache_hit(self, pid: int, vpn: int, table: PageTable, pte: Pte) -> float:
        """Prefetch-hit: the page is local but unmapped (Section II-C)."""
        self.swapcache.take(pid, vpn)
        self._count_prefetch_hit(pid, vpn, pte, "swapcache")
        table.map_page(vpn, pte.ppn)
        self._release_remote_copy(pid, vpn)
        self._lru_of_pid(pid).touch(pid, vpn)
        cost = T_PREFETCH_HIT_US
        self.breakdown.prefetch_hit_us += cost
        return cost

    def _inflight_hit(self, pid: int, vpn: int, table: PageTable, pte: Pte) -> float:
        """The app faulted on a page whose prefetch is still in flight:
        block until arrival, then map."""
        wait = max(pte.arrival_us - self.now_us, 0.0)
        self.breakdown.inflight_wait_us += wait
        self._process_arrivals(self.now_us + wait)
        # The arrival handler moved the page to SWAPCACHE or PRESENT.
        if pte.state == PteState.SWAPCACHE:
            self.swapcache.take(pid, vpn)
            table.map_page(vpn, pte.ppn)
            self._release_remote_copy(pid, vpn)
        self._count_prefetch_hit(pid, vpn, pte, "inflight")
        self._lru_of_pid(pid).touch(pid, vpn)
        cost = wait + T_PREFETCH_HIT_US
        self.breakdown.prefetch_hit_us += T_PREFETCH_HIT_US
        return cost

    def _major_fault(self, pid: int, vpn: int, table: PageTable, pte: Pte) -> float:
        """Demand swap-in over RDMA — the costly synchronous path."""
        self.remote_demand_reads += 1
        self._ensure_headroom(pid)
        cgroup = self._cgroup_of[pid]
        cgroup.charge(1)
        self._resident[cgroup.name] += 1
        self._resident_total += 1
        self._note_peak()
        ppn = self.frames.allocate(pid, vpn)
        pte.ppn = ppn
        slot = pte.swap_slot
        zero_filled = False
        if self._slot_is_lost(slot):
            # Every replica died with its node: nothing to fetch.  Map a
            # zero-filled frame and carry on — the disaggregated-memory
            # analogue of an uncorrectable machine check.
            rdma_wait = 0.0
            self.pages_zero_filled += 1
            zero_filled = True
        elif self._slot_is_poisoned(slot):
            # Every copy is known-bad (CXL poison): serving it would
            # return garbage, so the read resolves like a machine-check
            # — a zero-filled frame, counted separately from loss.
            rdma_wait = 0.0
            self.integrity.poisoned_reads += 1
            self.pages_zero_filled += 1
            zero_filled = True
        elif self.faults is None:
            node = self.cluster.primary_node(slot)
            completion = node.fabric.read_page(
                self.now_us, priority=pid not in self.deprioritized_pids
            )
            rdma_wait = completion - self.now_us
            if self.memtier is not None:
                self.memtier.note_demand_read(node, pid, vpn, self.now_us)
        else:
            try:
                rdma_wait = self._demand_fetch_resilient(pid, vpn, slot)
            except PageLostError as gone:
                # The loss was discovered by this very fault's retries:
                # the detection latency is paid, then zero-fill.
                rdma_wait = gone.waited_us
                self.pages_zero_filled += 1
                zero_filled = True
            except PageCorruptError as rotten:
                # This very fault discovered that no clean copy exists:
                # the slot was just poisoned, the verify latency is
                # paid, then zero-fill.
                rdma_wait = rotten.waited_us
                self.integrity.poisoned_reads += 1
                self.pages_zero_filled += 1
                zero_filled = True
            except RemoteFetchFatalError as fatal:
                if not self.config.absorb_fatal_faults:
                    raise
                # Availability over consistency: the retry budget is
                # spent, so resolve the fault with a zero-filled frame
                # rather than crash the tenant.  The (possibly live)
                # remote copy is released below with the slot.
                rdma_wait = fatal.waited_us
                self.fatal_faults_absorbed += 1
                zero_filled = True
        table.map_page(vpn, ppn)
        self._release_remote_copy(pid, vpn, slot)
        self._lru_of_pid(pid).insert(pid, vpn)
        cost = (
            T_CONTEXT_SWITCH_US
            + T_PTE_WALK_US
            + T_SWAPCACHE_OP_US
            + rdma_wait
            + T_PTE_SET_US
            + T_RECLAIM_CRITICAL_RESIDUE_US
        )
        self.breakdown.remote_fault_us += cost
        if self.fault_prefetcher is not None:
            fault_time = self.now_us + cost
            targets = self.fault_prefetcher.on_fault(
                pid, vpn, slot, fault_time, self
            )
            inject = self.fault_prefetcher.inject_pte
            tier = self.fault_prefetcher.name
            issued = 0
            for target_pid, target_vpn in targets:
                if (
                    self.prefetch_page(target_pid, target_vpn, fault_time, inject, tier)
                    is not None
                ):
                    issued += 1
            # Posting prefetch reads from the fault handler is critical-
            # path work (Section II-A step 3 repeats per window page).
            issue_cost = issued * T_PREFETCH_ISSUE_US
            cost += issue_cost
            self.breakdown.remote_fault_us += issue_cost
        if self.telemetry is not None:
            self.telemetry.bus.emit(
                EV_DEMAND_FAULT,
                self.now_us,
                pid=pid,
                vpn=vpn,
                wait_us=rdma_wait,
                cost_us=cost,
                zero_filled=zero_filled,
            )
        if self.memtier is not None:
            self.memtier.pump(self.now_us)
        return cost

    def _demand_fetch_resilient(self, pid: int, vpn: int, slot: int) -> float:
        """Demand READ with bounded exponential-backoff retries.

        Each dropped completion costs its CQE-timeout wait plus a
        growing backoff; the retry re-issues at the advanced time, which
        is what lets it escape link-down and restart windows.  Returns
        the total wait charged to the fault (retries + final transfer +
        any remote stall); raises ``RemoteFetchFatalError`` once the
        budget is exhausted.

        With integrity armed, every completed read is verified: a
        transient wire flip re-reads the same node (detected and
        repaired on the spot); a stored-corrupt copy fails over to the
        next replica, and when every replica is corrupt the slot is
        poisoned and ``PageCorruptError`` raised.  A clean read that
        followed corrupt copies repairs them all — the fault's release
        of the slot discards every bad replica.
        """
        waited = 0.0
        attempts = 0
        flips = 0
        candidates = (
            self.cluster.read_candidates(slot)
            if slot is not None and slot >= 0
            else [self.cluster.nodes[0]]
        )
        target = 0
        prio = pid not in self.deprioritized_pids
        integrity = self.integrity
        bad: set = set()
        while True:
            node = candidates[target % len(candidates)]
            if bad and node.node_id in bad and len(bad) < len(candidates):
                # Known-corrupt holder; an unexamined replica remains.
                target += 1
                continue
            t = self.now_us + waited
            try:
                completion = node.fabric.read_page(t, priority=prio)
                if slot is not None and slot >= 0:
                    node.remote.read(slot, now_us=t)
                stall = node.injector.remote_delay_us(t)
                if (
                    integrity is not None
                    and slot is not None
                    and slot >= 0
                    and node.injector is not None
                ):
                    checksums = node.remote.checksums
                    if not checksums.is_clean(slot, t):
                        # Stored copy is bad: the transfer is paid, the
                        # mismatch detected, and the fault fails over.
                        integrity.note_detected(
                            t, slot, node.node_id,
                            since=checksums.corrupt_since(slot),
                            source="demand",
                        )
                        bad.add(node.node_id)
                        waited += (completion - t) + stall
                        if len(bad) >= len(candidates):
                            # Every replica is corrupt: CXL poison.
                            integrity.poison(slot, t, condemned=len(bad))
                            raise PageCorruptError(
                                pid, vpn, slot, waited_us=waited
                            )
                        target += 1
                        continue
                    if node.injector.corrupt_read(t):
                        # Transient flip on the wire: the stored copy is
                        # fine, so the re-read (same node) repairs it.
                        integrity.note_detected(
                            t, slot, node.node_id, source="demand"
                        )
                        integrity.note_repaired(1, t, slot, node.node_id)
                        if flips <= self.config.demand_retry_limit:
                            flips += 1
                            waited += (completion - t) + stall
                            continue
                if self.health is not None:
                    self.health.observe_success(node.node_id, t)
                if self.memtier is not None:
                    self.memtier.note_demand_read(node, pid, vpn, t)
                if bad and integrity is not None:
                    # A clean copy served the page; the corrupt replicas
                    # die with the slot's release, so they count repaired.
                    integrity.note_repaired(len(bad), t, slot, node.node_id)
                    bad.clear()
                return waited + (completion - t) + stall
            except TransferTimeout as fault:
                self.timeouts += 1
                attempts += 1
                if self.hopp is not None:
                    self.hopp.on_fabric_timeout(t)
                if self.health is not None:
                    self._apply_health_events(
                        self.health.observe_timeout(node.node_id, t)
                    )
                    if slot is not None and slot >= 0 and self.cluster.is_lost(slot):
                        # The timeout just exposed a permanent crash and
                        # this slot had no surviving replica.
                        if bad and integrity is not None:
                            integrity.note_unresolved(len(bad))
                        raise PageLostError(
                            pid, vpn, slot, waited_us=waited + fault.wasted_us
                        ) from fault
                if attempts > self.config.demand_retry_limit:
                    if bad and integrity is not None:
                        integrity.note_unresolved(len(bad))
                    raise RemoteFetchFatalError(
                        pid, vpn, attempts,
                        waited_us=waited + fault.wasted_us,
                    ) from fault
                self.retries += 1
                if self.telemetry is not None:
                    self.telemetry.bus.emit(
                        EV_RETRY, t, op="demand", node=node.node_id
                    )
                if (
                    isinstance(fault, RemoteUnavailableError)
                    and len(candidates) > 1
                ):
                    # The node is restarting and a replica holds the
                    # page one link over: fail over immediately.  The
                    # detection timeout is paid, the backoff is not —
                    # the retry goes straight out on a live QP.
                    target += 1
                    self.cluster.demand_failovers += 1
                    waited += fault.wasted_us
                    self.retry_latency_us += fault.wasted_us
                    continue
                backoff = self.config.retry_backoff_us * (
                    self.config.retry_backoff_multiplier ** (attempts - 1)
                )
                waited += fault.wasted_us + backoff
                self.retry_latency_us += fault.wasted_us + backoff

    # -- the prefetch backend (HoPP executor + fault-time baselines) ------------------

    def prefetch_page(
        self, pid: int, vpn: int, now_us: float, inject_pte: bool, tier: str
    ):
        """Fetch (pid, vpn) from remote asynchronously.  Returns the
        arrival time, or None when there is nothing remote to fetch
        (already local/in flight, never touched, or unknown PID)."""
        table = self._page_tables.get(pid)
        if table is None or vpn < 0:
            return None
        pte = table.entry(vpn)
        if pte.state != PteState.REMOTE:
            return None
        if self._slot_is_lost(pte.swap_slot) or self._slot_is_poisoned(
            pte.swap_slot
        ):
            # Every replica died (or is known-bad); nothing worth
            # fetching — the demand path will zero-fill on first touch.
            return None
        if self.prefetch_admission is not None and not self.prefetch_admission(
            pid, tier, now_us
        ):
            self.prefetch_throttled += 1
            return None
        cgroup = self._cgroup_of[pid]
        if self.config.strict_cgroup_prefetch and cgroup.charge_prefetch:
            # Strict mode: a prefetch must fit the budget's *existing*
            # headroom — it never reclaims resident pages to make room
            # for itself.  Refuse before any fabric traffic.
            try:
                cgroup.charge(1, prefetch=True, strict=True)
            except CgroupOverLimitError:
                self.prefetch_overlimit_rejects += 1
                return None
        else:
            self._ensure_headroom(pid)
            cgroup.charge(1, prefetch=True)
        self._resident[cgroup.name] += 1
        self._resident_total += 1
        pte.ppn = self.frames.allocate(pid, vpn)
        node = self._node_for_page(pte)
        try:
            completion = node.fabric.read_page(now_us)
            if self.faults is not None:
                if pte.swap_slot is not None and pte.swap_slot >= 0:
                    node.remote.read(pte.swap_slot, now_us=now_us)
                completion += node.injector.remote_delay_us(now_us)
        except TransferTimeout:
            # Prefetches are speculative: never retried, dropped with
            # full bookkeeping cleanup so every counter still conserves.
            self.frames.free(pte.ppn)
            pte.ppn = -1
            cgroup.uncharge(1, prefetch=True)
            self._resident[cgroup.name] -= 1
            self._resident_total -= 1
            self.timeouts += 1
            self.prefetch_issued += 1
            self.issued_by_tier[tier] = self.issued_by_tier.get(tier, 0) + 1
            self.dropped_prefetches += 1
            self.dropped_by_tier[tier] = self.dropped_by_tier.get(tier, 0) + 1
            if self.hopp is not None:
                self.hopp.on_prefetch_dropped(now_us)
            if self.telemetry is not None:
                bus = self.telemetry.bus
                bus.emit(
                    EV_PREFETCH_ISSUE, now_us,
                    pid=pid, vpn=vpn, tier=tier, arrival_us=-1.0,
                )
                bus.emit(EV_PREFETCH_DROP, now_us, tier=tier, n=1)
            return None
        self._note_peak()
        pte.state = PteState.INFLIGHT
        pte.prefetched = True
        pte.prefetch_tier = tier
        pte.arrival_us = completion
        pte.injected = inject_pte
        self._arrival_seq += 1
        heapq.heappush(self._arrivals, (completion, self._arrival_seq, pid, vpn))
        self.prefetch_issued += 1
        self.issued_by_tier[tier] = self.issued_by_tier.get(tier, 0) + 1
        if self.memtier is not None:
            self.memtier.note_prefetch_read(node, 1)
        if self.telemetry is not None:
            self.telemetry.bus.emit(
                EV_PREFETCH_ISSUE, now_us,
                pid=pid, vpn=vpn, tier=tier, arrival_us=completion,
            )
        return completion

    def prefetch_batch(
        self,
        pid: int,
        start_vpn: int,
        npages: int,
        now_us: float,
        inject_pte: bool,
        tier: str,
    ):
        """Fetch every REMOTE page in [start_vpn, start_vpn + npages) as
        one scatter-gather RDMA request (Section IV's 2 MB batch).
        Returns the shared arrival time, or None when nothing in the
        range is remote."""
        table = self._page_tables.get(pid)
        if table is None or npages < 1:
            return None
        fetchable = [
            vpn
            for vpn in range(max(start_vpn, 0), start_vpn + npages)
            if table.entry(vpn).state == PteState.REMOTE
            and not self._slot_is_lost(table.entry(vpn).swap_slot)
            and not self._slot_is_poisoned(table.entry(vpn).swap_slot)
        ]
        if not fetchable:
            return None
        if self.prefetch_admission is not None and not self.prefetch_admission(
            pid, tier, now_us
        ):
            self.prefetch_throttled += len(fetchable)
            return None
        # One scatter-gather request per node holding pages of the range
        # (pages interleaved across nodes fragment the batch; affinity
        # placement keeps it whole).  Node order is first appearance in
        # the VPN range, so grouping is deterministic.
        groups: Dict[int, List[int]] = {}
        for vpn in fetchable:
            node = self._node_for_page(table.entry(vpn))
            groups.setdefault(node.node_id, []).append(vpn)
        cgroup = self._cgroup_of[pid]
        last_arrival = None
        for node_id, vpns in groups.items():
            node = self.cluster.nodes[node_id]
            try:
                arrivals = node.fabric.read_batch(now_us, len(vpns))
                if self.faults is not None:
                    node.injector.check_remote(now_us)
            except TransferTimeout:
                # This node's scatter-gather request lost its completion;
                # drop every page in it (nothing was charged or
                # allocated yet).  Other nodes' requests proceed.
                count = len(vpns)
                self.timeouts += 1
                self.prefetch_issued += count
                self.issued_by_tier[tier] = self.issued_by_tier.get(tier, 0) + count
                self.dropped_prefetches += count
                self.dropped_by_tier[tier] = (
                    self.dropped_by_tier.get(tier, 0) + count
                )
                if self.hopp is not None:
                    self.hopp.on_prefetch_dropped(now_us)
                if self.telemetry is not None:
                    bus = self.telemetry.bus
                    bus.emit(
                        EV_PREFETCH_ISSUE, now_us,
                        tier=tier, arrival_us=-1.0, n=count,
                    )
                    bus.emit(EV_PREFETCH_DROP, now_us, tier=tier, n=count)
                continue
            emit = self.telemetry.bus.emit if self.telemetry is not None else None
            strict = self.config.strict_cgroup_prefetch and cgroup.charge_prefetch
            landed = 0
            for vpn, arrival in zip(vpns, arrivals):
                if strict:
                    # Strict mode: the page lands only if it fits the
                    # budget's existing headroom — prefetch never
                    # reclaims resident pages to make room for itself.
                    # The batch transfer already happened, but nothing
                    # was allocated or charged for a refused page, so
                    # every counter still conserves.
                    try:
                        cgroup.charge(1, prefetch=True, strict=True)
                    except CgroupOverLimitError:
                        self.prefetch_overlimit_rejects += 1
                        continue
                else:
                    self._ensure_headroom(pid)
                    cgroup.charge(1, prefetch=True)
                self._resident[cgroup.name] += 1
                self._resident_total += 1
                pte = table.entry(vpn)
                pte.ppn = self.frames.allocate(pid, vpn)
                pte.state = PteState.INFLIGHT
                pte.prefetched = True
                pte.prefetch_tier = tier
                pte.arrival_us = arrival
                pte.injected = inject_pte
                self._arrival_seq += 1
                heapq.heappush(self._arrivals, (arrival, self._arrival_seq, pid, vpn))
                landed += 1
                if emit is not None:
                    emit(
                        EV_PREFETCH_ISSUE, now_us,
                        pid=pid, vpn=vpn, tier=tier, arrival_us=arrival,
                    )
            self._note_peak()
            self.prefetch_issued += landed
            self.issued_by_tier[tier] = self.issued_by_tier.get(tier, 0) + landed
            if self.memtier is not None:
                # Count transfers, not landings: the scatter-gather READ
                # moved every page even if strict mode refused some.
                self.memtier.note_prefetch_read(node, len(vpns))
            if landed and (last_arrival is None or arrivals[-1] > last_arrival):
                last_arrival = arrivals[-1]
        return last_arrival

    def _process_arrivals(self, upto_us: float) -> None:
        while self._arrivals and self._arrivals[0][0] <= upto_us:
            arrival, _, pid, vpn = heapq.heappop(self._arrivals)
            table = self._page_tables[pid]
            pte = table.entry(vpn)
            if pte.state != PteState.INFLIGHT:
                continue
            if pte.injected:
                # Early PTE injection: map immediately, no future fault.
                table.map_page(vpn, pte.ppn, injected=True)
                self._release_remote_copy(pid, vpn)
            else:
                pte.state = PteState.SWAPCACHE
                self.swapcache.insert(pid, vpn, pte.arrival_us)
            self._lru_of_pid(pid).insert(pid, vpn)
            if self.telemetry is not None:
                self.telemetry.bus.emit(
                    EV_PREFETCH_LAND, arrival,
                    pid=pid, vpn=vpn, tier=pte.prefetch_tier,
                )

    # -- prefetch-hit accounting --------------------------------------------------------

    def _count_prefetch_hit(self, pid: int, vpn: int, pte: Pte, kind: str) -> None:
        if not pte.prefetched:
            return
        pte.prefetched = False
        tier = pte.prefetch_tier
        self.hits_by_tier[tier] = self.hits_by_tier.get(tier, 0) + 1
        if kind == "dram":
            self.prefetch_hit_dram += 1
        elif kind == "swapcache":
            self.prefetch_hit_swapcache += 1
        else:
            self.prefetch_hit_inflight += 1
        cgroup = self._cgroup_of[pid]
        cgroup.promote_prefetch(1)
        if self.telemetry is not None:
            self.telemetry.bus.emit(
                EV_PREFETCH_HIT, self.now_us,
                pid=pid, vpn=vpn, tier=tier, where=kind,
            )
        if self.hopp is not None:
            self.hopp.on_page_mapped(pid, vpn, self.now_us)
        if (
            self.fault_prefetcher is not None
            and tier == self.fault_prefetcher.name
        ):
            self.fault_prefetcher.on_prefetch_hit(pid, vpn, self.now_us, self)

    # -- reclaim -----------------------------------------------------------------------

    def _ensure_headroom(self, pid: int) -> None:
        cgroup = self._cgroup_of[pid]
        resident = self._resident[cgroup.name]
        if resident + 1 <= cgroup.limit_pages:
            return
        lru = self._lru_of_pid(pid)
        evicted = 0
        clean = 0
        # Stream-behind hints from the HoPP data plane go first (the
        # Section IV eviction extension): those pages are dead until the
        # stream's next pass, so evicting them protects reusable pages
        # that plain LRU would sacrifice to the scan.
        advisor = self.hopp.advisor if self.hopp is not None else None
        if advisor is not None:
            goal = resident + 1 - max(cgroup.limit_pages - self.reclaimer.watermark_slack, 0)
            hinted = advisor.take_victims(
                max(goal, 0), lambda vp, vn: lru.__contains__((vp, vn))
            )
            for victim_pid, victim_vpn in hinted:
                clean += self._evict(victim_pid, victim_vpn)
                evicted += 1
        resident = self._resident[cgroup.name]
        victims = self.reclaimer.plan(lru, resident + 1, cgroup.limit_pages)
        for victim_pid, victim_vpn in victims:
            clean += self._evict(victim_pid, victim_vpn)
            evicted += 1
        if evicted:
            self.reclaimer.account(evicted, clean)
            self.breakdown.reclaim_us += T_RECLAIM_CRITICAL_RESIDUE_US

    def _evict(self, pid: int, vpn: int) -> int:
        """Evict one resident page; returns 1 when it was a clean drop."""
        table = self._page_tables[pid]
        pte = table.entry(vpn)
        lru = self._lru_of_pid(pid)
        lru.remove(pid, vpn)
        cgroup = self._cgroup_of[pid]
        wasted = pte.prefetched
        was_prefetch_charge = False
        if pte.state == PteState.SWAPCACHE:
            self.swapcache.drop(pid, vpn)
            if self.telemetry is not None:
                self.telemetry.bus.emit(
                    EV_CACHE_INVALIDATE, self.now_us, pid=pid, vpn=vpn
                )
            if self._slot_is_lost(pte.swap_slot) or self._slot_is_poisoned(
                pte.swap_slot
            ):
                # The remote copy died with its node (or every replica
                # is poisoned); this swapcache page is the last good
                # copy left.  Write it back to a fresh slot instead of
                # clean-dropping it (that would turn a recoverable
                # crash into data loss).
                self._release_remote_copy(pid, vpn)
                slot = self.swap_space.allocate(pid, vpn)
                try:
                    self._writeback_resilient(slot, pid, vpn)
                except RemoteFetchFatalError:
                    if not self.config.absorb_fatal_faults:
                        raise
                    # The salvage writeback burned its retry budget and
                    # this frame is the page's last copy: keep it.  The
                    # page promotes to PRESENT (it already left the
                    # swapcache above) and rejoins the LRU; any replica
                    # already written goes with the abandoned slot.
                    self.cluster.release(slot)
                    self.swap_space.free(slot)
                    pte.swap_slot = -1
                    table.map_page(vpn, pte.ppn)
                    lru.insert(pid, vpn)
                    self.writebacks_abandoned += 1
                    return 0
                pte.swap_slot = slot
                self.pages_salvaged += 1
                self._memtier_note_writeback(slot, pid, vpn)
                clean = 0
            else:
                # Clean: the remote copy at its slot is still valid.
                clean = 1
            self.frames.free(pte.ppn)
            pte.ppn = -1
            pte.state = PteState.REMOTE
            was_prefetch_charge = True
        elif pte.state == PteState.PRESENT:
            ppn = pte.ppn
            table.unmap_page(vpn)
            slot = self.swap_space.allocate(pid, vpn)
            if self.faults is None:
                for index, target in enumerate(
                    self.cluster.assign(slot, pid, vpn)
                ):
                    target.remote.write(slot, pid, vpn)
                    target.fabric.write_page(self.now_us)
                    if index:
                        self.cluster.replica_writes += 1
            else:
                try:
                    self._writeback_resilient(slot, pid, vpn)
                except RemoteFetchFatalError:
                    if not self.config.absorb_fatal_faults:
                        raise
                    # The writeback burned its whole retry budget:
                    # abandon the eviction instead of losing the page.
                    # Replicas already written are released with the
                    # slot, the frame stays mapped, and the page goes
                    # back on the LRU for a later attempt.
                    self.cluster.release(slot)
                    self.swap_space.free(slot)
                    table.map_page(vpn, ppn)
                    lru.insert(pid, vpn)
                    self.writebacks_abandoned += 1
                    return 0
            pte.swap_slot = slot
            self._memtier_note_writeback(slot, pid, vpn)
            self.frames.free(ppn)
            pte.ppn = -1
            pte.state = PteState.REMOTE
            # A PRESENT-but-never-hit page can only be an injected
            # prefetch; it still carries its prefetch charge.
            was_prefetch_charge = wasted
            clean = 0
        else:
            # INFLIGHT pages are not on the LRU; nothing else to evict.
            return 0
        cgroup.uncharge(1, prefetch=was_prefetch_charge and not cgroup.charge_prefetch)
        self._resident[cgroup.name] -= 1
        self._resident_total -= 1
        if wasted:
            pte.prefetched = False
            self.prefetch_wasted += 1
            if self.telemetry is not None:
                self.telemetry.bus.emit(
                    EV_PREFETCH_UNUSED, self.now_us,
                    pid=pid, vpn=vpn, tier=pte.prefetch_tier,
                )
            if self.hopp is not None:
                self.hopp.on_page_evicted(pid, vpn)
            if (
                self.fault_prefetcher is not None
                and pte.prefetch_tier == self.fault_prefetcher.name
            ):
                self.fault_prefetcher.on_prefetch_wasted(pid, vpn)
        return clean

    def _writeback_resilient(self, slot: int, pid: int, vpn: int) -> None:
        """Reclaim writeback with bounded retries.  Writebacks are
        asynchronous (off the application's critical path), so retries
        only advance the transfer's issue time, not ``now_us``; losing
        the page is not an option, so budget exhaustion is fatal.

        On a multi-node cluster a writeback that finds its target node
        restarting re-routes to the next live node (the directory is
        updated); plain fabric drops retry the same node with backoff."""
        targets = self.cluster.assign(slot, pid, vpn)
        for index, target in enumerate(targets):
            self._writeback_one(slot, pid, vpn, target)
            if index:
                self.cluster.replica_writes += 1

    def _writeback_one(
        self, slot: int, pid: int, vpn: int, node: ClusterNode
    ) -> None:
        waited = 0.0
        attempts = 0
        while True:
            t = self.now_us + waited
            try:
                node.fabric.write_page(t)
                node.remote.write(slot, pid, vpn, now_us=t)
                if self.health is not None:
                    self.health.observe_success(node.node_id, t)
                return
            except TransferTimeout as fault:
                self.timeouts += 1
                attempts += 1
                if self.health is not None:
                    self._apply_health_events(
                        self.health.observe_timeout(node.node_id, t)
                    )
                if attempts > self.config.demand_retry_limit:
                    raise RemoteFetchFatalError(
                        pid, vpn, attempts,
                        waited_us=waited + fault.wasted_us,
                    ) from fault
                self.retries += 1
                if self.telemetry is not None:
                    self.telemetry.bus.emit(
                        EV_RETRY, t, op="writeback", node=node.node_id
                    )
                if (
                    isinstance(fault, RemoteUnavailableError)
                    and self.cluster.node_count > 1
                ):
                    rerouted = self.cluster.reroute(slot, node.node_id)
                    if rerouted.node_id != node.node_id:
                        # Detection cost is paid; the re-issued write
                        # goes straight out on the new node's link.
                        node = rerouted
                        waited += fault.wasted_us
                        continue
                backoff = self.config.retry_backoff_us * (
                    self.config.retry_backoff_multiplier ** (attempts - 1)
                )
                waited += fault.wasted_us + backoff

    # -- helpers ------------------------------------------------------------------------

    def _memtier_note_writeback(self, slot: int, pid: int, vpn: int) -> None:
        """Route a completed writeback into the migration engine (tier
        accounting, pool pressure) and give its pump a turn.  One
        ``None`` check on the default path."""
        if self.memtier is None:
            return
        self.memtier.note_writeback(
            self.cluster.primary_node(slot), slot, pid, vpn, self.now_us
        )
        self.memtier.pump(self.now_us)

    def _release_remote_copy(self, pid: int, vpn: int, slot: Optional[int] = None) -> None:
        """The page is mapped locally again: drop its swap slot — every
        replica across the cluster, so slot accounting conserves."""
        pte = self._page_tables[pid].entry(vpn)
        slot = pte.swap_slot if slot is None else slot
        if slot is not None and slot >= 0:
            self.cluster.release(slot)
            self.swap_space.free(slot)
            pte.swap_slot = -1

    def _slot_is_lost(self, slot: Optional[int]) -> bool:
        """Whether every replica of ``slot`` died with its node(s)."""
        return slot is not None and slot >= 0 and self.cluster.is_lost(slot)

    def _slot_is_poisoned(self, slot: Optional[int]) -> bool:
        """Whether ``slot`` carries the CXL poison mark (every stored
        copy known-bad; reads must zero-fill, never serve)."""
        return slot is not None and slot >= 0 and self.cluster.is_poisoned(slot)

    def _apply_health_events(self, events: List[HealthEvent]) -> None:
        """Route monitor events into the repair engine.  The sanitizer
        run is deferred to the next access boundary — events can fire
        mid-fault, when the structures are legitimately in transition."""
        for event, node_id in events:
            if event == EVENT_DOWN:
                self.repair.on_node_down(node_id, self.now_us)
            elif event == EVENT_REJOIN:
                self.repair.on_node_rejoin(node_id, self.now_us)
        if events and self.sanitizer is not None:
            self._sanitize_after_recovery = True

    # -- recovery control ---------------------------------------------------------------

    def drain_node(self, node_id: int) -> None:
        """Gracefully decommission ``node_id``: stop placing new copies
        on it and background-evacuate the pages it holds.  Requires
        recovery to be armed (any ``fault_plan``, even an empty one)."""
        if self.health is None or self.repair is None:
            raise RuntimeError(
                "recovery is not armed: construct the machine with a fault "
                "plan (an empty FaultPlan() suffices) to enable drain"
            )
        self.health.start_drain(node_id, self.now_us)
        self.repair.on_drain(node_id)

    def flush_memtier(self) -> None:
        """Drain every queued tier migration at the current simulated
        time so end-of-run metrics see a settled pool.  No-op on
        untiered machines."""
        if self.memtier is not None:
            self.memtier.flush(self.now_us)

    def flush_recovery(self) -> None:
        """Drive recovery to quiescence at the current simulated time:
        force a heartbeat probe, apply its events, run the repair queue
        dry, and repeat until nothing moves (a drain completion unlocks
        a rejoin, a rejoin queues top-ups, ...).  No-op when recovery is
        not armed."""
        if self.health is None or self.repair is None:
            return
        for _ in range(4):
            events = self.health.tick(self.now_us, force=True)
            self._apply_health_events(events)
            # Flush before judging quiescence: an already-empty DRAINING
            # node has no evacuate tasks, so the queue alone looks idle
            # while the drain still needs its completion check.
            before = self.health.states_snapshot()
            self.repair.flush(self.now_us)
            if (
                not events
                and self.repair.idle
                and self.health.states_snapshot() == before
            ):
                break
        if self.sanitizer is not None:
            self._sanitize_after_recovery = False
            self.sanitizer.check()

    def _node_for_page(self, pte: Pte) -> ClusterNode:
        """The node holding a REMOTE page's primary copy (node 0 when
        the slot was never placed, matching the single-link model)."""
        slot = pte.swap_slot
        if slot is not None and slot >= 0:
            return self.cluster.primary_node(slot)
        return self.cluster.nodes[0]

    def _lru_of_pid(self, pid: int) -> LruPageList:
        return self._lru_of[self._cgroup_of[pid].name]

    def _note_peak(self) -> None:
        resident = self._resident_total
        if resident > self.peak_resident_pages:
            self.peak_resident_pages = resident

    # -- introspection for prefetchers ----------------------------------------------------

    def demote_page(self, pid: int, vpn: int) -> bool:
        """Move a resident page to the cold end of its cgroup's LRU so
        reclaim takes it first (Leap's eager cache eviction)."""
        if pid not in self._cgroup_of:
            return False
        return self._lru_of_pid(pid).demote(pid, vpn)

    def page_state(self, pid: int, vpn: int) -> PteState:
        table = self._page_tables.get(pid)
        if table is None:
            return PteState.UNTOUCHED
        pte = table.peek(vpn)
        return pte.state if pte is not None else PteState.UNTOUCHED
