"""Multi-application co-runs (Figure 15).

Several workloads share one compute node; each gets its own cgroup at
50% of its footprint (the paper's setup) and a distinct PID space.  The
traces are interleaved in time-slice chunks, so page streams from
different applications alias in any global fault history — exactly what
HoPP's PID-tagged hot pages untangle ("we can easily train prefetching
algorithms according to PID").

The assembly helpers (:func:`build_corun_machine`, :func:`shift_pids`,
:func:`interleave_traces`) are public so the tenant-scale scenario
engine (:mod:`repro.scenario`) can compose its own fleets — same PID
striding, same cgroup naming, same interleave — without duplicating
the wiring.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, List, Optional, Tuple, Union

from repro.net.rdma import FabricConfig
from repro.sim import systems as systems_mod
from repro.sim.machine import Machine, MachineConfig
from repro.sim.metrics import RunResult
from repro.sim.runner import collect
from repro.sim.systems import SystemSpec
from repro.workloads.base import Workload

#: PIDs of co-running workloads are offset by this much so address/PID
#: spaces never collide.
PID_STRIDE = 100


def interleave_traces(
    traces: List[Iterator[Tuple[int, int]]],
    rng: random.Random,
    slice_accesses: int = 64,
) -> Iterator[Tuple[int, int]]:
    """Merge traces in seeded time-slice chunks until all are drained."""
    live = list(traces)
    while live:
        source = live[rng.randrange(len(live))]
        emitted = 0
        for access in source:
            yield access
            emitted += 1
            if emitted >= slice_accesses:
                break
        else:
            live.remove(source)


def shift_pids(
    trace: Iterator[Tuple[int, int]], offset: int
) -> Iterator[Tuple[int, int]]:
    for pid, vaddr in trace:
        yield pid + offset, vaddr


def cgroup_limit(workload: Workload, local_memory_fraction: float) -> int:
    """Per-app cgroup budget: a fraction of the footprint, floor 8."""
    return max(
        int(math.ceil(workload.footprint_pages * local_memory_fraction)), 8
    )


def attach_workload(
    machine: Machine,
    workload: Workload,
    index: int,
    local_memory_fraction: float,
    cgroup_name: Optional[str] = None,
) -> Iterator[Tuple[int, int]]:
    """Register one workload's processes/VMAs at PID slot ``index`` and
    return its PID-shifted trace.  The cgroup defaults to the classic
    ``app-<index>-<name>`` naming so co-run results stay comparable."""
    offset = index * PID_STRIDE
    limit = cgroup_limit(workload, local_memory_fraction)
    name = cgroup_name or f"app-{index}-{workload.name}"
    for process in workload.processes:
        machine.register_process(
            process.pid + offset,
            cgroup_name=name,
            limit_pages=limit,
        )
        for start_vpn, npages, vma_name in process.vmas:
            machine.add_vma(process.pid + offset, start_vpn, npages, vma_name)
    return shift_pids(workload.trace(), offset)


def build_corun_machine(
    workloads: List[Workload],
    spec: SystemSpec,
    local_memory_fraction: float = 0.5,
    config: Optional[MachineConfig] = None,
) -> Tuple[Machine, List[Iterator[Tuple[int, int]]]]:
    """Assemble the shared machine plus one shifted trace per workload."""
    if config is None:
        config = MachineConfig(
            local_memory_pages=sum(w.footprint_pages for w in workloads),
            compute_us_per_access=sum(
                w.compute_us_per_access for w in workloads
            )
            / len(workloads),
        )
    machine = spec.build(config)
    traces = [
        attach_workload(machine, workload, index, local_memory_fraction)
        for index, workload in enumerate(workloads)
    ]
    return machine, traces


def run_corun(
    workloads: List[Workload],
    system: Union[str, SystemSpec],
    local_memory_fraction: float = 0.5,
    fabric: Optional[FabricConfig] = None,
    seed: int = 1,
    slice_accesses: int = 64,
    strict_cgroup_prefetch: bool = False,
) -> RunResult:
    """Run several workloads concurrently under one system."""
    if not workloads:
        raise ValueError("need at least one workload")
    spec = system if isinstance(system, SystemSpec) else systems_mod.build(system)
    # The shared machine's default limit is irrelevant: every app brings
    # its own cgroup limit below.
    config = MachineConfig(
        local_memory_pages=sum(w.footprint_pages for w in workloads),
        fabric=fabric or FabricConfig(),
        compute_us_per_access=sum(w.compute_us_per_access for w in workloads)
        / len(workloads),
        strict_cgroup_prefetch=strict_cgroup_prefetch,
    )
    machine, traces = build_corun_machine(
        workloads, spec, local_memory_fraction, config
    )
    rng = random.Random(seed)
    machine.run(interleave_traces(traces, rng, slice_accesses))
    names = "+".join(w.name for w in workloads)
    return collect(machine, spec.name, names)


#: Backwards-compatible aliases (pre-scenario private names).
_interleave_traces = interleave_traces
_shift_pids = shift_pids
