"""Multi-application co-runs (Figure 15).

Several workloads share one compute node; each gets its own cgroup at
50% of its footprint (the paper's setup) and a distinct PID space.  The
traces are interleaved in time-slice chunks, so page streams from
different applications alias in any global fault history — exactly what
HoPP's PID-tagged hot pages untangle ("we can easily train prefetching
algorithms according to PID").
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.net.rdma import FabricConfig
from repro.sim import systems as systems_mod
from repro.sim.machine import Machine, MachineConfig
from repro.sim.metrics import RunResult
from repro.sim.runner import collect
from repro.sim.systems import SystemSpec
from repro.workloads.base import Workload

#: PIDs of co-running workloads are offset by this much so address/PID
#: spaces never collide.
PID_STRIDE = 100


def _interleave_traces(
    traces: List[Iterator[Tuple[int, int]]],
    rng: random.Random,
    slice_accesses: int = 64,
) -> Iterator[Tuple[int, int]]:
    live = list(traces)
    while live:
        source = live[rng.randrange(len(live))]
        emitted = 0
        for access in source:
            yield access
            emitted += 1
            if emitted >= slice_accesses:
                break
        else:
            live.remove(source)


def run_corun(
    workloads: List[Workload],
    system: Union[str, SystemSpec],
    local_memory_fraction: float = 0.5,
    fabric: Optional[FabricConfig] = None,
    seed: int = 1,
    slice_accesses: int = 64,
) -> RunResult:
    """Run several workloads concurrently under one system."""
    if not workloads:
        raise ValueError("need at least one workload")
    spec = system if isinstance(system, SystemSpec) else systems_mod.build(system)
    # The shared machine's default limit is irrelevant: every app brings
    # its own cgroup limit below.
    config = MachineConfig(
        local_memory_pages=sum(w.footprint_pages for w in workloads),
        fabric=fabric or FabricConfig(),
        compute_us_per_access=sum(w.compute_us_per_access for w in workloads)
        / len(workloads),
    )
    machine = spec.build(config)

    traces = []
    for index, workload in enumerate(workloads):
        offset = index * PID_STRIDE
        limit = max(
            int(math.ceil(workload.footprint_pages * local_memory_fraction)), 8
        )
        for process in workload.processes:
            machine.register_process(
                process.pid + offset,
                cgroup_name=f"app-{index}-{workload.name}",
                limit_pages=limit,
            )
            for start_vpn, npages, name in process.vmas:
                machine.add_vma(process.pid + offset, start_vpn, npages, name)
        traces.append(_shift_pids(workload.trace(), offset))

    rng = random.Random(seed)
    machine.run(_interleave_traces(traces, rng, slice_accesses))
    names = "+".join(w.name for w in workloads)
    return collect(machine, spec.name, names)


def _shift_pids(
    trace: Iterator[Tuple[int, int]], offset: int
) -> Iterator[Tuple[int, int]]:
    for pid, vaddr in trace:
        yield pid + offset, vaddr
