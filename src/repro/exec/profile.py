"""Per-component time-share profiling of a simulation run.

Wraps one run in :mod:`cProfile` and buckets every function's *internal*
time (tottime — time in the function itself, not its callees, so the
shares sum to the total without double counting) into the simulator's
architectural components.  This is the baseline future perf PRs measure
against: ``repro run --profile ...`` prints the table, and
:func:`profile_spec` returns it as data.
"""

from __future__ import annotations

import cProfile
import pstats
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exec.pool import run_spec
from repro.exec.spec import RunSpec
from repro.sim.metrics import RunResult

#: Component name -> path fragments that claim a frame (first match
#: wins, most-specific first).  Mirrors the subsystem layout in
#: docs/architecture.md.
COMPONENTS: List[Tuple[str, Tuple[str, ...]]] = [
    ("batch-kernel", ("repro/sim/batchkernel",)),
    ("kernel-swap", ("repro/kernel/", "repro/sim/machine", "repro/sim/sanitizer")),
    ("rdma-fabric", ("repro/net/", "repro/cluster/")),
    ("hopp-policy", ("repro/hopp/", "repro/baselines/")),
    ("cache-hierarchy", ("repro/memsim/",)),
    ("trace-gen", ("repro/workloads/",)),
    ("harness", ("repro/sim/", "repro/exec/", "repro/analysis/")),
]


@dataclass
class ProfileReport:
    """Where one run's wall-clock went, by architectural component."""

    total_s: float
    seconds: Dict[str, float] = field(default_factory=dict)
    result: Optional[RunResult] = None
    #: Unprofiled replay-loop throughput (accesses/sec) keyed by loop
    #: kind ("tapped", "untapped") — the hot-path regression signal.
    loop_acc_per_sec: Dict[str, float] = field(default_factory=dict)

    def share(self, component: str) -> float:
        if self.total_s <= 0:
            return 0.0
        return self.seconds.get(component, 0.0) / self.total_s

    def rows(self) -> List[List[object]]:
        """(component, seconds, share) rows, largest first — ready for
        :func:`repro.analysis.report.render_table`."""
        ordered = sorted(self.seconds.items(), key=lambda kv: -kv[1])
        return [
            [name, f"{secs:.3f}", f"{self.share(name):.1%}"]
            for name, secs in ordered
            if secs > 0.0
        ]


def classify(filename: str) -> str:
    """Map a profiled frame's filename onto a component bucket."""
    normalized = filename.replace("\\", "/")
    for name, fragments in COMPONENTS:
        for fragment in fragments:
            if fragment in normalized:
                return name
    return "other"


#: Accesses replayed per loop-throughput probe; enough to dominate the
#: per-run setup cost without stretching ``run --profile`` noticeably.
LOOP_PROBE_ACCESSES = 200_000


def loop_throughput(spec: RunSpec, max_accesses: int = LOOP_PROBE_ACCESSES) -> Dict[str, float]:
    """Accesses/sec of the spec's replay loops, measured unprofiled.

    Replays (a prefix of) the spec's trace on a fresh machine through
    the loop its tap wiring selects — "tapped" for systems with an MC
    tap (HoPP and friends), "untapped" otherwise — and, for tapped
    systems, once more with the taps detached so both loop kinds are
    visible per system.  The untapped probe of a tapped system is a
    *throughput* number only (its simulation results are discarded; a
    detached tap never feeds the HPD).  Armed extras (fault plans,
    telemetry, cluster) are deliberately left out: they force the exact
    per-access slow loop, whose cost the component table already shows.
    """
    from repro.sim.runner import make_machine
    from repro.workloads import build

    workload = build(spec.workload, seed=spec.seed, **(spec.workload_kwargs or {}))
    trace = list(workload.trace())
    if len(trace) > max_accesses:
        trace = trace[:max_accesses]
    out: Dict[str, float] = {}
    probes = []
    base = make_machine(workload, spec.system, spec.fraction, spec.fabric)
    if base.controller._taps:
        probes.append(("tapped", False))
        probes.append(("untapped", True))
    else:
        probes.append(("untapped", False))
    for label, detach in probes:
        machine = make_machine(workload, spec.system, spec.fraction, spec.fabric)
        if detach:
            machine.controller._taps = []
        start = time.perf_counter()
        machine.run(trace)
        elapsed = time.perf_counter() - start
        out[label] = len(trace) / elapsed if elapsed > 0 else 0.0
    return out


def profile_spec(spec: RunSpec) -> ProfileReport:
    """Run ``spec`` under the profiler and aggregate component shares."""
    profiler = cProfile.Profile()
    profiler.enable()
    result = run_spec(spec)
    profiler.disable()
    stats = pstats.Stats(profiler)
    seconds: Dict[str, float] = {}
    total = 0.0
    for (filename, _line, _name), (_cc, _nc, tottime, _ct, _callers) in stats.stats.items():
        bucket = classify(filename)
        seconds[bucket] = seconds.get(bucket, 0.0) + tottime
        total += tottime
    loops = loop_throughput(spec)
    return ProfileReport(
        total_s=total, seconds=seconds, result=result, loop_acc_per_sec=loops
    )
