"""Execution engine: parallel sweep fan-out, persistent result cache,
and the per-component profiler.

The modules here own *how* simulations are executed — the simulator
itself (``repro.sim``) stays single-run and single-threaded.  A sweep is
a list of :class:`~repro.exec.spec.RunSpec` points handed to
:func:`~repro.exec.pool.execute`; every point is independent, re-seeded
from its own config, so serial and parallel execution produce
byte-identical RunResults (pinned by tests/test_exec_pool.py).
"""

from repro.exec.cache import ResultCache, TraceCache, cache_key, default_cache_dir
from repro.exec.pool import execute, run_spec
from repro.exec.spec import RunSpec

__all__ = [
    "RunSpec",
    "ResultCache",
    "TraceCache",
    "cache_key",
    "default_cache_dir",
    "execute",
    "run_spec",
]
