"""Content-addressed on-disk RunResult cache and the materialized-trace
cache.

Every cache entry is keyed by a SHA-256 over the canonical JSON of
``RunSpec.key_dict()`` plus :data:`SCHEMA_VERSION` — the code-schema
stamp.  Bump the version whenever a change makes old results
incomparable (new counters, different float accumulation, a modeling
fix): every existing entry then misses and re-runs, which is exactly the
safe failure mode.

Two refusal rules protect correctness (the PR-4 audit):

* A spec whose workload or system resolves outside the ``repro`` package
  (user-registered extensions) is *uncacheable* — the key cannot see the
  user's code, so a stale hit would be silent and wrong.
* A stored entry is only served when its embedded key dict equals the
  requesting spec's key dict — a hash collision or a hand-edited file
  yields a miss, never a wrong result.

``check_invariants`` and the fault plan (armed or not, including the
*empty-but-armed* ``FaultPlan()``) are part of the key by construction:
``RunSpec.key_dict`` projects them explicitly.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.sim import systems as systems_mod
from repro.sim.metrics import RunResult
from repro.workloads import build as build_workload
from repro.workloads import registry as workload_registry

#: Code-schema version folded into every cache key.  Bump on any change
#: to simulator semantics, RunResult fields, or key composition.
#: v2: telemetry subsystem — RunSpec gained the ``telemetry`` key and
#: RunResult's full wire format gained the ``machine`` counter section.
#: v3: memory tiers — RunSpec gained the ``memtier`` key dimension and
#: RunResult's wire format gained the optional ``memtier`` section.
#: v4: end-to-end integrity — RunSpec gained the ``scrub`` key
#: dimension, FaultPlan gained corruption fields, and RunResult's wire
#: format gained the optional ``integrity`` section.
#: v5: design-space autotuner — RunSpec gained the ``system_kwargs``
#: key dimension (HoppConfig knob overrides on registered systems).
SCHEMA_VERSION = 5


def canonical_json(payload: Dict[str, object]) -> str:
    """Deterministic JSON: sorted keys, no whitespace drift."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def cache_key(spec) -> str:
    """SHA-256 hex digest of (schema version, spec key dict)."""
    body = canonical_json({"schema": SCHEMA_VERSION, "spec": spec.key_dict()})
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-hopp``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-hopp"


def cacheability(spec) -> Tuple[bool, str]:
    """Whether ``spec``'s result may be cached, and why not if not.

    Only specs that resolve entirely inside the ``repro`` package are
    cacheable: the schema version stamps *our* code, so a workload or
    system registered by downstream code (``workloads.register`` /
    ``systems.register``) has no honest key."""
    workload_cls = workload_registry._REGISTRY.get(spec.workload)
    if workload_cls is None:
        return False, f"unknown workload {spec.workload!r}"
    if not workload_cls.__module__.startswith("repro."):
        return False, (
            f"workload {spec.workload!r} is user-registered "
            f"({workload_cls.__module__}); its code is outside the schema hash"
        )
    try:
        system_spec = systems_mod.build(spec.system)
    except KeyError:
        return False, f"unknown system {spec.system!r}"
    if not system_spec.builder.__module__.startswith("repro."):
        return False, (
            f"system {spec.system!r} is user-registered "
            f"({system_spec.builder.__module__}); its code is outside the schema hash"
        )
    return True, ""


class ResultCache:
    """Content-addressed RunResult store: one JSON file per key, laid
    out ``<root>/<digest[:2]>/<digest>.json`` with atomic writes."""

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.refused = 0

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, spec) -> Optional[RunResult]:
        """The cached RunResult for ``spec``, or None on any doubt."""
        ok, _why = cacheability(spec)
        if not ok:
            self.refused += 1
            return None
        digest = cache_key(spec)
        path = self._path(digest)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if payload.get("schema") != SCHEMA_VERSION or payload.get("key") != spec.key_dict():
            # Stale schema, hash collision, or a tampered file: a miss,
            # never a wrong result.
            self.misses += 1
            return None
        self.hits += 1
        return RunResult.from_dict(payload["result"])

    def put(self, spec, result: RunResult) -> Optional[Path]:
        """Store ``result`` under ``spec``'s key; returns the path, or
        None when the spec is uncacheable."""
        ok, _why = cacheability(spec)
        if not ok:
            self.refused += 1
            return None
        digest = cache_key(spec)
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": SCHEMA_VERSION,
            "key": spec.key_dict(),
            "result": result.to_dict(full=True),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp, path)
        self.stores += 1
        return path

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "refused": self.refused,
        }


class TraceCache:
    """Materialize each workload config's access trace once.

    A sweep re-runs the same (workload, seed, kwargs) trace under many
    systems and fractions; generating it per point is pure waste.  The
    cache holds the few most recent traces as immutable lists (bounded —
    a trace is hundreds of thousands of tuples)."""

    def __init__(self, capacity: int = 4) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._traces: Dict[str, List[tuple]] = {}
        self._order: List[str] = []
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(name: str, seed: int, kwargs: Dict[str, object]) -> str:
        return canonical_json(
            {"workload": name, "seed": seed, "kwargs": {str(k): kwargs[k] for k in sorted(kwargs)}}
        )

    def get(self, name: str, seed: int, kwargs: Optional[Dict[str, object]] = None) -> List[tuple]:
        """The materialized trace for the workload config, generating it
        on first request."""
        kwargs = kwargs or {}
        key = self._key(name, seed, kwargs)
        trace = self._traces.get(key)
        if trace is not None:
            self.hits += 1
            self._order.remove(key)
            self._order.append(key)
            return trace
        self.misses += 1
        workload = build_workload(name, seed=seed, **kwargs)
        trace = list(workload.trace())
        while len(self._order) >= self.capacity:
            evicted = self._order.pop(0)
            del self._traces[evicted]
        self._traces[key] = trace
        self._order.append(key)
        return trace
