"""The unit of sweep execution: one fully-specified simulation point.

A :class:`RunSpec` captures *every* input that can change a RunResult —
it is the complete argument audit of :func:`repro.sim.runner.run`.  The
cache key is derived from :meth:`RunSpec.key_dict`, so any kwarg added
to ``runner.run`` must be added here too or cached results would
silently ignore it; ``tests/test_exec_cache.py`` cross-checks the two
signatures to keep that contract honest.

The one deliberate exception is ``runner.run``'s ``trace`` kwarg: the
engine only ever passes a materialized copy of the trace the workload
would generate itself (same name, same seed, same kwargs), so it cannot
change the result and must not change the key.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Optional

from repro.cluster.cluster import ClusterConfig
from repro.integrity import ScrubConfig
from repro.memtier import MemtierConfig
from repro.net.faults import FaultPlan
from repro.net.rdma import FabricConfig
from repro.telemetry import TelemetryConfig

#: ``runner.run`` parameters covered by RunSpec (signature-audit anchor).
RUNNER_KWARGS_COVERED = frozenset(
    {
        "workload",
        "system",
        "local_memory_fraction",
        "fabric",
        "fault_plan",
        "cluster",
        "check_invariants",
        "trace",  # engine-internal; see module docstring
        "telemetry",
        "memtier",
        "scrub",
    }
)


@dataclass
class RunSpec:
    """One sweep point: (workload config, system, fraction, environment).

    Workloads and systems are referenced by registry *name* so a spec is
    cheap to ship to worker processes and stable to hash; the worker
    re-builds (and re-seeds) everything from the spec.
    """

    workload: str
    system: str = "hopp"
    fraction: float = 0.5
    seed: int = 1
    workload_kwargs: Dict[str, object] = field(default_factory=dict)
    #: HoppConfig knob overrides applied on top of the named system
    #: (dotted paths, see :func:`repro.sim.systems.variant`); the
    #: autotuner's way of walking HPD/STT/policy geometry.  Empty means
    #: the registered system verbatim.
    system_kwargs: Dict[str, object] = field(default_factory=dict)
    fabric: Optional[FabricConfig] = None
    fault_plan: Optional[FaultPlan] = None
    cluster: Optional[ClusterConfig] = None
    check_invariants: bool = False
    telemetry: Optional[TelemetryConfig] = None
    memtier: Optional[MemtierConfig] = None
    scrub: Optional[ScrubConfig] = None

    def key_dict(self) -> Dict[str, object]:
        """Canonical, JSON-stable projection of every result-affecting
        input.  ``None`` collapses to the runner's construction-time
        default so ``fabric=None`` and ``fabric=FabricConfig()`` hash
        identically (they run identically).  A ``fault_plan`` of
        ``FaultPlan()`` is *not* the same as ``None`` — an empty plan
        arms the recovery machinery — and the projection keeps them
        distinct.  So is ``telemetry``: probes never change simulator
        counters, but an instrumented RunResult *carries* its telemetry
        blob, so the cached artifact differs and must key separately."""
        fabric = self.fabric if self.fabric is not None else FabricConfig()
        cluster = self.cluster if self.cluster is not None else ClusterConfig()
        return {
            "workload": self.workload,
            "workload_kwargs": {
                str(k): self.workload_kwargs[k] for k in sorted(self.workload_kwargs)
            },
            "seed": self.seed,
            "system": self.system,
            # Every tunable knob must perturb the key, or a stale cache
            # entry would silently poison a design-space search.
            "system_kwargs": {
                str(k): self.system_kwargs[k] for k in sorted(self.system_kwargs)
            },
            "fraction": self.fraction,
            "fabric": asdict(fabric),
            "fault_plan": None if self.fault_plan is None else self.fault_plan.to_dict(),
            "cluster": asdict(cluster),
            "check_invariants": self.check_invariants,
            "telemetry": (
                None if self.telemetry is None else asdict(self.telemetry)
            ),
            # memtier=None means tiering off, which is NOT the same run
            # as any armed MemtierConfig (extra pool nodes, CXL link).
            "memtier": (
                None if self.memtier is None else asdict(self.memtier)
            ),
            # scrub=None means no patrol scrubber, which is NOT the same
            # run as any armed ScrubConfig (audit reads contend for
            # bandwidth, and scrub-only arms the recovery machinery).
            "scrub": None if self.scrub is None else asdict(self.scrub),
        }

    def label(self) -> str:
        """Short human-readable tag for progress lines and bench tables."""
        return f"{self.workload}/{self.system}@{self.fraction:g}"
