"""Deterministic parallel fan-out over independent sweep points.

Each :class:`~repro.exec.spec.RunSpec` is self-contained: the worker
rebuilds the workload, fabric, fault plan and cluster from the spec (and
their seeds), so a point's RunResult is a pure function of the spec.
That is what makes the pool safe — results are identical whether points
run serially, in any interleaving, or on any number of workers, and they
are returned in *input order*, never completion order.

Workers ship results back as ``RunResult.to_dict(full=True)`` dicts (the
same wire format the on-disk cache stores) and the parent rebuilds them
with :meth:`RunResult.from_dict`; the round trip is exact.
"""

from __future__ import annotations

import logging
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence

from repro.exec.cache import ResultCache, TraceCache
from repro.exec.spec import RunSpec
from repro.net.rdma import FabricConfig
from repro.sim import runner
from repro.sim import systems as systems_mod
from repro.sim.metrics import RunResult
from repro.workloads import build as build_workload

#: Per-worker-process trace cache: a worker that lands several points of
#: the same workload config generates its trace once.
_WORKER_TRACES: Optional[TraceCache] = None

logger = logging.getLogger(__name__)


def run_spec(spec: RunSpec, trace_cache: Optional[TraceCache] = None) -> RunResult:
    """Execute one spec in-process; the single source of truth for how a
    RunSpec maps onto :func:`repro.sim.runner.run`."""
    workload = build_workload(spec.workload, seed=spec.seed, **spec.workload_kwargs)
    trace = None
    if trace_cache is not None:
        trace = trace_cache.get(spec.workload, spec.seed, spec.workload_kwargs)
    system = (
        systems_mod.variant(spec.system, spec.system_kwargs)
        if spec.system_kwargs
        else spec.system
    )
    return runner.run(
        workload,
        system,
        spec.fraction,
        spec.fabric,
        spec.fault_plan,
        spec.cluster,
        check_invariants=spec.check_invariants,
        trace=trace,
        telemetry=spec.telemetry,
        memtier=spec.memtier,
        scrub=spec.scrub,
    )


def _worker(spec: RunSpec) -> Dict[str, object]:
    """Process-pool entry point: run one spec, return the wire dict."""
    global _WORKER_TRACES
    if _WORKER_TRACES is None:
        _WORKER_TRACES = TraceCache()
    return run_spec(spec, trace_cache=_WORKER_TRACES).to_dict(full=True)


def execute(
    specs: Sequence[RunSpec],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    trace_cache: Optional[TraceCache] = None,
    on_result: Optional[Callable[[int, RunSpec, RunResult, bool], None]] = None,
) -> List[RunResult]:
    """Run every spec, returning results aligned with ``specs``' order.

    ``jobs <= 1`` runs in-process (no pool, no serialization); higher
    values fan the cache misses out over a ProcessPool.  With a
    ``cache``, hits are served without running and fresh results are
    stored by the parent.  ``on_result(index, spec, result, was_cached)``
    fires per point in input order for progress reporting.
    """
    specs = list(specs)
    results: List[Optional[RunResult]] = [None] * len(specs)
    pending: List[int] = []
    if cache is not None:
        for index, spec in enumerate(specs):
            hit = cache.get(spec)
            if hit is not None:
                results[index] = hit
            else:
                pending.append(index)
    else:
        pending = list(range(len(specs)))

    if pending:
        if jobs <= 1 or len(pending) == 1:
            local_traces = trace_cache if trace_cache is not None else TraceCache()
            for index in pending:
                results[index] = run_spec(specs[index], trace_cache=local_traces)
        else:
            # Per-run *time-series* telemetry rides the normal wire
            # format (to_dict(full=True) embeds it), but a full trace
            # timeline can be hundreds of thousands of events per point
            # — shipping that through the pool would dominate the very
            # wall-clock the pool exists to save.  Refuse loudly rather
            # than silently serialize gigabytes.
            tracing = [
                specs[index].label()
                for index in pending
                if specs[index].telemetry is not None
                and specs[index].telemetry.trace
            ]
            if tracing:
                raise ValueError(
                    "trace-timeline telemetry is not supported on the "
                    "parallel sweep path (trace events are too large for "
                    "the worker wire format); run with jobs=1 or disable "
                    f"TelemetryConfig.trace for: {', '.join(tracing)}"
                )
            # Oversubscribing cores buys nothing for CPU-bound workers
            # and costs fork + serialization overhead per extra process.
            cores = os.cpu_count() or 1
            if jobs > cores:
                logger.warning(
                    "clamping jobs=%d to %d (os.cpu_count())", jobs, cores
                )
            workers = min(jobs, cores, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                payloads = pool.map(_worker, [specs[index] for index in pending])
                for index, payload in zip(pending, payloads):
                    results[index] = RunResult.from_dict(payload)
        if cache is not None:
            for index in pending:
                cache.put(specs[index], results[index])

    if on_result is not None:
        cached = set(range(len(specs))) - set(pending)
        for index, spec in enumerate(specs):
            on_result(index, spec, results[index], index in cached)
    return results


def local_ct_spec(workload: str, seed: int, fabric: Optional[FabricConfig] = None,
                  workload_kwargs: Optional[Dict[str, object]] = None) -> RunSpec:
    """The CT_local reference point for a workload config (Section VI-A):
    ``noprefetch`` with enough local memory that nothing is reclaimed."""
    return RunSpec(
        workload=workload,
        system="noprefetch",
        fraction=runner.LOCAL_FRACTION,
        seed=seed,
        workload_kwargs=dict(workload_kwargs or {}),
        fabric=fabric,
    )
