"""Memory-hierarchy substrate: caches, hierarchy, memory controller."""

from repro.memsim.cache import Cache, CacheAccessResult, CacheHierarchy
from repro.memsim.controller import MemoryController
from repro.memsim.tlb import Tlb, TlbStats

__all__ = [
    "Cache",
    "CacheAccessResult",
    "CacheHierarchy",
    "MemoryController",
    "Tlb",
    "TlbStats",
]
