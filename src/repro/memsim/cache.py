"""Set-associative cache model.

Used to validate that workload generators' miss-level traces match what a
real LLC would emit, and by the detailed simulation mode.  Addresses are
byte addresses; the cache operates on cacheline-aligned blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.assoc import SetAssociativeTable
from repro.common.constants import BLOCK_SHIFT


@dataclass
class CacheLineState:
    """Per-line metadata: only dirtiness matters to a write-back model."""

    dirty: bool = False


@dataclass(frozen=True)
class CacheAccessResult:
    hit: bool
    #: Block address (cacheline-aligned byte address >> BLOCK_SHIFT) of a
    #: dirty line written back by this access, if any.
    writeback_block: Optional[int] = None


class Cache:
    """A single write-back, write-allocate cache level with LRU sets."""

    def __init__(
        self,
        size_kb: int,
        ways: int,
        block_shift: int = BLOCK_SHIFT,
        name: str = "cache",
    ) -> None:
        size_bytes = size_kb * 1024
        block_size = 1 << block_shift
        nlines = size_bytes // block_size
        if nlines % ways:
            raise ValueError(
                f"{name}: {nlines} lines not divisible by {ways} ways"
            )
        nsets = nlines // ways
        if nsets < 1:
            raise ValueError(f"{name}: cache too small for {ways} ways")
        self.name = name
        self.block_shift = block_shift
        self.nsets = nsets
        self.ways = ways
        self._table: SetAssociativeTable[CacheLineState] = SetAssociativeTable(
            nsets, ways
        )

    # -- geometry -------------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        return self.nsets * self.ways * (1 << self.block_shift)

    def block_of(self, addr: int) -> int:
        return addr >> self.block_shift

    # -- access ---------------------------------------------------------------

    def access(self, addr: int, is_write: bool = False) -> CacheAccessResult:
        """Reference ``addr``; returns hit/miss plus any dirty writeback."""
        block = self.block_of(addr)
        state = self._table.lookup(block)
        if state is not None:
            if is_write:
                state.dirty = True
            return CacheAccessResult(hit=True)
        victim = self._table.insert(block, CacheLineState(dirty=is_write))
        writeback = None
        if victim is not None and victim[1].dirty:
            writeback = victim[0]
        return CacheAccessResult(hit=False, writeback_block=writeback)

    def invalidate_page(self, vpn: int, page_shift: int = 12) -> int:
        """Drop every line belonging to ``vpn``; returns lines dropped.

        Models cacheline invalidation when a page is unmapped/migrated.
        """
        blocks_per_page = 1 << (page_shift - self.block_shift)
        first = vpn << (page_shift - self.block_shift)
        dropped = 0
        for block in range(first, first + blocks_per_page):
            if self._table.remove(block) is not None:
                dropped += 1
        return dropped

    def __contains__(self, addr: int) -> bool:
        return self.block_of(addr) in self._table

    # -- stats ----------------------------------------------------------------

    @property
    def hits(self) -> int:
        return self._table.hits

    @property
    def misses(self) -> int:
        return self._table.misses

    @property
    def hit_rate(self) -> float:
        return self._table.hit_rate

    def reset_stats(self) -> None:
        self._table.reset_stats()


class CacheHierarchy:
    """An inclusive multi-level hierarchy; the last level's misses are the
    memory-controller-visible traffic HoPP's hardware taps (Section II-D).
    """

    def __init__(self, levels: Optional[List[Cache]] = None) -> None:
        if levels is None:
            levels = [
                Cache(size_kb=32, ways=8, name="L1"),
                Cache(size_kb=256, ways=8, name="L2"),
                Cache(size_kb=2048, ways=16, name="LLC"),
            ]
        if not levels:
            raise ValueError("hierarchy needs at least one cache level")
        self.levels = levels

    @property
    def llc(self) -> Cache:
        return self.levels[-1]

    def access(self, addr: int, is_write: bool = False) -> bool:
        """Walk the hierarchy; returns True when the reference misses the
        LLC (i.e., reaches the memory controller)."""
        for level in self.levels:
            result = level.access(addr, is_write)
            if result.hit:
                return False
        return True

    def invalidate_page(self, vpn: int) -> None:
        for level in self.levels:
            level.invalidate_page(vpn)
