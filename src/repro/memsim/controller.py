"""Memory-controller model with HoPP's trace tap.

The MC receives LLC misses as cacheline-granular physical accesses.  HoPP
adds two modules here (Figure 4): hot page detection and the RPT cache;
this class owns the tap point and channel bookkeeping, while the modules
themselves live in :mod:`repro.hopp.hpd` and :mod:`repro.hopp.rpt` so they
can also be exercised standalone.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.common.constants import BLOCK_SIZE, PAGE_SHIFT

#: Tap callback signature: (timestamp_us, paddr, is_write) -> None.
TapFn = Callable[[float, int, bool], None]


class MemoryController:
    """Tracks MC-visible traffic and fans it out to registered taps.

    ``channels`` models channel interleaving (Section III-B, "impact of
    multiple memory channels"): with interleaving, consecutive cachelines
    of one page land on different controllers, which is why the HPD
    threshold must drop proportionally.  ``channel_of`` exposes the
    mapping used by tests.
    """

    def __init__(self, channels: int = 1, interleaved: bool = True) -> None:
        if channels < 1:
            raise ValueError("channels must be >= 1")
        self.channels = channels
        self.interleaved = interleaved
        self._taps: List[TapFn] = []
        self.reads = 0
        self.writes = 0
        self.bytes_transferred = 0

    def add_tap(self, tap: TapFn) -> None:
        self._taps.append(tap)

    def channel_of(self, paddr: int) -> int:
        """Channel servicing ``paddr``.

        Interleaved: consecutive cachelines round-robin across channels.
        Non-interleaved: whole pages map to one channel.
        """
        if self.channels == 1:
            return 0
        if self.interleaved:
            return (paddr // BLOCK_SIZE) % self.channels
        return (paddr >> PAGE_SHIFT) % self.channels

    def access(self, timestamp_us: float, paddr: int, is_write: bool = False) -> int:
        """Record one LLC-miss access; returns the servicing channel."""
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        self.bytes_transferred += BLOCK_SIZE
        for tap in self._taps:
            tap(timestamp_us, paddr, is_write)
        if self.channels == 1:
            return 0
        return self.channel_of(paddr)

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    def reset_stats(self) -> None:
        self.reads = 0
        self.writes = 0
        self.bytes_transferred = 0
