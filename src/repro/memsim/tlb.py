"""TLB model.

Section II-D's MMU-tap critique includes a TLB cost: checking the
present bit of prefetch candidates from the MMU "causes the other PTEs
to be evicted from TLB and page table cache at the same core".  The
model here quantifies that: a set-associative TLB with per-PID tags
(ASIDs), miss statistics, and an explicit probe path whose pollution
can be measured against normal translation traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.assoc import SetAssociativeTable
from repro.common.constants import PAGE_SHIFT

#: A page-table walk costs ~4 memory references; at ~20 ns each this is
#: the canonical miss penalty used by the detailed mode.
WALK_COST_US = 0.08


@dataclass
class TlbStats:
    hits: int = 0
    misses: int = 0
    probe_evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class Tlb:
    """Set-associative TLB keyed by (pid, vpn)."""

    def __init__(self, entries: int = 64, ways: int = 4) -> None:
        if entries < ways or entries % ways:
            raise ValueError("entries must be a positive multiple of ways")
        self.entries = entries
        self.ways = ways
        nsets = entries // ways
        self._table: SetAssociativeTable[int] = SetAssociativeTable(
            nsets, ways, index_fn=lambda key: (key >> 16) % nsets
        )
        self.stats = TlbStats()

    @staticmethod
    def _key(pid: int, vpn: int) -> int:
        # vpn in the high bits so the set index uses vpn, not pid.
        return (vpn << 16) | (pid & 0xFFFF)

    def translate(self, pid: int, vaddr: int) -> float:
        """Translate one access; returns the translation cost in us
        (0 on a hit, one walk on a miss)."""
        vpn = vaddr >> PAGE_SHIFT
        key = self._key(pid, vpn)
        if self._table.lookup(key) is not None:
            self.stats.hits += 1
            return 0.0
        self.stats.misses += 1
        self._table.insert(key, vpn)
        return WALK_COST_US

    def probe(self, pid: int, vpn: int) -> None:
        """An MMU-side prefetcher checking a candidate PTE: the probe
        allocates a TLB entry the application never asked for —
        Section II-D's pollution cost."""
        key = self._key(pid, vpn)
        if self._table.peek(key) is None:
            victim = self._table.insert(key, vpn)
            if victim is not None:
                self.stats.probe_evictions += 1

    def invalidate(self, pid: int, vpn: int) -> bool:
        """TLB shootdown for one page (unmap path)."""
        return self._table.remove(self._key(pid, vpn)) is not None

    def flush(self) -> None:
        self._table.clear()

    def __contains__(self, key) -> bool:
        pid, vpn = key
        return self._key(pid, vpn) in self._table
