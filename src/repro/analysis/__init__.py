"""Offline trace analysis and report formatting."""

from repro.analysis.offline import OfflineStudy, replay_study
from repro.analysis.patterns import (
    PatternBreakdown,
    analyze_trace,
    classify_window,
    page_sequence,
)
from repro.analysis.report import print_artifact, render_series, render_table
from repro.analysis.sweeps import SweepPoint, SweepResult, sweep

__all__ = [
    "OfflineStudy",
    "replay_study",
    "PatternBreakdown",
    "analyze_trace",
    "classify_window",
    "page_sequence",
    "print_artifact",
    "render_series",
    "render_table",
    "SweepPoint",
    "SweepResult",
    "sweep",
]
