"""Plain-text table/series formatting for the benchmark harness.

Every bench prints the same rows/series its paper artifact reports; the
helpers here keep that output consistent and diffable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell, precision: int = 3) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    precision: int = 3,
    title: str = "",
) -> str:
    """Fixed-width table with a separator under the header."""
    text_rows: List[List[str]] = [
        [format_cell(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(name: str, points: Dict[str, float], precision: int = 3) -> str:
    """One figure series as 'name: key=value key=value ...'."""
    body = " ".join(f"{k}={v:.{precision}f}" for k, v in points.items())
    return f"{name}: {body}"


def print_artifact(artifact_id: str, body: str) -> None:
    """Print one reproduced table/figure with a recognizable banner."""
    banner = f"=== {artifact_id} ==="
    print()
    print(banner)
    print(body)
    print("=" * len(banner))
