"""Offline stream-pattern analysis (the Section II-B / VI-D study).

Classifies windows of a page-access trace into the paper's three stream
shapes — simple, ladder, ripple — or irregular.  Used by the deep-dive
bench and the pattern-study example to show *why* the full memory trace
matters: the ladder/ripple share of HPL and NPB-MG is exactly the
coverage SSP alone leaves on the table.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.hopp.rsp import ripple_score
from repro.hopp.ssp import dominant_stride


@dataclass
class PatternBreakdown:
    """Window counts per pattern class."""

    counts: Dict[str, int] = field(
        default_factory=lambda: {
            "simple": 0,
            "ladder": 0,
            "ripple": 0,
            "irregular": 0,
        }
    )

    def add(self, label: str) -> None:
        self.counts[label] += 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, label: str) -> float:
        total = self.total
        return self.counts[label] / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {label: self.fraction(label) for label in self.counts}


def classify_window(vpns: Sequence[int], pattern_len: int = 2) -> str:
    """Label one window of page accesses.

    Priority mirrors the three-tier cascade: a dominant stride makes a
    simple stream; a repeating short stride pattern makes a ladder; a
    high ripple score makes a ripple; anything else is irregular.
    """
    if len(vpns) < 4:
        return "irregular"
    strides = [b - a for a, b in zip(vpns, vpns[1:])]
    if dominant_stride(strides, min_count=len(vpns) // 2) is not None:
        return "simple"
    if _has_repeating_pattern(strides, pattern_len):
        return "ladder"
    if ripple_score(strides) >= len(vpns) // 2:
        return "ripple"
    return "irregular"


def _has_repeating_pattern(strides: Sequence[int], pattern_len: int) -> bool:
    """True when the newest ``pattern_len`` strides recur at least twice
    earlier in the window (the LSP candidate condition)."""
    if len(strides) < 2 * pattern_len + 1:
        return False
    target = tuple(strides[-pattern_len:])
    occurrences = 0
    for end in range(len(strides) - 1, pattern_len - 1, -1):
        if tuple(strides[end - pattern_len : end]) == target:
            occurrences += 1
    return occurrences >= 2


def analyze_trace(
    vpns: Iterable[int],
    window: int = 16,
    stream_delta: int = 64,
) -> PatternBreakdown:
    """Cluster a VPN stream into address-space streams (like the STT)
    and classify each full window."""
    breakdown = PatternBreakdown()
    streams: List[List[int]] = []
    for vpn in vpns:
        target = None
        best = stream_delta + 1
        for stream in streams:
            distance = abs(vpn - stream[-1])
            if distance <= stream_delta and distance < best:
                target = stream
                best = distance
        if target is None:
            target = []
            streams.append(target)
            if len(streams) > 64:
                streams.pop(0)
        target.append(vpn)
        if len(target) >= window:
            breakdown.add(classify_window(target[-window:]))
            del target[: -window + 1]
    return breakdown


def page_sequence(trace: Iterable[Tuple[int, int]], page_shift: int = 12) -> List[int]:
    """Collapse a (pid, vaddr) access trace to its distinct-page-visit
    VPN sequence (consecutive duplicates removed)."""
    vpns: List[int] = []
    last = None
    for _, vaddr in trace:
        vpn = vaddr >> page_shift
        if vpn != last:
            vpns.append(vpn)
            last = vpn
    return vpns
