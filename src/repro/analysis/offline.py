"""Offline prefetch studies over captured traces.

The paper's methodology ran HoPP's software over HMTT traces captured
offline before the live prototype existed (Section II-B's accuracy /
coverage study, the Table II sweeps).  This module reproduces that
workflow: replay a physical READ trace through HPD → STT → trainer and
report what the prefetcher *would have* requested — no machine, no
timing, just prediction quality against the trace's own future.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.common.types import TraceRecord
from repro.hopp.hpd import HotPageDetector
from repro.hopp.stt import StreamTrainingTable
from repro.hopp.three_tier import ThreeTierTrainer, TierConfig


@dataclass
class OfflineStudy:
    """Prediction-quality report for one trace replay."""

    accesses: int = 0
    hot_pages: int = 0
    observations: int = 0
    decisions_by_tier: Dict[str, int] = field(default_factory=dict)
    no_decision: int = 0
    #: Predictions whose target page is accessed within the lookahead
    #: horizon (the offline notion of a useful prefetch).
    predictions: int = 0
    useful_predictions: int = 0

    @property
    def prediction_accuracy(self) -> float:
        return (
            self.useful_predictions / self.predictions if self.predictions else 0.0
        )

    @property
    def hot_page_ratio(self) -> float:
        return self.hot_pages / self.accesses if self.accesses else 0.0


def replay_study(
    records: Iterable[TraceRecord],
    hpd_threshold: int = 8,
    tiers: Optional[TierConfig] = None,
    offset: int = 4,
    lookahead: int = 4096,
) -> OfflineStudy:
    """Replay a trace through the HoPP software pipeline.

    The trace is physical; PPN == VPN (identity mapping) is assumed, as
    in the paper's offline studies where the trace was captured from a
    quiescent single-application run.  A prediction at position *t* for
    page *p* counts as useful when *p* is accessed within ``lookahead``
    records after *t*.
    """
    records = list(records)
    study = OfflineStudy()
    hpd = HotPageDetector(threshold=hpd_threshold)
    stt = StreamTrainingTable()
    trainer = ThreeTierTrainer(tiers or TierConfig())

    # Index of future accesses per page for the usefulness check.
    future: Dict[int, list] = {}
    for position, record in enumerate(records):
        future.setdefault(record.ppn, []).append(position)

    import bisect

    for position, record in enumerate(records):
        study.accesses += 1
        hot = hpd.process(record.paddr, record.is_write)
        if hot is None:
            continue
        study.hot_pages += 1
        observation = stt.feed(0, hot)
        if observation is None:
            continue
        study.observations += 1
        decision = trainer.train(observation)
        if decision is None:
            study.no_decision += 1
            continue
        study.decisions_by_tier[decision.tier] = (
            study.decisions_by_tier.get(decision.tier, 0) + 1
        )
        target = decision.target_vpn(offset)
        study.predictions += 1
        positions = future.get(target)
        if positions:
            index = bisect.bisect_right(positions, position)
            if index < len(positions) and positions[index] - position <= lookahead:
                study.useful_predictions += 1
    return study
