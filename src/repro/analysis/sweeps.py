"""Parameter-sweep utilities for research use.

A light harness over the execution engine: define a grid of (workload,
system, fraction, fabric) points and get the results as labeled series
ready for tables or plotting.  Points are independent, so the grid can
fan out over worker processes (``jobs``) and reuse a persistent result
cache (``cache``) — both produce results byte-identical to a serial,
uncached sweep.  The benches hand-roll their specific sweeps for
transparency; this module is the general tool a downstream user reaches
for.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.exec.cache import ResultCache, TraceCache
from repro.exec.pool import execute, local_ct_spec
from repro.exec.spec import RunSpec
from repro.net.rdma import FabricConfig
from repro.sim import runner
from repro.sim import systems as systems_mod
from repro.sim.metrics import RunResult
from repro.sim.systems import SystemSpec
from repro.workloads import build as build_workload

#: A metric extractor: RunResult -> float.
Metric = Callable[[RunResult], float]

METRICS: Dict[str, Metric] = {
    "accuracy": lambda r: r.accuracy,
    "coverage": lambda r: r.coverage,
    "completion_time_us": lambda r: r.completion_time_us,
    "page_faults": lambda r: float(r.page_faults),
    "remote_accesses": lambda r: float(r.remote_accesses),
    "prefetch_wasted": lambda r: float(r.prefetch_wasted),
}


@dataclass(frozen=True)
class SweepPoint:
    workload: str
    system: str
    fraction: float
    seed: int = 1


@dataclass
class SweepResult:
    points: List[SweepPoint]
    results: Dict[SweepPoint, RunResult]
    ct_local: Dict[Tuple[str, int], float]

    def metric(self, point: SweepPoint, name: str) -> float:
        if name == "normalized_performance":
            return self.results[point].normalized_performance(
                self.ct_local[(point.workload, point.seed)]
            )
        return METRICS[name](self.results[point])

    def series(
        self,
        metric: str,
        group_by: str = "system",
        x_axis: str = "fraction",
    ) -> Dict[str, List[Tuple[float, float]]]:
        """Pivot into {group_label: [(x, y), ...]} for plotting.

        ``group_by``/``x_axis`` name SweepPoint fields.
        """
        out: Dict[str, List[Tuple[float, float]]] = {}
        for point in self.points:
            label = str(getattr(point, group_by))
            x = getattr(point, x_axis)
            out.setdefault(label, []).append(
                (float(x) if not isinstance(x, str) else 0.0,
                 self.metric(point, metric))
            )
        for values in out.values():
            values.sort()
        return out

    def to_rows(self, metrics: Sequence[str]) -> List[List[object]]:
        """Flat rows (one per point) for render_table / CSV export."""
        rows: List[List[object]] = []
        for point in self.points:
            rows.append(
                [point.workload, point.system, point.fraction]
                + [self.metric(point, name) for name in metrics]
            )
        return rows


def _engine_system_name(system: Union[str, SystemSpec]) -> Optional[str]:
    """The registry name to use for ``system``, or None when the spec is
    an unregistered object the engine cannot ship by name."""
    if isinstance(system, str):
        return system
    try:
        registered = systems_mod.build(system.name)
    except KeyError:
        return None
    return system.name if registered == system else None


def sweep(
    workloads: Iterable[str],
    systems: Iterable[Union[str, SystemSpec]],
    fractions: Iterable[float],
    seed: int = 1,
    fabric: Optional[FabricConfig] = None,
    workload_kwargs: Optional[Dict[str, dict]] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> SweepResult:
    """Run the full cross product and collect results.

    ``workload_kwargs`` maps workload name -> constructor overrides
    (e.g. scaled-down instances for quick sweeps).  ``jobs`` fans the
    grid (and the CT_local reference runs) out over worker processes;
    ``cache`` serves previously computed points from disk.  Unregistered
    ``SystemSpec`` objects cannot cross a process boundary by name, so
    those points run in-process and uncached, exactly as before.
    """
    fabric = fabric or FabricConfig(seed=seed)
    workload_kwargs = workload_kwargs or {}
    workload_list = list(workloads)
    system_list = list(systems)
    fraction_list = list(fractions)

    # One CT_local reference per workload config, then the grid itself;
    # everything goes through execute() in a single batch so the pool
    # and the cache see the whole sweep at once.
    specs: List[RunSpec] = [
        local_ct_spec(name, seed, fabric, workload_kwargs.get(name, {}))
        for name in workload_list
    ]
    points: List[SweepPoint] = []
    spec_index: Dict[SweepPoint, int] = {}
    direct: Dict[SweepPoint, SystemSpec] = {}
    for name, system, fraction in itertools.product(
        workload_list, system_list, fraction_list
    ):
        system_name = system if isinstance(system, str) else system.name
        point = SweepPoint(name, system_name, fraction, seed)
        points.append(point)
        engine_name = _engine_system_name(system)
        if engine_name is None:
            direct[point] = system
            continue
        spec_index[point] = len(specs)
        specs.append(
            RunSpec(
                workload=name,
                system=engine_name,
                fraction=fraction,
                seed=seed,
                workload_kwargs=dict(workload_kwargs.get(name, {})),
                fabric=fabric,
            )
        )

    outputs = execute(specs, jobs=jobs, cache=cache)
    ct_local = {
        (name, seed): outputs[i].completion_time_us
        for i, name in enumerate(workload_list)
    }
    results: Dict[SweepPoint, RunResult] = {
        point: outputs[index] for point, index in spec_index.items()
    }
    if direct:
        traces = TraceCache()
        for point, system in direct.items():
            workload = build_workload(
                point.workload, seed=seed, **workload_kwargs.get(point.workload, {})
            )
            results[point] = runner.run(
                workload,
                system,
                point.fraction,
                fabric,
                trace=traces.get(point.workload, seed,
                                 workload_kwargs.get(point.workload, {})),
            )
    return SweepResult(points=points, results=results, ct_local=ct_local)
