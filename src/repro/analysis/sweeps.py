"""Parameter-sweep utilities for research use.

A light harness over the runner: define a grid of (workload, system,
fraction, fabric) points, run them once each, and get the results as
labeled series ready for tables or plotting.  The benches hand-roll
their specific sweeps for transparency; this module is the general
tool a downstream user reaches for.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.net.rdma import FabricConfig
from repro.sim import runner
from repro.sim.metrics import RunResult
from repro.sim.systems import SystemSpec
from repro.workloads import build as build_workload

#: A metric extractor: RunResult -> float.
Metric = Callable[[RunResult], float]

METRICS: Dict[str, Metric] = {
    "accuracy": lambda r: r.accuracy,
    "coverage": lambda r: r.coverage,
    "completion_time_us": lambda r: r.completion_time_us,
    "page_faults": lambda r: float(r.page_faults),
    "remote_accesses": lambda r: float(r.remote_accesses),
    "prefetch_wasted": lambda r: float(r.prefetch_wasted),
}


@dataclass(frozen=True)
class SweepPoint:
    workload: str
    system: str
    fraction: float
    seed: int = 1


@dataclass
class SweepResult:
    points: List[SweepPoint]
    results: Dict[SweepPoint, RunResult]
    ct_local: Dict[Tuple[str, int], float]

    def metric(self, point: SweepPoint, name: str) -> float:
        if name == "normalized_performance":
            return self.results[point].normalized_performance(
                self.ct_local[(point.workload, point.seed)]
            )
        return METRICS[name](self.results[point])

    def series(
        self,
        metric: str,
        group_by: str = "system",
        x_axis: str = "fraction",
    ) -> Dict[str, List[Tuple[float, float]]]:
        """Pivot into {group_label: [(x, y), ...]} for plotting.

        ``group_by``/``x_axis`` name SweepPoint fields.
        """
        out: Dict[str, List[Tuple[float, float]]] = {}
        for point in self.points:
            label = str(getattr(point, group_by))
            x = getattr(point, x_axis)
            out.setdefault(label, []).append(
                (float(x) if not isinstance(x, str) else 0.0,
                 self.metric(point, metric))
            )
        for values in out.values():
            values.sort()
        return out

    def to_rows(self, metrics: Sequence[str]) -> List[List[object]]:
        """Flat rows (one per point) for render_table / CSV export."""
        rows: List[List[object]] = []
        for point in self.points:
            rows.append(
                [point.workload, point.system, point.fraction]
                + [self.metric(point, name) for name in metrics]
            )
        return rows


def sweep(
    workloads: Iterable[str],
    systems: Iterable[Union[str, SystemSpec]],
    fractions: Iterable[float],
    seed: int = 1,
    fabric: Optional[FabricConfig] = None,
    workload_kwargs: Optional[Dict[str, dict]] = None,
) -> SweepResult:
    """Run the full cross product and collect results.

    ``workload_kwargs`` maps workload name -> constructor overrides
    (e.g. scaled-down instances for quick sweeps).
    """
    fabric = fabric or FabricConfig(seed=seed)
    workload_kwargs = workload_kwargs or {}
    points: List[SweepPoint] = []
    results: Dict[SweepPoint, RunResult] = {}
    ct_local: Dict[Tuple[str, int], float] = {}
    for name, system, fraction in itertools.product(
        workloads, systems, fractions
    ):
        system_name = system if isinstance(system, str) else system.name
        point = SweepPoint(name, system_name, fraction, seed)
        workload = build_workload(name, seed=seed, **workload_kwargs.get(name, {}))
        if (name, seed) not in ct_local:
            ct_local[(name, seed)] = runner.local_completion_time(workload, fabric)
        results[point] = runner.run(workload, system, fraction, fabric)
        points.append(point)
    return SweepResult(points=points, results=results, ct_local=ct_local)
