"""Rack-scale remote-memory cluster: multi-node pool, placement, failover."""

from repro.cluster.cluster import ClusterConfig, ClusterNode, RemoteMemoryCluster
from repro.cluster.placement import (
    AffinityPlacement,
    HashPlacement,
    InterleavePlacement,
    PlacementPolicy,
    build_placement,
    placement_names,
    register_placement,
)

__all__ = [
    "AffinityPlacement",
    "ClusterConfig",
    "ClusterNode",
    "HashPlacement",
    "InterleavePlacement",
    "PlacementPolicy",
    "RemoteMemoryCluster",
    "build_placement",
    "placement_names",
    "register_placement",
]
