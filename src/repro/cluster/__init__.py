"""Rack-scale remote-memory cluster: multi-node pool, placement,
failover, health monitoring, and background repair."""

from repro.cluster.cluster import (
    ClusterConfig,
    ClusterNode,
    PageLostError,
    RemoteMemoryCluster,
    SlotDirectoryError,
)
from repro.cluster.health import (
    HealthConfig,
    HealthMonitor,
    NodeState,
)
from repro.cluster.placement import (
    AffinityPlacement,
    HashPlacement,
    InterleavePlacement,
    PlacementPolicy,
    build_placement,
    placement_names,
    register_placement,
)
from repro.cluster.repair import RepairConfig, RepairEngine

__all__ = [
    "AffinityPlacement",
    "ClusterConfig",
    "ClusterNode",
    "HashPlacement",
    "HealthConfig",
    "HealthMonitor",
    "InterleavePlacement",
    "NodeState",
    "PageLostError",
    "PlacementPolicy",
    "RemoteMemoryCluster",
    "RepairConfig",
    "RepairEngine",
    "SlotDirectoryError",
    "build_placement",
    "placement_names",
    "register_placement",
]
