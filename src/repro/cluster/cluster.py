"""The rack-scale remote-memory cluster.

The paper's prototype uses one passive memory node behind one
Infiniband link; :class:`RemoteMemoryCluster` generalizes that to N
:class:`~repro.net.remote.RemoteMemoryNode`s, each behind its own
:class:`~repro.net.rdma.RdmaFabric` with independent congestion state
and an optional per-node :class:`~repro.net.faults.FaultInjector`
(seeded ``plan.seed + node_id``, so links fail independently but
reproducibly).

The cluster owns the **slot directory**: swap slots are still allocated
globally (monotonic, by :class:`~repro.kernel.swap.SwapSpace`, which is
what Fastswap's slot-neighbor read-ahead depends on) and the directory
encodes each slot's location as (node, slot) — the primary holder plus
``replication - 1`` ring-successor replicas.  Placement of the primary
is pluggable (:mod:`repro.cluster.placement`).

Failover semantics (exercised by remote-restart fault windows):

* **demand reads** retry on the next replica when ``replication > 1``
  (``demand_failovers``); with a single copy they fall back to the
  single-node backoff-retry behaviour;
* **writebacks** re-route to the next node that does not already hold
  the slot (``writeback_reroutes``), updating the directory;
* **prefetches** are never failed over — they drop through the
  existing unwind path, because a speculative read is not worth a
  second link's bandwidth while a node is restarting.

Invariant: a 1-node cluster with ``interleave`` placement issues the
exact same sequence of fabric and node operations as the pre-cluster
single-node path, so its metrics are byte-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Set, Tuple

from repro.cluster.placement import PlacementPolicy, build_placement
from repro.net.faults import FaultInjector, FaultPlan
from repro.net.rdma import FabricConfig, RdmaFabric
from repro.net.remote import RemoteMemoryNode


class SlotDirectoryError(KeyError):
    """Lookup of a slot the directory has no entry for.

    Before the self-healing layer this silently fell back to node 0,
    which masked directory corruption; now it is a typed error — a read
    of an unplaced slot is always a caller bug or lost state."""


class PageLostError(RuntimeError):
    """Every copy of a page died with its node(s).

    ``Machine`` resolves the fault by mapping a zero-filled frame and
    counting ``pages_zero_filled`` — the disaggregated-memory analogue
    of an uncorrectable machine check on the lost DRAM."""

    def __init__(
        self, pid: int, vpn: int, slot: int, waited_us: float = 0.0
    ) -> None:
        super().__init__(
            f"page (pid={pid}, vpn={vpn}) lost: slot {slot} had no "
            f"surviving replica"
        )
        self.pid = pid
        self.vpn = vpn
        self.slot = slot
        #: Detection latency already paid by the faulting access when
        #: the loss was discovered mid-retry.
        self.waited_us = waited_us


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of the remote-memory pool.

    ``nodes``                   memory nodes, each behind its own link.
    ``placement``               primary-copy placement policy name.
    ``replication``             copies per page (1 = no replicas).
    ``capacity_pages_per_node`` override; default splits the machine's
                                total remote capacity evenly.
    ``node_tiers``              optional per-node *memory-tier* labels
                                ("pool" = pooled CXL tier, "far" = RDMA
                                far tier; see :mod:`repro.memtier` —
                                not the HoPP SSP/LSP/RSP prefetch
                                tiers).  None (the default) is the
                                untiered legacy cluster.
    """

    nodes: int = 1
    placement: str = "interleave"
    replication: int = 1
    capacity_pages_per_node: Optional[int] = None
    node_tiers: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
        if not 1 <= self.replication <= self.nodes:
            raise ValueError(
                f"replication must be in [1, nodes={self.nodes}], "
                f"got {self.replication}"
            )
        if (
            self.capacity_pages_per_node is not None
            and self.capacity_pages_per_node < 1
        ):
            raise ValueError("capacity_pages_per_node must be >= 1")
        if self.node_tiers is not None:
            tiers = tuple(self.node_tiers)
            object.__setattr__(self, "node_tiers", tiers)
            if len(tiers) != self.nodes:
                raise ValueError(
                    f"node_tiers must label every node: got {len(tiers)} "
                    f"labels for {self.nodes} nodes"
                )
            bad = sorted({t for t in tiers if t not in ("pool", "far")})
            if bad:
                raise ValueError(
                    f"node_tiers entries must be 'pool' or 'far', got {bad}"
                )
            if "far" not in tiers:
                raise ValueError(
                    "node_tiers needs at least one 'far' node — demotion "
                    "under pool pressure has nowhere to go without one"
                )
        # Fail on typos at construction, not mid-run.
        build_placement(self.placement)


def _plan_for_node(plan: FaultPlan, node_id: int, nnodes: int) -> FaultPlan:
    """Derive node ``node_id``'s share of a cluster-wide fault plan.

    Probabilistic drops and degraded epochs are fabric-wide conditions:
    every node keeps them, with an independent RNG (``seed + node_id``).
    Windowed single-machine faults — link flaps, remote stalls, remote
    restarts — strike one node at a time: window *i* lands on node
    ``i % nnodes``, so a restart takes down one node while its replicas
    stay reachable (which is what failover exists for).  With one node
    this is the identity partition, keeping single-node runs byte-equal
    to the pre-cluster path.
    """

    def share(windows):
        return tuple(
            w for i, w in enumerate(windows) if i % nnodes == node_id
        )

    return replace(
        plan,
        seed=plan.seed + node_id,
        link_down=share(plan.link_down),
        remote_stall=share(plan.remote_stall),
        remote_restart=share(plan.remote_restart),
        # Crash/rejoin times are index-paired, and ``share`` filters both
        # by the same index, so each node keeps its pairs intact.
        node_crash=share(plan.node_crash),
        node_rejoin=share(plan.node_rejoin),
    )


class ClusterNode:
    """One memory node and the link leading to it."""

    def __init__(
        self,
        node_id: int,
        fabric: RdmaFabric,
        remote: RemoteMemoryNode,
        injector: Optional[FaultInjector] = None,
        tier: Optional[str] = None,
    ) -> None:
        self.node_id = node_id
        self.fabric = fabric
        self.remote = remote
        self.injector = injector
        #: Memory-tier label ("pool"/"far"); None on untiered clusters.
        self.tier = tier

    def stats_snapshot(self) -> Dict[str, object]:
        snap = {
            "node": self.node_id,
            "fabric": self.fabric.stats_snapshot(),
            "remote": self.remote.stats_snapshot(),
        }
        if self.tier is not None:
            snap["tier"] = self.tier
        return snap

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ClusterNode(id={self.node_id}, fabric={self.fabric!r}, "
            f"remote={self.remote!r})"
        )


class RemoteMemoryCluster:
    """N remote nodes, a slot directory, and failover bookkeeping."""

    def __init__(
        self,
        config: ClusterConfig,
        total_capacity_pages: int,
        fabric_config: Optional[FabricConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        memtier=None,
    ) -> None:
        self.config = config
        base = fabric_config or FabricConfig()
        tiers = config.node_tiers
        if tiers is not None and memtier is None:
            # Tier labels without explicit parameters: derive the pool
            # link/capacity from the defaults.
            from repro.memtier.tiers import MemtierConfig

            memtier = MemtierConfig()
        #: The memory-tier parameters (None on untiered clusters); the
        #: ``tiered`` placement reads the pool watermark from here.
        self.memtier_config = memtier if tiers is not None else None
        if tiers is None:
            per_node = config.capacity_pages_per_node or max(
                int(math.ceil(total_capacity_pages / config.nodes)), 1
            )
            capacity_of = [per_node] * config.nodes
            fabric_of = [base] * config.nodes
            tier_of = [None] * config.nodes
        else:
            # The far tier splits the machine's remote capacity (it is
            # the backing store); pool nodes take their own capacity and
            # sit behind a CXL-class link derived by the ratio method.
            far_count = sum(1 for t in tiers if t == "far")
            far_share = config.capacity_pages_per_node or max(
                int(math.ceil(total_capacity_pages / far_count)), 1
            )
            pool_share = (
                config.capacity_pages_per_node
                or memtier.pool_capacity_pages
                or far_share
            )
            cxl = memtier.cxl_fabric_config(base)
            capacity_of = [
                pool_share if t == "pool" else far_share for t in tiers
            ]
            fabric_of = [cxl if t == "pool" else base for t in tiers]
            tier_of = list(tiers)
        armed = fault_plan is not None and not fault_plan.is_empty
        self.nodes: List[ClusterNode] = []
        for node_id in range(config.nodes):
            injector = (
                FaultInjector(_plan_for_node(fault_plan, node_id, config.nodes))
                if armed
                else None
            )
            link = fabric_of[node_id]
            fabric = RdmaFabric(
                replace(link, seed=link.seed + node_id), injector=injector
            )
            remote = RemoteMemoryNode(
                capacity_of[node_id], injector=injector, tier=tier_of[node_id]
            )
            self.nodes.append(
                ClusterNode(node_id, fabric, remote, injector, tier=tier_of[node_id])
            )
        #: Hotness oracle ``(pid, vpn) -> bool`` installed by the
        #: machine's migration engine; the ``tiered`` placement consults
        #: it.  None (untiered, or tiering disabled) means nothing hot.
        self.memtier_hot = None
        self.placement: PlacementPolicy = build_placement(config.placement)
        #: slot -> node ids holding a copy, primary first.
        self._holders: Dict[int, List[int]] = {}
        #: Slots whose every copy died with its node — reads of these
        #: must zero-fill, not hit the fabric.
        self._lost_slots: Set[int] = set()
        #: Slots poisoned by the integrity controller: every copy failed
        #: checksum verification (CXL poison semantics — the data still
        #: *exists*, so holders stay in the directory, but reads must
        #: zero-fill and promotion to the pool tier is barred).
        self._poisoned_slots: Set[int] = set()
        #: Optional :class:`~repro.cluster.health.HealthMonitor`;
        #: attached by ``Machine`` when recovery is armed.  When present,
        #: placement and re-routing skip non-placeable (DOWN/DRAINING)
        #: nodes; when absent, behaviour is byte-identical to pre-health.
        self.health = None
        # Failover counters, surfaced into RunResult.
        self.demand_failovers = 0
        self.writeback_reroutes = 0
        self.replica_writes = 0
        self.directory_misses = 0

    # -- topology ---------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def node_tiers(self) -> Optional[Tuple[str, ...]]:
        """Per-node memory-tier labels (None on untiered clusters)."""
        return self.config.node_tiers

    def node_load(self, node_id: int) -> int:
        """Pages currently stored on ``node_id`` (placement input)."""
        return self.nodes[node_id].remote.pages_stored

    def has_room(self, node_id: int) -> bool:
        node = self.nodes[node_id].remote
        return node.pages_stored < node.capacity_pages

    # -- the slot directory -----------------------------------------------------------

    def _placeable(self, node_id: int) -> bool:
        """Whether new copies may land on ``node_id`` (health-gated)."""
        return self.health is None or self.health.is_placeable(node_id)

    def assign(self, slot: int, pid: int, vpn: int) -> List[ClusterNode]:
        """Place ``slot`` for a writeback: primary by policy, replicas
        on the ring successors.  DOWN/DRAINING nodes are skipped when a
        health monitor is attached.  Returns the holders in write order."""
        primary = self.placement.place(pid, vpn, slot, self)
        if self.health is None:
            holders = [
                (primary + k) % self.node_count
                for k in range(self.config.replication)
            ]
        else:
            holders = []
            for hop in range(self.node_count):
                candidate = (primary + hop) % self.node_count
                if self._placeable(candidate):
                    holders.append(candidate)
                    if len(holders) == self.config.replication:
                        break
            if not holders:
                # Nowhere healthy to place: fall back to the policy's
                # choice and let the node's own availability check
                # raise, which routes the caller into backoff-retry.
                holders = [primary]
        self._holders[slot] = holders
        return [self.nodes[node_id] for node_id in holders]

    def read_candidates(self, slot: int) -> List[ClusterNode]:
        """Holders of ``slot`` in failover order (primary first).

        Raises :class:`SlotDirectoryError` for a slot the directory does
        not know — silently handing back node 0 (the old behaviour)
        masked directory corruption."""
        holders = self._holders.get(slot)
        if not holders:
            self.directory_misses += 1
            raise SlotDirectoryError(
                f"slot {slot} has no directory entry"
            )
        return [self.nodes[node_id] for node_id in holders]

    def primary_node(self, slot: int) -> ClusterNode:
        holders = self._holders.get(slot)
        if not holders:
            self.directory_misses += 1
            raise SlotDirectoryError(
                f"slot {slot} has no directory entry"
            )
        return self.nodes[holders[0]]

    def reroute(self, slot: int, failed_node_id: int) -> ClusterNode:
        """A writeback to ``failed_node_id`` found the node unavailable:
        pick the next ring node not already holding the slot, update the
        directory, and return it.  With nowhere else to go (replication
        spans every node) the original node is returned and the caller
        falls back to backoff-retry."""
        holders = self._holders.setdefault(slot, [failed_node_id])
        for hop in range(1, self.node_count):
            candidate = (failed_node_id + hop) % self.node_count
            if candidate not in holders and self._placeable(candidate):
                if failed_node_id in holders:
                    self._holders[slot] = [
                        candidate if node_id == failed_node_id else node_id
                        for node_id in holders
                    ]
                else:
                    # The failed holder was already dropped (its crash
                    # was detected mid-writeback): the new node joins
                    # the survivors instead of replacing anything.
                    holders.append(candidate)
                self.writeback_reroutes += 1
                return self.nodes[candidate]
        return self.nodes[failed_node_id]

    def release(self, slot: int) -> None:
        """Drop every copy of ``slot`` (the page is local again)."""
        for node_id in self._holders.pop(slot, ()):  # pragma: no branch
            self.nodes[node_id].remote.release(slot)
        self._lost_slots.discard(slot)
        self._poisoned_slots.discard(slot)

    def holders_of(self, slot: int) -> Tuple[int, ...]:
        return tuple(self._holders.get(slot, ()))

    def slots_in_directory(self) -> Tuple[int, ...]:
        return tuple(self._holders)

    # -- recovery bookkeeping (driven by the repair engine) -----------------------------

    def drop_holder(self, slot: int, node_id: int) -> None:
        """Remove ``node_id`` from a slot's holder list (its copy died);
        the directory entry disappears when the last holder goes."""
        holders = self._holders.get(slot)
        if holders is None or node_id not in holders:
            return
        holders.remove(node_id)
        if not holders:
            del self._holders[slot]

    def add_holder(self, slot: int, node_id: int) -> None:
        """Record a repaired copy of ``slot`` on ``node_id``."""
        holders = self._holders.get(slot)
        if holders is None:
            self._holders[slot] = [node_id]
        elif node_id not in holders:
            holders.append(node_id)

    def migrate_holder(self, slot: int, from_id: int, to_id: int) -> bool:
        """The migration engine moved ``slot``'s copy from ``from_id``
        to ``to_id``: swap the holder in place (a migrated primary stays
        primary).  Returns False — and changes nothing — when the entry
        moved under the engine or the target already holds a replica."""
        holders = self._holders.get(slot)
        if holders is None or from_id not in holders or to_id in holders:
            return False
        self._holders[slot] = [
            to_id if node_id == from_id else node_id for node_id in holders
        ]
        return True

    def mark_lost(self, slot: int) -> None:
        """Every copy of ``slot`` died; remember it for zero-fill."""
        self._holders.pop(slot, None)
        self._lost_slots.add(slot)
        self._poisoned_slots.discard(slot)

    def is_lost(self, slot: int) -> bool:
        return slot in self._lost_slots

    @property
    def lost_slot_count(self) -> int:
        return len(self._lost_slots)

    def mark_poisoned(self, slot: int) -> None:
        """Every copy of ``slot`` failed verification.  Unlike
        :meth:`mark_lost` the holders stay: the known-bad data still
        occupies its slots until the page is released or salvaged."""
        self._poisoned_slots.add(slot)

    def is_poisoned(self, slot: int) -> bool:
        return slot in self._poisoned_slots

    @property
    def poisoned_slot_count(self) -> int:
        return len(self._poisoned_slots)

    # -- aggregate metrics --------------------------------------------------------------

    @property
    def fabric_reads(self) -> int:
        return sum(node.fabric.reads for node in self.nodes)

    @property
    def fabric_writes(self) -> int:
        return sum(node.fabric.writes for node in self.nodes)

    @property
    def bytes_moved(self) -> int:
        return sum(node.fabric.bytes_moved for node in self.nodes)

    @property
    def pages_stored(self) -> int:
        return sum(node.remote.pages_stored for node in self.nodes)

    def conserved(self) -> bool:
        """True when every node's slot accounting balances."""
        return all(node.remote.conserved for node in self.nodes)

    def stats_snapshot(self) -> Dict[str, object]:
        snap = {
            "nodes": self.node_count,
            "placement": self.placement.name,
            "replication": self.config.replication,
            "demand_failovers": self.demand_failovers,
            "writeback_reroutes": self.writeback_reroutes,
            "replica_writes": self.replica_writes,
            "directory_misses": self.directory_misses,
            "lost_slots": len(self._lost_slots),
            "per_node": [node.stats_snapshot() for node in self.nodes],
        }
        if self.config.node_tiers is not None:
            snap["node_tiers"] = list(self.config.node_tiers)
        return snap

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RemoteMemoryCluster(nodes={self.node_count}, "
            f"placement={self.placement.name!r}, "
            f"replication={self.config.replication}, "
            f"stored={self.pages_stored})"
        )
