"""Background re-replication and graceful drain for the cluster.

When the health monitor declares a node DOWN, every directory entry
that listed it is degraded: slots with a surviving replica are
*under-replicated*, slots whose only copy lived on the dead node are
*lost*.  The :class:`RepairEngine` owns both outcomes:

* **detection** (:meth:`on_node_down`) is immediate and directory-only:
  dead holders are dropped, lost slots are recorded on the cluster for
  zero-fill, and one repair task per under-replicated slot is queued.
  No data moves yet — detection is a metadata operation.
* **re-replication** (:meth:`pump`) is background and *paid for*: each
  repaired page is a bulk READ on a surviving holder's fabric plus a
  bulk WRITE on the new holder's fabric, so repair traffic queues
  behind (and delays) demand traffic exactly like any other transfer.
  The pump is rate-limited (``repair_interval_us`` between page copies)
  so a large dead node does not saturate every link at once.
* **drain** (:meth:`on_drain`) evacuates a live node copy-then-release,
  for graceful decommission; **rejoin top-up** (:meth:`on_node_rejoin`)
  re-replicates onto a returning (empty) node any slot still below its
  replication target.

Every decision is a function of (directory state, plan, seed): repair
is exactly as deterministic as the failure that triggered it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Optional, Tuple

from repro.cluster.health import NodeState
from repro.common.constants import PAGE_SIZE
from repro.net.faults import TransferTimeout
from repro.telemetry.events import EV_REPAIR

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.cluster.cluster import RemoteMemoryCluster
    from repro.cluster.health import HealthMonitor
    from repro.kernel.swap import SwapSpace


@dataclass(frozen=True)
class RepairConfig:
    """Repair-traffic shaping.

    ``repair_interval_us``  minimum spacing between repair page copies
                            (the rate limit: 10 us/page = ~3.3 Gbps of
                            repair traffic at 4 KB pages).
    ``max_task_retries``    re-queue budget per task when its transfers
                            keep timing out under an active fault plan.
    """

    repair_interval_us: float = 10.0
    max_task_retries: int = 16

    def __post_init__(self) -> None:
        if self.repair_interval_us < 0:
            raise ValueError("repair_interval_us must be >= 0")
        if self.max_task_retries < 0:
            raise ValueError("max_task_retries must be >= 0")


#: (kind, slot, node_id): kind is "replicate" (node_id unused, -1) or
#: "evacuate" (node_id is the draining source to empty).
_Task = Tuple[str, int, int]


class RepairEngine:
    def __init__(
        self,
        cluster: "RemoteMemoryCluster",
        monitor: "HealthMonitor",
        swap_space: "SwapSpace",
        config: RepairConfig = RepairConfig(),
    ) -> None:
        self.cluster = cluster
        self.monitor = monitor
        self.swap_space = swap_space
        self.config = config
        self._queue: Deque[_Task] = deque()
        self._queued: set = set()
        #: Telemetry event bus; None keeps the pump probe-free.  Set by
        #: the machine when telemetry is armed.
        self.bus = None
        #: Optional :class:`~repro.integrity.scrub.PatrolScrubber`
        #: riding this engine's rate limiter: repair tasks always win
        #: the issue slot, scrub audits run in the idle gaps.  Set by
        #: the machine when ``--scrub-rate`` arms it.
        self.scrubber = None
        self._retries_of: dict = {}
        self._next_issue_us = 0.0
        # Counters surfaced into RunResult.
        self.pages_repaired = 0
        self.pages_lost = 0
        self.pages_drained = 0
        self.repair_reads = 0
        self.repair_writes = 0
        self.repair_retries = 0
        self.repair_skipped = 0

    @property
    def idle(self) -> bool:
        return not self._queue

    @property
    def pending_tasks(self) -> int:
        return len(self._queue)

    @property
    def repair_bytes(self) -> int:
        return (self.repair_reads + self.repair_writes) * PAGE_SIZE

    # -- recovery events (from the health monitor) -------------------------------------

    def on_node_down(self, node_id: int, now_us: float) -> None:
        """Permanent crash detected: fix the directory now, queue the
        data movement for the pump."""
        cluster = self.cluster
        store = cluster.nodes[node_id].remote
        for slot in cluster.slots_in_directory():
            holders = cluster.holders_of(slot)
            if node_id not in holders:
                continue
            if len(holders) > 1:
                cluster.drop_holder(slot, node_id)
                self._enqueue(("replicate", slot, -1))
            elif store.holds(slot):
                # The dead node held the only copy: the page is gone.
                cluster.mark_lost(slot)
                self.pages_lost += 1
            else:
                # A directory entry whose write never landed (the node
                # died mid-writeback): the page is still local, so just
                # drop the entry and let the writeback re-route.
                cluster.drop_holder(slot, node_id)
        # The store itself is gone with the machine; wiping it keeps
        # per-node accounting conserved via its pages_lost counter.
        cluster.nodes[node_id].remote.crash()

    def on_node_rejoin(self, node_id: int, now_us: float) -> None:
        """A replacement node racked in (empty): top up any slot still
        below its replication target."""
        target = self.cluster.config.replication
        for slot in self.cluster.slots_in_directory():
            if len(self.cluster.holders_of(slot)) < target:
                self._enqueue(("replicate", slot, -1))

    def on_drain(self, node_id: int) -> None:
        """Evacuate every slot held by a DRAINING node."""
        for slot in self.cluster.slots_in_directory():
            if node_id in self.cluster.holders_of(slot):
                self._enqueue(("evacuate", slot, node_id))

    # -- the background pump -----------------------------------------------------------

    def pump(self, now_us: float) -> None:
        """Advance repair by at most one page copy, respecting the rate
        limit.  Called from the machine's access loop, so repair
        progresses with simulated time and its transfers contend with
        demand traffic on the shared links.  With the queue empty, the
        idle slot goes to the patrol scrubber (when armed and due) —
        scrub audits share the limiter instead of adding load on top."""
        if now_us < self._next_issue_us:
            return
        if not self._queue:
            scrubber = self.scrubber
            if scrubber is not None and scrubber.due(now_us):
                self._next_issue_us = now_us + self.config.repair_interval_us
                scrubber.step(now_us)
            return
        self._next_issue_us = now_us + self.config.repair_interval_us
        task = self._queue.popleft()
        self._queued.discard(task)
        kind, slot, source_id = task
        if kind == "replicate":
            self._replicate(task, slot, now_us)
        else:
            self._evacuate(task, slot, source_id, now_us)
        self._check_drains(now_us)

    def flush(self, now_us: float) -> None:
        """Run the queue dry, ignoring the rate limit (end-of-run
        convergence; transfers are still issued and paid on the links)."""
        guard = (
            (len(self._queue) + 1)
            * (self.config.max_task_retries + 2)
            * (self.cluster.config.replication + 1)
        )
        while self._queue and guard > 0:
            guard -= 1
            self._next_issue_us = now_us
            self.pump(now_us)
            now_us += self.config.repair_interval_us
        self._check_drains(now_us)

    # -- task execution ----------------------------------------------------------------

    def _replicate(self, task: _Task, slot: int, now_us: float) -> None:
        """Copy ``slot`` from a surviving holder onto a new live node."""
        cluster = self.cluster
        holders = cluster.holders_of(slot)
        if not holders or len(holders) >= self._replication_goal():
            return  # released or already repaired meanwhile
        source = self._pick_source(slot, holders, now_us)
        target_id = self._pick_target(holders)
        if source is None or target_id is None:
            self.repair_skipped += 1
            return
        if not self._copy(task, slot, source, target_id, now_us):
            return
        cluster.add_holder(slot, target_id)
        self.pages_repaired += 1
        if len(cluster.holders_of(slot)) < self._replication_goal():
            self._enqueue(("replicate", slot, -1))

    def _evacuate(
        self, task: _Task, slot: int, source_id: int, now_us: float
    ) -> None:
        """Move ``slot`` off a DRAINING node (copy first, then release)."""
        cluster = self.cluster
        holders = cluster.holders_of(slot)
        if source_id not in holders:
            return  # released or already moved meanwhile
        if len(holders) > 1:
            # Another copy exists; just drop this one and let the
            # replicate path restore the count if needed.
            cluster.drop_holder(slot, source_id)
            cluster.nodes[source_id].remote.release(slot)
            self.pages_drained += 1
            if len(cluster.holders_of(slot)) < self._replication_goal():
                self._enqueue(("replicate", slot, -1))
            return
        target_id = self._pick_target(holders)
        if target_id is None:
            self.repair_skipped += 1
            return
        source = cluster.nodes[source_id]
        if not self._copy(task, slot, source, target_id, now_us):
            return
        cluster.add_holder(slot, target_id)
        cluster.drop_holder(slot, source_id)
        source.remote.release(slot)
        self.pages_drained += 1

    def _copy(self, task, slot, source, target_id, now_us) -> bool:
        """One modeled page copy: bulk READ on the source link, bulk
        WRITE on the target link issued at the read's completion.  On a
        timeout the task re-queues (bounded), so repair under an active
        fault plan converges once the hostile window passes."""
        page = self.swap_space.page_at(slot)
        if page is None:
            return False
        pid, vpn = page
        target = self.cluster.nodes[target_id]
        try:
            read_done = source.fabric.read_page(now_us)
            source.remote.read(slot, now_us=now_us)
            self.repair_reads += 1
            target.fabric.write_page(read_done)
            target.remote.write(slot, pid, vpn, now_us=read_done)
            self.repair_writes += 1
            self._retries_of.pop(task, None)
            if self.bus is not None:
                self.bus.emit(
                    EV_REPAIR, now_us,
                    task=task[0], slot=slot, node=target_id,
                )
            return True
        except TransferTimeout:
            retries = self._retries_of.get(task, 0)
            if retries < self.config.max_task_retries:
                self._retries_of[task] = retries + 1
                self.repair_retries += 1
                self._enqueue(task)
            else:
                self._retries_of.pop(task, None)
                self.repair_skipped += 1
            return False

    # -- helpers -----------------------------------------------------------------------

    def _replication_goal(self) -> int:
        """Replicas a slot should have: the configured target, capped by
        how many nodes can currently accept copies."""
        return min(
            self.cluster.config.replication, self.monitor.placeable_count()
        )

    def _pick_source(self, slot, holders, now_us):
        """First readable holder whose stored copy passes its checksum;
        a corrupt-ledger holder is the fallback only when no clean one
        exists (re-replicating a bad copy propagates the corruption for
        the integrity controller to untangle later)."""
        fallback = None
        for node_id in holders:
            node = self.cluster.nodes[node_id]
            if not self.monitor.is_readable(node_id):
                continue
            if node.remote.checksums.is_clean(slot, now_us):
                return node
            if fallback is None:
                fallback = node
        return fallback

    def _pick_target(self, holders) -> Optional[int]:
        """First ring node after the primary that is placeable, not
        already a holder, and has room."""
        start = holders[0] if holders else 0
        for hop in range(1, self.cluster.node_count + 1):
            candidate = (start + hop) % self.cluster.node_count
            if candidate in holders:
                continue
            if not self.monitor.is_placeable(candidate):
                continue
            if self.cluster.has_room(candidate):
                return candidate
        return None

    def _enqueue(self, task: _Task) -> None:
        if task not in self._queued:
            self._queued.add(task)
            self._queue.append(task)

    def _check_drains(self, now_us: float) -> None:
        """Finish any drain whose node is empty with no pending tasks."""
        draining = [
            node_id
            for node_id, state in self.monitor.states_snapshot().items()
            if state == NodeState.DRAINING.value
        ]
        if not draining:
            return
        pending = {
            node_id for kind, _, node_id in self._queue if kind == "evacuate"
        }
        for node_id in draining:
            if node_id in pending:
                continue
            if self.cluster.nodes[node_id].remote.pages_stored == 0:
                self.monitor.finish_drain(node_id, now_us)

    def stats_snapshot(self) -> dict:
        return {
            "pages_repaired": self.pages_repaired,
            "pages_lost": self.pages_lost,
            "pages_drained": self.pages_drained,
            "repair_reads": self.repair_reads,
            "repair_writes": self.repair_writes,
            "repair_bytes": self.repair_bytes,
            "repair_retries": self.repair_retries,
            "repair_skipped": self.repair_skipped,
            "pending_tasks": self.pending_tasks,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RepairEngine(repaired={self.pages_repaired}, "
            f"lost={self.pages_lost}, pending={self.pending_tasks})"
        )
