"""Per-node health monitoring for the remote-memory cluster.

DRackSim-style rack simulators treat node failure as a first-class
cluster event, not just a flaky link; this module gives each
:class:`~repro.net.remote.RemoteMemoryNode` a small state machine:

```
        observed timeouts / missed heartbeat
  UP ─────────────────────────────────────────► SUSPECT
  ▲                                               │
  │ observed success                              │ probe confirms the
  │                                               ▼ node is dead
  └────────────────────────────────────────────  DOWN
                                                  │ node answers again
 UP ◄── next heartbeat ──  REJOINING  ◄───────────┘ (node_rejoin time)
  │
  │ drain requested                     drain queue emptied
  └──────────────► DRAINING ──────────────► REJOINING
```

* **UP** — serving; placeable.
* **SUSPECT** — consecutive demand/writeback timeouts crossed the
  threshold, or a heartbeat found the node unresponsive.  Still
  placeable (the condition may be a transient window); one observed
  success clears it.
* **DOWN** — a probe confirmed a permanent crash
  (``FaultPlan.node_crash``).  Not placeable, not readable; the repair
  engine re-replicates its directory entries.
* **DRAINING** — operator-requested graceful removal: no new
  writebacks land, reads still serve, and the repair engine evacuates
  its pages.
* **REJOINING** — the node answers again (``node_rejoin``) or its
  drain completed; re-admitted to placement at the next heartbeat.

Detection is deterministic: heartbeats fire on simulated-time
boundaries (``heartbeat_interval_us``), probes ask the node's own
seeded :class:`~repro.net.faults.FaultInjector`, and no control-plane
message ever touches the data fabric — so arming the monitor without a
crash in the plan leaves every data-path number byte-identical.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.telemetry.events import EV_NODE_STATE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.cluster.cluster import RemoteMemoryCluster


class NodeState(enum.Enum):
    UP = "up"
    SUSPECT = "suspect"
    DOWN = "down"
    DRAINING = "draining"
    REJOINING = "rejoining"


#: Health events emitted to the repair engine: (event, node_id).
EVENT_DOWN = "down"
EVENT_REJOIN = "rejoin"
EVENT_DRAIN_DONE = "drain_done"

HealthEvent = Tuple[str, int]


@dataclass(frozen=True)
class HealthConfig:
    """Detection knobs.

    ``heartbeat_interval_us``    control-plane poll period; bounds how
                                 stale the monitor's view can be.
    ``suspect_after_timeouts``   consecutive data-path timeouts on one
                                 node before it turns SUSPECT.
    """

    heartbeat_interval_us: float = 500.0
    suspect_after_timeouts: int = 3

    def __post_init__(self) -> None:
        if self.heartbeat_interval_us <= 0:
            raise ValueError("heartbeat_interval_us must be > 0")
        if self.suspect_after_timeouts < 1:
            raise ValueError("suspect_after_timeouts must be >= 1")


class HealthMonitor:
    """Tracks one :class:`NodeState` per cluster node.

    Fed from two sides: the data path reports per-node timeouts and
    successes as they happen (free — the traffic existed anyway), and
    :meth:`tick` models the periodic control-plane heartbeat that
    notices crashes even when no demand traffic touches the dead node.
    """

    def __init__(
        self,
        cluster: "RemoteMemoryCluster",
        config: HealthConfig = HealthConfig(),
    ) -> None:
        self.cluster = cluster
        self.config = config
        self._states: Dict[int, NodeState] = {
            node.node_id: NodeState.UP for node in cluster.nodes
        }
        self._consecutive_timeouts: Dict[int, int] = {
            node.node_id: 0 for node in cluster.nodes
        }
        self._next_heartbeat_us = 0.0
        #: Elastic-capacity overlay: node ids parked out of placement
        #: (scenario autoscaler standby pool).  A standby node keeps its
        #: UP state machine — it is healthy hardware, just not serving —
        #: so crash detection still works the instant it is activated.
        #: Empty (the default) leaves every placement decision untouched.
        self._standby: set = set()
        #: Nodes whose in-progress drain should park them in standby
        #: instead of re-admitting them (autoscaler scale-in).
        self._retire_after_drain: set = set()
        #: Telemetry event bus; None keeps transitions probe-free.  Set
        #: by the machine when telemetry is armed — the monitor never
        #: creates one itself.
        self.bus = None
        #: (now_us, node_id, from_state, to_state) audit trail.
        self.transitions: List[Tuple[float, int, NodeState, NodeState]] = []
        self.node_crashes = 0
        self.node_rejoins = 0
        self.drains_completed = 0

    # -- queries ----------------------------------------------------------------------

    def state(self, node_id: int) -> NodeState:
        return self._states[node_id]

    def is_placeable(self, node_id: int) -> bool:
        """New copies may land here (UP/SUSPECT/REJOINING, not standby)."""
        if node_id in self._standby:
            return False
        return self._states[node_id] not in (NodeState.DOWN, NodeState.DRAINING)

    def is_standby(self, node_id: int) -> bool:
        return node_id in self._standby

    def standby_nodes(self) -> List[int]:
        return sorted(self._standby)

    def is_readable(self, node_id: int) -> bool:
        """Existing copies may be read (everything but DOWN)."""
        return self._states[node_id] is not NodeState.DOWN

    def placeable_count(self) -> int:
        return sum(
            1 for node_id in self._states if self.is_placeable(node_id)
        )

    def states_snapshot(self) -> Dict[int, str]:
        return {
            node_id: state.value for node_id, state in self._states.items()
        }

    # -- data-path observations --------------------------------------------------------

    def observe_timeout(self, node_id: int, now_us: float) -> List[HealthEvent]:
        """A demand read or writeback to ``node_id`` timed out."""
        self._consecutive_timeouts[node_id] += 1
        state = self._states[node_id]
        if (
            state is NodeState.UP
            and self._consecutive_timeouts[node_id]
            >= self.config.suspect_after_timeouts
        ):
            self._transition(node_id, NodeState.SUSPECT, now_us)
            state = NodeState.SUSPECT
        if state is NodeState.SUSPECT:
            return self._probe(node_id, now_us)
        return []

    def observe_success(self, node_id: int, now_us: float) -> None:
        """A transfer to ``node_id`` completed: it is demonstrably up."""
        self._consecutive_timeouts[node_id] = 0
        if self._states[node_id] is NodeState.SUSPECT:
            self._transition(node_id, NodeState.UP, now_us)

    # -- control plane ----------------------------------------------------------------

    def tick(self, now_us: float, force: bool = False) -> List[HealthEvent]:
        """The periodic heartbeat: probe every node, advance REJOINING
        nodes to UP, and return the recovery events that fired.
        ``force`` probes regardless of the schedule (end-of-run
        convergence) without disturbing the next scheduled beat."""
        if not force:
            if now_us < self._next_heartbeat_us:
                return []
            self._next_heartbeat_us = now_us + self.config.heartbeat_interval_us
        events: List[HealthEvent] = []
        for node_id in self._states:
            if self._states[node_id] is NodeState.REJOINING:
                self._transition(node_id, NodeState.UP, now_us)
                continue
            events.extend(self._probe(node_id, now_us))
        return events

    def start_drain(self, node_id: int, now_us: float) -> None:
        """Operator request: evacuate ``node_id`` gracefully."""
        state = self._states[node_id]
        if state is not NodeState.UP and state is not NodeState.SUSPECT:
            raise ValueError(
                f"cannot drain node {node_id} in state {state.value}"
            )
        self._transition(node_id, NodeState.DRAINING, now_us)

    def finish_drain(self, node_id: int, now_us: float) -> None:
        """The repair engine emptied a DRAINING node.  A node flagged by
        :meth:`retire_after_drain` parks in standby (scale-in); anyone
        else re-admits at the next heartbeat (operator maintenance)."""
        if self._states[node_id] is NodeState.DRAINING:
            self.drains_completed += 1
            if node_id in self._retire_after_drain:
                self._retire_after_drain.discard(node_id)
                self._standby.add(node_id)
                self._transition(node_id, NodeState.UP, now_us)
            else:
                self._transition(node_id, NodeState.REJOINING, now_us)

    # -- elastic capacity (scenario autoscaler) ----------------------------------------

    def retire(self, node_id: int) -> None:
        """Park an (empty) node in standby immediately — used to mark
        the initial standby pool before any page lands on it."""
        self._standby.add(node_id)

    def retire_after_drain(self, node_id: int) -> None:
        """Flag a node so that, once its drain completes, it parks in
        standby instead of rejoining placement."""
        self._retire_after_drain.add(node_id)

    def activate(self, node_id: int) -> None:
        """Return a standby node to placement (autoscaler scale-out)."""
        self._standby.discard(node_id)
        self._retire_after_drain.discard(node_id)

    # -- internals --------------------------------------------------------------------

    def _probe(self, node_id: int, now_us: float) -> List[HealthEvent]:
        """Ask the node's injector whether it is permanently dead; drive
        DOWN and REJOIN transitions off the answer."""
        injector = self.cluster.nodes[node_id].injector
        dead = injector is not None and injector.node_dead(now_us)
        state = self._states[node_id]
        if dead and state in (NodeState.UP, NodeState.SUSPECT, NodeState.DRAINING):
            self._transition(node_id, NodeState.DOWN, now_us)
            self.node_crashes += 1
            return [(EVENT_DOWN, node_id)]
        if not dead and state is NodeState.DOWN:
            self._transition(node_id, NodeState.REJOINING, now_us)
            self.node_rejoins += 1
            return [(EVENT_REJOIN, node_id)]
        return []

    def _transition(self, node_id: int, to: NodeState, now_us: float) -> None:
        frm = self._states[node_id]
        if frm is to:
            return
        self._states[node_id] = to
        self.transitions.append((now_us, node_id, frm, to))
        if self.bus is not None:
            self.bus.emit(
                EV_NODE_STATE, now_us,
                node=node_id, frm=frm.value, to=to.value,
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HealthMonitor({self.states_snapshot()})"
