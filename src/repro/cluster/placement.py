"""Page placement policies for the remote-memory cluster.

A placement policy decides which node receives the primary copy of a
page at writeback time (replicas, when configured, follow in ring order
after the primary — see :mod:`repro.cluster.cluster`).  Policies are
deterministic functions of (pid, vpn, slot) plus whatever state the
policy itself accumulates, so cluster runs stay exactly as reproducible
as single-node runs.

Three built-ins:

* ``interleave`` — round-robin in swap-slot order.  Slots are allocated
  monotonically in eviction order, so this spreads writeback batches
  evenly across every link; it is also the identity placement on a
  1-node cluster, which is what the single-node-equivalence invariant
  rests on.
* ``hash`` — a stateless mix of (pid, vpn), so a page that is evicted,
  faulted back, and evicted again lands on the same node every time.
* ``affinity`` — co-locate each process's pages on the fewest nodes: a
  pid gets the least-loaded node as its home on first writeback and
  sticks to it, spilling to the next node in ring order only when the
  home runs out of room.  Keeps scatter-gather prefetch batches on one
  link.

Plus the memory-tier policy (:mod:`repro.memtier`):

* ``tiered`` — on a cluster whose nodes carry memory-tier labels, hot
  pages (per the migration engine's hotness ledger) go to the
  least-loaded pooled CXL node with room; everything else prefers the
  pool up to its high watermark (the pool is the *near* tier) and
  spills to the far tier in interleave order.  On an untiered cluster
  it degrades to plain ``interleave``.

Registry errors are typed: :class:`UnknownPlacementError` for lookups
of unregistered names, :class:`DuplicatePlacementError` for
re-registrations — both list the available names.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.cluster.cluster import RemoteMemoryCluster


class UnknownPlacementError(KeyError):
    """Lookup of a placement name that is not registered.

    Subclasses :class:`KeyError` so pre-existing ``except KeyError``
    callers keep working; carries the requested name and the sorted
    known names."""

    def __init__(self, name: str, known: Iterable[str]) -> None:
        known = tuple(sorted(known))
        super().__init__(
            f"unknown placement {name!r}; known: {', '.join(known)}"
        )
        self.name = name
        self.known = known


class DuplicatePlacementError(ValueError):
    """``register_placement`` of a name that is already taken."""

    def __init__(self, name: str, known: Iterable[str]) -> None:
        known = tuple(sorted(known))
        super().__init__(
            f"placement {name!r} is already registered; "
            f"known: {', '.join(known)}"
        )
        self.name = name
        self.known = known


class PlacementPolicy:
    """Maps a page being written back to the node holding its primary
    copy.  Instances may be stateful and belong to exactly one cluster."""

    name = "base"

    def place(
        self, pid: int, vpn: int, slot: int, cluster: "RemoteMemoryCluster"
    ) -> int:
        raise NotImplementedError


class InterleavePlacement(PlacementPolicy):
    """Round-robin in slot-allocation (i.e. eviction) order."""

    name = "interleave"

    def place(
        self, pid: int, vpn: int, slot: int, cluster: "RemoteMemoryCluster"
    ) -> int:
        return slot % cluster.node_count


class HashPlacement(PlacementPolicy):
    """Stateless deterministic hash of (pid, vpn): a page keeps its node
    across re-evictions regardless of slot churn."""

    name = "hash"

    def place(
        self, pid: int, vpn: int, slot: int, cluster: "RemoteMemoryCluster"
    ) -> int:
        # Knuth-style multiplicative mix; Python's builtin hash() is
        # avoided so placement never depends on PYTHONHASHSEED.
        mixed = (pid * 1_000_003) ^ (vpn * 2_654_435_761)
        return mixed % cluster.node_count


class AffinityPlacement(PlacementPolicy):
    """Co-locate a process's pages on the fewest nodes.

    The home node is chosen least-loaded-first when the pid writes back
    its first page; later pages follow the home and spill in ring order
    only when it has no free capacity.
    """

    name = "affinity"

    def __init__(self) -> None:
        self._home: Dict[int, int] = {}

    def place(
        self, pid: int, vpn: int, slot: int, cluster: "RemoteMemoryCluster"
    ) -> int:
        home = self._home.get(pid)
        if home is None:
            home = min(
                range(cluster.node_count),
                key=lambda n: (cluster.node_load(n), n),
            )
            self._home[pid] = home
        for hop in range(cluster.node_count):
            candidate = (home + hop) % cluster.node_count
            if cluster.has_room(candidate):
                return candidate
        # Every node is full; return home and let the node's own
        # capacity check raise, exactly like the single-node path.
        return home


class TieredPlacement(PlacementPolicy):
    """Memory-tier-aware placement (see :mod:`repro.memtier`).

    Hot pages — per the migration engine's ledger, exposed on the
    cluster as ``memtier_hot`` — take the least-loaded pooled node with
    hard room.  Cold pages also prefer the pool (it is the near tier)
    but only up to the high watermark, leaving headroom for hot pages;
    past it they interleave across the far tier.  When every node of
    the preferred tier is full the page spills to the other tier, and
    only a completely full cluster falls through to the far primary so
    the node's own capacity check raises, like the single-node path.
    """

    name = "tiered"

    def place(
        self, pid: int, vpn: int, slot: int, cluster: "RemoteMemoryCluster"
    ) -> int:
        tiers = getattr(cluster, "node_tiers", None)
        if not tiers:
            # Untiered cluster: behave exactly like interleave.
            return slot % cluster.node_count
        pool = [n for n, t in enumerate(tiers) if t == "pool"]
        far = [n for n, t in enumerate(tiers) if t == "far"]
        if not pool or not far:
            only = pool or far
            return only[slot % len(only)]
        hot_fn = getattr(cluster, "memtier_hot", None)
        if hot_fn is not None and hot_fn(pid, vpn):
            candidates = [n for n in pool if cluster.has_room(n)]
            if candidates:
                return min(candidates, key=lambda n: (cluster.node_load(n), n))
        config = getattr(cluster, "memtier_config", None)
        high_fraction = (
            config.pool_high_watermark if config is not None else 0.9
        )
        start = slot % len(pool)
        for hop in range(len(pool)):
            node_id = pool[(start + hop) % len(pool)]
            remote = cluster.nodes[node_id].remote
            high = max(int(high_fraction * remote.capacity_pages), 1)
            if remote.pages_stored < high:
                return node_id
        start = slot % len(far)
        for hop in range(len(far)):
            node_id = far[(start + hop) % len(far)]
            if cluster.has_room(node_id):
                return node_id
        # Watermarked pool, full far tier: take any hard pool room left.
        for node_id in pool:
            if cluster.has_room(node_id):
                return node_id
        return far[slot % len(far)]


_PLACEMENTS: Dict[str, Type[PlacementPolicy]] = {
    InterleavePlacement.name: InterleavePlacement,
    HashPlacement.name: HashPlacement,
    AffinityPlacement.name: AffinityPlacement,
    TieredPlacement.name: TieredPlacement,
}


def build_placement(name: str) -> PlacementPolicy:
    """Instantiate a placement policy; raises with the known names."""
    cls = _PLACEMENTS.get(name)
    if cls is None:
        raise UnknownPlacementError(name, _PLACEMENTS)
    return cls()


def placement_names() -> list:
    return sorted(_PLACEMENTS)


def register_placement(cls: Type[PlacementPolicy]) -> None:
    """Extension point: add a custom placement policy.  Re-registering
    a taken name raises :class:`DuplicatePlacementError` — silently
    shadowing a built-in would corrupt every config that names it."""
    if cls.name in _PLACEMENTS:
        raise DuplicatePlacementError(cls.name, _PLACEMENTS)
    _PLACEMENTS[cls.name] = cls
