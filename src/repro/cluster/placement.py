"""Page placement policies for the remote-memory cluster.

A placement policy decides which node receives the primary copy of a
page at writeback time (replicas, when configured, follow in ring order
after the primary — see :mod:`repro.cluster.cluster`).  Policies are
deterministic functions of (pid, vpn, slot) plus whatever state the
policy itself accumulates, so cluster runs stay exactly as reproducible
as single-node runs.

Three built-ins:

* ``interleave`` — round-robin in swap-slot order.  Slots are allocated
  monotonically in eviction order, so this spreads writeback batches
  evenly across every link; it is also the identity placement on a
  1-node cluster, which is what the single-node-equivalence invariant
  rests on.
* ``hash`` — a stateless mix of (pid, vpn), so a page that is evicted,
  faulted back, and evicted again lands on the same node every time.
* ``affinity`` — co-locate each process's pages on the fewest nodes: a
  pid gets the least-loaded node as its home on first writeback and
  sticks to it, spilling to the next node in ring order only when the
  home runs out of room.  Keeps scatter-gather prefetch batches on one
  link.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.cluster.cluster import RemoteMemoryCluster


class PlacementPolicy:
    """Maps a page being written back to the node holding its primary
    copy.  Instances may be stateful and belong to exactly one cluster."""

    name = "base"

    def place(
        self, pid: int, vpn: int, slot: int, cluster: "RemoteMemoryCluster"
    ) -> int:
        raise NotImplementedError


class InterleavePlacement(PlacementPolicy):
    """Round-robin in slot-allocation (i.e. eviction) order."""

    name = "interleave"

    def place(
        self, pid: int, vpn: int, slot: int, cluster: "RemoteMemoryCluster"
    ) -> int:
        return slot % cluster.node_count


class HashPlacement(PlacementPolicy):
    """Stateless deterministic hash of (pid, vpn): a page keeps its node
    across re-evictions regardless of slot churn."""

    name = "hash"

    def place(
        self, pid: int, vpn: int, slot: int, cluster: "RemoteMemoryCluster"
    ) -> int:
        # Knuth-style multiplicative mix; Python's builtin hash() is
        # avoided so placement never depends on PYTHONHASHSEED.
        mixed = (pid * 1_000_003) ^ (vpn * 2_654_435_761)
        return mixed % cluster.node_count


class AffinityPlacement(PlacementPolicy):
    """Co-locate a process's pages on the fewest nodes.

    The home node is chosen least-loaded-first when the pid writes back
    its first page; later pages follow the home and spill in ring order
    only when it has no free capacity.
    """

    name = "affinity"

    def __init__(self) -> None:
        self._home: Dict[int, int] = {}

    def place(
        self, pid: int, vpn: int, slot: int, cluster: "RemoteMemoryCluster"
    ) -> int:
        home = self._home.get(pid)
        if home is None:
            home = min(
                range(cluster.node_count),
                key=lambda n: (cluster.node_load(n), n),
            )
            self._home[pid] = home
        for hop in range(cluster.node_count):
            candidate = (home + hop) % cluster.node_count
            if cluster.has_room(candidate):
                return candidate
        # Every node is full; return home and let the node's own
        # capacity check raise, exactly like the single-node path.
        return home


_PLACEMENTS: Dict[str, Type[PlacementPolicy]] = {
    InterleavePlacement.name: InterleavePlacement,
    HashPlacement.name: HashPlacement,
    AffinityPlacement.name: AffinityPlacement,
}


def build_placement(name: str) -> PlacementPolicy:
    """Instantiate a placement policy; raises with the known names."""
    cls = _PLACEMENTS.get(name)
    if cls is None:
        raise KeyError(
            f"unknown placement {name!r}; known: {', '.join(sorted(_PLACEMENTS))}"
        )
    return cls()


def placement_names() -> list:
    return sorted(_PLACEMENTS)


def register_placement(cls: Type[PlacementPolicy]) -> None:
    """Extension point: add a custom placement policy."""
    _PLACEMENTS[cls.name] = cls
