"""Memory-tier parameters and the CXL link derivation.

The pooled tier's link is not configured from scratch: following the
hybrid-memory NUMA-emulation methodology (PAPERS.md), it is *derived*
from the far link by latency/bandwidth ratios.  The anchor points are
the simulator's own constants — a DRAM hit costs ``T_DRAM_HIT_US``
(0.1 us) and a far-tier RDMA page read ``T_RDMA_PAGE_US`` (4 us) — and
published CXL measurements put a CXL hop at ~3-10x DRAM latency.  The
default ``cxl_latency_us`` of 0.8 us sits at 8x DRAM and 5x *under*
RDMA, squarely in that band; jitter scales with the same ratio (a
shorter link has proportionally less queueing variance) and bandwidth
defaults to a CXL x8 link (~256 Gbps vs the 56 Gbps Infiniband
default).  Spike behaviour (probability, factor) is inherited from the
far link: congestion events are fabric-wide conditions, only their
scale changes with the link.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.common.constants import T_DRAM_HIT_US, T_RDMA_PAGE_US
from repro.net.rdma import FabricConfig

#: Memory-tier labels for cluster nodes.  (Distinct from the HoPP
#: SSP/LSP/RSP *prefetch* tiers — see the package docstring.)
TIER_POOL = "pool"
TIER_FAR = "far"

VALID_TIERS = (TIER_POOL, TIER_FAR)

#: Default CXL-class page-read latency: 8x a DRAM hit, 5x under RDMA.
T_CXL_PAGE_US = 8 * T_DRAM_HIT_US


@dataclass(frozen=True)
class MemtierConfig:
    """Shape of the pooled CXL tier and the migration policy.

    Topology
    --------
    ``pool_nodes``            pooled CXL nodes.  When the cluster config
                              carries no explicit ``node_tiers``, this
                              many pool nodes are added *in front of*
                              the configured (far) nodes.
    ``pool_capacity_pages``   per-pool-node capacity; None reuses the
                              far nodes' per-node share.

    Link derivation (see module docstring)
    --------------------------------------
    ``cxl_latency_us``        base page-read latency of a pool link.
    ``cxl_jitter_us``         pool-link jitter; None scales the far
                              link's jitter by the latency ratio.
    ``cxl_gbps``              pool-link bandwidth (CXL x8 class).

    Migration policy
    ----------------
    ``promote_touches``       far-tier demand reads of one page before
                              it counts as hot (touch-driven promotion).
    ``hot_promote``           accept HPD hot-page hints as a promotion
                              signal (the HoPP co-design: the hardware
                              detector feeds tiering, not just
                              prefetch).
    ``pool_high_watermark``   pool-node fill fraction that triggers
                              demotion of its coldest pages ...
    ``pool_low_watermark``    ... down to this fill fraction.
    ``migrate_interval_us``   rate limit between migration page copies
                              (same shaping role as repair traffic).
    ``max_migration_retries`` re-queue budget per migration under an
                              active fault plan.
    ``hot_set_limit``         bound on the tracked hot-page set (oldest
                              entries age out first).
    """

    pool_nodes: int = 1
    pool_capacity_pages: Optional[int] = None
    cxl_latency_us: float = T_CXL_PAGE_US
    cxl_jitter_us: Optional[float] = None
    cxl_gbps: float = 256.0
    promote_touches: int = 2
    hot_promote: bool = True
    pool_high_watermark: float = 0.9
    pool_low_watermark: float = 0.75
    migrate_interval_us: float = 10.0
    max_migration_retries: int = 8
    hot_set_limit: int = 8192

    def __post_init__(self) -> None:
        if self.pool_nodes < 1:
            raise ValueError(f"pool_nodes must be >= 1, got {self.pool_nodes}")
        if self.pool_capacity_pages is not None and self.pool_capacity_pages < 1:
            raise ValueError("pool_capacity_pages must be >= 1")
        if self.cxl_latency_us <= 0:
            raise ValueError("cxl_latency_us must be positive")
        if self.cxl_latency_us >= T_RDMA_PAGE_US:
            raise ValueError(
                f"cxl_latency_us must be under the far-tier RDMA latency "
                f"({T_RDMA_PAGE_US} us), got {self.cxl_latency_us} — a pool "
                f"slower than the far tier inverts the hierarchy"
            )
        if self.cxl_jitter_us is not None and self.cxl_jitter_us < 0:
            raise ValueError("cxl_jitter_us must be >= 0")
        if self.cxl_gbps <= 0:
            raise ValueError("cxl_gbps must be positive")
        if self.promote_touches < 1:
            raise ValueError("promote_touches must be >= 1")
        if not 0.0 < self.pool_low_watermark <= self.pool_high_watermark <= 1.0:
            raise ValueError(
                f"watermarks must satisfy 0 < low <= high <= 1, got "
                f"low={self.pool_low_watermark}, high={self.pool_high_watermark}"
            )
        if self.migrate_interval_us < 0:
            raise ValueError("migrate_interval_us must be >= 0")
        if self.max_migration_retries < 0:
            raise ValueError("max_migration_retries must be >= 0")
        if self.hot_set_limit < 1:
            raise ValueError("hot_set_limit must be >= 1")

    def cxl_fabric_config(self, far: FabricConfig) -> FabricConfig:
        """Derive the pool link from the far link by the ratio method:
        latency is set directly, jitter scales by the latency ratio
        (unless overridden), bandwidth becomes the CXL-class figure, and
        spike behaviour is inherited (fabric-wide conditions)."""
        ratio = (
            self.cxl_latency_us / far.base_latency_us
            if far.base_latency_us > 0
            else 1.0
        )
        jitter = (
            self.cxl_jitter_us
            if self.cxl_jitter_us is not None
            else far.jitter_us * ratio
        )
        return replace(
            far,
            base_latency_us=self.cxl_latency_us,
            jitter_us=jitter,
            gbps=self.cxl_gbps,
        )


def derive_node_tiers(far_nodes: int, pool_nodes: int) -> Tuple[str, ...]:
    """Tier labels for a topology of ``pool_nodes`` pooled CXL nodes in
    front of ``far_nodes`` RDMA nodes (the CLI's ``--mem-tiers`` shape:
    node ids 0..pool-1 are the pool, the rest are the far tier)."""
    if far_nodes < 1:
        raise ValueError("a tiered cluster needs at least one far node")
    if pool_nodes < 1:
        raise ValueError("a tiered cluster needs at least one pool node")
    return (TIER_POOL,) * pool_nodes + (TIER_FAR,) * far_nodes
