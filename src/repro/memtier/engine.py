"""Hotness-driven inter-tier page migration.

The :class:`MigrationEngine` owns the dynamic side of the memory-tier
model: which remote pages are *hot* (by page identity ``(pid, vpn)`` —
swap slots are released on every fault-back, so slot-keyed hotness
would forget a page the moment it mattered), and the background
promote/demote traffic that moves pages between the pooled CXL tier
and the RDMA far tier.

Hotness signals, both cheap and deterministic:

* **touch counts** — every far-tier demand read of a page bumps its
  touch count; at ``promote_touches`` the page is hot.  A page that
  keeps faulting in from the far tier is paying the full RDMA latency
  repeatedly — exactly the page the pool exists for.
* **HPD hints** — with ``hot_promote`` on, the HoPP data plane forwards
  every resolved hot-page detection (the paper's HPD -> RPT pipeline)
  into :meth:`note_hot`.  This is the co-design point: the same
  hardware hotness signal that drives prefetch drives tiering.

Migration mechanics copy the repair engine's discipline exactly: one
rate-limited page copy per pump (called only from remote-event paths —
the resident-hit fast path never sees the engine), each copy a modeled
bulk READ on the source link plus a bulk WRITE on the target link, with
bounded re-queue on :class:`~repro.net.faults.TransferTimeout`.  A
completed migration moves the store copy
(:meth:`~repro.net.remote.RemoteMemoryNode.migrate_out` + target
``write``) and the directory entry
(:meth:`~repro.cluster.cluster.RemoteMemoryCluster.migrate_holder`)
atomically between pumps, so the sanitizer's directory<->stores and
conservation checks hold at every access boundary.

Promotion flows:

* hot pages writing back land poolward directly (the ``tiered``
  placement policy consults :meth:`is_hot` — no transfer needed);
* hot pages already *resident in the far tier* (written back cold, or
  hinted by HPD while remote) queue a promote task;
* pool -> local needs no engine at all: it is the ordinary demand
  fault, just at CXL latency.

Demotion: when a pool node fills past ``pool_high_watermark``, its
coldest resident slots (oldest writeback first, hot pages spared) are
demoted to the far tier until the node is back under
``pool_low_watermark``.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from repro.common.constants import PAGE_SIZE
from repro.memtier.tiers import TIER_FAR, TIER_POOL, MemtierConfig
from repro.net.faults import TransferTimeout
from repro.telemetry.events import (
    EV_MEMTIER_DEMOTE,
    EV_MEMTIER_FAR_READ,
    EV_MEMTIER_POOL_READ,
    EV_MEMTIER_PROMOTE,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.cluster.cluster import ClusterNode, RemoteMemoryCluster
    from repro.kernel.swap import SwapSpace

#: (kind, slot, node_id): kind is "promote" (node_id unused, -1) or
#: "demote" (node_id is the pool source to relieve).
_Task = Tuple[str, int, int]


class MigrationEngine:
    def __init__(
        self,
        cluster: "RemoteMemoryCluster",
        swap_space: "SwapSpace",
        config: MemtierConfig = MemtierConfig(),
    ) -> None:
        self.cluster = cluster
        self.swap_space = swap_space
        self.config = config
        #: Telemetry event bus; None keeps every note/pump probe-free.
        #: Set by the machine when telemetry is armed.
        self.bus = None
        #: Integrity controller (:mod:`repro.integrity`); None keeps
        #: migration reads verify-free.  Set by the machine when
        #: corruption injection or the patrol scrubber is armed.
        self.integrity = None
        #: (pid, vpn) -> far-tier demand-read touches so far.  Bounded;
        #: insertion-ordered so the oldest entry ages out first.
        self._touches: Dict[Tuple[int, int], int] = {}
        #: Hot pages, as an insertion-ordered bounded set (dict keys).
        self._hot: Dict[Tuple[int, int], None] = {}
        #: Pool residency ledger: slot -> (pool node id, writeback seq).
        #: Insertion order is coldness order (oldest writeback first);
        #: entries are validated lazily at demotion time, so a slot
        #: released meanwhile is simply skipped and dropped.
        self._pool_seq: Dict[int, Tuple[int, int]] = {}
        self._seq = 0
        self._queue: Deque[_Task] = deque()
        self._queued: set = set()
        self._retries_of: dict = {}
        self._next_issue_us = 0.0
        # Counters surfaced into RunResult.memtier (all memtier_* in
        # exported form — never confusable with the prefetch tiers).
        self.pool_demand_reads = 0
        self.far_demand_reads = 0
        self.pool_prefetch_reads = 0
        self.far_prefetch_reads = 0
        self.pool_writebacks = 0
        self.far_writebacks = 0
        self.promotions = 0
        self.demotions = 0
        self.migration_reads = 0
        self.migration_writes = 0
        self.migration_retries = 0
        self.migrations_skipped = 0
        self.hot_hints = 0

    # -- hotness signals ---------------------------------------------------------------

    def is_hot(self, pid: int, vpn: int) -> bool:
        """Whether a page is currently considered hot (placement input)."""
        return (pid, vpn) in self._hot

    def note_hot(self, pid: int, vpn: int, now_us: float = 0.0) -> None:
        """HPD hot-page hint from the HoPP data plane.  If the page is
        currently resident in the far tier, queue its promotion."""
        if not self.config.hot_promote:
            return
        self.hot_hints += 1
        self._mark_hot((pid, vpn))
        slot = self.swap_space.slot_of(pid, vpn)
        if slot is None:
            return
        holders = self.cluster.holders_of(slot)
        if holders and self.cluster.nodes[holders[0]].tier == TIER_FAR:
            self._enqueue(("promote", slot, -1))

    def note_demand_read(
        self, node: "ClusterNode", pid: int, vpn: int, now_us: float
    ) -> None:
        """A demand fault was served by ``node``; count it per tier and
        advance the page's touch-driven hotness."""
        if node.tier == TIER_POOL:
            self.pool_demand_reads += 1
            if self.bus is not None:
                self.bus.emit(
                    EV_MEMTIER_POOL_READ, now_us,
                    node=node.node_id, pid=pid, vpn=vpn,
                )
            return
        self.far_demand_reads += 1
        if self.bus is not None:
            self.bus.emit(
                EV_MEMTIER_FAR_READ, now_us,
                node=node.node_id, pid=pid, vpn=vpn,
            )
        key = (pid, vpn)
        touches = self._touches.pop(key, 0) + 1
        if touches >= self.config.promote_touches:
            self._mark_hot(key)
        else:
            self._touches[key] = touches
            if len(self._touches) > self.config.hot_set_limit:
                self._touches.pop(next(iter(self._touches)))

    def note_prefetch_read(self, node: "ClusterNode", npages: int) -> None:
        """``npages`` prefetch READs were issued on ``node``'s link."""
        if node.tier == TIER_POOL:
            self.pool_prefetch_reads += npages
        else:
            self.far_prefetch_reads += npages

    def note_writeback(
        self, node: "ClusterNode", slot: int, pid: int, vpn: int, now_us: float
    ) -> None:
        """A reclaim writeback placed ``slot``'s primary on ``node``.
        Pool landings join the residency ledger and may build pressure;
        a hot page forced to the far tier queues its promotion."""
        if node.tier == TIER_POOL:
            self.pool_writebacks += 1
            self._seq += 1
            self._pool_seq[slot] = (node.node_id, self._seq)
            self._check_pressure(node)
            return
        self.far_writebacks += 1
        if (pid, vpn) in self._hot:
            self._enqueue(("promote", slot, -1))

    def note_poisoned(self, slot: int) -> None:
        """The integrity controller poisoned ``slot``: a pool-resident
        copy is force-demoted to the far tier — known-bad data must not
        occupy the scarce CXL pool."""
        entry = self._pool_seq.get(slot)
        if entry is not None:
            self._enqueue(("demote", slot, entry[0]))

    # -- the background pump -----------------------------------------------------------

    @property
    def idle(self) -> bool:
        return not self._queue

    @property
    def pending_tasks(self) -> int:
        return len(self._queue)

    @property
    def migration_bytes(self) -> int:
        return (self.migration_reads + self.migration_writes) * PAGE_SIZE

    def pump(self, now_us: float) -> None:
        """Advance migration by at most one page copy, respecting the
        rate limit.  Called only from the machine's remote-event paths
        (demand fault, writeback), so migration traffic contends with
        demand traffic on the shared links and the resident-hit fast
        path never pays for it."""
        if not self._queue or now_us < self._next_issue_us:
            return
        self._next_issue_us = now_us + self.config.migrate_interval_us
        task = self._queue.popleft()
        self._queued.discard(task)
        kind, slot, source_id = task
        if kind == "promote":
            self._promote(task, slot, now_us)
        else:
            self._demote(task, slot, source_id, now_us)

    def flush(self, now_us: float) -> None:
        """Run the migration queue dry, ignoring the rate limit
        (end-of-run convergence; transfers are still paid on the links).
        The guard bounds re-queues *and* the demotions a completed
        promotion can itself trigger."""
        guard = (
            (len(self._queue) + len(self._pool_seq) + 1)
            * (self.config.max_migration_retries + 2)
        )
        while self._queue and guard > 0:
            guard -= 1
            self._next_issue_us = now_us
            self.pump(now_us)
            now_us += self.config.migrate_interval_us

    # -- task execution ----------------------------------------------------------------

    def _promote(self, task: _Task, slot: int, now_us: float) -> None:
        """Move a hot far-tier page poolward."""
        cluster = self.cluster
        holders = cluster.holders_of(slot)
        if not holders or cluster.is_lost(slot):
            return  # released or lost meanwhile
        if cluster.is_poisoned(slot):
            # CXL poison semantics: a known-bad page never earns a pool
            # residency, however hot its identity looks.
            if self.integrity is not None:
                self.integrity.promotions_barred += 1
            return
        source_id = holders[0]
        source = cluster.nodes[source_id]
        if source.tier != TIER_FAR:
            return  # already poolward (re-placed meanwhile)
        page = self.swap_space.page_at(slot)
        if page is None or page not in self._hot:
            return  # slot recycled, or the page cooled off
        target_id = self._pick_pool_target(holders)
        if target_id is None:
            # No pool headroom right now; pressure demotions may be in
            # the queue behind us, so retry (bounded) instead of drop.
            self._requeue(task)
            return
        if not self._copy(task, slot, page, source, target_id, now_us):
            return
        source.remote.migrate_out(slot)
        cluster.migrate_holder(slot, source_id, target_id)
        self._seq += 1
        self._pool_seq[slot] = (target_id, self._seq)
        self.promotions += 1
        if self.bus is not None:
            self.bus.emit(
                EV_MEMTIER_PROMOTE, now_us,
                slot=slot, node=target_id, pid=page[0], vpn=page[1],
            )
        self._check_pressure(cluster.nodes[target_id])

    def _demote(
        self, task: _Task, slot: int, source_id: int, now_us: float
    ) -> None:
        """Move a cold pool page to the far tier (pressure relief)."""
        cluster = self.cluster
        holders = cluster.holders_of(slot)
        if not holders or holders[0] != source_id or cluster.is_lost(slot):
            self._pool_seq.pop(slot, None)
            return  # released, lost, or re-homed meanwhile
        source = cluster.nodes[source_id]
        page = self.swap_space.page_at(slot)
        if page is None or not source.remote.holds(slot):
            self._pool_seq.pop(slot, None)
            return
        target_id = self._pick_far_target(holders)
        if target_id is None:
            self.migrations_skipped += 1
            return
        if not self._copy(task, slot, page, source, target_id, now_us):
            return
        source.remote.migrate_out(slot)
        cluster.migrate_holder(slot, source_id, target_id)
        self._pool_seq.pop(slot, None)
        self.demotions += 1
        if self.bus is not None:
            self.bus.emit(
                EV_MEMTIER_DEMOTE, now_us,
                slot=slot, node=target_id, pid=page[0], vpn=page[1],
            )

    def _copy(
        self,
        task: _Task,
        slot: int,
        page: Tuple[int, int],
        source: "ClusterNode",
        target_id: int,
        now_us: float,
    ) -> bool:
        """One modeled migration copy: bulk READ on the source link,
        bulk WRITE on the target link at the read's completion.  On a
        timeout the task re-queues (bounded), like repair traffic."""
        health = self.cluster.health
        if health is not None and not health.is_readable(source.node_id):
            self._requeue(task)
            return False
        pid, vpn = page
        target = self.cluster.nodes[target_id]
        try:
            read_done = source.fabric.read_page(now_us)
            source.remote.read(slot, now_us=now_us)
            self.migration_reads += 1
            integrity = self.integrity
            if (
                integrity is not None
                and not self.cluster.is_poisoned(slot)
                and not source.remote.checksums.is_clean(slot, now_us)
            ):
                # Migration must not spread a corrupt copy: detect it,
                # repair the source in place from a clean replica, and
                # re-queue the move.  (A force-demote of an already
                # poisoned slot skips the verify — the corruption is
                # condemned, the move is the point.)
                integrity.note_detected(
                    now_us, slot, source.node_id,
                    since=source.remote.checksums.corrupt_since(slot),
                    source="migration",
                )
                outcome = integrity.resolve_stored_corruption(
                    slot, source.node_id, now_us
                )
                if outcome == "poisoned":
                    self.migrations_skipped += 1
                else:
                    self._requeue(task)
                return False
            target.fabric.write_page(read_done)
            target.remote.write(slot, pid, vpn, now_us=read_done)
            self.migration_writes += 1
            self._retries_of.pop(task, None)
            return True
        except TransferTimeout:
            self._requeue(task)
            return False

    # -- helpers -----------------------------------------------------------------------

    def _mark_hot(self, key: Tuple[int, int]) -> None:
        self._hot.pop(key, None)
        self._hot[key] = None
        if len(self._hot) > self.config.hot_set_limit:
            self._hot.pop(next(iter(self._hot)))

    def _check_pressure(self, node: "ClusterNode") -> None:
        """Queue demotions for ``node``'s coldest slots when it fills
        past the high watermark, down to the low watermark (counting
        demotions already queued, so pressure checks are idempotent)."""
        cap = node.remote.capacity_pages
        high = max(int(self.config.pool_high_watermark * cap), 1)
        if node.remote.pages_stored <= high:
            return
        low = max(int(self.config.pool_low_watermark * cap), 1)
        pending = sum(
            1 for kind, _, nid in self._queue
            if kind == "demote" and nid == node.node_id
        )
        goal = node.remote.pages_stored - low
        if goal <= pending:
            return
        ledger = sorted(self._pool_seq.items(), key=lambda item: item[1][1])
        # Two passes, both coldest-first: spare hot pages while cold
        # ones remain, but pressure beats hotness — a pool wedged full
        # of hot pages must still drain or promotions deadlock.
        for spare_hot in (True, False):
            for slot, (node_id, _) in ledger:
                if node_id != node.node_id:
                    continue
                if spare_hot:
                    page = self.swap_space.page_at(slot)
                    if page is not None and page in self._hot:
                        continue
                if self._enqueue(("demote", slot, node.node_id)):
                    pending += 1
                    if pending >= goal:
                        return

    def _pick_pool_target(self, holders) -> Optional[int]:
        """Least-loaded pool node with hard room that does not already
        hold the slot.  Hard room, not the watermark: a promotion into
        a pressured pool is still a win (the fault it saves pays RDMA
        latency today), and the post-promote pressure check queues the
        compensating demotion of a colder page."""
        best = None
        best_load = None
        for node_id in self._tier_ids(TIER_POOL):
            if node_id in holders or not self._placeable(node_id):
                continue
            remote = self.cluster.nodes[node_id].remote
            if remote.pages_stored >= remote.capacity_pages:
                continue
            load = remote.pages_stored
            if best is None or load < best_load:
                best, best_load = node_id, load
        return best

    def _pick_far_target(self, holders) -> Optional[int]:
        """Least-loaded far node with room, not already a holder."""
        best = None
        best_load = None
        for node_id in self._tier_ids(TIER_FAR):
            if node_id in holders or not self._placeable(node_id):
                continue
            remote = self.cluster.nodes[node_id].remote
            if remote.pages_stored >= remote.capacity_pages:
                continue
            load = remote.pages_stored
            if best is None or load < best_load:
                best, best_load = node_id, load
        return best

    def _tier_ids(self, tier: str) -> List[int]:
        return [
            node.node_id for node in self.cluster.nodes if node.tier == tier
        ]

    def _placeable(self, node_id: int) -> bool:
        health = self.cluster.health
        return health is None or health.is_placeable(node_id)

    def _enqueue(self, task: _Task) -> bool:
        if task in self._queued:
            return False
        self._queued.add(task)
        self._queue.append(task)
        return True

    def _requeue(self, task: _Task) -> None:
        retries = self._retries_of.get(task, 0)
        if retries < self.config.max_migration_retries:
            self._retries_of[task] = retries + 1
            self.migration_retries += 1
            self._enqueue(task)
        else:
            self._retries_of.pop(task, None)
            self.migrations_skipped += 1

    # -- export ------------------------------------------------------------------------

    def section(self) -> Dict[str, object]:
        """The ``RunResult.memtier`` block: topology echo, per-tier
        traffic counters, migration traffic, and end-of-run occupancy."""
        pool_ids = self._tier_ids(TIER_POOL)
        far_ids = self._tier_ids(TIER_FAR)
        nodes = self.cluster.nodes
        return {
            "pool_nodes": len(pool_ids),
            "far_nodes": len(far_ids),
            "pool_capacity_pages": sum(
                nodes[n].remote.capacity_pages for n in pool_ids
            ),
            "pool_pages_stored": sum(
                nodes[n].remote.pages_stored for n in pool_ids
            ),
            "far_pages_stored": sum(
                nodes[n].remote.pages_stored for n in far_ids
            ),
            "pool_demand_reads": self.pool_demand_reads,
            "far_demand_reads": self.far_demand_reads,
            "pool_prefetch_reads": self.pool_prefetch_reads,
            "far_prefetch_reads": self.far_prefetch_reads,
            "pool_writebacks": self.pool_writebacks,
            "far_writebacks": self.far_writebacks,
            "promotions": self.promotions,
            "demotions": self.demotions,
            "migration_reads": self.migration_reads,
            "migration_writes": self.migration_writes,
            "migration_bytes": self.migration_bytes,
            "migration_retries": self.migration_retries,
            "migrations_skipped": self.migrations_skipped,
            "hot_hints": self.hot_hints,
            "hot_pages_tracked": len(self._hot),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MigrationEngine(promotions={self.promotions}, "
            f"demotions={self.demotions}, pending={self.pending_tasks}, "
            f"hot={len(self._hot)})"
        )
