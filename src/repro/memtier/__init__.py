"""Memory tiers: local DRAM, a pooled CXL-class tier, and the RDMA far
tier — with hotness-driven inter-tier page migration.

Vocabulary note (the repo has two unrelated "tier" concepts):

* **Prefetch tiers** — the HoPP three-tier *prefetch cascade* SSP/LSP/
  RSP in :mod:`repro.hopp.three_tier`, which decides *how far ahead* to
  prefetch.  ``issued_by_tier`` / ``hits_by_tier`` and the fig-18/19/20
  benches use "tier" in that sense.
* **Memory tiers** — this package: *where a page physically lives*.
  Three levels, ordered by latency: local DRAM (the compute node's own
  memory), the pooled CXL tier (``"pool"`` nodes, ~3-10x DRAM latency),
  and the RDMA far tier (``"far"`` nodes, the classic disaggregated
  pool).  Everything here is prefixed ``memtier_`` — event kinds,
  time-series, Prometheus families, counters — so the two vocabularies
  can never collide in exported data.

The model layers onto the existing cluster rather than replacing it: a
memory tier is a *label on a cluster node*.  ``"pool"`` nodes sit
behind a CXL-class link (latency/bandwidth derived from the far link by
the NUMA-emulation ratio methodology — see
:meth:`~repro.memtier.tiers.MemtierConfig.cxl_fabric_config`) and
``"far"`` nodes keep the RDMA link.  The slot directory, replication,
failover, repair, and page-conservation machinery all apply unchanged;
migration is one more modeled bulk transfer
(:class:`~repro.memtier.engine.MigrationEngine`), and conservation
gains a fifth term: ``written == stored + overwritten + released +
lost + migrated_out`` per node.

With ``MachineConfig.memtier`` unset (the default) nothing in this
package is constructed and every run is byte-identical to the untiered
simulator (pinned against ``tests/data/goldens_v1.json``).
"""

from repro.memtier.engine import MigrationEngine
from repro.memtier.tiers import (
    TIER_FAR,
    TIER_POOL,
    MemtierConfig,
    derive_node_tiers,
)

__all__ = [
    "MemtierConfig",
    "MigrationEngine",
    "TIER_POOL",
    "TIER_FAR",
    "derive_node_tiers",
]
