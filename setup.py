"""Shim so `pip install -e .` works without the `wheel` package
(offline environments with legacy setuptools editable installs)."""

from setuptools import setup

setup()
