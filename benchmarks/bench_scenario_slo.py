"""Scenario bench — SLO attainment under offered-load saturation.

Sweeps offered load (per-round access quota) over a deliberately narrow
fabric, with and without a crash overlay, and reports per-tier SLO
attainment.  The claim under test is the degradation ladder's whole
point: when the system saturates, best-effort tenants absorb the pain —
their prefetch is throttled, their demand reads drop to the bulk QP,
their slices are halved — so guaranteed-tier attainment stays strictly
above best-effort attainment.  Scenario runs are not cacheable through
the execution engine (they are multi-round driven loops, not RunSpecs),
so the sweep is sized to run fresh in seconds.
"""

import pytest

from repro.analysis.report import print_artifact, render_table
from repro.net.faults import FaultPlan
from repro.net.rdma import FabricConfig
from repro.scenario import (
    ScenarioConfig,
    SloTarget,
    build_fleet,
    run_scenario,
)
from repro.scenario.traffic import TIER_GUARANTEED

from common import SEED, time_one

#: Narrow link: demand traffic saturates the priority QP as load rises.
GBPS = 1.0
TENANTS = 10
ROUNDS = 8
LOADS = (500, 1500, 3000)


def _config(accesses_per_round: int, chaos: bool) -> ScenarioConfig:
    return ScenarioConfig(
        name=f"slo-sweep-{accesses_per_round}{'-chaos' if chaos else ''}",
        tenants=tuple(
            build_fleet(
                TENANTS,
                seed=SEED,
                pattern="steady",
                rounds=ROUNDS,
                pages_per_tenant=120,
                staggered=False,
            )
        ),
        rounds=ROUNDS,
        accesses_per_round=accesses_per_round,
        remote_nodes=2,
        standby_nodes=1,
        replication=2,
        fabric=FabricConfig(gbps=GBPS, seed=SEED),
        fault_plan=FaultPlan.crash(seed=SEED, at_us=5_000.0) if chaos else None,
        seed=SEED,
        # Identical targets for both tiers: attainment then measures
        # latency head-to-head, so any gap is pure ladder shielding
        # (tier-relative targets would flatter whichever tier's ceiling
        # is looser).
        slo_guaranteed=SloTarget(p99_us=80.0, max_lost=0),
        slo_best_effort=SloTarget(p99_us=80.0, max_lost=0),
    )


def _tier_attainment(config: ScenarioConfig, section) -> dict:
    tier_of = {spec.name: spec.tier for spec in config.tenants}
    sums = {TIER_GUARANTEED: [], "best_effort": []}
    for name, tenant in section["slo"]["tenants"].items():
        sums[tier_of[name]].append(tenant["attainment"])
    return {
        tier: (sum(values) / len(values) if values else 1.0)
        for tier, values in sums.items()
    }


@pytest.mark.benchmark(group="scenario-slo")
def test_scenario_slo_attainment(benchmark):
    time_one(benchmark, lambda: run_scenario(_config(LOADS[0], chaos=False)))

    rows = []
    saturated = []
    for chaos in (False, True):
        for load in LOADS:
            config = _config(load, chaos)
            result = run_scenario(config)
            section = result.scenario
            attain = _tier_attainment(config, section)
            level = section["admission"]["level_name"]
            rows.append(
                [
                    load,
                    "crash" if chaos else "none",
                    level,
                    f"{attain[TIER_GUARANTEED]:.3f}",
                    f"{attain['best_effort']:.3f}",
                    section["admission"]["rejections"],
                    section["autoscaler"]["scale_outs"],
                    section["fatal"]["fatal_faults_absorbed"],
                ]
            )
            # Every run, chaotic or not, must complete conserving pages.
            assert section["conservation"]["cluster_conserved"]
            if level != "nominal":
                saturated.append((load, chaos, attain))

    print_artifact(
        "Scenario SLO attainment vs offered load "
        f"({TENANTS} tenants, {GBPS} gbps fabric)",
        render_table(
            ["load/round", "chaos", "ladder", "attain(guar)", "attain(be)",
             "rejected", "scale-outs", "zero-fills"],
            rows,
        ),
    )

    # The headline claim: wherever the ladder engaged, the guaranteed
    # tier ends strictly better off than best-effort.
    assert saturated, "sweep never saturated; raise LOADS or narrow GBPS"
    for load, chaos, attain in saturated:
        assert attain[TIER_GUARANTEED] > attain["best_effort"], (
            f"tier inversion at load={load} chaos={chaos}: {attain}"
        )
