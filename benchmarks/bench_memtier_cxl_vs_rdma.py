#!/usr/bin/env python
"""Memory-tier benchmark: HoPP on a pooled CXL tier vs plain RDMA.

The memory-tier subsystem (``repro.memtier``) models a CXL-style pooled
tier between local DRAM and the RDMA far tier, with its link derived
from the far link by the NUMA-emulation ratio methodology (8x the DRAM
hit, 5x under the RDMA page read).  This bench answers two questions:

* **Does the pool pay?**  HoPP-on-CXL (every remote page in the pooled
  tier) vs HoPP-on-RDMA (the untiered legacy model) vs noprefetch,
  normalized against the shared all-local CT_local of Section VI-A.
  CXL must win or tie at *every* workload point — the pool's link is
  strictly faster, so any loss would be a model bug.
* **Does migration work under pressure?**  A constrained-pool arm
  (pool far smaller than the working set) with telemetry armed, showing
  hotness-driven promotions, watermark demotions, and the per-tier
  time-series that reconcile with the section counters.

Emits ``BENCH_memtier.json`` (or ``--out``) so CI can archive the
comparison.  ``--quick`` shrinks the workloads for smoke use.

Usage::

    PYTHONPATH=src python benchmarks/bench_memtier_cxl_vs_rdma.py
        [--quick] [--out BENCH_memtier.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.exec.pool import execute, local_ct_spec
from repro.exec.spec import RunSpec
from repro.memtier import MemtierConfig
from repro.net.rdma import FabricConfig
from repro.telemetry import TelemetryConfig

SEED = 7

GRID_WORKLOADS = ["stream-simple", "stream-ladder", "omp-kmeans", "kv-cache"]
QUICK_WORKLOADS = ["stream-simple", "kv-cache"]
QUICK_KWARGS = {
    "stream-simple": {"npages": 256, "passes": 4},
}
FRACTION = 0.5
#: The constrained-pool arm: small enough that the hot set cannot fit,
#: so promotions and demotions must flow.
SMALL_POOL_PAGES = 128


def _spec(workload, system, kwargs, memtier=None, telemetry=None,
          fraction=FRACTION):
    return RunSpec(
        workload=workload,
        system=system,
        fraction=fraction,
        seed=SEED,
        workload_kwargs=dict(kwargs.get(workload, {})),
        fabric=FabricConfig(seed=SEED),
        memtier=memtier,
        telemetry=telemetry,
    )


def bench_cxl_vs_rdma(workloads, kwargs):
    """Normalized performance of the three arms at every workload point.

    One execute() batch: CT_local references first, then noprefetch /
    HoPP-on-RDMA / HoPP-on-CXL per workload."""
    specs = [
        local_ct_spec(name, SEED, FabricConfig(seed=SEED), kwargs.get(name))
        for name in workloads
    ]
    arms = (
        ("noprefetch", None),
        ("hopp-rdma", None),
        ("hopp-cxl", MemtierConfig()),
    )
    for name in workloads:
        specs.append(_spec(name, "noprefetch", kwargs))
        specs.append(_spec(name, "hopp", kwargs))
        specs.append(_spec(name, "hopp", kwargs, memtier=MemtierConfig()))
    results = execute(specs)
    ct_local = {
        name: results[i].completion_time_us for i, name in enumerate(workloads)
    }
    points = []
    cursor = len(workloads)
    for name in workloads:
        row = {"workload": name, "ct_local_us": ct_local[name]}
        for (arm, _), result in zip(arms, results[cursor:cursor + len(arms)]):
            row[arm] = {
                "completion_time_us": result.completion_time_us,
                "normalized_performance": result.normalized_performance(
                    ct_local[name]
                ),
            }
            if result.memtier is not None:
                row[arm]["memtier"] = result.memtier
        cursor += len(arms)
        row["cxl_over_rdma"] = (
            row["hopp-cxl"]["normalized_performance"]
            / row["hopp-rdma"]["normalized_performance"]
        )
        points.append(row)
    return points


def bench_constrained_pool(workload, kwargs):
    """The migration arm: tiny pool, telemetry on, counters + series."""
    spec = _spec(
        workload, "hopp", kwargs,
        memtier=MemtierConfig(
            pool_nodes=1, pool_capacity_pages=SMALL_POOL_PAGES
        ),
        telemetry=TelemetryConfig(epoch_us=1000.0),
        fraction=0.4,
    )
    result = execute([spec])[0]
    section = result.memtier
    series = result.telemetry["timeseries"]["series"]
    return {
        "workload": workload,
        "pool_capacity_pages": SMALL_POOL_PAGES,
        "memtier": section,
        "series_sums": {
            name: sum(series[name])
            for name in (
                "memtier_pool_reads", "memtier_far_reads",
                "memtier_promotions", "memtier_demotions",
            )
        },
        "series": {
            name: series[name]
            for name in ("memtier_promotions", "memtier_demotions")
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", "-o", default="BENCH_memtier.json")
    parser.add_argument(
        "--quick", action="store_true",
        help="shrink workloads for a CI smoke run",
    )
    args = parser.parse_args(argv)

    workloads = QUICK_WORKLOADS if args.quick else GRID_WORKLOADS
    kwargs = QUICK_KWARGS if args.quick else {}

    print(f"CXL-vs-RDMA grid over {workloads} ...", flush=True)
    points = bench_cxl_vs_rdma(workloads, kwargs)
    failures = []
    for row in points:
        cxl = row["hopp-cxl"]["normalized_performance"]
        rdma = row["hopp-rdma"]["normalized_performance"]
        nopf = row["noprefetch"]["normalized_performance"]
        marker = "ok" if cxl >= rdma else "REGRESSION"
        if cxl < rdma:
            failures.append(row["workload"])
        print(
            f"  {row['workload']:<16} noprefetch {nopf:.3f}  "
            f"hopp-rdma {rdma:.3f}  hopp-cxl {cxl:.3f}  "
            f"({row['cxl_over_rdma']:.2f}x)  {marker}"
        )

    migration_workload = "kv-cache"
    print(f"constrained-pool migration arm ({migration_workload}) ...",
          flush=True)
    migration = bench_constrained_pool(migration_workload, kwargs)
    section = migration["memtier"]
    print(
        f"  promotions {section['promotions']}, "
        f"demotions {section['demotions']}, "
        f"migration bytes {section['migration_bytes']}, "
        f"pool/far demand reads {section['pool_demand_reads']}/"
        f"{section['far_demand_reads']}"
    )
    if section["promotions"] <= 0 or section["demotions"] <= 0:
        failures.append("constrained-pool-migration")
    for name, total in migration["series_sums"].items():
        expected = {
            "memtier_pool_reads": section["pool_demand_reads"],
            "memtier_far_reads": section["far_demand_reads"],
            "memtier_promotions": section["promotions"],
            "memtier_demotions": section["demotions"],
        }[name]
        if total != expected:
            failures.append(f"series-mismatch:{name}")

    payload = {
        "seed": SEED,
        "quick": args.quick,
        "points": points,
        "migration": migration,
        "failures": failures,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"wrote {args.out}")
    if failures:
        print(f"FAILED: {failures}", file=sys.stderr)
        return 1
    print("CXL >= RDMA at every point; migration series reconcile.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
