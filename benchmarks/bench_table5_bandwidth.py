"""Table V — DRAM bandwidth consumed by hot-page extraction (HPD row)
and reverse-page-table queries (RPT row), as % of application traffic.

Paper: HPD averages 0.16% (one 8-byte record per ~N*64-byte accesses)
and RPT averages 0.004% (only ~0.3% of hot pages miss the 64 KB cache).

Method: offline replay of the full MC READ-miss stream (64-cacheline
page visits, the paper's units) through HPD + RPT cache per workload.
"""

import itertools

import pytest

from repro.analysis.report import print_artifact, render_table
from repro.common.types import RptEntry
from repro.hopp.hpd import HotPageDetector
from repro.hopp.rpt import ReversePageTable, RptCache, rpt_bandwidth_overhead
from repro.workloads import build

from common import SEED, time_one

#: Table V's 14 programs, scaled down with full page visits.
PROGRAMS = [
    ("Kmeans", "omp-kmeans", dict(data_pages=400, iterations=1, blocks_per_page=64)),
    ("quicksort", "quicksort", dict(array_pages=500, blocks_per_page=64)),
    ("HPL", "hpl", dict(matrix_pages=400, steps=3, blocks_per_page=64)),
    ("CG", "npb-cg", dict(main_pages=400, iterations=1, blocks_per_page=64)),
    ("FT", "npb-ft", dict(main_pages=400, iterations=1, blocks_per_page=64)),
    ("LU", "npb-lu", dict(main_pages=400, iterations=1, blocks_per_page=64)),
    ("MG", "npb-mg", dict(main_pages=400, iterations=1, blocks_per_page=64)),
    ("IS", "npb-is", dict(main_pages=400, iterations=1, blocks_per_page=64)),
    ("PR", "graphx-pr", dict(edge_pages=500, vertex_pages=100, blocks_per_page=64)),
    ("CC", "graphx-cc", dict(edge_pages=500, vertex_pages=100, blocks_per_page=64)),
    ("BFS", "graphx-bfs", dict(edge_pages=500, vertex_pages=100, blocks_per_page=64)),
    ("LP", "graphx-lp", dict(edge_pages=500, vertex_pages=100, blocks_per_page=64)),
    ("Kmeans(S)", "spark-kmeans", dict(data_pages=400, blocks_per_page=64)),
    ("Bayes(S)", "spark-bayes", dict(corpus_pages=400, blocks_per_page=64)),
]

MAX_ACCESSES = 300_000


def overheads(name: str, kwargs: dict):
    workload = build(name, seed=SEED, **kwargs)
    hpd = HotPageDetector()
    cache = RptCache(ReversePageTable())
    seen = set()
    for pid, vaddr in itertools.islice(workload.trace(), MAX_ACCESSES):
        ppn = vaddr >> 12
        if ppn not in seen:
            seen.add(ppn)
            cache.update(ppn, RptEntry(pid, ppn))
        hot = hpd.process(vaddr)
        if hot is not None:
            cache.lookup(hot)
    return hpd.bandwidth_overhead, rpt_bandwidth_overhead(cache, hpd.accesses)


@pytest.mark.benchmark(group="table5")
def test_table5_bandwidth_overheads(benchmark):
    time_one(benchmark, lambda: overheads("omp-kmeans", PROGRAMS[0][2]))

    hpd_row = ["HPD"]
    rpt_row = ["RPT"]
    hpd_values = []
    rpt_values = []
    for label, name, kwargs in PROGRAMS:
        hpd_bw, rpt_bw = overheads(name, kwargs)
        hpd_values.append(hpd_bw)
        rpt_values.append(rpt_bw)
        hpd_row.append(f"{hpd_bw * 100:.3f}")
        rpt_row.append(f"{rpt_bw * 100:.4f}")
    hpd_avg = sum(hpd_values) / len(hpd_values)
    rpt_avg = sum(rpt_values) / len(rpt_values)
    hpd_row.append(f"{hpd_avg * 100:.3f}")
    rpt_row.append(f"{rpt_avg * 100:.4f}")
    print_artifact(
        "Table V: bandwidth consumed by hot-page extraction and RPT queries (%)",
        render_table(
            ["Module"] + [label for label, _, _ in PROGRAMS] + ["Average"],
            [hpd_row, rpt_row],
        ),
    )

    # Paper shapes: HPD ~0.1-0.3% (avg 0.16%), RPT orders of magnitude
    # smaller (avg 0.004%).
    assert hpd_avg < 0.005, "HPD overhead should be well under 0.5%"
    assert rpt_avg < hpd_avg / 5, "RPT traffic must be far below HPD traffic"
