"""Shared infrastructure for the benchmark harness.

Every bench module regenerates one of the paper's tables or figures and
prints the same rows/series the paper reports.  Simulation runs go
through the execution engine's persistent on-disk cache (keyed by
workload config, system, fraction, fabric and the code-schema version —
see ``repro.exec.cache``) layered under a process-wide memo, so benches
that share runs (e.g. Figures 9-11) do not recompute them within a
session *or* across sessions.  Set ``REPRO_NO_CACHE=1`` to force fresh
runs, or ``REPRO_CACHE_DIR`` to relocate the store; the pytest-benchmark
timing wraps exactly one representative uncached simulation per bench.

Absolute numbers are simulator artifacts; the *shapes* — who wins, by
roughly what factor, where the knees fall — are the reproduction targets
(DESIGN.md section 7).
"""

from __future__ import annotations

import itertools
import os
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.exec.cache import ResultCache, TraceCache
from repro.exec.pool import execute, local_ct_spec
from repro.exec.spec import RunSpec
from repro.net.rdma import FabricConfig
from repro.sim.metrics import RunResult
from repro.sim.multiprogram import run_corun
from repro.telemetry import TelemetryConfig
from repro.workloads import build

SEED = 7

#: The paper's local-memory settings (Section VI-B): non-JVM apps run at
#: 50% and 25%; Spark apps at 11 GB of 33 GB (1/3); Spark-KMeans at
#: 2 GB of 13 GB (~0.15).
def paper_fraction(workload_name: str) -> float:
    if workload_name == "spark-kmeans":
        return 0.15
    if workload_name.startswith(("graphx", "spark")):
        return 0.33
    return 0.5


_FABRIC = FabricConfig(seed=SEED)
_MEMO: Dict[Tuple[str, str, float], RunResult] = {}
_LOCAL_CT: Dict[str, float] = {}
_TRACES = TraceCache()
_CACHE: Optional[ResultCache] = (
    None if os.environ.get("REPRO_NO_CACHE") else ResultCache()
)


def _run_one(spec: RunSpec) -> RunResult:
    return execute([spec], cache=_CACHE, trace_cache=_TRACES)[0]


def get_result(workload_name: str, system: str, fraction: float) -> RunResult:
    key = (workload_name, system, fraction)
    if key not in _MEMO:
        _MEMO[key] = _run_one(
            RunSpec(
                workload=workload_name,
                system=system,
                fraction=fraction,
                seed=SEED,
                fabric=_FABRIC,
            )
        )
    return _MEMO[key]


def get_telemetry_result(
    workload_name: str, system: str, fraction: float, epoch_us: float = 1000.0
) -> RunResult:
    """Like :func:`get_result` but with windowed time-series telemetry
    armed; keyed separately (an instrumented result is a different
    cached artifact, see ``RunSpec.key_dict``)."""
    key = (workload_name, system, fraction, "telemetry", epoch_us)
    if key not in _MEMO:
        _MEMO[key] = _run_one(
            RunSpec(
                workload=workload_name,
                system=system,
                fraction=fraction,
                seed=SEED,
                fabric=_FABRIC,
                telemetry=TelemetryConfig(epoch_us=epoch_us),
            )
        )
    return _MEMO[key]


def local_ct(workload_name: str) -> float:
    if workload_name not in _LOCAL_CT:
        result = _run_one(local_ct_spec(workload_name, SEED, _FABRIC))
        _LOCAL_CT[workload_name] = result.completion_time_us
    return _LOCAL_CT[workload_name]


def normperf(workload_name: str, system: str, fraction: float) -> float:
    return get_result(workload_name, system, fraction).normalized_performance(
        local_ct(workload_name)
    )


def speedup(workload_name: str, system: str, baseline: str, fraction: float) -> float:
    """1 - CT_system / CT_baseline (Section VI-D)."""
    return get_result(workload_name, system, fraction).speedup_vs(
        get_result(workload_name, baseline, fraction)
    )


def corun_result(names: Iterable[str], system: str, fraction: float = 0.5) -> RunResult:
    # Co-runs mix several seeded workloads; they stay memo-only because
    # run_corun is not expressible as a single RunSpec.
    key = ("+".join(names), system, fraction)
    if key not in _MEMO:
        workloads = [build(name, seed=SEED + i) for i, name in enumerate(names)]
        _MEMO[key] = run_corun(workloads, system, fraction, _FABRIC, seed=SEED)
    return _MEMO[key]


def param_grid(**axes: Iterable[object]) -> Iterator[Dict[str, object]]:
    """The cartesian product of named axes as dicts, in declared order
    with the rightmost axis varying fastest — the one grid-enumeration
    idiom every ablation sweep shares.

    >>> list(param_grid(nsets=[1, 4], nways=[16]))
    [{'nsets': 1, 'nways': 16}, {'nsets': 4, 'nways': 16}]
    """
    names = list(axes)
    for values in itertools.product(*(list(axes[name]) for name in names)):
        yield dict(zip(names, values))


def time_one(benchmark, fn):
    """Time exactly one execution of ``fn`` under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
