"""Shared infrastructure for the benchmark harness.

Every bench module regenerates one of the paper's tables or figures and
prints the same rows/series the paper reports.  Simulation runs are
memoized process-wide so benches that share runs (e.g. Figures 9-11)
do not recompute them; the pytest-benchmark timing wraps exactly one
representative uncached simulation per bench.

Absolute numbers are simulator artifacts; the *shapes* — who wins, by
roughly what factor, where the knees fall — are the reproduction targets
(DESIGN.md section 7).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.net.rdma import FabricConfig
from repro.sim import runner
from repro.sim.metrics import RunResult
from repro.sim.multiprogram import run_corun
from repro.workloads import build

SEED = 7

#: The paper's local-memory settings (Section VI-B): non-JVM apps run at
#: 50% and 25%; Spark apps at 11 GB of 33 GB (1/3); Spark-KMeans at
#: 2 GB of 13 GB (~0.15).
def paper_fraction(workload_name: str) -> float:
    if workload_name == "spark-kmeans":
        return 0.15
    if workload_name.startswith(("graphx", "spark")):
        return 0.33
    return 0.5


_FABRIC = FabricConfig(seed=SEED)
_RESULTS: Dict[Tuple[str, str, float], RunResult] = {}
_LOCAL_CT: Dict[str, float] = {}


def get_result(workload_name: str, system: str, fraction: float) -> RunResult:
    key = (workload_name, system, fraction)
    if key not in _RESULTS:
        workload = build(workload_name, seed=SEED)
        _RESULTS[key] = runner.run(workload, system, fraction, _FABRIC)
    return _RESULTS[key]


def local_ct(workload_name: str) -> float:
    if workload_name not in _LOCAL_CT:
        workload = build(workload_name, seed=SEED)
        _LOCAL_CT[workload_name] = runner.local_completion_time(workload, _FABRIC)
    return _LOCAL_CT[workload_name]


def normperf(workload_name: str, system: str, fraction: float) -> float:
    return get_result(workload_name, system, fraction).normalized_performance(
        local_ct(workload_name)
    )


def speedup(workload_name: str, system: str, baseline: str, fraction: float) -> float:
    """1 - CT_system / CT_baseline (Section VI-D)."""
    return get_result(workload_name, system, fraction).speedup_vs(
        get_result(workload_name, baseline, fraction)
    )


def corun_result(names: Iterable[str], system: str, fraction: float = 0.5) -> RunResult:
    key = ("+".join(names), system, fraction)
    if key not in _RESULTS:
        workloads = [build(name, seed=SEED + i) for i, name in enumerate(names)]
        _RESULTS[key] = run_corun(workloads, system, fraction, _FABRIC, seed=SEED)
    return _RESULTS[key]


def time_one(benchmark, fn):
    """Time exactly one execution of ``fn`` under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
