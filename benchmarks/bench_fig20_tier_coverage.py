"""Figure 20 — per-tier coverage contribution inside adaptive three-tier
prefetching.

Paper shape: "simple streams identified by SSP take a major part, while
LSP and RSP can further improve the coverage, e.g., for HPL and NPB-MG,
LSP offers an additional 9.1% coverage, and RSP can provide an
additional 10%."
"""

import pytest

from repro.analysis.report import print_artifact, render_table

from common import get_result, time_one

APPS = ["hpl", "npb-mg", "npb-lu", "omp-kmeans", "quicksort"]
FRACTION = 0.5
TIERS = ("ssp", "lsp", "rsp")


@pytest.mark.benchmark(group="fig20")
def test_fig20_per_tier_coverage(benchmark):
    time_one(benchmark, lambda: get_result("quicksort", "hopp", FRACTION))

    rows = []
    for app in APPS:
        result = get_result(app, "hopp", FRACTION)
        contributions = {tier: result.tier_coverage(tier) for tier in TIERS}
        rows.append(
            [app]
            + [contributions[tier] for tier in TIERS]
            + [result.coverage]
        )
    print_artifact(
        "Figure 20: per-tier coverage contribution",
        render_table(["workload", "SSP", "LSP", "RSP", "total"], rows),
    )

    hpl = get_result("hpl", "hopp", FRACTION)
    mg = get_result("npb-mg", "hopp", FRACTION)
    # SSP takes the major part everywhere.
    for app in APPS:
        result = get_result(app, "hopp", FRACTION)
        assert result.tier_coverage("ssp") > result.tier_coverage("lsp")
    # LSP contributes extra coverage on the ladder apps (paper: +9.1%).
    assert hpl.tier_coverage("lsp") > 0.01
    assert mg.tier_coverage("lsp") > 0.01
    # RSP contributes on the ripple apps.
    assert mg.tier_coverage("rsp") > 0.0
