"""Figure 10 — prefetch accuracy of Fastswap vs HoPP, non-JVM apps.

Paper shapes: HoPP accuracy exceeds 90% everywhere ("almost every
prefetch from HoPP is correct"); the average improvement over Fastswap
is ~18%.
"""

import pytest

from repro.analysis.report import print_artifact, render_table
from repro.workloads import NON_JVM_APPS

from common import get_result, time_one

FRACTION = 0.5


@pytest.mark.benchmark(group="fig10")
def test_fig10_accuracy_nojvm(benchmark):
    time_one(benchmark, lambda: get_result("quicksort", "hopp", FRACTION))

    rows = []
    fast_values, hopp_values = [], []
    for app in NON_JVM_APPS:
        fast = get_result(app, "fastswap", FRACTION).accuracy
        hopp = get_result(app, "hopp", FRACTION).accuracy
        fast_values.append(fast)
        hopp_values.append(hopp)
        rows.append([app, fast, hopp])
    rows.append(
        ["average", sum(fast_values) / len(fast_values), sum(hopp_values) / len(hopp_values)]
    )
    print_artifact(
        "Figure 10: prefetch accuracy, non-JVM apps",
        render_table(["workload", "fastswap", "hopp"], rows),
    )

    # HoPP accuracy > 90% on the large majority of apps, and at least
    # as good as Fastswap on average.
    over_90 = sum(1 for value in hopp_values if value > 0.9)
    assert over_90 >= len(hopp_values) - 2
    assert sum(hopp_values) > sum(fast_values)
