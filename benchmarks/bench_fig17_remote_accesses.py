"""Figure 17 — remote memory accesses of Depth-N, Fastswap, and HoPP,
normalized to Fastswap *without prefetching* (demand paging only).

Paper shapes: Depth-N issues the most remote reads of the four (its
rigid window cannot adapt), and although HoPP does not necessarily have
the maximum reduction, it has the best performance (Figure 16) thanks
to early PTE injection *with* feedback.
"""

import pytest

from repro.analysis.report import print_artifact, render_table

from common import get_result, get_telemetry_result, paper_fraction, time_one

APPS = ["graphx-bfs", "omp-kmeans", "graphx-cc", "npb-mg"]
SYSTEMS = ["depth-16", "depth-32", "fastswap", "hopp"]


@pytest.mark.benchmark(group="fig17")
def test_fig17_normalized_remote_accesses(benchmark):
    time_one(
        benchmark,
        lambda: get_result("graphx-bfs", "noprefetch", paper_fraction("graphx-bfs")),
    )

    rows = []
    ratios = {}
    for app in APPS:
        fraction = paper_fraction(app)
        baseline = get_result(app, "noprefetch", fraction).remote_accesses
        row = [app]
        for system in SYSTEMS:
            ratio = get_result(app, system, fraction).remote_accesses / max(baseline, 1)
            ratios[(app, system)] = ratio
            row.append(ratio)
        rows.append(row)
    print_artifact(
        "Figure 17: remote accesses normalized to no-prefetch Fastswap",
        render_table(["workload"] + SYSTEMS, rows),
    )

    # Depth-N is the most remote-access-hungry overall.
    depth32_total = sum(ratios[(app, "depth-32")] for app in APPS)
    for system in ("fastswap", "hopp"):
        assert depth32_total > sum(ratios[(app, system)] for app in APPS)
    # On the irregular graph apps, Depth-32 is the single worst.
    for app in ("graphx-bfs", "graphx-cc"):
        assert ratios[(app, "depth-32")] == max(
            ratios[(app, system)] for system in SYSTEMS
        )


@pytest.mark.benchmark(group="fig17")
def test_fig17_remote_accesses_over_time(benchmark):
    """The time-resolved companion: per-epoch remote reads from the
    telemetry time-series, the series Figure 17 aggregates away.

    Each system's epoch sums must reconcile *exactly* with its
    aggregate fabric counter — telemetry re-buckets the same
    increments, it never keeps second books.
    """
    app = "graphx-bfs"
    fraction = paper_fraction(app)
    time_one(
        benchmark, lambda: get_telemetry_result(app, "fastswap", fraction)
    )

    rows = []
    for system in ("fastswap", "hopp"):
        result = get_telemetry_result(app, system, fraction)
        series = result.telemetry["timeseries"]["series"]
        reads = series["remote_reads"]
        assert sum(reads) == result.fabric_reads, system
        assert sum(series["demand_faults"]) == result.remote_demand_reads
        assert len(reads) == result.telemetry["timeseries"]["epochs"]
        # Fold the run into deciles of wall-clock so the shape is
        # readable regardless of epoch count.
        n = len(reads)
        deciles = [
            sum(reads[(n * i) // 10:(n * (i + 1)) // 10]) for i in range(10)
        ]
        rows.append([system, result.fabric_reads] + deciles)
    print_artifact(
        f"Figure 17 over time: remote reads per run-decile ({app}, "
        f"epoch = 1 ms)",
        render_table(
            ["system", "total"] + [f"d{i}" for i in range(10)], rows
        ),
    )
