"""Figure 17 — remote memory accesses of Depth-N, Fastswap, and HoPP,
normalized to Fastswap *without prefetching* (demand paging only).

Paper shapes: Depth-N issues the most remote reads of the four (its
rigid window cannot adapt), and although HoPP does not necessarily have
the maximum reduction, it has the best performance (Figure 16) thanks
to early PTE injection *with* feedback.
"""

import pytest

from repro.analysis.report import print_artifact, render_table

from common import get_result, paper_fraction, time_one

APPS = ["graphx-bfs", "omp-kmeans", "graphx-cc", "npb-mg"]
SYSTEMS = ["depth-16", "depth-32", "fastswap", "hopp"]


@pytest.mark.benchmark(group="fig17")
def test_fig17_normalized_remote_accesses(benchmark):
    time_one(
        benchmark,
        lambda: get_result("graphx-bfs", "noprefetch", paper_fraction("graphx-bfs")),
    )

    rows = []
    ratios = {}
    for app in APPS:
        fraction = paper_fraction(app)
        baseline = get_result(app, "noprefetch", fraction).remote_accesses
        row = [app]
        for system in SYSTEMS:
            ratio = get_result(app, system, fraction).remote_accesses / max(baseline, 1)
            ratios[(app, system)] = ratio
            row.append(ratio)
        rows.append(row)
    print_artifact(
        "Figure 17: remote accesses normalized to no-prefetch Fastswap",
        render_table(["workload"] + SYSTEMS, rows),
    )

    # Depth-N is the most remote-access-hungry overall.
    depth32_total = sum(ratios[(app, "depth-32")] for app in APPS)
    for system in ("fastswap", "hopp"):
        assert depth32_total > sum(ratios[(app, system)] for app in APPS)
    # On the irregular graph apps, Depth-32 is the single worst.
    for app in ("graphx-bfs", "graphx-cc"):
        assert ratios[(app, "depth-32")] == max(
            ratios[(app, system)] for system in SYSTEMS
        )
