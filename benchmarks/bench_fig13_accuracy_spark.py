"""Figure 13 — prefetch accuracy on the Spark workloads.

Paper shape: HoPP stays well ahead of Fastswap on average (~18%), even
though the JVM's fragmented allocation gives everyone fewer trainable
streams than the OMP/C variants.
"""

import pytest

from repro.analysis.report import print_artifact, render_table
from repro.workloads import SPARK_APPS

from common import get_result, paper_fraction, time_one


@pytest.mark.benchmark(group="fig13")
def test_fig13_accuracy_spark(benchmark):
    time_one(
        benchmark,
        lambda: get_result("graphx-pr", "fastswap", paper_fraction("graphx-pr")),
    )

    rows, fast_values, hopp_values = [], [], []
    for app in SPARK_APPS:
        fraction = paper_fraction(app)
        fast = get_result(app, "fastswap", fraction).accuracy
        hopp = get_result(app, "hopp", fraction).accuracy
        fast_values.append(fast)
        hopp_values.append(hopp)
        rows.append([app, fast, hopp])
    rows.append(
        ["average", sum(fast_values) / len(fast_values),
         sum(hopp_values) / len(hopp_values)]
    )
    print_artifact(
        "Figure 13: prefetch accuracy, Spark workloads",
        render_table(["workload", "fastswap", "hopp"], rows),
    )

    assert sum(hopp_values) >= sum(fast_values)
    assert sum(hopp_values) / len(hopp_values) > 0.8
