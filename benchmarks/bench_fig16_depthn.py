"""Figure 16 — normalized performance of Depth-16, Depth-32, Fastswap,
and HoPP on the NPB kernels.

Paper shapes (Section VI-C): Depth-16/32 "don't necessarily outperform
Fastswap for real applications, e.g., NPB-MG, while HoPP achieves the
best of four" — early PTE injection without feedback misfires where
access patterns aren't contiguous-forward.
"""

import pytest

from repro.analysis.report import print_artifact, render_table

from common import get_result, normperf, time_one

APPS = ["npb-cg", "npb-ft", "npb-lu", "npb-mg", "npb-is"]
SYSTEMS = ["depth-16", "depth-32", "fastswap", "hopp"]
FRACTION = 0.5


@pytest.mark.benchmark(group="fig16")
def test_fig16_depth_n_comparison(benchmark):
    time_one(benchmark, lambda: get_result("npb-mg", "depth-32", FRACTION))

    table = {}
    rows = []
    for app in APPS:
        row = [app]
        for system in SYSTEMS:
            value = normperf(app, system, FRACTION)
            table[(app, system)] = value
            row.append(value)
        rows.append(row)
    avg = ["average"] + [
        sum(table[(app, system)] for app in APPS) / len(APPS) for system in SYSTEMS
    ]
    rows.append(avg)
    print_artifact(
        "Figure 16: normalized performance, Depth-N vs Fastswap vs HoPP (NPB)",
        render_table(["workload"] + SYSTEMS, rows),
    )

    # Depth-N loses to Fastswap somewhere (the paper names NPB-MG; here
    # the strided FT and the bidirectional LU/MG sweeps punish it).
    assert any(
        table[(app, "depth-32")] < table[(app, "fastswap")] for app in APPS
    )
    # HoPP is the best of the four on average and never the worst.
    for system in SYSTEMS[:-1]:
        assert avg[SYSTEMS.index("hopp") + 1] > avg[SYSTEMS.index(system) + 1]
    for app in APPS:
        assert table[(app, "hopp")] >= min(table[(app, s)] for s in SYSTEMS)
