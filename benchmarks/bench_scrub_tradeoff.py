"""Patrol-scrub rate vs detection latency vs overhead — the integrity
subsystem's headline experiment.

Runs quicksort under HoPP with the ``corruption`` fault-plan preset
(silent wire flips plus latent media errors) and replication 2, sweeping
the patrol scrubber's audit rate from off to aggressive.  Each scrub
step pays a modeled READ on the holder's link, riding the repair
engine's rate limiter, so a faster patrol finds latent corruption
sooner but steals more fabric time from the foreground workload.

Shapes (not paper figures — the paper's testbed never corrupts a page,
this stresses the reproduction's end-to-end integrity story):

* with a replica every detected corruption is repaired in place at
  moderate audit rates — nothing is poisoned up to the default rate
  (an extreme patrol can surface a *double* strike, both replicas
  latent-bad at once, which is genuinely unrepairable and poisons);
* scrub reads grow roughly linearly with the audit rate;
* a faster patrol catches latent media errors earlier: mean detection
  latency falls monotonically-ish as the rate climbs, because fewer
  strikes wait for a demand read to trip over them;
* the foreground cost stays bounded — even the most aggressive patrol
  in the sweep stretches completion by well under 2x.
"""

import pytest

from repro.analysis.report import print_artifact, render_table
from repro.integrity import ScrubConfig
from repro.net.faults import FaultPlan
from repro.cluster import ClusterConfig
from repro.sim import runner
from repro.workloads import build

from common import SEED, _FABRIC, time_one

WORKLOAD = "quicksort"
FRACTION = 0.5
NODES = 3
RATES = (None, 500.0, 2_000.0, 5_000.0, 20_000.0)


def _run(rate):
    workload = build(WORKLOAD, seed=SEED)
    scrub = None if rate is None else ScrubConfig(rate_pages_per_s=rate)
    return runner.run(
        workload,
        "hopp",
        FRACTION,
        _FABRIC,
        fault_plan=FaultPlan.corruption(SEED),
        cluster=ClusterConfig(nodes=NODES, replication=2),
        scrub=scrub,
    )


@pytest.mark.benchmark(group="integrity")
def test_scrub_tradeoff(benchmark):
    time_one(benchmark, lambda: _run(5_000.0))

    results = {rate: _run(rate) for rate in RATES}
    baseline_ct = results[None].completion_time_us

    rows = []
    for rate in RATES:
        sec = results[rate].integrity
        latency = sec["detect_latency_us"]
        overhead = results[rate].completion_time_us / baseline_ct
        rows.append(
            [
                "off" if rate is None else f"{rate:g}",
                sec["scrub_reads"],
                sec["scrub_detected"],
                sec["corruption_detected"],
                sec["corruption_repaired"],
                sec["pages_poisoned"],
                f"{latency['mean'] / 1000.0:.2f}",
                f"{latency['max'] / 1000.0:.2f}",
                f"{overhead:.3f}x",
            ]
        )
    print_artifact(
        "Scrub-rate tradeoff: audit pressure vs detection latency "
        f"({WORKLOAD} @{FRACTION:g}, corruption preset, repl=2)",
        render_table(
            ["rate(pg/s)", "scrub-rd", "scrub-det", "detected", "repaired",
             "poisoned", "lat-mean(ms)", "lat-max(ms)", "slowdown"],
            rows,
        ),
    )

    for rate in RATES:
        sec = results[rate].integrity
        # The ledger closes at every rate: each detection is repaired,
        # deferred, or poisoned — never silently dropped.
        assert sec["corruption_detected"] == (
            sec["corruption_repaired"]
            + sec["corruption_unresolved"]
            + sec["poisoned_copies"]
        )
        assert sec["corruption_detected"] > 0
        # Replication 2 means a detection normally finds a clean
        # sibling; up to the default audit rate nothing is poisoned.
        if rate is None or rate <= 5_000.0:
            assert sec["pages_poisoned"] == 0
            assert sec["corruption_detected"] == sec["corruption_repaired"]
        # The patrol only ever *adds* detection opportunities.
        assert sec["scrub_detected"] <= sec["corruption_detected"]
        # Overhead is real but bounded.
        assert results[rate].completion_time_us < baseline_ct * 2

    # No patrol, no audit reads; armed patrols do real work and more
    # audit pressure means more (never fewer) reads.
    scrub_reads = [results[rate].integrity["scrub_reads"] for rate in RATES]
    assert scrub_reads[0] == 0
    assert all(r > 0 for r in scrub_reads[1:])
    assert scrub_reads[1:] == sorted(scrub_reads[1:])

    # A faster patrol catches latent media errors sooner: the slowest
    # armed patrol must not beat the fastest one on mean latency.
    slowest = results[RATES[1]].integrity["detect_latency_us"]["mean"]
    fastest = results[RATES[-1]].integrity["detect_latency_us"]["mean"]
    assert fastest <= slowest
