"""Table III — RPT cache hit rate vs cache size (1..64 KB).

Paper rows (K-means, PageRank): hit rate climbs from ~0.85-0.92 at 1 KB
to ~0.997 at 64 KB, with diminishing returns past 32 KB.  The hit rate
is high because a hot page was usually just fetched from remote, so its
PTE hook freshly installed the RPT entry in the cache (Section III-C).

Method: run the full HoPP machine (hooks, swapping, prefetching) with
the RPT cache size under test and read the lookup-path hit rate.
"""

import pytest

from repro.analysis.report import print_artifact, render_table
from repro.hopp.system import HoppConfig, HoppDataPlane
from repro.baselines.fastswap import FastswapPrefetcher
from repro.net.rdma import FabricConfig
from repro.sim.machine import Machine, MachineConfig
from repro.sim.runner import make_machine
from repro.sim.systems import SystemSpec
from repro.workloads import build

from common import SEED, time_one

SIZES_KB = (1, 2, 4, 8, 16, 32, 64)

WORKLOADS = {
    "K-means": ("omp-kmeans", dict(data_pages=1200, iterations=2)),
    "PgRank": ("graphx-pr", dict(edge_pages=1500, vertex_pages=250)),
}


def hopp_with_rpt_cache(size_kb: int) -> SystemSpec:
    def builder(config: MachineConfig) -> Machine:
        machine = Machine(config, fault_prefetcher=FastswapPrefetcher())
        plane = HoppDataPlane(machine, HoppConfig(rpt_cache_kb=size_kb))
        machine.hopp = plane
        machine.controller.add_tap(plane.on_mc_access)
        return machine

    return SystemSpec(name=f"hopp-rpt{size_kb}k", builder=builder)


def rpt_hit_rate(name: str, kwargs: dict, size_kb: int) -> float:
    workload = build(name, seed=SEED, **kwargs)
    machine = make_machine(
        workload, hopp_with_rpt_cache(size_kb), 0.5, FabricConfig(seed=SEED)
    )
    machine.run(workload.trace())
    return machine.hopp.rpt_cache.hit_rate


@pytest.mark.benchmark(group="table3")
def test_table3_rpt_cache_size(benchmark):
    time_one(benchmark, lambda: rpt_hit_rate("omp-kmeans", WORKLOADS["K-means"][1], 64))

    rows = []
    for label, (name, kwargs) in WORKLOADS.items():
        rates = [rpt_hit_rate(name, kwargs, kb) for kb in SIZES_KB]
        rows.append([label] + [f"{r:.3f}" for r in rates])
        # Shapes: 64 KB nearly perfect; growth with size; diminishing
        # returns at the top end (paper: <0.1% gain past 32 KB).
        assert rates[-1] > 0.95
        assert rates[-1] >= rates[0]
        assert rates[-1] - rates[-2] < 0.05
    print_artifact(
        "Table III: RPT cache hit rate vs size",
        render_table(["Workload"] + [f"{kb}KB" for kb in SIZES_KB], rows),
    )
