"""Figure 12 — normalized performance on the Spark workloads.

Paper setup: Spark-KMeans limited to 2 GB of its 13 GB footprint
(~15%); the other Spark apps to 11 GB of 33 GB (1/3).  Shapes: HoPP
beats Fastswap on every Spark app (average +34.7%); the largest win is
Spark-KMeans (+52.2%) and the smallest GraphX-CC (+18.4%); both systems
land well below their non-JVM normalized performance because the JVM
fragments streams.
"""

import pytest

from repro.analysis.report import print_artifact, render_table
from repro.workloads import SPARK_APPS

from common import get_result, normperf, paper_fraction, time_one


@pytest.mark.benchmark(group="fig12")
def test_fig12_normalized_performance_spark(benchmark):
    time_one(
        benchmark,
        lambda: get_result("spark-kmeans", "hopp", paper_fraction("spark-kmeans")),
    )

    rows = []
    fast_values, hopp_values, wins = [], [], []
    for app in SPARK_APPS:
        fraction = paper_fraction(app)
        fast = normperf(app, "fastswap", fraction)
        hopp = normperf(app, "hopp", fraction)
        win = hopp / fast - 1.0
        fast_values.append(fast)
        hopp_values.append(hopp)
        wins.append((app, win))
        rows.append([app, f"{fraction:.2f}", fast, hopp, win])
    rows.append(
        [
            "average",
            "",
            sum(fast_values) / len(fast_values),
            sum(hopp_values) / len(hopp_values),
            sum(w for _, w in wins) / len(wins),
        ]
    )
    print_artifact(
        "Figure 12: normalized performance, Spark workloads",
        render_table(
            ["workload", "local-frac", "fastswap", "hopp", "hopp-vs-fastswap"],
            rows,
        ),
    )

    # Shapes: HoPP wins everywhere; the average win is substantial.
    for (app, win) in wins:
        assert win > 0.05, f"HoPP must beat Fastswap on {app}"
    assert sum(w for _, w in wins) / len(wins) > 0.15
