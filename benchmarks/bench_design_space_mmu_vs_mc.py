"""Section II-D design-space study — why tap the memory controller and
not the MMU?

"MMU sees L1 accesses, which is two orders of magnitude higher than LLC
miss (e.g., 180 times for Spark-Graph-BFS)."  Tapping the MC gets the
LLC to filter in-cache locality for free, so the HPD processes a tiny
fraction of the references with no loss of the large streams it cares
about.

This bench synthesizes MMU-level reference streams from the workloads'
miss traces (re-touching recent lines like loop bodies do) and measures
the reduction factor through a 3-level hierarchy.
"""

import itertools

import pytest

from repro.analysis.report import print_artifact, render_table
from repro.sim.detailed import mmu_vs_mc_volumes
from repro.workloads import build

from common import SEED, time_one

WORKLOADS = [
    ("graphx-bfs", dict(edge_pages=600, vertex_pages=100)),
    ("omp-kmeans", dict(data_pages=400, iterations=1)),
    ("npb-cg", dict(main_pages=400, iterations=1)),
]

MAX_MISS_ACCESSES = 40_000
#: Locality amplification: each miss-level access stands for this many
#: MMU-level references in loop-heavy code.
REPEATS = 16


def measure(name: str, kwargs: dict):
    workload = build(name, seed=SEED, **kwargs)
    trace = itertools.islice(workload.trace(), MAX_MISS_ACCESSES)
    return mmu_vs_mc_volumes(trace, repeats=REPEATS)


@pytest.mark.benchmark(group="design-space")
def test_mmu_vs_mc_reference_volumes(benchmark):
    time_one(benchmark, lambda: measure(*WORKLOADS[1]))

    rows = []
    factors = {}
    for name, kwargs in WORKLOADS:
        report = measure(name, kwargs)
        factors[name] = report.reduction_factor
        rows.append(
            [name, report.mmu_accesses, report.llc_misses,
             f"{report.reduction_factor:.1f}x"]
        )
    print_artifact(
        "Section II-D: MMU-visible references vs MC-visible LLC misses",
        render_table(
            ["workload", "MMU accesses", "LLC misses", "reduction"],
            rows,
        ),
    )

    # The MC sees at least an order of magnitude less traffic; the
    # graph workload (in-LLC locality on hot vertices) filters most.
    for name in factors:
        assert factors[name] > 5.0
