#!/usr/bin/env python
"""Harness throughput benchmark: how fast the simulator itself runs.

Unlike the figure benches (which reproduce the paper's *results*), this
one measures the reproduction *machinery*:

* single-run throughput in accesses/sec: the batched kernel (default)
  vs the legacy per-access fast loops (``kernel="legacy"``, the pre-PR
  fast path) vs the differential oracle loop (``use_fast_path=False``);
* the *tapped hot loop* in steady state — resident pages whose HPD
  entries already carry the sent bit, swept page-sequentially — the
  regime the batch kernel vectorizes (and the ≥2x CI gate's metric);
* chunk-size sensitivity of the batch kernel on that hot loop;
* a 16-point sweep grid executed serially vs ``--jobs N`` — the
  process-pool speedup (skipped on 1-core boxes, where it would only
  measure pool overhead);
* the same grid against a cold vs warm result cache — the price of a
  miss and the (near-zero) price of a hit.

Emits ``BENCH_harness.json`` next to the repo root (or ``--out``) so CI
can archive throughput over time.  ``--quick`` shrinks the workloads
for smoke use; published numbers should come from a default run.  Exit
status is non-zero when any equivalence check fails or the batched
tapped hot loop runs below 2x the oracle loop (a loose floor that holds
even on 1-core CI).

Usage::

    PYTHONPATH=src python benchmarks/bench_harness_throughput.py [--quick]
        [--jobs N] [--out BENCH_harness.json]
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.common.constants import BLOCK_SHIFT, PAGE_SHIFT
from repro.exec.cache import ResultCache, TraceCache
from repro.exec.pool import execute
from repro.exec.spec import RunSpec
from repro.net.rdma import FabricConfig
from repro.sim.runner import make_machine
from repro.telemetry import TelemetryConfig
from repro.workloads import build

SEED = 7

#: The 16-point grid: 2 workloads x 4 systems x 2 fractions.  The
#: workloads are the two heaviest traces so each point carries enough
#: work for the process pool to amortize its startup; --quick swaps in
#: scaled-down streams.
GRID_WORKLOADS = ["omp-kmeans", "kv-cache"]
QUICK_WORKLOADS = ["stream-simple", "stream-ladder"]
GRID_SYSTEMS = ["noprefetch", "fastswap", "leap", "hopp"]
GRID_FRACTIONS = [0.25, 0.5]


def grid_specs(workloads, workload_kwargs):
    return [
        RunSpec(
            workload=name,
            system=system,
            fraction=fraction,
            seed=SEED,
            workload_kwargs=dict(workload_kwargs.get(name, {})),
            fabric=FabricConfig(seed=SEED),
        )
        for name in workloads
        for system in GRID_SYSTEMS
        for fraction in GRID_FRACTIONS
    ]


#: (label, machine.run kwargs) for the three replay engines compared by
#: the single-run and hot-loop benches.  ``fast_path`` is the batched
#: kernel (the default dispatch), ``legacy_fast_path`` the PR-4
#: per-access loops, ``oracle_loop`` the differential slow path.
MODES = (
    ("fast_path", {"use_fast_path": True}),
    ("legacy_fast_path", {"use_fast_path": True, "kernel": "legacy"}),
    ("oracle_loop", {"use_fast_path": False}),
)


def _bench_modes(make, trace, repeats):
    """Min-of-N interleaved timings of ``machine.run(trace)`` per mode.

    Interleaving keeps each round's modes exposed to the same transient
    machine noise; the min over rounds is the least noise-contaminated
    estimate of each loop's true cost on a shared box.  Also verifies
    every mode retires the trace to the identical machine state."""
    results = {}
    one_machine = None
    for label, kwargs in MODES:
        machine = make()
        machine.run(trace, **kwargs)  # warm allocator and code paths
        results[label] = []
    identical = True
    for _ in range(repeats):
        for label, kwargs in MODES:
            machine = make()
            gc.collect()
            start = time.perf_counter()
            machine.run(trace, **kwargs)
            results[label].append(time.perf_counter() - start)
            state = (machine.now_us, machine.accesses, machine.compute_us,
                     machine.minor_faults, machine.remote_demand_reads)
            if one_machine is None:
                one_machine = state
            elif state != one_machine:
                identical = False
    timings = {}
    for label, times in results.items():
        best = min(times)
        timings[label] = {
            "seconds": best,
            "accesses": len(trace),
            "accesses_per_sec": len(trace) / best if best > 0 else 0.0,
        }
    timings["speedup"] = (
        timings["oracle_loop"]["seconds"] / timings["fast_path"]["seconds"]
    )
    timings["speedup_vs_legacy"] = (
        timings["legacy_fast_path"]["seconds"]
        / timings["fast_path"]["seconds"]
    )
    timings["modes_identical"] = identical
    return timings


def bench_single_run(workload_name, system, workload_kwargs, repeats=3):
    """Accesses/sec of one simulation: batched vs legacy vs oracle."""
    workload = build(workload_name, seed=SEED, **workload_kwargs)
    trace = list(workload.trace())

    def make():
        return make_machine(workload, system, 0.5, FabricConfig(seed=SEED))

    return _bench_modes(make, trace, repeats)


def hot_loop_trace(workload, npages=64, sweeps=8):
    """Page-sequential sweeps over a small resident working set.

    Every cacheline of ``npages`` consecutive pages, swept ``sweeps``
    times — the steady-state tapped hot loop: after the first sweep the
    pages sit in local DRAM with their HPD entries carrying the sent
    bit, so the MC tap is pure per-access sampling overhead.  This is
    the regime the batch kernel collapses to O(runs)."""
    proc = workload.processes[0]
    start_vpn, vma_pages, _ = proc.vmas[0]
    npages = min(npages, vma_pages)
    blocks_per_page = 1 << (PAGE_SHIFT - BLOCK_SHIFT)
    trace = []
    append = trace.append
    for _ in range(sweeps):
        for vpn in range(start_vpn, start_vpn + npages):
            base = vpn << PAGE_SHIFT
            for block in range(blocks_per_page):
                append((proc.pid, base | (block << BLOCK_SHIFT)))
    return trace


def bench_hot_loop(repeats=3, sweeps=8):
    """The tapped hot loop in steady state, per replay engine.

    Runs at fraction 4.0 (fully resident — no fault-path noise) on a
    hopp machine pre-warmed with one full replay, so the measured run
    exercises exactly the MC-tap + HPD sampling path.  The batched
    kernel's speedup here is the CI throughput gate's metric."""
    workload = build("stream-simple", seed=SEED)
    trace = hot_loop_trace(workload, sweeps=sweeps)

    def make():
        machine = make_machine(workload, "hopp", 4.0, FabricConfig(seed=SEED))
        machine.run(trace, kernel="legacy")  # map pages, set sent bits
        return machine

    return _bench_modes(make, trace, repeats)


def bench_chunk_sensitivity(repeats=3, sweeps=8, chunks=(64, 512, 4096)):
    """Batched-kernel throughput on the hot loop per chunk size."""
    workload = build("stream-simple", seed=SEED)
    trace = hot_loop_trace(workload, sweeps=sweeps)
    out = {}
    for chunk in chunks:
        times = []
        for _ in range(repeats + 1):
            machine = make_machine(
                workload, "hopp", 4.0, FabricConfig(seed=SEED)
            )
            machine.run(trace, kernel="legacy")
            gc.collect()
            start = time.perf_counter()
            machine.run(trace, chunk_size=chunk)
            times.append(time.perf_counter() - start)
        best = min(times[1:])  # round 0 warms code paths
        out[str(chunk)] = {
            "seconds": best,
            "accesses_per_sec": len(trace) / best if best > 0 else 0.0,
        }
    return out


def bench_telemetry_overhead(workload_name, system, workload_kwargs, repeats=3):
    """What the telemetry subsystem costs, min-of-N per mode.

    ``disabled`` (``telemetry=None``, the default) is the mode the <2%
    acceptance bound applies to: every probe site is one ``is not
    None`` check on the fault path and the resident-hit fast path is
    untouched, so it must time within noise of a plain run.
    ``timeseries`` and ``trace`` report what an *armed* bus costs —
    O(remote traffic), paid only when asked for.

    The baseline the bound is judged against is a ``baseline`` mode
    measured in the *same* interleaved rounds (an A/A control —
    literally another ``telemetry=None`` run), with the collector
    frozen during each timed region so the trace mode's allocation
    burst cannot bleed GC pauses into its neighbours.  Comparing
    against a run timed in a different section of the process measures
    session drift, not telemetry.

    The ``*_overhead`` ratios are the *minimum of per-round paired
    ratios* (mode time / baseline time within the same round) — a
    one-sided test: it exceeds the bound only when *every* round shows
    the overhead, i.e. when the cost is systematic rather than a
    scheduler hiccup landing in one timed region.  That is exactly the
    failure the disabled gate exists to catch — a telemetry probe
    leaking onto the per-access path costs far more than 2% and shows
    up in all rounds — while min-of-N-over-min-of-N has an A/A spread
    of several percent on a loaded single-core box, wider than the
    bound it is supposed to check.  For the armed modes the number is
    accordingly a lower-bound estimate of the true cost."""
    workload = build(workload_name, seed=SEED, **workload_kwargs)
    trace = list(workload.trace())
    modes = {
        "baseline": lambda: None,
        "disabled": lambda: None,
        "timeseries": lambda: TelemetryConfig(),
        "trace": lambda: TelemetryConfig(trace=True),
    }

    def one(telemetry):
        machine = make_machine(
            workload, system, 0.5, FabricConfig(seed=SEED), telemetry=telemetry
        )
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            machine.run(trace)
            return time.perf_counter() - start
        finally:
            gc.enable()

    one(None)  # warm allocator and code paths outside the measurement
    samples = {label: [] for label in modes}
    for _ in range(repeats):
        for label, config in modes.items():
            samples[label].append(one(config()))
    out = {}
    for label, times in samples.items():
        best = min(times)
        out[label] = {
            "seconds": best,
            "accesses_per_sec": len(trace) / best if best > 0 else 0.0,
        }
    base_rounds = samples["baseline"]
    for label in ("disabled", "timeseries", "trace"):
        ratios = [
            t / b for t, b in zip(samples[label], base_rounds) if b > 0
        ]
        out[f"{label}_overhead"] = min(ratios) - 1 if ratios else 0.0
    return out


def bench_grid(specs, jobs):
    """Wall-clock of the grid, serial vs parallel, both uncached."""
    start = time.perf_counter()
    serial = execute(specs, jobs=1, trace_cache=TraceCache())
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = execute(specs, jobs=jobs)
    parallel_s = time.perf_counter() - start

    identical = all(
        a.to_dict(full=True) == b.to_dict(full=True)
        for a, b in zip(serial, parallel)
    )
    accesses = sum(r.accesses for r in serial)
    return {
        "points": len(specs),
        "total_accesses": accesses,
        "serial": {
            "seconds": serial_s,
            "accesses_per_sec": accesses / serial_s if serial_s > 0 else 0.0,
        },
        "parallel": {
            "jobs": jobs,
            "seconds": parallel_s,
            "accesses_per_sec": accesses / parallel_s if parallel_s > 0 else 0.0,
        },
        "speedup": serial_s / parallel_s if parallel_s > 0 else 0.0,
        "parallel_equals_serial": identical,
    }


def bench_cache(specs, cache_root):
    """Wall-clock of the grid against a cold then warm result cache."""
    cache = ResultCache(cache_root)
    start = time.perf_counter()
    cold = execute(specs, cache=cache, trace_cache=TraceCache())
    cold_s = time.perf_counter() - start

    warm_cache = ResultCache(cache_root)
    start = time.perf_counter()
    warm = execute(specs, cache=warm_cache)
    warm_s = time.perf_counter() - start

    identical = all(
        a.to_dict(full=True) == b.to_dict(full=True)
        for a, b in zip(cold, warm)
    )
    return {
        "points": len(specs),
        "cold": {"seconds": cold_s, "stores": cache.stores},
        "warm": {"seconds": warm_s, "hits": warm_cache.hits},
        "speedup": cold_s / warm_s if warm_s > 0 else 0.0,
        "warm_equals_cold": identical,
        "all_hits": warm_cache.hits == len(specs),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", "-j", type=int, default=4)
    parser.add_argument("--out", "-o", default="BENCH_harness.json")
    parser.add_argument(
        "--quick", action="store_true",
        help="shrink workloads for a CI smoke run",
    )
    args = parser.parse_args(argv)

    workloads = QUICK_WORKLOADS if args.quick else GRID_WORKLOADS
    workload_kwargs = (
        {
            "stream-simple": {"npages": 256, "passes": 4},
            "stream-ladder": {"steps": 100, "passes": 2},
        }
        if args.quick
        else {}
    )
    specs = grid_specs(workloads, workload_kwargs)

    single_workload = "stream-simple" if args.quick else "omp-kmeans"
    singles = {}
    for system in ("hopp", "noprefetch"):
        print(f"single-run throughput ({single_workload}/{system}@0.5) ...",
              flush=True)
        single = bench_single_run(
            single_workload, system, workload_kwargs.get(single_workload, {}),
            repeats=1 if args.quick else 3,
        )
        singles[system] = single
        print(
            f"  batched {single['fast_path']['accesses_per_sec']:,.0f} acc/s, "
            f"legacy {single['legacy_fast_path']['accesses_per_sec']:,.0f}, "
            f"oracle {single['oracle_loop']['accesses_per_sec']:,.0f}, "
            f"vs-oracle {single['speedup']:.2f}x, "
            f"vs-legacy {single['speedup_vs_legacy']:.2f}x, "
            f"identical={single['modes_identical']}"
        )

    print("tapped hot loop (stream-simple/hopp@4.0, steady state) ...",
          flush=True)
    hot_loop = bench_hot_loop(
        repeats=1 if args.quick else 3, sweeps=4 if args.quick else 8
    )
    print(
        f"  batched {hot_loop['fast_path']['accesses_per_sec']:,.0f} acc/s, "
        f"legacy {hot_loop['legacy_fast_path']['accesses_per_sec']:,.0f}, "
        f"oracle {hot_loop['oracle_loop']['accesses_per_sec']:,.0f}, "
        f"vs-oracle {hot_loop['speedup']:.2f}x, "
        f"vs-legacy {hot_loop['speedup_vs_legacy']:.2f}x, "
        f"identical={hot_loop['modes_identical']}"
    )
    # The CI regression gate: the batched tapped path must clear 2x the
    # oracle loop even on a busy 1-core runner (it runs ~8x on an idle
    # box, so 2x is a loose floor, not a target).
    throughput_gate_ok = (
        hot_loop["speedup"] >= 2.0 and hot_loop["modes_identical"]
    )
    print(f"  throughput gate (>=2x oracle): ok={throughput_gate_ok}")

    print("chunk-size sensitivity (batched kernel, hot loop) ...", flush=True)
    chunk_sensitivity = bench_chunk_sensitivity(
        repeats=1 if args.quick else 3, sweeps=4 if args.quick else 8
    )
    for chunk, row in chunk_sensitivity.items():
        print(f"  chunk {chunk:>5}: {row['accesses_per_sec']:,.0f} acc/s")

    print(f"telemetry overhead ({single_workload}/hopp@0.5) ...", flush=True)
    telemetry = bench_telemetry_overhead(
        single_workload, "hopp", workload_kwargs.get(single_workload, {}),
        repeats=1 if args.quick else 5,
    )
    # The acceptance bound: telemetry disabled (the default) must cost
    # nothing measurable against the interleaved A/A baseline.  --quick
    # runs are milliseconds long, so the noise floor, not the code,
    # dominates; gate loosely there.
    disabled_overhead = telemetry["disabled_overhead"]
    telemetry_ok = disabled_overhead < (0.25 if args.quick else 0.02)
    print(
        f"  disabled {disabled_overhead * 100:+.2f}% vs baseline "
        f"(ok={telemetry_ok}), timeseries "
        f"{telemetry['timeseries_overhead'] * 100:+.1f}%, trace "
        f"{telemetry['trace_overhead'] * 100:+.1f}%"
    )

    # A process pool cannot beat serial without a second core: on a
    # 1-CPU box the comparison measures pure pool overhead and the
    # "speedup" reads as a misleading slowdown.  Skip and say so.
    cpu_count = os.cpu_count() or 1
    if cpu_count >= 2:
        print(f"{len(specs)}-point grid, serial vs --jobs {args.jobs} ...",
              flush=True)
        grid = bench_grid(specs, args.jobs)
        print(
            f"  serial {grid['serial']['seconds']:.2f}s, parallel "
            f"{grid['parallel']['seconds']:.2f}s, "
            f"speedup {grid['speedup']:.2f}x, "
            f"identical={grid['parallel_equals_serial']}"
        )
    else:
        grid = {
            "skipped": True,
            "reason": (
                f"cpu_count={cpu_count} < 2: a process pool has no second "
                "core to fan out to, so serial-vs-jobs would measure pool "
                "overhead, not speedup"
            ),
            "points": len(specs),
        }
        print(
            f"{len(specs)}-point grid, serial vs --jobs {args.jobs}: "
            f"SKIPPED ({grid['reason']})"
        )

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        print("grid against cold vs warm cache ...", flush=True)
        cache = bench_cache(specs, tmp)
    print(
        f"  cold {cache['cold']['seconds']:.2f}s, warm "
        f"{cache['warm']['seconds']:.2f}s, speedup {cache['speedup']:.1f}x, "
        f"all_hits={cache['all_hits']}"
    )

    payload = {
        "seed": SEED,
        "quick": args.quick,
        # Pool speedup only materializes with real cores to fan out to;
        # on a 1-CPU host the parallel numbers measure pure overhead.
        "cpu_count": os.cpu_count(),
        "grid": {
            "workloads": workloads,
            "systems": GRID_SYSTEMS,
            "fractions": GRID_FRACTIONS,
            "workload_kwargs": workload_kwargs,
        },
        "single_run": singles,
        "tapped_hot_loop": hot_loop,
        "chunk_sensitivity": chunk_sensitivity,
        "throughput_gate": {
            "metric": "tapped_hot_loop.speedup (batched vs oracle)",
            "floor": 2.0,
            "measured": hot_loop["speedup"],
            "ok": throughput_gate_ok,
        },
        "telemetry": telemetry,
        "sweep": grid,
        "cache": cache,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"wrote {args.out}")

    ok = (
        grid.get("parallel_equals_serial", True)
        and cache["warm_equals_cold"]
        and telemetry_ok
        and throughput_gate_ok
        and all(s["modes_identical"] for s in singles.values())
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
