#!/usr/bin/env python
"""Harness throughput benchmark: how fast the simulator itself runs.

Unlike the figure benches (which reproduce the paper's *results*), this
one measures the reproduction *machinery*:

* single-run throughput in accesses/sec, fast path vs the differential
  oracle loop (``use_fast_path=False``) — the hot-path speedup;
* a 16-point sweep grid executed serially vs ``--jobs N`` — the
  process-pool speedup;
* the same grid against a cold vs warm result cache — the price of a
  miss and the (near-zero) price of a hit.

Emits ``BENCH_harness.json`` next to the repo root (or ``--out``) so CI
can archive throughput over time.  ``--quick`` shrinks the workloads
for smoke use; published numbers should come from a default run.

Usage::

    PYTHONPATH=src python benchmarks/bench_harness_throughput.py [--quick]
        [--jobs N] [--out BENCH_harness.json]
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.exec.cache import ResultCache, TraceCache
from repro.exec.pool import execute
from repro.exec.spec import RunSpec
from repro.net.rdma import FabricConfig
from repro.sim.runner import make_machine
from repro.telemetry import TelemetryConfig
from repro.workloads import build

SEED = 7

#: The 16-point grid: 2 workloads x 4 systems x 2 fractions.  The
#: workloads are the two heaviest traces so each point carries enough
#: work for the process pool to amortize its startup; --quick swaps in
#: scaled-down streams.
GRID_WORKLOADS = ["omp-kmeans", "kv-cache"]
QUICK_WORKLOADS = ["stream-simple", "stream-ladder"]
GRID_SYSTEMS = ["noprefetch", "fastswap", "leap", "hopp"]
GRID_FRACTIONS = [0.25, 0.5]


def grid_specs(workloads, workload_kwargs):
    return [
        RunSpec(
            workload=name,
            system=system,
            fraction=fraction,
            seed=SEED,
            workload_kwargs=dict(workload_kwargs.get(name, {})),
            fabric=FabricConfig(seed=SEED),
        )
        for name in workloads
        for system in GRID_SYSTEMS
        for fraction in GRID_FRACTIONS
    ]


def bench_single_run(workload_name, system, workload_kwargs, repeats=3):
    """Accesses/sec of one simulation, fast path vs oracle loop.

    Takes the minimum over ``repeats`` interleaved runs: the min is the
    least noise-contaminated estimate of the loop's true cost on a
    shared machine."""
    workload = build(workload_name, seed=SEED, **workload_kwargs)
    trace = list(workload.trace())

    def one(fast):
        machine = make_machine(workload, system, 0.5, FabricConfig(seed=SEED))
        start = time.perf_counter()
        machine.run(trace, use_fast_path=fast)
        return time.perf_counter() - start

    one(True)  # warm allocator and code paths outside the measurement
    samples = {"fast_path": [], "oracle_loop": []}
    for _ in range(repeats):
        samples["fast_path"].append(one(True))
        samples["oracle_loop"].append(one(False))
    timings = {}
    for label, times in samples.items():
        best = min(times)
        timings[label] = {
            "seconds": best,
            "accesses": len(trace),
            "accesses_per_sec": len(trace) / best if best > 0 else 0.0,
        }
    timings["speedup"] = (
        timings["oracle_loop"]["seconds"] / timings["fast_path"]["seconds"]
    )
    return timings


def bench_telemetry_overhead(workload_name, system, workload_kwargs, repeats=3):
    """What the telemetry subsystem costs, min-of-N per mode.

    ``disabled`` (``telemetry=None``, the default) is the mode the <2%
    acceptance bound applies to: every probe site is one ``is not
    None`` check on the fault path and the resident-hit fast path is
    untouched, so it must time within noise of a plain run.
    ``timeseries`` and ``trace`` report what an *armed* bus costs —
    O(remote traffic), paid only when asked for.

    The baseline the bound is judged against is a ``baseline`` mode
    measured in the *same* interleaved rounds (an A/A control —
    literally another ``telemetry=None`` run), with the collector
    frozen during each timed region so the trace mode's allocation
    burst cannot bleed GC pauses into its neighbours.  Comparing
    against a run timed in a different section of the process measures
    session drift, not telemetry."""
    workload = build(workload_name, seed=SEED, **workload_kwargs)
    trace = list(workload.trace())
    modes = {
        "baseline": lambda: None,
        "disabled": lambda: None,
        "timeseries": lambda: TelemetryConfig(),
        "trace": lambda: TelemetryConfig(trace=True),
    }

    def one(telemetry):
        machine = make_machine(
            workload, system, 0.5, FabricConfig(seed=SEED), telemetry=telemetry
        )
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            machine.run(trace)
            return time.perf_counter() - start
        finally:
            gc.enable()

    one(None)  # warm allocator and code paths outside the measurement
    samples = {label: [] for label in modes}
    for _ in range(repeats):
        for label, config in modes.items():
            samples[label].append(one(config()))
    out = {}
    for label, times in samples.items():
        best = min(times)
        out[label] = {
            "seconds": best,
            "accesses_per_sec": len(trace) / best if best > 0 else 0.0,
        }
    base = out["baseline"]["seconds"]
    for label in ("disabled", "timeseries", "trace"):
        out[f"{label}_overhead"] = (
            out[label]["seconds"] / base - 1 if base > 0 else 0.0
        )
    return out


def bench_grid(specs, jobs):
    """Wall-clock of the grid, serial vs parallel, both uncached."""
    start = time.perf_counter()
    serial = execute(specs, jobs=1, trace_cache=TraceCache())
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = execute(specs, jobs=jobs)
    parallel_s = time.perf_counter() - start

    identical = all(
        a.to_dict(full=True) == b.to_dict(full=True)
        for a, b in zip(serial, parallel)
    )
    accesses = sum(r.accesses for r in serial)
    return {
        "points": len(specs),
        "total_accesses": accesses,
        "serial": {
            "seconds": serial_s,
            "accesses_per_sec": accesses / serial_s if serial_s > 0 else 0.0,
        },
        "parallel": {
            "jobs": jobs,
            "seconds": parallel_s,
            "accesses_per_sec": accesses / parallel_s if parallel_s > 0 else 0.0,
        },
        "speedup": serial_s / parallel_s if parallel_s > 0 else 0.0,
        "parallel_equals_serial": identical,
    }


def bench_cache(specs, cache_root):
    """Wall-clock of the grid against a cold then warm result cache."""
    cache = ResultCache(cache_root)
    start = time.perf_counter()
    cold = execute(specs, cache=cache, trace_cache=TraceCache())
    cold_s = time.perf_counter() - start

    warm_cache = ResultCache(cache_root)
    start = time.perf_counter()
    warm = execute(specs, cache=warm_cache)
    warm_s = time.perf_counter() - start

    identical = all(
        a.to_dict(full=True) == b.to_dict(full=True)
        for a, b in zip(cold, warm)
    )
    return {
        "points": len(specs),
        "cold": {"seconds": cold_s, "stores": cache.stores},
        "warm": {"seconds": warm_s, "hits": warm_cache.hits},
        "speedup": cold_s / warm_s if warm_s > 0 else 0.0,
        "warm_equals_cold": identical,
        "all_hits": warm_cache.hits == len(specs),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", "-j", type=int, default=4)
    parser.add_argument("--out", "-o", default="BENCH_harness.json")
    parser.add_argument(
        "--quick", action="store_true",
        help="shrink workloads for a CI smoke run",
    )
    args = parser.parse_args(argv)

    workloads = QUICK_WORKLOADS if args.quick else GRID_WORKLOADS
    workload_kwargs = (
        {
            "stream-simple": {"npages": 256, "passes": 4},
            "stream-ladder": {"steps": 100, "passes": 2},
        }
        if args.quick
        else {}
    )
    specs = grid_specs(workloads, workload_kwargs)

    single_workload = "stream-simple" if args.quick else "omp-kmeans"
    singles = {}
    for system in ("hopp", "noprefetch"):
        print(f"single-run throughput ({single_workload}/{system}@0.5) ...",
              flush=True)
        single = bench_single_run(
            single_workload, system, workload_kwargs.get(single_workload, {}),
            repeats=1 if args.quick else 3,
        )
        singles[system] = single
        print(
            f"  fast {single['fast_path']['accesses_per_sec']:,.0f} acc/s, "
            f"oracle {single['oracle_loop']['accesses_per_sec']:,.0f} acc/s, "
            f"speedup {single['speedup']:.2f}x"
        )

    print(f"telemetry overhead ({single_workload}/hopp@0.5) ...", flush=True)
    telemetry = bench_telemetry_overhead(
        single_workload, "hopp", workload_kwargs.get(single_workload, {}),
        repeats=1 if args.quick else 5,
    )
    # The acceptance bound: telemetry disabled (the default) must cost
    # nothing measurable against the interleaved A/A baseline.  --quick
    # runs are milliseconds long, so the noise floor, not the code,
    # dominates; gate loosely there.
    disabled_overhead = telemetry["disabled_overhead"]
    telemetry_ok = disabled_overhead < (0.25 if args.quick else 0.02)
    print(
        f"  disabled {disabled_overhead * 100:+.2f}% vs baseline "
        f"(ok={telemetry_ok}), timeseries "
        f"{telemetry['timeseries_overhead'] * 100:+.1f}%, trace "
        f"{telemetry['trace_overhead'] * 100:+.1f}%"
    )

    print(f"{len(specs)}-point grid, serial vs --jobs {args.jobs} ...", flush=True)
    grid = bench_grid(specs, args.jobs)
    print(
        f"  serial {grid['serial']['seconds']:.2f}s, parallel "
        f"{grid['parallel']['seconds']:.2f}s, speedup {grid['speedup']:.2f}x, "
        f"identical={grid['parallel_equals_serial']}"
    )

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        print("grid against cold vs warm cache ...", flush=True)
        cache = bench_cache(specs, tmp)
    print(
        f"  cold {cache['cold']['seconds']:.2f}s, warm "
        f"{cache['warm']['seconds']:.2f}s, speedup {cache['speedup']:.1f}x, "
        f"all_hits={cache['all_hits']}"
    )

    payload = {
        "seed": SEED,
        "quick": args.quick,
        # Pool speedup only materializes with real cores to fan out to;
        # on a 1-CPU host the parallel numbers measure pure overhead.
        "cpu_count": os.cpu_count(),
        "grid": {
            "workloads": workloads,
            "systems": GRID_SYSTEMS,
            "fractions": GRID_FRACTIONS,
            "workload_kwargs": workload_kwargs,
        },
        "single_run": singles,
        "telemetry": telemetry,
        "sweep": grid,
        "cache": cache,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"wrote {args.out}")

    ok = (
        grid["parallel_equals_serial"]
        and cache["warm_equals_cold"]
        and telemetry_ok
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
