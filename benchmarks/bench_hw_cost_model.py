"""Section VI-F — hardware feasibility numbers (CACTI substitute).

Paper (22 nm): the HPD table costs 0.000252 mm^2 and 0.0959 mW of
static power; the 64 KB RPT cache costs 0.0673 mm^2 and 21.4 mW.  The
analytical SRAM model is calibrated on exactly those two points and
interpolates other geometries for the ablation benches.
"""

import pytest

from repro.analysis.report import print_artifact, render_table
from repro.hopp.hardware_model import SramModel

from common import time_one


@pytest.mark.benchmark(group="hwcost")
def test_hw_cost_model(benchmark):
    model = time_one(benchmark, SramModel)

    hpd = model.hpd_table()
    rpt64 = model.rpt_cache(64)
    rows = [
        ["HPD table (4x16)", hpd.bits, f"{hpd.area_mm2:.6f}", f"{hpd.static_power_mw:.4f}"],
        ["RPT cache 16KB", model.rpt_cache(16).bits,
         f"{model.rpt_cache(16).area_mm2:.6f}",
         f"{model.rpt_cache(16).static_power_mw:.4f}"],
        ["RPT cache 32KB", model.rpt_cache(32).bits,
         f"{model.rpt_cache(32).area_mm2:.6f}",
         f"{model.rpt_cache(32).static_power_mw:.4f}"],
        ["RPT cache 64KB", rpt64.bits, f"{rpt64.area_mm2:.6f}",
         f"{rpt64.static_power_mw:.4f}"],
    ]
    print_artifact(
        "Section VI-F: area / static power estimates (22 nm, CACTI substitute)",
        render_table(["structure", "bits", "area (mm^2)", "static power (mW)"], rows),
    )

    # Calibration points are exact by construction.
    assert hpd.area_mm2 == pytest.approx(0.000252)
    assert hpd.static_power_mw == pytest.approx(0.0959)
    assert rpt64.area_mm2 == pytest.approx(0.0673)
    assert rpt64.static_power_mw == pytest.approx(21.4)
    # Both structures are tiny by MC standards (the feasibility claim).
    assert rpt64.area_mm2 < 0.1
