"""Figure 9 — normalized performance (CT_local / CT_system) of Fastswap
and HoPP on the non-JVM applications at 50% and 25% local memory.

Paper shapes: HoPP beats Fastswap on every app at both limits; at 50%
HoPP's best apps run within a few percent of local (Quicksort, OMP
K-means: 3.5% slowdown at least); the average HoPP-over-Fastswap
improvement is ~25% at 50% and ~32% at 25%.
"""

import pytest

from repro.analysis.report import print_artifact, render_table
from repro.common.stats import geometric_mean
from repro.workloads import NON_JVM_APPS

from common import get_result, normperf, time_one


@pytest.mark.benchmark(group="fig9")
def test_fig9_normalized_performance_nojvm(benchmark):
    time_one(benchmark, lambda: get_result("omp-kmeans", "hopp", 0.5))

    rows = []
    series = {"fastswap": {0.5: [], 0.25: []}, "hopp": {0.5: [], 0.25: []}}
    for app in NON_JVM_APPS:
        row = [app]
        for fraction in (0.5, 0.25):
            for system in ("fastswap", "hopp"):
                value = normperf(app, system, fraction)
                series[system][fraction].append(value)
                row.append(value)
        rows.append(row)
    avg_row = ["average"]
    for fraction in (0.5, 0.25):
        for system in ("fastswap", "hopp"):
            avg_row.append(
                sum(series[system][fraction]) / len(series[system][fraction])
            )
    rows.append(avg_row)
    print_artifact(
        "Figure 9: normalized performance, non-JVM apps",
        render_table(
            ["workload", "fastswap@50%", "hopp@50%", "fastswap@25%", "hopp@25%"],
            rows,
        ),
    )

    # Shape assertions.
    for app_index, app in enumerate(NON_JVM_APPS):
        for fraction in (0.5, 0.25):
            assert (
                series["hopp"][fraction][app_index]
                > series["fastswap"][fraction][app_index]
            ), f"HoPP must beat Fastswap on {app} at {fraction}"
    # Best HoPP apps approach local performance at 50%.
    assert max(series["hopp"][0.5]) > 0.95
    # Less memory hurts both systems on average.
    assert geometric_mean(series["hopp"][0.25]) <= geometric_mean(series["hopp"][0.5])
    # Average improvement is substantial (paper: 24.9% / 32%).
    improvement_50 = (
        sum(series["hopp"][0.5]) / sum(series["fastswap"][0.5]) - 1.0
    )
    assert improvement_50 > 0.10
