"""Cluster scaling: node count x placement policy.

Sweeps the remote pool from the paper's single node to a rack-scale
multi-node cluster and reports, per (node count, placement) cell, the
completion time, aggregate fabric traffic, and the balance of pages
across nodes.  A replication arm measures the writeback tax of keeping
a second copy, and a chaos arm proves failover keeps a 3-node cluster
both live and conserved.

Shapes (not paper figures — the paper's testbed has one memory node;
this stresses the reproduction's growth axis):

* a 1-node interleave cluster is byte-identical to the single-node
  model (the equivalence invariant, asserted here end to end);
* adding nodes never slows the run down: more links means less
  queueing, so completion time is monotonically non-increasing within
  each placement (small tolerance for jitter reseeding);
* interleave balances writebacks near-perfectly; affinity concentrates
  a single process on one node;
* replication costs extra WRITEs (exactly one per replica per
  writeback) while demand READ traffic stays essentially unchanged
  (replica writebacks share links with prefetches, so timings shift a
  page or two, never systematically).
"""

import pytest

from repro.analysis.report import print_artifact, render_table
from repro.cluster import ClusterConfig
from repro.net.faults import FaultPlan
from repro.sim import runner
from repro.workloads import build

from common import SEED, _FABRIC, time_one

NODE_COUNTS = (1, 2, 4, 8)
PLACEMENTS = ("interleave", "hash", "affinity")


def _run(nodes=1, placement="interleave", replication=1, plan=None,
         system="hopp"):
    workload = build("stream-simple", seed=SEED)
    cluster = ClusterConfig(
        nodes=nodes, placement=placement, replication=replication
    )
    return runner.run(workload, system, 0.5, _FABRIC, plan, cluster)


def _imbalance(result):
    """max/mean of per-node stored+released pages (1.0 = perfect)."""
    totals = [
        stats["remote"]["pages_written"] for stats in result.node_stats
    ]
    mean = sum(totals) / len(totals)
    return max(totals) / mean if mean else 1.0


@pytest.mark.benchmark(group="cluster")
def test_cluster_scaling(benchmark):
    time_one(benchmark, lambda: _run(nodes=4))

    rows = []
    results = {}
    for placement in PLACEMENTS:
        for nodes in NODE_COUNTS:
            result = _run(nodes=nodes, placement=placement)
            results[(placement, nodes)] = result
            rows.append(
                [
                    placement,
                    nodes,
                    f"{result.completion_time_us:.0f}",
                    result.fabric_reads,
                    result.fabric_writes,
                    f"{_imbalance(result):.2f}",
                ]
            )
    print_artifact(
        "Cluster scaling: node count x placement (stream-simple @50%, hopp)",
        render_table(
            ["placement", "nodes", "ct (us)", "reads", "writes",
             "imbalance"],
            rows,
        ),
    )

    # Single-node equivalence: every placement degenerates to the same
    # single-link machine on one node.
    baseline = results[("interleave", 1)]
    for placement in PLACEMENTS:
        assert (
            results[(placement, 1)].completion_time_us
            == baseline.completion_time_us
        )

    # More links, less queueing: scaling out never hurts (allow 2% for
    # per-node jitter reseeding).
    for placement in PLACEMENTS:
        for before, after in zip(NODE_COUNTS, NODE_COUNTS[1:]):
            assert (
                results[(placement, after)].completion_time_us
                <= results[(placement, before)].completion_time_us * 1.02
            ), f"{placement}: {after} nodes slower than {before}"

    # Interleave spreads writebacks evenly; affinity piles the single
    # process onto one node.
    assert _imbalance(results[("interleave", 4)]) < 1.5
    assert _imbalance(results[("affinity", 4)]) > 2.0


@pytest.mark.benchmark(group="cluster")
def test_cluster_replication_tax(benchmark):
    time_one(benchmark, lambda: _run(nodes=3, replication=2))

    single = _run(nodes=3, replication=1)
    mirrored = _run(nodes=3, replication=2)
    print_artifact(
        "Replication tax (3 nodes, interleave)",
        render_table(
            ["replication", "ct (us)", "writes", "replica writes"],
            [
                [1, f"{single.completion_time_us:.0f}",
                 single.fabric_writes, single.replica_writes],
                [2, f"{mirrored.completion_time_us:.0f}",
                 mirrored.fabric_writes, mirrored.replica_writes],
            ],
        ),
    )
    # Exactly one extra WRITE per writeback; demand READs stay within a
    # couple of pages (replica traffic shifts bulk-link timing slightly).
    assert mirrored.replica_writes == single.fabric_writes
    assert mirrored.fabric_writes == 2 * single.fabric_writes
    assert abs(
        mirrored.remote_demand_reads - single.remote_demand_reads
    ) <= max(2, single.remote_demand_reads // 10)


@pytest.mark.benchmark(group="cluster")
def test_cluster_failover_under_chaos(benchmark):
    plan = FaultPlan.chaos(SEED)
    result = time_one(
        benchmark,
        lambda: _run(nodes=3, replication=2, plan=plan, system="hopp"),
    )
    print_artifact(
        "3-node chaos run (replication 2)",
        render_table(
            ["metric", "value"],
            [
                ["completion time (us)", f"{result.completion_time_us:.0f}"],
                ["timeouts", result.timeouts],
                ["demand failovers", result.demand_failovers],
                ["writeback re-routes", result.writeback_reroutes],
            ],
        ),
    )
    assert result.timeouts > 0
    # Conservation survives failover: every node's slot accounting
    # balances even with copies re-routed mid-retry.
    for stats in result.node_stats:
        remote = stats["remote"]
        assert remote["pages_written"] == (
            remote["pages_stored"]
            + remote["pages_overwritten"]
            + remote["pages_released"]
        )
