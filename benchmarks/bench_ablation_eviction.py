"""Ablation A5 — trace-informed eviction (the second Section IV
extension: "the software can serve other purposes with full memory
traces, e.g., improving kernel page eviction").

On a scan-plus-working-set stressor, plain LRU lets the scan flood the
recency list and push out the reusable working set; hinting the scan's
*stream-behind* pages to reclaim makes eviction scan-resistant.  The
protect-window sweep shows the knob's safe range.
"""

import pytest

from repro.analysis.report import print_artifact, render_table
from repro.net.rdma import FabricConfig
from repro.sim import runner
from repro.workloads import build

from common import SEED, time_one

FABRIC = FabricConfig(seed=SEED)
FRACTION = 0.33


def run(system: str):
    workload = build("scan-with-workingset", seed=SEED)
    return runner.run(workload, system, FRACTION, FABRIC)


@pytest.mark.benchmark(group="ablation-eviction")
def test_ablation_stream_aware_eviction(benchmark):
    time_one(benchmark, lambda: run("hopp-evict"))

    workload = build("scan-with-workingset", seed=SEED)
    ct_local = runner.local_completion_time(workload, FABRIC)

    rows = []
    results = {}
    for system in ("fastswap", "hopp", "hopp-evict"):
        result = run(system)
        results[system] = result
        rows.append(
            [
                system,
                result.normalized_performance(ct_local),
                result.remote_demand_reads,
                result.page_faults,
                result.reclaim_pages,
            ]
        )
    print_artifact(
        "Ablation A5: stream-aware eviction on scan + working set "
        f"(local = {FRACTION:.0%} of footprint)",
        render_table(
            ["system", "norm-perf", "demand remote", "page faults", "reclaimed"],
            rows,
        ),
    )

    # The advisor keeps the working set local: fewer demand reads and
    # better completion time than both LRU-based systems.
    assert results["hopp-evict"].remote_demand_reads < results["hopp"].remote_demand_reads
    assert (
        results["hopp-evict"].completion_time_us
        < results["hopp"].completion_time_us
        < results["fastswap"].completion_time_us
    )
