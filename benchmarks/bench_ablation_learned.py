"""Ablation A6 — three-tier cascade vs the learned stride-context
prefetcher in the same trainer slot (Section III-D's design-space
remark).

Expected shape: the learned model ties the cascade on simple streams
(both find the constant stride immediately vs after warm-up), trails
slightly on ladders/ripples (it must learn each pattern instance, the
cascade recognizes the *shape* analytically), and neither gives up
accuracy — the full trace, not the specific algorithm, is what makes
both viable.
"""

import pytest

from repro.analysis.report import print_artifact, render_table
from repro.net.rdma import FabricConfig
from repro.sim import runner
from repro.workloads import build

from common import SEED, time_one

FABRIC = FabricConfig(seed=SEED)
WORKLOADS = ["stream-simple", "stream-ladder", "stream-ripple", "npb-mg", "hpl"]


def run(workload_name: str, system: str):
    workload = build(workload_name, seed=SEED)
    return runner.run(workload, system, 0.5, FABRIC)


@pytest.mark.benchmark(group="ablation-learned")
def test_ablation_learned_vs_three_tier(benchmark):
    time_one(benchmark, lambda: run("stream-simple", "hopp-learned"))

    rows = []
    results = {}
    for name in WORKLOADS:
        workload = build(name, seed=SEED)
        ct_local = runner.local_completion_time(workload, FABRIC)
        row = [name]
        for system in ("hopp", "hopp-learned"):
            result = run(name, system)
            results[(name, system)] = result
            row.extend(
                [result.normalized_performance(ct_local), result.accuracy]
            )
        rows.append(row)
    print_artifact(
        "Ablation A6: three-tier vs learned stride-context trainer",
        render_table(
            ["workload", "3tier np", "3tier acc", "learned np", "learned acc"],
            rows,
        ),
    )

    for name in WORKLOADS:
        tiered = results[(name, "hopp")]
        learned = results[(name, "hopp-learned")]
        # The learned model stays accurate and within ~15% of the
        # cascade (ripples cost it the most: stride noise thins every
        # context's confidence).
        assert learned.accuracy > 0.9
        assert learned.completion_time_us <= tiered.completion_time_us * 1.15
    # On pure simple streams the two are equivalent.
    simple_gap = (
        results[("stream-simple", "hopp-learned")].completion_time_us
        / results[("stream-simple", "hopp")].completion_time_us
    )
    assert abs(simple_gap - 1.0) < 0.03
