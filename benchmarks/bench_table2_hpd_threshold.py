"""Table II — hot pages identified / memory accesses vs HPD threshold N.

Paper rows (K-means, PageRank, CC, LP, BFS; N in {2,4,8,16,32}): the
ratio is ~1.5% for streaming K-means at every N (one extraction per
64-cacheline page visit) and inflates sharply at small N for the graph
workloads whose random vertex traffic churns the 64-entry HPD table
(PageRank: 11.72% at N=2 vs 0.84% at N=32).

The HPD runs offline over the MC READ-miss stream, exactly as the paper
measured with HMTT traces.  Full 64-cacheline page visits are used so
the ratios share the paper's units.
"""

import itertools

import pytest

from repro.analysis.report import print_artifact, render_table
from repro.hopp.hpd import HotPageDetector
from repro.workloads import build

from common import SEED, time_one

THRESHOLDS = (2, 4, 8, 16, 32)

#: Scaled-down instances with full (64-block) page visits.
WORKLOADS = {
    "K-means": ("omp-kmeans", dict(data_pages=600, iterations=2, blocks_per_page=64)),
    "PageRank": ("graphx-pr", dict(edge_pages=900, vertex_pages=150, blocks_per_page=64)),
    "CC": ("graphx-cc", dict(edge_pages=900, vertex_pages=150, blocks_per_page=64)),
    "LP": ("graphx-lp", dict(edge_pages=900, vertex_pages=150, blocks_per_page=64)),
    "BFS": ("graphx-bfs", dict(edge_pages=900, vertex_pages=150, blocks_per_page=64)),
}

MAX_ACCESSES = 400_000


def hot_ratio(name: str, kwargs: dict, threshold: int) -> float:
    workload = build(name, seed=SEED, **kwargs)
    hpd = HotPageDetector(threshold=threshold)
    for _, vaddr in itertools.islice(workload.trace(), MAX_ACCESSES):
        hpd.process(vaddr)  # identity address map is fine offline
    return hpd.hot_page_ratio


@pytest.mark.benchmark(group="table2")
def test_table2_hpd_threshold(benchmark):
    time_one(benchmark, lambda: hot_ratio("omp-kmeans", WORKLOADS["K-means"][1], 8))

    rows = []
    trends_ok = True
    for label, (name, kwargs) in WORKLOADS.items():
        ratios = [hot_ratio(name, kwargs, n) for n in THRESHOLDS]
        rows.append([label] + [f"{r * 100:.2f}%" for r in ratios])
        trends_ok &= ratios[0] >= ratios[-1]
    print_artifact(
        "Table II: hot pages identified / memory accesses",
        render_table(["Workload"] + [f"N={n}" for n in THRESHOLDS], rows),
    )

    # Shape assertions: ratios fall with N, and the graph workloads pay
    # far more at N=2 than the streaming K-means does.
    assert trends_ok
    kmeans_n2 = hot_ratio("omp-kmeans", WORKLOADS["K-means"][1], 2)
    pagerank_n2 = hot_ratio("graphx-pr", WORKLOADS["PageRank"][1], 2)
    assert pagerank_n2 > kmeans_n2
