"""Ablation A7 — multi-channel memory controllers (Section III-B).

"When multiple channels are interleaved, different cachelines of the
same physical page reside in distinct channels.  In this case, we need
to reduce N.  Although this might lead to repeated hot page
extractions, we could de-duplicate them in the prefetch training
framework."

The sweep shows exactly that: per-channel HPDs with threshold N/C keep
coverage within noise of the single-controller design, at the price of
C-fold repeated extractions absorbed by the STT's same-VPN de-dup.
"""

import pytest

from repro.analysis.report import print_artifact, render_table
from repro.baselines.fastswap import FastswapPrefetcher
from repro.hopp.system import HoppConfig, HoppDataPlane
from repro.net.rdma import FabricConfig
from repro.sim.machine import Machine, MachineConfig
from repro.sim.runner import collect, make_machine
from repro.sim.systems import SystemSpec
from repro.workloads import build

from common import SEED, time_one


def hopp_with_channels(channels: int) -> SystemSpec:
    def builder(config: MachineConfig) -> Machine:
        machine = Machine(config, fault_prefetcher=FastswapPrefetcher())
        plane = HoppDataPlane(machine, HoppConfig(mc_channels=channels))
        machine.hopp = plane
        machine.controller.add_tap(plane.on_mc_access)
        return machine

    return SystemSpec(name=f"hopp-{channels}ch", builder=builder)


def run_channels(channels: int):
    workload = build("omp-kmeans", seed=SEED)
    machine = make_machine(
        workload, hopp_with_channels(channels), 0.5, FabricConfig(seed=SEED)
    )
    machine.run(workload.trace())
    result = collect(machine, f"{channels}ch", workload.name)
    result.extra["stt_duplicates"] = float(machine.hopp.stt.duplicates_dropped)
    result.extra["hot_pages"] = float(machine.hopp.hpd.hot_pages)
    return result


@pytest.mark.benchmark(group="ablation-multichannel")
def test_ablation_channel_count(benchmark):
    time_one(benchmark, lambda: run_channels(2))

    rows = []
    results = {}
    for channels in (1, 2, 4):
        result = run_channels(channels)
        results[channels] = result
        rows.append(
            [
                f"{channels} channel(s)",
                result.coverage,
                result.accuracy,
                int(result.extra["hot_pages"]),
                int(result.extra["stt_duplicates"]),
            ]
        )
    print_artifact(
        "Ablation A7: interleaved memory channels (per-channel HPD, N/C)",
        render_table(
            ["config", "coverage", "accuracy", "hot pages", "deduped repeats"],
            rows,
        ),
    )

    # Coverage holds across channel counts; repeated extractions grow
    # with channels and are absorbed by the de-dup.
    for channels in (2, 4):
        assert results[channels].coverage >= results[1].coverage - 0.05
        assert results[channels].extra["stt_duplicates"] > results[1].extra[
            "stt_duplicates"
        ]
