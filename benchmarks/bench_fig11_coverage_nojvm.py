"""Figure 11 — prefetch coverage of Fastswap vs HoPP, non-JVM apps,
with HoPP's bar split into its two parts (Section VI-B): pages
prefetched on the fault path that hit in the swapcache, and pages
prefetched by the adaptive three-tier framework whose PTEs were
injected (DRAM hits, no fault at all).

Paper shapes: HoPP coverage > 90% (QuickSort and K-means > 99%, "no
page fault observed"); Fastswap's bar is swapcache-hits only.
"""

import pytest

from repro.analysis.report import print_artifact, render_table
from repro.common.stats import safe_ratio
from repro.workloads import NON_JVM_APPS

from common import get_result, time_one

FRACTION = 0.5


@pytest.mark.benchmark(group="fig11")
def test_fig11_coverage_nojvm(benchmark):
    time_one(benchmark, lambda: get_result("npb-cg", "hopp", FRACTION))

    rows = []
    hopp_total = []
    fast_total = []
    for app in NON_JVM_APPS:
        fast = get_result(app, "fastswap", FRACTION)
        hopp = get_result(app, "hopp", FRACTION)
        denominator = hopp.remote_demand_reads + hopp.prefetch_hits
        swapcache_part = safe_ratio(
            hopp.prefetch_hit_swapcache + hopp.prefetch_hit_inflight, denominator
        )
        dram_part = safe_ratio(hopp.prefetch_hit_dram, denominator)
        rows.append([app, fast.coverage, hopp.coverage, swapcache_part, dram_part])
        hopp_total.append(hopp.coverage)
        fast_total.append(fast.coverage)
    rows.append(
        [
            "average",
            sum(fast_total) / len(fast_total),
            sum(hopp_total) / len(hopp_total),
            "",
            "",
        ]
    )
    print_artifact(
        "Figure 11: prefetch coverage, non-JVM apps "
        "(hopp = swapcache-hit part + DRAM-hit part)",
        render_table(
            ["workload", "fastswap", "hopp", "hopp:swapcache", "hopp:dram-hit"],
            rows,
        ),
    )

    assert sum(hopp_total) > sum(fast_total)
    # Best apps reach ~99% coverage (paper: QuickSort, K-means).
    assert max(hopp_total) > 0.97
    # The DRAM-hit (injected) part is a real contributor for streaming apps.
    kmeans = get_result("omp-kmeans", "hopp", FRACTION)
    assert kmeans.prefetch_hit_dram > kmeans.prefetch_hit_swapcache
