"""Ablation A2 — HPD table geometry (sets x ways).

The paper fixes 4 sets x 16 ways (M = 64 concurrently tracked pages)
and argues more sets track more pages.  Sweeping the geometry shows the
trade-off: a tiny table churns (repeated detections, missed hot pages
on concurrent workloads); a big one costs area for little extra hot-page
yield on these workloads.
"""

import itertools

import pytest

from repro.analysis.report import print_artifact, render_table
from repro.hopp.hardware_model import HPD_ENTRY_BITS, SramModel
from repro.hopp.hpd import HotPageDetector
from repro.workloads import build

from common import SEED, param_grid, time_one

GEOMETRIES = list(param_grid(nsets=[1, 4, 16, 64], nways=[16]))
MAX_ACCESSES = 300_000


def churn_metrics(nsets: int, nways: int):
    workload = build(
        "graphx-pr", seed=SEED, edge_pages=900, vertex_pages=150, blocks_per_page=64
    )
    hpd = HotPageDetector(threshold=8, nsets=nsets, nways=nways)
    for _, vaddr in itertools.islice(workload.trace(), MAX_ACCESSES):
        hpd.process(vaddr)
    return hpd


@pytest.mark.benchmark(group="ablation-hpd")
def test_ablation_hpd_geometry(benchmark):
    time_one(benchmark, lambda: churn_metrics(4, 16))

    model = SramModel()
    rows = []
    repeats_by_capacity = {}
    ratio_by_capacity = {}
    for point in GEOMETRIES:
        nsets, nways = point["nsets"], point["nways"]
        hpd = churn_metrics(nsets, nways)
        capacity = nsets * nways
        estimate = model.estimate(capacity * HPD_ENTRY_BITS)
        repeats_by_capacity[capacity] = hpd.repeated_detections
        ratio_by_capacity[capacity] = hpd.hot_page_ratio
        rows.append(
            [
                f"{nsets}x{nways}",
                capacity,
                hpd.hot_pages,
                hpd.repeated_detections,
                f"{hpd.hot_page_ratio * 100:.2f}%",
                f"{estimate.area_mm2:.6f}",
            ]
        )
    print_artifact(
        "Ablation A2: HPD geometry (GraphX-PR trace, N=8)",
        render_table(
            ["geometry", "entries", "hot pages", "repeats", "ratio", "area mm^2"],
            rows,
        ),
    )

    # More capacity means less churn: entries keep their send bit long
    # enough that the same page is re-extracted less often, so both the
    # repeated detections and the hot-page bandwidth ratio fall — at a
    # quadratically growing area cost.  The paper's 64-entry table sits
    # on the cheap side of that curve.
    assert repeats_by_capacity[1024] < repeats_by_capacity[64]
    assert ratio_by_capacity[1024] <= ratio_by_capacity[64]
