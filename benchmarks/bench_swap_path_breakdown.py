"""Section II-A — the swap-path cost breakdown.

The paper decomposes one fault into six steps: context switch 0.3 us,
PTE walk 0.6 us, swapcache ops 0.4 us, 4 KB RDMA ~4 us, reclaim (since
v5.8 off the critical path), PTE set 1 us — a remote fault of 8.3-11.3
us, a prefetch-hit of 2.3 us, at least 23x a DRAM hit.

This bench *measures* those path costs on the live machine (not just
the constants): it drives each fault type and checks the per-access
charge, then prints the breakdown table the paper's Section II-A gives.
"""

import pytest

from repro.analysis.report import print_artifact, render_table
from repro.common import constants
from repro.sim.machine import Machine, MachineConfig
from repro.net.rdma import FabricConfig

from common import time_one


def quiet_machine(limit=8):
    machine = Machine(
        MachineConfig(
            local_memory_pages=limit,
            fabric=FabricConfig(jitter_us=0.0, spike_probability=0.0),
            watermark_slack=2,
        )
    )
    machine.register_process(1)
    return machine


def measure_paths():
    """Return measured (remote_fault, prefetch_hit, dram_hit) costs."""
    machine = quiet_machine()
    # Thrash pages 0..15 so 0..7 end up remote.
    for vpn in range(16):
        machine.access(1, vpn << 12)
    remote_fault = machine.access(1, 0) - machine.config.compute_us_per_access

    arrival = machine.prefetch_page(1, 1, machine.now_us, False, "bench")
    machine.now_us = arrival + 1.0
    machine.access(1, 300 << 12)  # drain the arrival
    prefetch_hit = machine.access(1, 1 << 12)

    dram_hit = machine.access(1, 1 << 12)
    return remote_fault, prefetch_hit, dram_hit


@pytest.mark.benchmark(group="swap-path")
def test_swap_path_breakdown(benchmark):
    remote_fault, prefetch_hit, dram_hit = time_one(benchmark, measure_paths)

    rows = [
        ["(1) context switch", constants.T_CONTEXT_SWITCH_US, "0.3"],
        ["(2) page-table walk", constants.T_PTE_WALK_US, "0.6"],
        ["(3) swapcache query/alloc", constants.T_SWAPCACHE_OP_US, "0.4"],
        ["(4) 4KB page over RDMA", constants.T_RDMA_PAGE_US, "~4"],
        ["(5) reclaim (async, off-path)", constants.T_RECLAIM_CRITICAL_RESIDUE_US,
         "0 (since v5.8)"],
        ["(6) PTE set + return", constants.T_PTE_SET_US, "1"],
        ["remote fault total (measured)", remote_fault, "8.3-11.3"],
        ["prefetch-hit (measured)", prefetch_hit, "2.3"],
        ["DRAM hit (measured)", dram_hit, "0.1"],
    ]
    print_artifact(
        "Section II-A: swap-path cost breakdown (us)",
        render_table(["step", "model (us)", "paper (us)"], rows, precision=2),
    )

    # The measured path costs equal the constants they are built from.
    assert remote_fault == pytest.approx(
        constants.T_CONTEXT_SWITCH_US
        + constants.T_PTE_WALK_US
        + constants.T_SWAPCACHE_OP_US
        + constants.T_RDMA_PAGE_US
        + constants.T_PTE_SET_US,
        abs=0.01,
    )
    assert prefetch_hit == pytest.approx(constants.T_PREFETCH_HIT_US, abs=0.01)
    assert dram_hit == pytest.approx(constants.T_DRAM_HIT_US, abs=0.01)
    # The paper's headline ratios.
    assert prefetch_hit / dram_hit == pytest.approx(23.0, rel=0.01)
    assert remote_fault > 2.5 * prefetch_hit
