"""Ablation A1 — Stream Training Table parameters.

Sweeps the history length L (paper default 16) and the clustering
distance Delta_stream (paper default 64) on the stream microbenchmarks.
Expected shapes: tiny L weakens noise robustness (accuracy drops on the
interleaved/noisy stream), huge L delays training (coverage drops on
short streams); a tiny Delta splinters streams, a huge Delta merges
unrelated ones.
"""

import pytest

from repro.analysis.report import print_artifact, render_table
from repro.baselines.fastswap import FastswapPrefetcher
from repro.hopp.system import HoppConfig, HoppDataPlane
from repro.net.rdma import FabricConfig
from repro.sim.machine import Machine, MachineConfig
from repro.sim.runner import collect, make_machine
from repro.sim.systems import SystemSpec
from repro.workloads import build

from common import SEED, time_one


def hopp_with_stt(history_len: int, delta: int) -> SystemSpec:
    def builder(config: MachineConfig) -> Machine:
        machine = Machine(config, fault_prefetcher=FastswapPrefetcher())
        plane = HoppDataPlane(
            machine,
            HoppConfig(stt_history_len=history_len, stt_stream_delta=delta),
        )
        machine.hopp = plane
        machine.controller.add_tap(plane.on_mc_access)
        return machine

    return SystemSpec(name=f"hopp-L{history_len}-d{delta}", builder=builder)


def run_variant(workload_name: str, history_len: int, delta: int, **wl_kwargs):
    workload = build(workload_name, seed=SEED, **wl_kwargs)
    machine = make_machine(
        workload, hopp_with_stt(history_len, delta), 0.5, FabricConfig(seed=SEED)
    )
    machine.run(workload.trace())
    return collect(machine, f"L{history_len}-d{delta}", workload_name)


@pytest.mark.benchmark(group="ablation-stt")
def test_ablation_stt_history_length(benchmark):
    time_one(benchmark, lambda: run_variant("stream-interleaved", 16, 64))

    rows = []
    coverage = {}
    for history_len in (6, 16, 48):
        result = run_variant("stream-interleaved", history_len, 64)
        coverage[history_len] = result.coverage
        rows.append([f"L={history_len}", result.accuracy, result.coverage])
    print_artifact(
        "Ablation A1a: STT history length L (interleaved streams + noise)",
        render_table(["config", "accuracy", "coverage"], rows),
    )
    # The paper's L=16 midpoint is competitive with both extremes.
    assert coverage[16] >= max(coverage[6], coverage[48]) - 0.05


@pytest.mark.benchmark(group="ablation-stt")
def test_ablation_stt_stream_delta(benchmark):
    time_one(benchmark, lambda: run_variant("stream-interleaved", 16, 4))

    rows = []
    coverage = {}
    for delta in (4, 64, 1024):
        result = run_variant("stream-interleaved", 16, delta)
        coverage[delta] = result.coverage
        rows.append([f"delta={delta}", result.accuracy, result.coverage])
    print_artifact(
        "Ablation A1b: STT clustering distance Delta_stream",
        render_table(["config", "accuracy", "coverage"], rows),
    )
    # Stride-2 streams need delta >= stride window; delta=4 still works
    # for these micros, but the default must not trail the best by much.
    assert coverage[64] >= max(coverage.values()) - 0.05
