"""Figure 18 — completion-time speedup over Fastswap as prefetch tiers
are added: SSP only, SSP+LSP, SSP+LSP+RSP (full adaptive three-tier).

Paper shape: "with more algorithms added, HoPP has a better Speedup"
because each tier adds coverage while accuracy stays high.  HPL and
NPB-MG are the showcase apps (their ladders/ripples are invisible to
SSP).
"""

import pytest

from repro.analysis.report import print_artifact, render_table

from common import get_result, speedup, time_one

APPS = ["hpl", "npb-mg", "npb-lu", "omp-kmeans"]
TIER_SYSTEMS = ["hopp-ssp", "hopp-ssp-lsp", "hopp"]
FRACTION = 0.5


@pytest.mark.benchmark(group="fig18")
def test_fig18_speedup_by_tier(benchmark):
    time_one(benchmark, lambda: get_result("hpl", "hopp-ssp", FRACTION))

    rows = []
    gains = {}
    for app in APPS:
        row = [app]
        for system in TIER_SYSTEMS:
            value = speedup(app, system, "fastswap", FRACTION)
            gains[(app, system)] = value
            row.append(value)
        rows.append(row)
    print_artifact(
        "Figure 18: speedup over Fastswap as tiers are added "
        "(speedup = 1 - CT_system / CT_fastswap)",
        render_table(["workload", "SSP", "SSP+LSP", "SSP+LSP+RSP"], rows),
    )

    # Adding tiers never hurts materially, and the ladder/ripple apps
    # gain from LSP/RSP.
    for app in APPS:
        assert gains[(app, "hopp")] >= gains[(app, "hopp-ssp")] - 0.03
    assert gains[("hpl", "hopp-ssp-lsp")] > gains[("hpl", "hopp-ssp")]
    assert gains[("npb-mg", "hopp")] > gains[("npb-mg", "hopp-ssp")]
