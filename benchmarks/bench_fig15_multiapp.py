"""Figure 15 — speedup of HoPP over Fastswap when multiple applications
run simultaneously, each cgroup-limited to 50% of its footprint.

Paper shape: HoPP keeps improving performance in the co-run scenarios
because the hot-page trace carries application semantics (the PID), so
streams from different applications never alias in the trainer.
"""

import pytest

from repro.analysis.report import print_artifact, render_table

from common import corun_result, time_one

PAIRS = [
    ("omp-kmeans", "quicksort"),
    ("npb-cg", "npb-mg"),
    ("omp-kmeans", "npb-is"),
    ("quicksort", "npb-lu"),
]

FRACTION = 0.5


@pytest.mark.benchmark(group="fig15")
def test_fig15_multi_application_speedup(benchmark):
    time_one(benchmark, lambda: corun_result(PAIRS[0], "hopp", FRACTION))

    rows = []
    speedups = []
    for pair in PAIRS:
        fast = corun_result(pair, "fastswap", FRACTION)
        hopp = corun_result(pair, "hopp", FRACTION)
        speedup = hopp.speedup_vs(fast)
        speedups.append(speedup)
        rows.append(["+".join(pair), fast.accuracy, hopp.accuracy, speedup])
    print_artifact(
        "Figure 15: co-running applications, HoPP speedup over Fastswap "
        "(speedup = 1 - CT_hopp / CT_fastswap)",
        render_table(
            ["pair", "fastswap-acc", "hopp-acc", "hopp-speedup"], rows
        ),
    )

    # HoPP improves every co-run scenario, with high accuracy thanks to
    # PID-tagged hot pages.
    assert all(s > 0.05 for s in speedups)
    for pair in PAIRS:
        assert corun_result(pair, "hopp", FRACTION).accuracy > 0.85
