"""Ablation A3 — policy-engine knobs under fabric latency volatility.

The offset controller exists because "the remote swap latency is
volatile" (Section I, point 5).  Sweeping alpha on a jittery, spiky
fabric: alpha=0 (no adaptation) leaves prefetches late; a moderate
alpha tracks volatility; the exact value is not critical (the paper
simply picks 0.2).  Also sweeps prefetch intensity on a congested
fabric, where fetching >1 page per hot page rides out bandwidth dips.
"""

import pytest

from repro.analysis.report import print_artifact, render_table
from repro.baselines.fastswap import FastswapPrefetcher
from repro.hopp.policy import PolicyConfig
from repro.hopp.system import HoppConfig, HoppDataPlane
from repro.net.rdma import FabricConfig
from repro.sim.machine import Machine, MachineConfig
from repro.sim.runner import collect, make_machine
from repro.sim.systems import SystemSpec
from repro.workloads import build

from common import SEED, param_grid, time_one

#: A deliberately nasty fabric: heavy jitter, frequent big spikes.
VOLATILE = FabricConfig(
    jitter_us=2.0, spike_probability=0.05, spike_factor=8.0, seed=SEED
)


def hopp_with_policy(policy: PolicyConfig) -> SystemSpec:
    def builder(config: MachineConfig) -> Machine:
        machine = Machine(config, fault_prefetcher=FastswapPrefetcher())
        plane = HoppDataPlane(machine, HoppConfig(policy=policy))
        machine.hopp = plane
        machine.controller.add_tap(plane.on_mc_access)
        return machine

    return SystemSpec(name="hopp-policy-variant", builder=builder)


def run_policy(policy: PolicyConfig, label: str):
    workload = build("adder", seed=SEED)
    machine = make_machine(workload, hopp_with_policy(policy), 0.25, VOLATILE)
    machine.run(workload.trace())
    return collect(machine, label, workload.name)


@pytest.mark.benchmark(group="ablation-policy")
def test_ablation_alpha_sweep(benchmark):
    time_one(benchmark, lambda: run_policy(PolicyConfig(alpha=0.2), "a0.2"))

    rows = []
    completion = {}
    for point in param_grid(alpha=[0.0, 0.05, 0.2, 0.5]):
        alpha = point["alpha"]
        config = (
            PolicyConfig(adaptive=False)
            if alpha == 0.0
            else PolicyConfig(alpha=alpha)
        )
        result = run_policy(config, f"alpha={alpha}")
        completion[alpha] = result.completion_time_us
        rows.append(
            [f"alpha={alpha}", result.completion_time_us, result.coverage,
             result.prefetch_hit_inflight]
        )
    print_artifact(
        "Ablation A3a: offset-adaptation alpha under a volatile fabric",
        render_table(
            ["config", "completion (us)", "coverage", "late (inflight) hits"],
            rows,
        ),
    )

    # Any adaptation beats none; the default 0.2 is near the best.
    best = min(completion.values())
    assert completion[0.0] > best
    assert completion[0.2] <= best * 1.1


@pytest.mark.benchmark(group="ablation-policy")
def test_ablation_intensity_on_congested_fabric(benchmark):
    congested = FabricConfig(gbps=6.0, jitter_us=1.0, seed=SEED)

    def run_intensity(intensity: int):
        workload = build("adder", seed=SEED)
        machine = make_machine(
            workload,
            hopp_with_policy(PolicyConfig(intensity=intensity)),
            0.25,
            congested,
        )
        machine.run(workload.trace())
        return collect(machine, f"i{intensity}", workload.name)

    time_one(benchmark, lambda: run_intensity(1))

    rows = []
    results = {}
    for point in param_grid(intensity=[1, 2, 4]):
        intensity = point["intensity"]
        result = run_intensity(intensity)
        results[intensity] = result
        rows.append(
            [f"intensity={intensity}", result.completion_time_us,
             result.coverage, result.prefetch_hit_inflight]
        )
    print_artifact(
        "Ablation A3b: prefetch intensity on a congested (6 Gbps) fabric",
        render_table(
            ["config", "completion (us)", "coverage", "late (inflight) hits"],
            rows,
        ),
    )

    # On a slow link, intensity > 1 keeps coverage from collapsing
    # (Section III-E's rationale for the knob).
    assert results[2].coverage >= results[1].coverage - 0.02
