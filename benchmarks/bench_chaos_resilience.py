"""Resilience under a hostile fabric — the fault-injection framework's
headline experiment.

Runs the stream workload under Fastswap, Depth-16, and HoPP on a clean
fabric and under the ``chaos`` fault-plan preset (probabilistic READ and
WRITE drops, a link flap, a degraded epoch, a remote stall), and reports
the slowdown each system pays plus its failure accounting.

Shapes (not paper figures — the paper's testbed never loses the link,
this stresses the reproduction's robustness):

* every system completes under chaos, and within a bounded slowdown;
* demand reads survive via retry/backoff (retries > 0, no fatal);
* dropped prefetches never pollute accuracy (measured over delivered);
* HoPP stays ahead of Fastswap even while the fabric is hostile.
"""

import pytest

from repro.analysis.report import print_artifact, render_table
from repro.net.faults import FaultPlan
from repro.sim import runner
from repro.workloads import build

from common import SEED, _FABRIC, time_one

SYSTEMS = ("fastswap", "depth-16", "hopp")


def _run(system, plan):
    workload = build("stream-simple", seed=SEED)
    return runner.run(workload, system, 0.5, _FABRIC, fault_plan=plan)


@pytest.mark.benchmark(group="chaos")
def test_chaos_resilience(benchmark):
    time_one(benchmark, lambda: _run("hopp", FaultPlan.chaos(SEED)))

    rows = []
    clean, chaos = {}, {}
    for system in SYSTEMS:
        clean[system] = _run(system, None)
        chaos[system] = _run(system, FaultPlan.chaos(SEED))
        slowdown = (
            chaos[system].completion_time_us / clean[system].completion_time_us
        )
        rows.append(
            [
                system,
                f"{slowdown:.3f}x",
                chaos[system].timeouts,
                chaos[system].retries,
                chaos[system].dropped_prefetches,
                f"{chaos[system].accuracy:.3f}",
                f"{clean[system].accuracy:.3f}",
            ]
        )
    print_artifact(
        "Chaos resilience: chaos preset vs clean fabric (stream-simple @50%)",
        render_table(
            ["system", "slowdown", "timeouts", "retries", "dropped",
             "acc(chaos)", "acc(clean)"],
            rows,
        ),
    )

    for system in SYSTEMS:
        # Completion under chaos, at a bounded cost.
        assert chaos[system].completion_time_us >= clean[system].completion_time_us
        assert (
            chaos[system].completion_time_us
            < clean[system].completion_time_us * 20
        ), f"{system} collapsed under the chaos preset"
        # The retry path did real work and nothing went fatal.
        assert chaos[system].timeouts > 0
        assert chaos[system].retries > 0
        # Conservation: a dropped prefetch can never be a hit.
        assert chaos[system].prefetch_hits <= (
            chaos[system].prefetch_issued - chaos[system].dropped_prefetches
        )
        # Accuracy is measured over delivered prefetches, so injected
        # drops do not corrupt it.
        assert 0.0 <= chaos[system].accuracy <= 1.0
    # Prefetching still pays off on a hostile fabric.
    assert (
        chaos["hopp"].completion_time_us
        < chaos["fastswap"].completion_time_us
    )
