"""Autotuner vs the paper's hand-tuned configuration.

The paper fixes the HPD/STT/policy design by hand (4x16 HPD, N=8,
alpha=0.2...).  This bench runs all three search strategies at an equal
evaluation budget over the HPD-geometry space on one workload and asks
the reproduction question: does black-box search *find* a configuration
at least as good as the paper's on the scalarized objective?

The evolutionary arm warm-starts generation zero with the paper's own
design point (the standard include-the-expert trick), so "searched >=
paper" holds by construction for it; random and successive halving
compete from scratch at the same budget.  Every evaluation rides the
exec engine's cache, so reruns of this bench are nearly free.
"""

import os

import pytest

from repro.analysis.report import print_artifact, render_table
from repro.exec.cache import ResultCache
from repro.exec.pool import execute, local_ct_spec
from repro.exec.spec import RunSpec
from repro.net.rdma import FabricConfig
from repro.tune import (
    Evolutionary,
    FidelitySpec,
    Objective,
    RandomSearch,
    SuccessiveHalving,
    Tuner,
    build_space,
    default_config,
    extract_metrics,
    to_run_spec,
)

from common import SEED, paper_fraction, time_one

WORKLOAD = "stream-simple"
SPACE = "hpd"
BUDGET = 9  # identical for all three strategies

_FABRIC = FabricConfig(seed=SEED)
_CACHE = None if os.environ.get("REPRO_NO_CACHE") else ResultCache()


def _base_spec() -> RunSpec:
    return RunSpec(
        workload=WORKLOAD,
        system="hopp",
        fraction=paper_fraction(WORKLOAD),
        seed=SEED,
        fabric=_FABRIC,
    )


def _paper_score(base: RunSpec, space, objective: Objective) -> float:
    """The paper's own design point, scored through the identical
    pipeline the search uses (same yardstick, same scalarization)."""
    paper_point = default_config(space, base)
    spec = to_run_spec(base, paper_point)
    ct_spec = local_ct_spec(WORKLOAD, SEED, _FABRIC, base.workload_kwargs)
    ct_result, result = execute([ct_spec, spec], cache=_CACHE)
    return objective.score(
        extract_metrics(result, ct_result.completion_time_us)
    )


def _search(strategy_name: str, base: RunSpec, space, objective: Objective):
    if strategy_name == "random":
        strategy = RandomSearch(space, SEED)
        fidelity = None
    elif strategy_name == "evolve":
        strategy = Evolutionary(
            space, SEED, mu=4, lam=4,
            seed_configs=[default_config(space, base)],
        )
        fidelity = None
    else:
        fidelity = FidelitySpec("passes", (1, 2))
        strategy = SuccessiveHalving(
            space, SEED,
            initial=SuccessiveHalving.plan_initial(BUDGET, eta=2, rungs=2),
            eta=2, rungs=2,
        )
    tuner = Tuner(
        space, strategy, base, budget=BUDGET, objective=objective,
        fidelity=fidelity, cache=_CACHE,
    )
    return tuner.run()


@pytest.mark.benchmark(group="tune")
def test_tune_vs_paper(benchmark):
    space = build_space(SPACE)
    objective = Objective()
    base = _base_spec()
    paper = _paper_score(base, space, objective)

    time_one(benchmark, lambda: _search("random", base, space, objective))

    rows = []
    best_by_strategy = {}
    for name in ("random", "evolve", "sha"):
        result = _search(name, base, space, objective)
        best = result.best
        best_by_strategy[name] = best.score
        rows.append(
            [
                name,
                len(result.trials),
                f"{best.score:.4f}",
                f"{best.score - paper:+.4f}",
                " ".join(
                    f"{key.split('.')[-1]}={best.config[key]}"
                    for key in sorted(best.config)
                ),
            ]
        )
    rows.append(["(paper)", 1, f"{paper:.4f}", "+0.0000",
                 "threshold=8 sets=4 ways=16"])
    print_artifact(
        f"Autotuner vs paper config ({WORKLOAD}, '{SPACE}' space, "
        f"budget={BUDGET})",
        render_table(
            ["strategy", "trials", "best score", "vs paper", "best config"],
            rows,
        ),
    )

    # The reproduction claims: (1) every strategy spends the same
    # budget; (2) search matches or beats the hand-tuned design — the
    # warm-started evolutionary arm by construction, and the best arm
    # overall strictly so at any budget where random sampling finds one
    # better point.
    assert best_by_strategy["evolve"] >= paper
    assert max(best_by_strategy.values()) >= paper
