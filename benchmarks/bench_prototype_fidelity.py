"""Ablation A8 — Section V's prototype emulation vs the hardware design.

The prototype runs the HPD in software on a dedicated core over an
HMTT trace ring; the design puts it in the MC.  The paper's implicit
validation claim is that the two are equivalent for the evaluation.
This bench sweeps the software consumer's throughput: at a realistic
rate the prototype matches the in-MC design; starve the consumer and
coverage degrades through lag and trace loss — quantifying how much
slack the prototype methodology actually had.
"""

import pytest

from repro.analysis.report import print_artifact, render_table
from repro.baselines.fastswap import FastswapPrefetcher
from repro.hopp.prototype import PrototypeDataPlane
from repro.hopp.system import HoppConfig
from repro.net.rdma import FabricConfig
from repro.sim.machine import Machine, MachineConfig
from repro.sim.runner import collect, make_machine
from repro.sim.systems import SystemSpec
from repro.workloads import build

from common import SEED, get_result, time_one


def prototype_system(rate: float) -> SystemSpec:
    def builder(config: MachineConfig) -> Machine:
        machine = Machine(config, fault_prefetcher=FastswapPrefetcher())
        plane = PrototypeDataPlane(
            machine, HoppConfig(), consume_rate_per_us=rate,
            ring_capacity=4096,
        )
        machine.hopp = plane
        machine.controller.add_tap(plane.on_mc_access)
        return machine

    return SystemSpec(name=f"hopp-proto-{rate}", builder=builder)


def run_prototype(rate: float):
    workload = build("omp-kmeans", seed=SEED)
    machine = make_machine(
        workload, prototype_system(rate), 0.5, FabricConfig(seed=SEED)
    )
    machine.run(workload.trace())
    result = collect(machine, f"proto@{rate}/us", workload.name)
    result.extra["drop_rate"] = machine.hopp.drop_rate
    result.extra["backlog"] = float(machine.hopp.backlog)
    return result


@pytest.mark.benchmark(group="prototype")
def test_prototype_vs_design(benchmark):
    time_one(benchmark, lambda: run_prototype(100.0))

    design = get_result("omp-kmeans", "hopp", 0.5)
    rows = [
        ["in-MC design", design.completion_time_us, design.coverage,
         design.accuracy, "-"],
    ]
    results = {}
    for rate in (100.0, 10.0, 1.0):
        result = run_prototype(rate)
        results[rate] = result
        rows.append(
            [
                f"software HPD @ {rate:g} rec/us",
                result.completion_time_us,
                result.coverage,
                result.accuracy,
                f"{result.extra['drop_rate']:.1%}",
            ]
        )
    print_artifact(
        "Ablation A8: Section V prototype (software HPD over a trace ring) "
        "vs the in-MC design",
        render_table(
            ["configuration", "completion (us)", "coverage", "accuracy",
             "trace dropped"],
            rows,
        ),
    )

    # At a realistic consumer rate the prototype reproduces the design.
    fast = results[100.0]
    assert fast.completion_time_us <= design.completion_time_us * 1.05
    assert fast.coverage >= design.coverage - 0.03
    # A starved consumer costs coverage (lag and/or loss).
    assert results[1.0].coverage < fast.coverage
