"""Figure 21 — normalized performance as a function of prefetch
accuracy and coverage (the scatter that closes Section VI-D).

Paper shapes: for HoPP, when accuracy and coverage both approach 1 the
normalized performance approaches 1 regardless of how much of the
working set is disaggregated (QuickSort, OMP-K-means); Fastswap sits
lower even at comparable coverage because every covered page still pays
the 2.3 us prefetch-hit fault.  Note: HoPP's coverage here counts only
DRAM hits, as in the paper's figure.
"""

import pytest

from repro.analysis.report import print_artifact, render_table
from repro.workloads import NON_JVM_APPS

from common import get_result, local_ct, time_one

FRACTION = 0.5


@pytest.mark.benchmark(group="fig21")
def test_fig21_accuracy_coverage_scatter(benchmark):
    time_one(benchmark, lambda: get_result("npb-is", "hopp", FRACTION))

    rows = []
    points = {}
    for app in NON_JVM_APPS:
        for system in ("fastswap", "hopp"):
            result = get_result(app, system, FRACTION)
            coverage = (
                result.dram_hit_coverage if system == "hopp" else result.coverage
            )
            np_value = result.normalized_performance(local_ct(app))
            points[(app, system)] = (result.accuracy, coverage, np_value)
            rows.append([f"{app} ({system})", result.accuracy, coverage, np_value])
    print_artifact(
        "Figure 21: accuracy / coverage / normalized-performance points "
        "(hopp coverage counts DRAM hits only)",
        render_table(["point", "accuracy", "coverage", "norm-perf"], rows),
    )

    # Both-near-1 implies near-local performance for HoPP.
    for app in ("omp-kmeans", "quicksort"):
        accuracy, coverage, np_value = points[(app, "hopp")]
        assert accuracy > 0.9 and coverage > 0.85
        assert np_value > 0.9

    # Even where Fastswap's raw coverage rivals HoPP's DRAM-hit-only
    # coverage, its normalized performance stays lower — the
    # prefetch-hit overhead at work (Section VI-D).
    for app in NON_JVM_APPS:
        hopp_np = points[(app, "hopp")][2]
        fast_np = points[(app, "fastswap")][2]
        assert hopp_np > fast_np
