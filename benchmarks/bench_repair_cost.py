"""Repair cost and interference — the self-healing subsystem's
headline experiment.

A node crash mid-run triggers background re-replication: every
surviving under-replicated slot is copied to a ring successor, paying a
bulk READ on the source link and a bulk WRITE on the target's.  This
bench measures what that traffic costs the foreground workload and what
it buys:

* with a replica (``replication=2``) the crash loses **zero** pages —
  repair restores full redundancy at a bounded slowdown;
* with a single copy (``replication=1``) there is nothing to repair:
  pages on the dead node are lost, zero-filled on demand, and conserved;
* the repair rate limit (``repair_interval_us``) trades recovery speed
  against foreground interference — draining the same queue slower
  never loses pages, it only stretches the run.

Shapes only (the paper's testbed never loses a server); the 4-term
conservation identity ``written == stored + overwritten + released +
lost`` must hold on every node throughout.
"""

import pytest

from repro.analysis.report import print_artifact, render_table
from repro.cluster import ClusterConfig, RepairConfig
from repro.net.faults import FaultPlan
from repro.sim import runner
from repro.workloads import build

from common import SEED, _FABRIC, time_one

WORKLOAD = "quicksort"
FRACTION = 0.5
NODES = 3


def _run(replication, plan, repair_interval_us=None):
    workload = build(WORKLOAD, seed=SEED)
    machine = runner.make_machine(
        workload,
        "hopp",
        FRACTION,
        _FABRIC,
        fault_plan=plan,
        cluster=ClusterConfig(nodes=NODES, replication=replication),
    )
    if repair_interval_us is not None:
        machine.repair.config = RepairConfig(
            repair_interval_us=repair_interval_us
        )
    machine.run(workload.trace())
    machine.flush_recovery()
    return runner.collect(machine, "hopp", WORKLOAD), machine


@pytest.mark.benchmark(group="repair")
def test_repair_cost(benchmark):
    time_one(benchmark, lambda: _run(2, FaultPlan.crash(SEED)))

    clean, _ = _run(2, None)
    rows = []
    crashed = {}
    for replication in (1, 2):
        result, machine = _run(replication, FaultPlan.crash(SEED))
        crashed[replication] = result
        slowdown = result.completion_time_us / clean.completion_time_us
        rows.append(
            [
                replication,
                f"{slowdown:.3f}x",
                result.pages_repaired,
                result.pages_lost,
                result.pages_zero_filled,
                result.repair_bytes,
                result.repair_retries,
            ]
        )
        # Conservation survives the crash on every node.
        for node in machine.cluster.nodes:
            assert node.remote.conserved, f"node {node.node_id} leaked slots"
    print_artifact(
        f"Repair cost: mid-run node crash ({WORKLOAD} @{FRACTION:.0%}, "
        f"{NODES} nodes)",
        render_table(
            ["repl", "slowdown", "repaired", "lost", "zero-filled",
             "repair-bytes", "retries"],
            rows,
        ),
    )

    # A replica turns a crash into traffic instead of data loss.
    assert crashed[2].node_crashes == 1
    assert crashed[2].pages_repaired > 0
    assert crashed[2].pages_lost == 0
    assert crashed[2].pages_zero_filled == 0
    assert crashed[2].repair_bytes > 0
    # A single copy loses exactly what the dead node held, visibly.
    assert crashed[1].pages_lost > 0
    assert crashed[1].pages_repaired == 0
    # Repair traffic costs something, but the run never collapses.
    assert crashed[2].completion_time_us >= clean.completion_time_us
    assert crashed[2].completion_time_us < clean.completion_time_us * 20

    # Rate-limit sweep: slower pumping shifts the repair schedule (and
    # with it the foreground interference), but never loses a page.
    sweep_rows = []
    for interval in (1.0, 10.0, 100.0):
        result, machine = _run(
            2, FaultPlan.crash(SEED), repair_interval_us=interval
        )
        sweep_rows.append(
            [
                f"{interval:.0f}",
                f"{result.completion_time_us:.0f}",
                result.pages_repaired,
                result.pages_lost,
            ]
        )
        assert result.pages_lost == 0
        assert result.pages_repaired > 0
        for node in machine.cluster.nodes:
            assert node.remote.conserved
    print_artifact(
        "Repair rate limit sweep (replication=2, crash preset)",
        render_table(
            ["interval-us", "completion-us", "repaired", "lost"],
            sweep_rows,
        ),
    )
