"""Figure 14 — prefetch coverage on the Spark workloads.

Paper shapes: HoPP's Spark coverage is lower than on the apps without
JVM ("the repetitive patterns might stop before HoPP finishes
identifying them") but still ~29% above Fastswap's on average, and the
HoPP bar keeps a visible swapcache-hit share (the fault-path prefetches
it runs on top of).
"""

import pytest

from repro.analysis.report import print_artifact, render_table
from repro.common.stats import safe_ratio
from repro.workloads import SPARK_APPS

from common import get_result, paper_fraction, time_one


@pytest.mark.benchmark(group="fig14")
def test_fig14_coverage_spark(benchmark):
    time_one(
        benchmark,
        lambda: get_result("spark-bayes", "hopp", paper_fraction("spark-bayes")),
    )

    rows, fast_values, hopp_values = [], [], []
    for app in SPARK_APPS:
        fraction = paper_fraction(app)
        fast = get_result(app, "fastswap", fraction)
        hopp = get_result(app, "hopp", fraction)
        denominator = hopp.remote_demand_reads + hopp.prefetch_hits
        swapcache_part = safe_ratio(
            hopp.prefetch_hit_swapcache + hopp.prefetch_hit_inflight, denominator
        )
        dram_part = safe_ratio(hopp.prefetch_hit_dram, denominator)
        fast_values.append(fast.coverage)
        hopp_values.append(hopp.coverage)
        rows.append([app, fast.coverage, hopp.coverage, swapcache_part, dram_part])
    rows.append(
        ["average", sum(fast_values) / len(fast_values),
         sum(hopp_values) / len(hopp_values), "", ""]
    )
    print_artifact(
        "Figure 14: prefetch coverage, Spark workloads",
        render_table(
            ["workload", "fastswap", "hopp", "hopp:swapcache", "hopp:dram-hit"],
            rows,
        ),
    )

    assert sum(hopp_values) > sum(fast_values)
    # JVM coverage trails the non-JVM suite (checked against Figure 11's
    # cached results when both benches run in one session).
    from common import _RESULTS

    nojvm = [
        result.coverage
        for (name, system, _), result in _RESULTS.items()
        if system == "hopp" and name in ("omp-kmeans", "quicksort")
    ]
    if nojvm:
        assert sum(hopp_values) / len(hopp_values) < max(nojvm)
