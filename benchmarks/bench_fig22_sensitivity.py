"""Figure 22 — design sensitivity on the Section VI-E microbenchmark:
two worker threads each streaming a large array and summing every
8-byte word, local memory limited to a quarter of the footprint.

Paper shapes (Fastswap = baseline):
* Leap is *worse* than Fastswap — two concurrent streams make its
  global majority vote pick wrong strides;
* VMA-based read-ahead is slightly better than Fastswap (~3.6%) —
  virtual adjacency beats swap-offset adjacency;
* full HoPP is ~40% better than VMA read-ahead, almost local — the gain
  is early PTE injection plus offset control;
* fixed offsets lose: offset=1 prefetches too late, offset=20K too far.
"""

import pytest

from repro.analysis.report import print_artifact, render_table

from common import get_result, local_ct, normperf, time_one

WORKLOAD = "adder"
FRACTION = 0.25
SYSTEMS = [
    "leap",
    "fastswap",
    "vma-readahead",
    "hopp-offset-1",
    "hopp-offset-20k",
    "hopp-swapcache",
    "hopp",
]


@pytest.mark.benchmark(group="fig22")
def test_fig22_design_sensitivity(benchmark):
    time_one(benchmark, lambda: get_result(WORKLOAD, "hopp", FRACTION))

    values = {system: normperf(WORKLOAD, system, FRACTION) for system in SYSTEMS}
    fastswap_ct = get_result(WORKLOAD, "fastswap", FRACTION).completion_time_us
    rows = []
    for system in SYSTEMS:
        result = get_result(WORKLOAD, system, FRACTION)
        speedup = 1.0 - result.completion_time_us / fastswap_ct
        rows.append([system, values[system], speedup, result.accuracy, result.coverage])
    print_artifact(
        "Figure 22: design sensitivity on the 2-thread adder benchmark "
        "(speedup vs Fastswap)",
        render_table(
            ["system", "norm-perf", "speedup-vs-fastswap", "accuracy", "coverage"],
            rows,
        ),
    )

    # Paper's ordering.
    assert values["leap"] <= values["fastswap"] + 0.02, "Leap must not win"
    assert values["vma-readahead"] >= values["fastswap"] - 0.01
    assert values["hopp"] > values["vma-readahead"] + 0.1
    assert values["hopp"] > values["hopp-offset-1"]
    assert values["hopp"] > values["hopp-offset-20k"]
    # Early PTE injection is a real share of the win.
    assert values["hopp"] > values["hopp-swapcache"]
    # HoPP approaches local performance.
    assert values["hopp"] > 0.9
