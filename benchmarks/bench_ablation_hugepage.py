"""Ablation A4 — Section IV's huge-page batch prefetching.

"When HoPP detects the page stream is long enough, it can choose to
swap 512 consecutive future pages with one prefetch request to the
reserved 2 MB space."

The sweep shows the extension's niche: with local-memory headroom it
matches full HoPP while collapsing thousands of single-page requests
into a handful of 2 MB batches; under tight memory the 512-page charge
bursts self-evict (the same pollution dynamic that hurts Depth-N), so
the mechanism must stay gated on stream length *and* headroom.
"""

import pytest

from repro.analysis.report import print_artifact, render_table
from repro.net.rdma import FabricConfig
from repro.sim import runner
from repro.workloads import build

from common import SEED, time_one

FABRIC = FabricConfig(seed=SEED)


def run(system: str, fraction: float):
    workload = build("stream-simple", seed=SEED, npages=3000, passes=2)
    return runner.run(workload, system, fraction, FABRIC)


@pytest.mark.benchmark(group="ablation-hugepage")
def test_ablation_hugepage_batching(benchmark):
    time_one(benchmark, lambda: run("hopp-huge", 0.75))

    rows = []
    results = {}
    for fraction in (0.5, 0.75):
        for system in ("hopp", "hopp-huge"):
            result = run(system, fraction)
            results[(system, fraction)] = result
            batch_pages = result.issued_by_tier.get("huge", 0)
            single_pages = sum(
                count for tier, count in result.issued_by_tier.items()
                if tier != "huge"
            )
            rows.append(
                [
                    f"{system}@{fraction:.0%}",
                    result.completion_time_us,
                    single_pages,
                    batch_pages,
                    result.prefetch_wasted,
                ]
            )
    print_artifact(
        "Ablation A4: huge-page (2 MB) batch prefetching",
        render_table(
            ["config", "completion (us)", "single-page reqs", "batched pages",
             "wasted"],
            rows,
        ),
    )

    generous_hopp = results[("hopp", 0.75)]
    generous_huge = results[("hopp-huge", 0.75)]
    # With headroom: same performance, far fewer requests.
    assert generous_huge.completion_time_us <= generous_hopp.completion_time_us * 1.05
    assert generous_huge.issued_by_tier.get("huge", 0) > 1000
    # Under tight memory the batches backfire — the documented caveat.
    tight_hopp = results[("hopp", 0.5)]
    tight_huge = results[("hopp-huge", 0.5)]
    assert tight_huge.prefetch_wasted > tight_hopp.prefetch_wasted
