"""Section II-B's motivating study — the revamped majority-based
prefetcher fed by the *full* memory trace (pages clustering + large
window) against fault-driven Leap.

Paper numbers: "with full memory access the algorithm improves prefetch
accuracy and coverage by 10.6% and by 13.9%, respectively" — before the
three-tier design adds the ladder/ripple coverage on top.
"""

import pytest

from repro.analysis.report import print_artifact, render_table

from common import get_result, paper_fraction, time_one

APPS = ["stream-interleaved", "omp-kmeans", "quicksort", "npb-cg"]


@pytest.mark.benchmark(group="motivation")
def test_motivation_full_trace_majority(benchmark):
    time_one(
        benchmark,
        lambda: get_result("stream-interleaved", "majority-full", 0.5),
    )

    rows = []
    acc_gain, cov_gain = [], []
    for app in APPS:
        fraction = paper_fraction(app) if not app.startswith("stream") else 0.5
        leap = get_result(app, "leap", fraction)
        majority = get_result(app, "majority-full", fraction)
        acc_gain.append(majority.accuracy - leap.accuracy)
        cov_gain.append(majority.coverage - leap.coverage)
        rows.append(
            [app, leap.accuracy, majority.accuracy, leap.coverage, majority.coverage]
        )
    print_artifact(
        "Section II-B study: Leap vs full-trace majority prefetcher",
        render_table(
            ["workload", "leap-acc", "majority-acc", "leap-cov", "majority-cov"],
            rows,
        ),
    )

    # The full trace lifts coverage on average (paper: +13.9%) without
    # giving up accuracy (paper: +10.6%).
    assert sum(cov_gain) / len(cov_gain) > 0.05
    assert sum(acc_gain) / len(acc_gain) > -0.02
