"""Figure 19 — per-tier prefetch accuracy inside adaptive three-tier
prefetching.

Paper shape: "the accuracy of each algorithm is high (over 90%), as
combining them together does not reduce the accuracy."
"""

import pytest

from repro.analysis.report import print_artifact, render_table

from common import get_result, time_one

APPS = ["hpl", "npb-mg", "npb-lu", "omp-kmeans", "quicksort"]
FRACTION = 0.5
TIERS = ("ssp", "lsp", "rsp")


@pytest.mark.benchmark(group="fig19")
def test_fig19_per_tier_accuracy(benchmark):
    time_one(benchmark, lambda: get_result("npb-lu", "hopp", FRACTION))

    rows = []
    for app in APPS:
        result = get_result(app, "hopp", FRACTION)
        row = [app]
        for tier in TIERS:
            issued = result.issued_by_tier.get(tier, 0)
            row.append(f"{result.tier_accuracy(tier):.3f}" if issued else "-")
        row.append(f"{result.accuracy:.3f}")
        rows.append(row)
    print_artifact(
        "Figure 19: per-tier prefetch accuracy",
        render_table(["workload", "SSP", "LSP", "RSP", "combined"], rows),
    )

    # Each active tier stays accurate, and combining them does not drag
    # the total below 90% on these apps.
    for app in APPS:
        result = get_result(app, "hopp", FRACTION)
        assert result.accuracy > 0.9
        for tier in TIERS:
            if result.issued_by_tier.get(tier, 0) >= 50:
                assert result.tier_accuracy(tier) > 0.75, (app, tier)
