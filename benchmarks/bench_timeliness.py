"""Section VI-A's third metric — timeliness.

Timeliness is "the time gap from the time a prefetched page is received
to the time it is first hit".  The policy engine's whole job
(Section III-E) is keeping it inside [T_min = 40 µs, T_max = 5 ms]:
smaller risks late pages, larger wastes local memory.  This bench
prints the distribution HoPP actually achieves per application and
asserts the controller keeps the bulk of hits inside the target window.
"""

import pytest

from repro.analysis.report import print_artifact, render_table
from repro.common.constants import POLICY_T_MAX_US, POLICY_T_MIN_US

from common import get_result, time_one

APPS = ["omp-kmeans", "quicksort", "hpl", "npb-mg", "npb-is"]
FRACTION = 0.5


@pytest.mark.benchmark(group="timeliness")
def test_timeliness_distribution(benchmark):
    time_one(benchmark, lambda: get_result("omp-kmeans", "hopp", FRACTION))

    rows = []
    in_window_fractions = []
    for app in APPS:
        result = get_result(app, "hopp", FRACTION)
        hist = result.timeliness
        assert hist is not None and hist.stat.count > 0
        p50 = hist.quantile(0.5)
        p90 = hist.quantile(0.9)
        # Fraction of hits whose T landed in the policy's target window.
        in_window = sum(
            count
            for bound, count in zip(hist.bounds, hist.counts)
            if POLICY_T_MIN_US <= bound <= POLICY_T_MAX_US
        ) / hist.total
        in_window_fractions.append(in_window)
        rows.append(
            [app, hist.stat.count, hist.stat.mean, p50, p90, f"{in_window:.0%}"]
        )
    print_artifact(
        f"Section VI-A metric: prefetch timeliness "
        f"(target window [{POLICY_T_MIN_US:.0f} us, {POLICY_T_MAX_US:.0f} us])",
        render_table(
            ["workload", "measured hits", "mean (us)", "p50 (us)", "p90 (us)",
             "in window"],
            rows,
            precision=1,
        ),
    )

    # The controller keeps the majority of hits inside the window on
    # the streaming apps.
    assert max(in_window_fractions) > 0.6
    assert sum(in_window_fractions) / len(in_window_fractions) > 0.4
