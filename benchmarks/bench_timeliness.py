"""Section VI-A's third metric — timeliness.

Timeliness is "the time gap from the time a prefetched page is received
to the time it is first hit".  The policy engine's whole job
(Section III-E) is keeping it inside [T_min = 40 µs, T_max = 5 ms]:
smaller risks late pages, larger wastes local memory.  This bench
prints the distribution HoPP actually achieves per application and
asserts the controller keeps the bulk of hits inside the target window.
"""

import pytest

from repro.analysis.report import print_artifact, render_table
from repro.common.constants import POLICY_T_MAX_US, POLICY_T_MIN_US

from common import get_result, get_telemetry_result, time_one

APPS = ["omp-kmeans", "quicksort", "hpl", "npb-mg", "npb-is"]
FRACTION = 0.5


@pytest.mark.benchmark(group="timeliness")
def test_timeliness_distribution(benchmark):
    time_one(benchmark, lambda: get_result("omp-kmeans", "hopp", FRACTION))

    rows = []
    in_window_fractions = []
    for app in APPS:
        result = get_result(app, "hopp", FRACTION)
        hist = result.timeliness
        assert hist is not None and hist.stat.count > 0
        p50 = hist.quantile(0.5)
        p90 = hist.quantile(0.9)
        # Fraction of hits whose T landed in the policy's target window.
        in_window = sum(
            count
            for bound, count in zip(hist.bounds, hist.counts)
            if POLICY_T_MIN_US <= bound <= POLICY_T_MAX_US
        ) / hist.total
        in_window_fractions.append(in_window)
        rows.append(
            [app, hist.stat.count, hist.stat.mean, p50, p90, f"{in_window:.0%}"]
        )
    print_artifact(
        f"Section VI-A metric: prefetch timeliness "
        f"(target window [{POLICY_T_MIN_US:.0f} us, {POLICY_T_MAX_US:.0f} us])",
        render_table(
            ["workload", "measured hits", "mean (us)", "p50 (us)", "p90 (us)",
             "in window"],
            rows,
            precision=1,
        ),
    )

    # The controller keeps the majority of hits inside the window on
    # the streaming apps.
    assert max(in_window_fractions) > 0.6
    assert sum(in_window_fractions) / len(in_window_fractions) > 0.4


@pytest.mark.benchmark(group="timeliness")
def test_timeliness_over_time(benchmark):
    """Per-epoch timeliness from the telemetry time-series: does the
    policy engine's control loop *hold* T inside the window as the run
    progresses, or only on average?  Epoch sample counts must
    reconcile exactly with the aggregate timeliness histogram."""
    app = "omp-kmeans"
    time_one(benchmark, lambda: get_telemetry_result(app, "hopp", FRACTION))

    result = get_telemetry_result(app, "hopp", FRACTION)
    block = result.telemetry["timeseries"]["timeliness_us"]
    assert sum(block["count"]) == result.timeliness.stat.count
    sampled = [i for i, count in enumerate(block["count"]) if count]
    assert sampled, "no prefetch first-hits recorded"

    rows = []
    for label, epoch in (("first", sampled[0]), ("last", sampled[-1])):
        rows.append(
            [
                f"{label} active epoch ({epoch})",
                block["count"][epoch],
                block["mean"][epoch],
                block["p50"][epoch],
                block["p90"][epoch],
            ]
        )
    print_artifact(
        f"timeliness over time ({app} on hopp, epoch = 1 ms, "
        f"{len(sampled)} active epochs)",
        render_table(
            ["epoch", "hits", "mean (us)", "p50 (us)", "p90 (us)"],
            rows,
            precision=1,
        ),
    )
    # The steady-state epochs keep their median inside the policy
    # window — the time-resolved form of the aggregate assertion above.
    medians = [block["p50"][i] for i in sampled]
    in_window = [
        m for m in medians if POLICY_T_MIN_US <= m <= POLICY_T_MAX_US
    ]
    assert len(in_window) >= len(medians) * 0.5
