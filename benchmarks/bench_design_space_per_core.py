"""Section II-D design-space study (d) — why a single observation point?

"When a process migrates between cores, or a page stream [comes] from
multiple cores, using accesses from a single core cannot identify a
complete page stream."  An MMU-level tap is per-core; the MC sees the
merged stream.

Method: take a multi-threaded workload's access stream, deal it across
C per-core observers (round-robin scheduling quanta, i.e. thread
migration), run an independent STT + three-tier trainer per core, and
count trained prefetch decisions.  The per-core observers see each
stream chopped into fragments; the single MC-level observer sees it
whole.
"""

import itertools

import pytest

from repro.analysis.report import print_artifact, render_table
from repro.hopp.hpd import HotPageDetector
from repro.hopp.stt import StreamTrainingTable
from repro.hopp.three_tier import ThreeTierTrainer
from repro.workloads import build

from common import SEED, time_one

MAX_ACCESSES = 150_000


def decisions_with_observers(ncores: int, quantum_accesses: int = 512) -> int:
    """Deal the trace across ``ncores`` observers in scheduling quanta;
    return the total prefetch decisions trained."""
    workload = build("adder", seed=SEED, pages_per_thread=800)
    observers = [
        (HotPageDetector(), StreamTrainingTable(), ThreeTierTrainer())
        for _ in range(ncores)
    ]
    for position, (pid, vaddr) in enumerate(
        itertools.islice(workload.trace(), MAX_ACCESSES)
    ):
        core = (position // quantum_accesses) % ncores
        hpd, stt, trainer = observers[core]
        hot = hpd.process(vaddr)
        if hot is None:
            continue
        observation = stt.feed(pid, hot)
        if observation is None:
            continue
        trainer.train(observation)
    return sum(
        sum(trainer.decisions_by_tier.values())
        for _, _, trainer in observers
    )


@pytest.mark.benchmark(group="design-space")
def test_per_core_vs_mc_stream_identification(benchmark):
    time_one(benchmark, lambda: decisions_with_observers(4))

    rows = []
    decisions = {}
    for ncores in (1, 2, 4, 8):
        count = decisions_with_observers(ncores)
        decisions[ncores] = count
        label = "MC (merged)" if ncores == 1 else f"{ncores} per-core taps"
        rows.append([label, count])
    print_artifact(
        "Section II-D(d): trained prefetch decisions, merged MC tap vs "
        "per-core observation of a migrating 2-thread workload",
        render_table(["observation point", "prefetch decisions"], rows),
    )

    # The merged view identifies the most stream steps; fragmentation
    # across cores loses training opportunities monotonically-ish.
    assert decisions[1] > decisions[4]
    assert decisions[1] > decisions[8]
