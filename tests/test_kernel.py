"""Tests for the kernel substrate: page tables, frames, swap, cgroups,
reclaim, VMAs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.cgroup import CgroupManager, CgroupOverLimitError, MemoryCgroup
from repro.kernel.frames import FrameAllocator, OutOfFramesError
from repro.kernel.page_table import PageTable, PteState
from repro.kernel.reclaim import LruPageList, Reclaimer
from repro.kernel.swap import SwapCache, SwapSpace
from repro.kernel.vma import VmaMap, VmaRegistry


class TestPageTable:
    def test_entry_created_untouched(self):
        table = PageTable(pid=1)
        pte = table.entry(5)
        assert pte.state == PteState.UNTOUCHED
        assert pte.ppn == -1

    def test_map_sets_present_and_fires_hooks(self):
        table = PageTable(pid=1)
        events = []
        table.add_set_hook(lambda pid, vpn, ppn, pte: events.append(("set", pid, vpn, ppn)))
        table.add_clear_hook(lambda pid, vpn, ppn: events.append(("clear", pid, vpn, ppn)))
        table.map_page(5, 77)
        assert table.entry(5).state == PteState.PRESENT
        table.unmap_page(5)
        assert events == [("set", 1, 5, 77), ("clear", 1, 5, 77)]

    def test_unmap_nonpresent_is_noop(self):
        table = PageTable(pid=1)
        assert table.unmap_page(9) is None
        table.entry(9).state = PteState.REMOTE
        assert table.unmap_page(9) is None

    def test_present_pages_iteration(self):
        table = PageTable(pid=1)
        table.map_page(1, 10)
        table.map_page(2, 11)
        table.entry(3)  # untouched
        present = dict(table.present_pages())
        assert set(present) == {1, 2}

    def test_injected_flag(self):
        table = PageTable(pid=1)
        pte = table.map_page(4, 40, injected=True)
        assert pte.injected


class TestFrameAllocator:
    def test_allocate_distinct(self):
        frames = FrameAllocator(total_frames=4)
        ppns = {frames.allocate(1, vpn) for vpn in range(4)}
        assert len(ppns) == 4

    def test_exhaustion(self):
        frames = FrameAllocator(total_frames=1)
        frames.allocate(1, 0)
        with pytest.raises(OutOfFramesError):
            frames.allocate(1, 1)

    def test_free_and_reuse(self):
        frames = FrameAllocator(total_frames=1)
        ppn = frames.allocate(1, 0)
        frames.free(ppn)
        assert frames.allocate(1, 1) == ppn

    def test_double_free_rejected(self):
        frames = FrameAllocator(total_frames=2)
        ppn = frames.allocate(1, 0)
        frames.free(ppn)
        with pytest.raises(ValueError):
            frames.free(ppn)

    def test_owner_tracking(self):
        frames = FrameAllocator(total_frames=2)
        ppn = frames.allocate(7, 42)
        assert frames.owner(ppn) == (7, 42)
        assert ppn in frames
        assert frames.used == 1
        assert frames.available == 1


class TestSwapSpace:
    def test_slots_monotonic_in_eviction_order(self):
        swap = SwapSpace()
        slots = [swap.allocate(1, vpn) for vpn in (10, 11, 12)]
        assert slots == [0, 1, 2]

    def test_reverse_lookup(self):
        swap = SwapSpace()
        slot = swap.allocate(1, 99)
        assert swap.page_at(slot) == (1, 99)
        assert swap.slot_of(1, 99) == slot

    def test_reallocate_frees_old_slot(self):
        swap = SwapSpace()
        first = swap.allocate(1, 5)
        second = swap.allocate(1, 5)
        assert second != first
        assert swap.page_at(first) is None
        assert swap.slot_of(1, 5) == second

    def test_neighbors_window(self):
        swap = SwapSpace()
        for vpn in range(10):
            swap.allocate(1, vpn)
        neighbors = swap.neighbors(5, before=2, after=2)
        assert (1, 5) not in neighbors
        assert (1, 3) in neighbors and (1, 7) in neighbors
        assert len(neighbors) == 4

    def test_neighbors_skips_freed_slots(self):
        swap = SwapSpace()
        for vpn in range(5):
            swap.allocate(1, vpn)
        swap.free(1)
        neighbors = swap.neighbors(2, before=2, after=2)
        assert (1, 1) not in neighbors

    def test_free_unknown_slot_is_noop(self):
        SwapSpace().free(1234)


class TestSwapCache:
    def test_insert_lookup_take(self):
        cache = SwapCache()
        cache.insert(1, 5, arrival_us=10.0)
        assert cache.lookup(1, 5) == 10.0
        assert (1, 5) in cache
        assert cache.take(1, 5) == 10.0
        assert (1, 5) not in cache
        assert cache.hits == 1

    def test_take_missing(self):
        cache = SwapCache()
        assert cache.take(1, 5) is None
        assert cache.hits == 0

    def test_drop(self):
        cache = SwapCache()
        cache.insert(1, 5, 0.0)
        assert cache.drop(1, 5)
        assert not cache.drop(1, 5)
        assert cache.drops == 1


class TestMemoryCgroup:
    def test_charge_and_limit(self):
        group = MemoryCgroup("app", limit_pages=2)
        assert not group.charge()
        assert not group.charge()
        assert group.charge()  # now over limit
        assert group.over_limit
        assert group.max_charged == 3

    def test_strict_charge_raises(self):
        group = MemoryCgroup("app", limit_pages=1)
        group.charge(strict=True)
        with pytest.raises(CgroupOverLimitError):
            group.charge(strict=True)

    def test_uncharge_underflow_rejected(self):
        group = MemoryCgroup("app", limit_pages=1)
        with pytest.raises(ValueError):
            group.uncharge()

    def test_prefetch_not_charged_when_disabled(self):
        group = MemoryCgroup("app", limit_pages=2, charge_prefetch=False)
        group.charge(prefetch=True)
        assert group.charged == 0
        assert group.prefetch_uncharged == 1

    def test_prefetch_charged_when_enabled(self):
        group = MemoryCgroup("app", limit_pages=2, charge_prefetch=True)
        group.charge(prefetch=True)
        assert group.charged == 1
        assert group.prefetch_uncharged == 0

    def test_promote_prefetch(self):
        group = MemoryCgroup("app", limit_pages=2, charge_prefetch=False)
        group.charge(prefetch=True)
        group.promote_prefetch()
        assert group.charged == 1
        assert group.prefetch_uncharged == 0

    def test_headroom(self):
        group = MemoryCgroup("app", limit_pages=5)
        group.charge(3)
        assert group.headroom == 2


class TestCgroupManager:
    def test_create_and_get(self):
        manager = CgroupManager()
        manager.create("a", 10)
        assert manager.get("a").limit_pages == 10
        assert len(manager) == 1

    def test_duplicate_rejected(self):
        manager = CgroupManager()
        manager.create("a", 10)
        with pytest.raises(ValueError):
            manager.create("a", 10)


class TestLruPageList:
    def test_insert_order_is_recency(self):
        lru = LruPageList()
        lru.insert(1, 10)
        lru.insert(1, 11)
        lru.insert(1, 12)
        assert lru.victims(2) == [(1, 10), (1, 11)]

    def test_touch_moves_to_mru(self):
        lru = LruPageList()
        lru.insert(1, 10)
        lru.insert(1, 11)
        assert lru.touch(1, 10)
        assert lru.victims(1) == [(1, 11)]

    def test_touch_missing(self):
        assert not LruPageList().touch(1, 5)

    def test_remove(self):
        lru = LruPageList()
        lru.insert(1, 10)
        assert lru.remove(1, 10)
        assert len(lru) == 0

    def test_reinsert_refreshes(self):
        lru = LruPageList()
        lru.insert(1, 10)
        lru.insert(1, 11)
        lru.insert(1, 10)  # refresh, not duplicate
        assert len(lru) == 2
        assert lru.victims(1) == [(1, 11)]


class TestReclaimer:
    def test_no_plan_under_limit(self):
        reclaimer = Reclaimer()
        lru = LruPageList()
        lru.insert(1, 0)
        assert reclaimer.plan(lru, resident=1, limit=10) == []

    def test_plan_restores_slack(self):
        reclaimer = Reclaimer(watermark_slack=4)
        lru = LruPageList()
        for vpn in range(20):
            lru.insert(1, vpn)
        victims = reclaimer.plan(lru, resident=20, limit=16)
        # Down to limit - slack = 12 resident -> evict 8.
        assert len(victims) == 8
        assert victims[0] == (1, 0)  # coldest first

    def test_plan_bounded_by_lru_size(self):
        reclaimer = Reclaimer(watermark_slack=0)
        lru = LruPageList()
        lru.insert(1, 0)
        victims = reclaimer.plan(lru, resident=100, limit=10)
        assert len(victims) == 1

    def test_account(self):
        reclaimer = Reclaimer()
        cost = reclaimer.account(npages=10, clean=4)
        assert cost > 0
        assert reclaimer.stats.pages_reclaimed == 10
        assert reclaimer.stats.clean_drops == 4
        assert reclaimer.stats.writebacks == 6

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            Reclaimer(batch_size=0)


class TestVma:
    def test_add_and_find(self):
        vmas = VmaMap(pid=1)
        vmas.add(100, 50, "heap")
        region = vmas.find(120)
        assert region is not None and region.name == "heap"
        assert vmas.find(99) is None
        assert vmas.find(150) is None

    def test_overlap_rejected(self):
        vmas = VmaMap(pid=1)
        vmas.add(100, 50)
        with pytest.raises(ValueError):
            vmas.add(149, 10)
        with pytest.raises(ValueError):
            vmas.add(90, 11)

    def test_adjacent_allowed(self):
        vmas = VmaMap(pid=1)
        vmas.add(100, 50)
        vmas.add(150, 10)
        assert len(vmas) == 2

    def test_empty_vma_rejected(self):
        with pytest.raises(ValueError):
            VmaMap(pid=1).add(0, 0)

    def test_registry_per_pid(self):
        registry = VmaRegistry()
        registry.for_pid(1).add(0, 10, "a")
        registry.for_pid(2).add(0, 10, "b")
        assert registry.find(1, 5).name == "a"
        assert registry.find(2, 5).name == "b"
        assert registry.find(3, 5) is None

    @given(st.lists(st.tuples(st.integers(0, 1000), st.integers(1, 50)), max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_find_consistent_with_membership(self, regions):
        vmas = VmaMap(pid=1)
        added = []
        for start, npages in regions:
            try:
                vmas.add(start, npages)
                added.append((start, start + npages))
            except ValueError:
                pass
        for probe in range(0, 1100, 37):
            region = vmas.find(probe)
            inside_any = any(lo <= probe < hi for lo, hi in added)
            assert (region is not None) == inside_any
