"""Chaos suite: the fault-injection framework and the resilient
remote-memory path.

Proves four properties the framework must hold:

* **determinism** — identical seed + plan gives byte-identical counters;
* **conservation** — injected drops never leak frames, charges, slots,
  or prefetch accounting;
* **bounded degradation** — hostile fabric slows the run but it still
  completes, and exhausted retry budgets fail with typed errors;
* **graceful recovery** — the HoPP circuit breaker enters degraded mode
  under sustained failures and re-opens after its cool-down.
"""

import json

import pytest

from repro.baselines.fastswap import FastswapPrefetcher
from repro.hopp.policy import BreakerConfig, BreakerState, CircuitBreaker
from repro.hopp.system import HoppConfig, HoppDataPlane
from repro.net.faults import (
    DegradedEpoch,
    FaultInjector,
    FaultPlan,
    RemoteFetchFatalError,
    RemoteUnavailableError,
    TransferTimeout,
    Window,
)
from repro.net.rdma import RdmaFabric
from repro.sim import runner
from repro.sim.machine import Machine, MachineConfig
from repro.sim.metrics import RunResult
from repro.workloads import build
from tests.conftest import quiet_fabric, touch_pages

#: Enough pages and passes that every system evicts, demand-faults, and
#: prefetches under a 50% local fraction.
def _workload():
    return build("stream-simple", npages=200, passes=2)


def _drop_plan(probability=0.2, seed=9):
    return FaultPlan(seed=seed, timeout_probability=probability)


class TestFaultPlanValidation:
    def test_default_plan_is_empty(self):
        assert FaultPlan().is_empty
        assert FaultPlan.none().is_empty

    def test_chaos_preset_is_not_empty(self):
        assert not FaultPlan.chaos().is_empty

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(timeout_probability=1.5)
        with pytest.raises(ValueError):
            FaultPlan(write_timeout_probability=-0.1)

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(timeout_us=0.0)

    def test_inverted_window_rejected(self):
        with pytest.raises(ValueError):
            Window(100.0, 50.0)

    def test_degradation_factor_below_one_rejected(self):
        with pytest.raises(ValueError):
            DegradedEpoch(0.0, 10.0, 0.5)

    def test_from_dict_round_trip(self):
        plan = FaultPlan.chaos(seed=3)
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone == plan

    def test_from_dict_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.from_dict({"bogus": 1})

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(FaultPlan.chaos(seed=5).to_dict()))
        assert FaultPlan.from_json_file(str(path)) == FaultPlan.chaos(seed=5)

    def test_round_trip_covers_every_field(self, tmp_path):
        # A plan exercising every serializable field, crash/rejoin
        # included, survives to_dict -> JSON -> from_json_file intact.
        plan = FaultPlan(
            seed=9,
            timeout_probability=0.1,
            write_timeout_probability=0.05,
            timeout_us=40.0,
            link_down=((10.0, 20.0),),
            prefetch_down=((30.0, 40.0),),
            degraded=((50.0, 60.0, 3.0),),
            remote_stall=((70.0, 80.0),),
            remote_stall_extra_us=15.0,
            remote_restart=((90.0, 100.0),),
            node_crash=(200.0, 300.0),
            node_rejoin=(250.0,),
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        path = tmp_path / "full.json"
        path.write_text(json.dumps(plan.to_dict()))
        assert FaultPlan.from_json_file(str(path)) == plan

    @pytest.mark.parametrize(
        "field,value",
        [
            ("node_crash", "not-a-list"),
            ("node_rejoin", [["nested"]]),
            ("link_down", [[1.0]]),  # a window needs two endpoints
            ("degraded", [[1.0, 2.0]]),  # an epoch needs a factor
            ("timeout_us", "soon"),
        ],
    )
    def test_malformed_field_is_named_in_the_error(self, field, value):
        with pytest.raises(ValueError, match=field):
            FaultPlan.from_dict({field: value})


class TestFaultInjector:
    def test_link_down_window_drops_everything(self):
        injector = FaultInjector(FaultPlan(link_down=((10.0, 20.0),)))
        injector.check_transfer(5.0, "demand")  # outside: no fault
        with pytest.raises(TransferTimeout):
            injector.check_transfer(10.0, "demand")
        injector.check_transfer(20.0, "demand")  # half-open interval
        assert injector.link_down_drops == 1

    def test_degraded_epoch_multiplies_latency(self):
        injector = FaultInjector(
            FaultPlan(degraded=((100.0, 200.0, 3.0),))
        )
        assert injector.latency_factor(50.0) == 1.0
        assert injector.latency_factor(150.0) == 3.0
        assert injector.degraded_transfers == 1

    def test_prefetch_down_spares_demand_and_writes(self):
        injector = FaultInjector(FaultPlan(prefetch_down=((0.0, 100.0),)))
        injector.check_transfer(50.0, "demand")
        injector.check_transfer(50.0, "write")
        with pytest.raises(TransferTimeout):
            injector.check_transfer(50.0, "prefetch")
        injector.check_transfer(100.0, "prefetch")  # half-open interval
        assert injector.prefetch_down_drops == 1

    def test_remote_restart_window_raises(self):
        injector = FaultInjector(FaultPlan(remote_restart=((0.0, 10.0),)))
        with pytest.raises(RemoteUnavailableError):
            injector.check_remote(5.0)
        injector.check_remote(50.0)

    def test_remote_stall_adds_delay(self):
        injector = FaultInjector(
            FaultPlan(remote_stall=((0.0, 10.0),), remote_stall_extra_us=7.0)
        )
        assert injector.remote_delay_us(5.0) == 7.0
        assert injector.remote_delay_us(50.0) == 0.0

    def test_probabilistic_drops_are_seed_deterministic(self):
        def sequence(seed):
            injector = FaultInjector(FaultPlan(seed=seed, timeout_probability=0.5))
            out = []
            for i in range(200):
                try:
                    injector.check_transfer(float(i), "prefetch")
                    out.append(False)
                except TransferTimeout:
                    out.append(True)
            return out

        assert sequence(4) == sequence(4)
        assert sequence(4) != sequence(5)

    def test_fabric_raises_typed_timeout(self):
        injector = FaultInjector(FaultPlan(link_down=((0.0, 1e9),)))
        fabric = RdmaFabric(quiet_fabric(), injector=injector)
        with pytest.raises(TransferTimeout) as exc:
            fabric.read_page(0.0, priority=True)
        assert exc.value.kind == "demand"
        assert exc.value.wasted_us > 0
        # The dropped attempt still counts as wire traffic.
        assert fabric.reads == 1


class TestResilientDemandPath:
    def test_demand_retries_with_backoff_and_completes(self):
        plan = _drop_plan(probability=0.3, seed=2)
        machine = Machine(
            MachineConfig(local_memory_pages=16, fabric=quiet_fabric(),
                          fault_plan=plan),
            fault_prefetcher=FastswapPrefetcher(),
        )
        machine.register_process(1)
        touch_pages(machine, 1, list(range(100)) * 3)
        assert machine.timeouts > 0
        assert machine.retries > 0
        assert machine.retry_latency_us > 0.0
        # Retried faults cost strictly more than a clean fetch.
        assert machine.now_us > 0

    def test_retry_budget_exhaustion_is_typed_and_fatal(self):
        plan = FaultPlan(seed=1, timeout_probability=1.0)
        machine = Machine(
            MachineConfig(local_memory_pages=8, fabric=quiet_fabric(),
                          fault_plan=plan, demand_retry_limit=3),
        )
        machine.register_process(1)
        with pytest.raises(RemoteFetchFatalError) as exc:
            touch_pages(machine, 1, list(range(64)) * 2)
        assert exc.value.attempts == 4  # initial try + 3 retries

    def test_empty_plan_counters_are_exactly_zero(self):
        result = runner.run(_workload(), "hopp", 0.5, quiet_fabric(),
                            fault_plan=FaultPlan())
        assert result.timeouts == 0
        assert result.retries == 0
        assert result.retry_latency_us == 0.0
        assert result.dropped_prefetches == 0
        assert result.degraded_mode_us == 0.0
        assert result.breaker_opens == 0
        assert result.prefetch_suppressed == 0

    def test_empty_plan_is_byte_identical_to_no_plan(self):
        clean = runner.run(_workload(), "hopp", 0.5, quiet_fabric())
        empty = runner.run(_workload(), "hopp", 0.5, quiet_fabric(),
                           fault_plan=FaultPlan())
        assert clean.to_dict() == empty.to_dict()


class TestConservationUnderChaos:
    @pytest.mark.parametrize("system", ["fastswap", "leap", "depth-16", "hopp"])
    def test_counters_conserve(self, system):
        workload = _workload()
        plan = _drop_plan(probability=0.25, seed=11)
        machine = runner.make_machine(workload, system, 0.5, quiet_fabric(),
                                      fault_plan=plan)
        machine.run(workload.trace())
        result = runner.collect(machine, system, workload.name)
        assert result.timeouts > 0
        # Dropped prefetches can never become hits.
        assert result.prefetch_hits <= (
            result.prefetch_issued - result.dropped_prefetches
        )
        assert result.dropped_prefetches <= result.prefetch_issued
        # Physical residency stays bounded and matches frame accounting.
        limit = machine.cgroups.get("default").limit_pages
        assert machine.resident_pages("default") <= limit
        assert machine.frames.used == machine.resident_pages()
        # Remote-node slots conserve (no leaks from dropped transfers).
        remote = machine.remote
        assert remote.pages_written == (
            remote.pages_stored + remote.pages_overwritten + remote.pages_released
        )
        assert 0.0 <= result.accuracy <= 1.0
        assert 0.0 <= result.coverage <= 1.0

    def test_accuracy_measured_over_delivered_prefetches(self):
        """A fabric drop is bad luck, not a wrong prediction: accuracy's
        denominator excludes dropped pages."""
        result = RunResult(system="x", workload="y", prefetch_issued=10,
                           dropped_prefetches=4, prefetch_hit_dram=6)
        assert result.prefetch_delivered == 6
        assert result.accuracy == 1.0

    def test_bounded_slowdown(self):
        clean = runner.run(_workload(), "hopp", 0.5, quiet_fabric())
        chaos = runner.run(_workload(), "hopp", 0.5, quiet_fabric(),
                           fault_plan=_drop_plan(probability=0.2, seed=7))
        assert chaos.completion_time_us >= clean.completion_time_us
        # Degradation is bounded: retries/backoff cost far less than a
        # collapse (generous 20x envelope).
        assert chaos.completion_time_us < clean.completion_time_us * 20


class TestDeterminism:
    @pytest.mark.parametrize("system", ["fastswap", "leap", "depth-16", "hopp"])
    @pytest.mark.parametrize("with_plan", [False, True])
    def test_identical_seed_gives_identical_counters(self, system, with_plan):
        plan = _drop_plan(probability=0.15, seed=13) if with_plan else None

        def one_run():
            return runner.run(
                build("stream-simple", npages=150, passes=2),
                system, 0.5, quiet_fabric(), fault_plan=plan,
            )

        first, second = one_run(), one_run()
        assert first.to_dict() == second.to_dict()


class TestCircuitBreakerUnit:
    def test_opens_at_failure_threshold(self):
        breaker = CircuitBreaker(BreakerConfig(window=8, min_samples=4,
                                               failure_threshold=0.5))
        for t in range(3):
            breaker.record_failure(float(t))
        assert breaker.state == BreakerState.CLOSED  # below min_samples
        breaker.record_failure(3.0)
        assert breaker.state == BreakerState.OPEN
        assert breaker.opens == 1
        assert not breaker.allow(4.0)

    def test_successes_keep_it_closed(self):
        breaker = CircuitBreaker(BreakerConfig(window=8, min_samples=4))
        for t in range(50):
            breaker.record_success(float(t), latency_us=1.0)
        assert breaker.state == BreakerState.CLOSED
        assert breaker.allow(100.0)

    def test_latency_inflation_counts_as_failure(self):
        breaker = CircuitBreaker(
            BreakerConfig(window=8, min_samples=4, latency_threshold_us=10.0)
        )
        for t in range(4):
            breaker.record_success(float(t), latency_us=100.0)
        assert breaker.state == BreakerState.OPEN

    def test_half_open_probe_closes_on_success(self):
        config = BreakerConfig(window=8, min_samples=2, cooldown_us=100.0,
                               probe_quota=2)
        breaker = CircuitBreaker(config)
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        assert breaker.state == BreakerState.OPEN
        assert not breaker.allow(50.0)  # still cooling down
        assert breaker.allow(101.0)  # half-open probe
        breaker.record_success(102.0, latency_us=1.0)
        assert breaker.state == BreakerState.CLOSED
        assert breaker.closes == 1
        assert breaker.time_degraded_us(200.0) == pytest.approx(102.0 - 1.0)

    def test_half_open_probe_failure_reopens(self):
        config = BreakerConfig(window=8, min_samples=2, cooldown_us=100.0,
                               probe_quota=1)
        breaker = CircuitBreaker(config)
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        assert breaker.allow(150.0)
        breaker.record_failure(151.0)
        assert breaker.state == BreakerState.OPEN
        assert not breaker.allow(200.0)  # new cool-down from 151
        assert breaker.allow(252.0)

    def test_probe_quota_bounds_half_open_traffic(self):
        config = BreakerConfig(window=8, min_samples=2, cooldown_us=10.0,
                               probe_quota=2)
        breaker = CircuitBreaker(config)
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        assert breaker.allow(20.0)
        assert breaker.allow(20.0)
        assert not breaker.allow(20.0)  # quota spent, no outcome yet

    def test_no_op_probe_is_refunded(self):
        """A probe whose backend call moved no bytes observes nothing;
        without a refund the breaker wedges in HALF_OPEN forever."""
        config = BreakerConfig(window=8, min_samples=2, cooldown_us=10.0,
                               probe_quota=1)
        breaker = CircuitBreaker(config)
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        assert breaker.allow(20.0)
        breaker.refund_probe()  # nothing to fetch: no outcome recorded
        assert breaker.allow(21.0)  # the slot came back
        breaker.record_success(22.0, latency_us=1.0)
        assert breaker.state == BreakerState.CLOSED


class TestCircuitBreakerIntegration:
    def _machine_with_breaker(self, workload, plan, breaker_config):
        limit = max(int(workload.footprint_pages * 0.5), 8)
        machine = Machine(
            MachineConfig(local_memory_pages=limit, fabric=quiet_fabric(),
                          compute_us_per_access=workload.compute_us_per_access,
                          fault_plan=plan),
            fault_prefetcher=FastswapPrefetcher(),
        )
        plane = HoppDataPlane(machine, HoppConfig(breaker=breaker_config))
        machine.hopp = plane
        machine.controller.add_tap(plane.on_mc_access)
        for process in workload.processes:
            machine.register_process(process.pid, process.cgroup)
            for start_vpn, npages, name in process.vmas:
                machine.add_vma(process.pid, start_vpn, npages, name)
        return machine, plane

    def test_breaker_enters_and_exits_degraded_mode(self):
        """During a bulk-QP brownout every prefetch read drops, the
        breaker opens and suppresses issue; after the brownout plus
        cool-down it probes, closes, and prefetching resumes."""
        workload = build("stream-simple", npages=200, passes=3)
        # Find the clean completion time, then park a brownout across
        # the middle of the run.  (A full link flap will not do: demand
        # and writeback retries wait the window out, so simulated time
        # jumps straight over it and no prefetch issue lands inside.)
        clean = runner.run(workload, "hopp", 0.5, quiet_fabric())
        flap = (clean.completion_time_us * 0.25,
                clean.completion_time_us * 0.45)
        plan = FaultPlan(prefetch_down=(flap,))
        breaker_config = BreakerConfig(window=16, min_samples=4,
                                       failure_threshold=0.5,
                                       cooldown_us=200.0, probe_quota=2)
        machine, plane = self._machine_with_breaker(workload, plan,
                                                    breaker_config)
        machine.run(workload.trace())
        breaker = plane.executor.breaker
        assert breaker is not None
        assert breaker.opens >= 1, "breaker never entered degraded mode"
        assert breaker.closes >= 1, "breaker never recovered"
        assert breaker.state == BreakerState.CLOSED
        assert plane.executor.suppressed > 0
        assert breaker.time_degraded_us(machine.now_us) > 0.0
        # Prefetching resumed after recovery: drops stopped but issue
        # continued (issued attempts strictly exceed drops).
        assert machine.prefetch_issued > machine.dropped_prefetches
        assert machine.dropped_prefetches > 0

    def test_breaker_not_armed_without_fault_plan(self):
        machine = Machine(
            MachineConfig(local_memory_pages=64, fabric=quiet_fabric())
        )
        plane = HoppDataPlane(machine, HoppConfig())
        assert plane.executor.breaker is None

    def test_breaker_counters_surface_in_run_result(self):
        workload = build("stream-simple", npages=200, passes=3)
        clean = runner.run(workload, "hopp", 0.5, quiet_fabric())
        flap = (clean.completion_time_us * 0.25,
                clean.completion_time_us * 0.45)
        chaos = runner.run(
            workload, "hopp", 0.5, quiet_fabric(),
            fault_plan=FaultPlan(prefetch_down=(flap,)),
        )
        assert chaos.timeouts > 0
        assert chaos.dropped_prefetches > 0
        payload = chaos.to_dict()
        for key in ("timeouts", "retries", "dropped_prefetches",
                    "degraded_mode_us", "breaker_opens",
                    "prefetch_suppressed"):
            assert key in payload


class TestChaosPreset:
    def test_chaos_preset_run_completes_with_live_counters(self):
        workload = build("stream-simple", npages=300, passes=3)
        result = runner.run(workload, "hopp", 0.5, quiet_fabric(),
                            fault_plan=FaultPlan.chaos(seed=1))
        assert result.completion_time_us > 0
        assert result.timeouts > 0
        assert result.retries > 0
        assert result.dropped_prefetches > 0
        assert 0.0 <= result.accuracy <= 1.0

    def test_cli_fault_plan_chaos(self, capsys):
        from repro.cli import main

        code = main(["run", "-w", "stream-simple", "-s", "hopp",
                     "--fault-plan", "chaos", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["timeouts"] > 0
        assert payload["dropped_prefetches"] > 0

    def test_cli_fault_plan_from_file(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "plan.json"
        path.write_text(json.dumps(
            {"seed": 3, "timeout_probability": 0.2}
        ))
        code = main(["run", "-w", "stream-simple", "-s", "fastswap",
                     "--fault-plan", str(path), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["timeouts"] > 0
